//! Property tests on the storage engine: arbitrary entities must survive
//! serialization, page placement, moves, and scans bit-for-bit.

use cinderella::model::{AttrId, Entity, EntityId, Value};
use cinderella::storage::{decode_entity, encode_entity, UniversalTable};
use proptest::prelude::*;

mod common;

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // No NaN: Entity equality is used by the tests below.
        (-1e300f64..1e300).prop_map(Value::Float),
        "[a-zA-Z0-9 äöü€]{0,40}".prop_map(Value::Text),
    ]
}

fn arb_entity(id: u64) -> impl Strategy<Value = Entity> {
    prop::collection::btree_map(0u32..200, value(), 0..20).prop_map(move |attrs| {
        Entity::new(EntityId(id), attrs.into_iter().map(|(a, v)| (AttrId(a), v)))
            .expect("btree keys are unique")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode/decode is the identity on arbitrary entities.
    #[test]
    fn record_roundtrip(e in arb_entity(7)) {
        let bytes = encode_entity(&e);
        prop_assert_eq!(decode_entity(&bytes).expect("decodes"), e);
    }

    /// Entities inserted into a table come back identical via point lookup
    /// and via scan, and survive a move to another segment.
    #[test]
    fn table_roundtrip(entities in prop::collection::vec(arb_entity(0), 1..30)) {
        let mut table = UniversalTable::new(16);
        // Re-id to make ids unique.
        let entities: Vec<Entity> = entities
            .into_iter()
            .enumerate()
            .map(|(i, e)| {
                Entity::new(EntityId(i as u64), e.attrs().to_vec()).expect("valid")
            })
            .collect();
        let a = table.create_segment();
        let b = table.create_segment();
        for e in &entities {
            table.insert(a, e).expect("insert");
        }
        for e in &entities {
            prop_assert_eq!(&table.get(e.id()).expect("stored"), e);
        }
        // Scan sees every entity exactly once.
        let mut seen = Vec::new();
        table.scan(a, |e| seen.push(e.clone())).expect("scan");
        seen.sort_by_key(Entity::id);
        prop_assert_eq!(&seen, &entities);
        // Move half to segment b; everything still reachable and identical.
        for e in entities.iter().step_by(2) {
            table.move_entity(e.id(), b).expect("move");
        }
        for e in &entities {
            prop_assert_eq!(&table.get(e.id()).expect("stored"), e);
        }
        let count_a = table.segment(a).expect("a").record_count();
        let count_b = table.segment(b).expect("b").record_count();
        prop_assert_eq!(count_a + count_b, entities.len());
        common::assert_pool_valid(&table);
    }

    /// Interleaved inserts and deletes never corrupt neighbours.
    #[test]
    fn delete_does_not_disturb_neighbours(
        keep in prop::collection::vec(any::<bool>(), 2..40),
    ) {
        let mut table = UniversalTable::new(16);
        let seg = table.create_segment();
        let a0 = table.catalog_mut().intern("x");
        let entities: Vec<Entity> = (0..keep.len() as u64)
            .map(|i| {
                Entity::new(
                    EntityId(i),
                    [(a0, Value::Text(format!("payload-{i}")))],
                )
                .expect("valid")
            })
            .collect();
        for e in &entities {
            table.insert(seg, e).expect("insert");
        }
        for (e, &k) in entities.iter().zip(&keep) {
            if !k {
                table.delete(e.id()).expect("delete");
            }
        }
        for (e, &k) in entities.iter().zip(&keep) {
            if k {
                prop_assert_eq!(&table.get(e.id()).expect("kept"), e);
            } else {
                prop_assert!(table.get(e.id()).is_err());
            }
        }
        let expected = keep.iter().filter(|k| **k).count();
        prop_assert_eq!(table.entity_count(), expected);
        common::assert_pool_valid(&table);
    }
}
