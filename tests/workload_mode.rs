//! Workload-based partitioning (§II–III): entities relevant to the same
//! queries should land in the same partitions, even when their attribute
//! sets differ.

use cinderella::core::{Capacity, Cinderella, Config, SynopsisMode};
use cinderella::model::{AttrId, Entity, EntityId, Synopsis, Value};
use cinderella::query::{execute, plan, Query};
use cinderella::storage::UniversalTable;

mod common;

const UNIVERSE: usize = 8;

fn entity(id: u64, attrs: &[u32]) -> Entity {
    Entity::new(
        EntityId(id),
        attrs.iter().map(|&a| (AttrId(a), Value::Int(1))),
    )
    .expect("unique")
}

fn table() -> UniversalTable {
    let mut t = UniversalTable::new(32);
    for i in 0..UNIVERSE {
        t.catalog_mut().intern(&format!("a{i}"));
    }
    t
}

#[test]
fn groups_by_query_relevance_not_attribute_shape() {
    // Workload: q0 touches attributes {0, 1}; q1 touches {4, 5}.
    let queries = vec![
        Synopsis::from_bits(UNIVERSE, [0, 1]),
        Synopsis::from_bits(UNIVERSE, [4, 5]),
    ];
    let mut t = table();
    let mut cindy = Cinderella::new(Config {
        weight: 0.5,
        capacity: Capacity::MaxEntities(100),
        mode: SynopsisMode::WorkloadBased(queries),
        ..Config::default()
    });
    // Entities 0 and 1 have *disjoint* attribute sets but both are relevant
    // only to q0; entity 2 is relevant only to q1.
    cindy.insert(&mut t, entity(0, &[0])).expect("insert");
    cindy.insert(&mut t, entity(1, &[1, 2])).expect("insert");
    cindy.insert(&mut t, entity(2, &[4, 6])).expect("insert");
    assert_eq!(
        t.location(EntityId(0)),
        t.location(EntityId(1)),
        "same-query entities share a partition in workload mode"
    );
    assert_ne!(t.location(EntityId(0)), t.location(EntityId(2)));

    // Entity-based mode, for contrast, separates entities 0 and 1 at the
    // same weight: their attribute overlap is empty.
    let mut t2 = table();
    let mut entity_based = Cinderella::new(Config {
        weight: 0.5,
        capacity: Capacity::MaxEntities(100),
        mode: SynopsisMode::EntityBased,
        ..Config::default()
    });
    entity_based.insert(&mut t2, entity(0, &[0])).expect("insert");
    entity_based.insert(&mut t2, entity(1, &[1, 2])).expect("insert");
    assert_ne!(t2.location(EntityId(0)), t2.location(EntityId(1)));
    common::assert_fully_valid(&cindy, &t);
    common::assert_fully_valid(&entity_based, &t2);
}

#[test]
fn workload_mode_still_prunes_by_attributes() {
    // Query-time pruning always uses the attribute synopses, which the
    // catalog maintains in both modes.
    let queries = vec![Synopsis::from_bits(UNIVERSE, [0, 1])];
    let mut t = table();
    let mut cindy = Cinderella::new(Config {
        weight: 0.5,
        capacity: Capacity::MaxEntities(100),
        mode: SynopsisMode::WorkloadBased(queries),
        ..Config::default()
    });
    for i in 0..10 {
        cindy.insert(&mut t, entity(i, &[0])).expect("insert");
    }
    for i in 10..20 {
        // Irrelevant to the workload: empty rating synopsis.
        cindy.insert(&mut t, entity(i, &[6, 7])).expect("insert");
    }
    let view: Vec<_> = cindy
        .catalog()
        .pruning_view()
        .map(|(s, syn, _)| (s, syn.clone()))
        .collect();
    assert!(view.len() >= 2);
    let q = Query::from_attrs(UNIVERSE, [AttrId(0)]);
    let p = plan(&q, view.iter().map(|(s, syn)| (*s, syn)));
    let r = execute(&t, &q, &p).expect("run");
    assert_eq!(r.rows, 10);
    assert!(r.segments_pruned >= 1, "attribute pruning works in workload mode");
    common::assert_fully_valid(&cindy, &t);
}

#[test]
fn workload_irrelevant_entities_pool_together() {
    // Entities relevant to no query have empty rating synopses and rate 0
    // against everything — Algorithm 1 puts them in the first partition
    // scanned. They effectively form "cold storage", which is the sensible
    // outcome for data the workload never touches.
    let queries = vec![Synopsis::from_bits(UNIVERSE, [0])];
    let mut t = table();
    let mut cindy = Cinderella::new(Config {
        weight: 0.5,
        capacity: Capacity::MaxEntities(100),
        mode: SynopsisMode::WorkloadBased(queries),
        ..Config::default()
    });
    cindy.insert(&mut t, entity(0, &[6])).expect("insert");
    cindy.insert(&mut t, entity(1, &[7])).expect("insert");
    cindy.insert(&mut t, entity(2, &[5, 6])).expect("insert");
    assert_eq!(cindy.catalog().len(), 1, "irrelevant entities pool together");
    common::assert_fully_valid(&cindy, &t);
}
