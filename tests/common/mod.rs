//! Shared tier-1 epilogue: deep structural validation.
//!
//! Every integration test that builds a partitioning finishes by driving
//! the full catalog/arena/index validator ([`Cinderella::validate`]) plus
//! the buffer-pool LRU validator, so a latent inconsistency surfaces as a
//! named invariant violation rather than as a wrong answer three suites
//! later.

// Each test binary compiles this module separately and most use only one
// of the two helpers.
#![allow(dead_code)]

use cinderella::core::{validate, Cinderella};
use cinderella::storage::UniversalTable;

/// Panics with the rendered violation report if any structural invariant
/// of the catalog/arena/index triad — or of the table's buffer pool — is
/// broken.
pub fn assert_fully_valid(cindy: &Cinderella, table: &UniversalTable) {
    let violations = cindy.validate(table).expect("validation scan");
    assert!(violations.is_empty(), "{}", validate::render(&violations));
    assert_pool_valid(table);
}

/// Buffer-pool-only variant for suites that exercise storage without a
/// partitioner on top.
pub fn assert_pool_valid(table: &UniversalTable) {
    let report = table.pool().validate();
    assert!(report.is_empty(), "buffer pool invariants: {report:?}");
}
