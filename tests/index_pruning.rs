//! End-to-end differential: planning through the catalog's
//! attribute-presence bitmap index (`plan_survivors` →
//! `plan_from_survivors`) against the per-partition `|p ∧ q| = 0` oracle
//! (`plan` over `pruning_view`), on tables partitioned by the real
//! Cinderella insert path — and identical query answers through both plans.

use std::collections::BTreeSet;

use cind_model::{AttrId, Entity, EntityId, Value};
use cind_query::{execute_collect, plan, plan_from_survivors, Query};
use cind_storage::UniversalTable;
use cinderella_core::{Capacity, Cinderella, Config, IndexMode};
use proptest::prelude::*;

mod common;

const UNIVERSE: usize = 16;

fn partitioned(
    entity_attrs: &[Vec<u32>],
    capacity: u64,
    index: IndexMode,
) -> (UniversalTable, Cinderella) {
    let mut table = UniversalTable::new(64);
    for i in 0..UNIVERSE {
        table.catalog_mut().intern(&format!("a{i}"));
    }
    let mut cindy = Cinderella::new(Config {
        weight: 0.3,
        capacity: Capacity::MaxEntities(capacity),
        index,
        ..Config::default()
    });
    for (i, attrs) in entity_attrs.iter().enumerate() {
        let set: BTreeSet<u32> = attrs.iter().copied().collect();
        let e = Entity::new(
            EntityId(i as u64),
            set.iter().map(|&a| (AttrId(a), Value::Int(i64::from(a)))),
        )
        .expect("deduped attrs");
        cindy.insert(&mut table, e).expect("insert");
    }
    common::assert_fully_valid(&cindy, &table);
    (table, cindy)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexed_plan_equals_disjoint_plan(
        entity_attrs in prop::collection::vec(
            prop::collection::vec(0u32..UNIVERSE as u32, 1..6),
            1..60,
        ),
        capacity in 2u64..12,
        qattrs in prop::collection::vec(0u32..UNIVERSE as u32, 0..5),
    ) {
        let (table, cindy) =
            partitioned(&entity_attrs, capacity, IndexMode::On);
        let qset: BTreeSet<u32> = qattrs.iter().copied().collect();
        let q = Query::from_attrs(UNIVERSE, qset.iter().map(|&a| AttrId(a)));

        // Oracle: the per-partition synopsis test of §II.
        let view: Vec<_> = cindy
            .catalog()
            .pruning_view()
            .map(|(s, syn, _)| (s, syn.clone()))
            .collect();
        let oracle = plan(&q, view.iter().map(|(s, syn)| (*s, syn)));

        // Indexed: survivor set from the presence bitmaps.
        let (segments, pruned) = cindy
            .catalog()
            .plan_survivors(q.synopsis())
            .expect("index on");
        let indexed = plan_from_survivors(segments, pruned);

        prop_assert_eq!(&indexed.segments, &oracle.segments);
        prop_assert_eq!(indexed.pruned, oracle.pruned);

        // Both plans return identical rows in identical order.
        let (ro, rows_o) = execute_collect(&table, &q, &oracle).expect("oracle");
        let (ri, rows_i) = execute_collect(&table, &q, &indexed).expect("indexed");
        prop_assert_eq!(ro.rows, ri.rows);
        prop_assert_eq!(rows_o, rows_i);
    }

    #[test]
    fn index_mode_does_not_change_the_partitioning(
        entity_attrs in prop::collection::vec(
            prop::collection::vec(0u32..UNIVERSE as u32, 1..6),
            1..60,
        ),
        capacity in 2u64..12,
    ) {
        // Algorithm 1 behaves identically with the candidate index on and
        // off: same partition count and same member multiset per partition
        // (the indexed argmax is exact whenever the rating is acted on).
        let (_, plain) = partitioned(&entity_attrs, capacity, IndexMode::Off);
        let (_, indexed) = partitioned(&entity_attrs, capacity, IndexMode::On);
        prop_assert_eq!(plain.catalog().len(), indexed.catalog().len());
        let sizes = |c: &Cinderella| {
            let mut v: Vec<(u64, u64)> = c
                .catalog()
                .iter()
                .map(|m| (m.entities, m.size))
                .collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(sizes(&plain), sizes(&indexed));
    }
}
