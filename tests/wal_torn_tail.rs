//! Exhaustive WAL torn-tail recovery: a multi-entry log truncated at
//! *every* byte offset must recover to exactly the prefix of committed
//! entries, and the recovered store must pass the full structural
//! validation (the same invariant sweep `cind check` runs).
//!
//! The log is built in the simulator's in-memory VFS so each of the
//! hundreds of truncation points gets a pristine copy of the original
//! snapshot + log bytes without touching the real filesystem.

use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

use cind_model::{EntityId, Value};
use cind_server::engine::{Engine, EngineOptions, SNAPSHOT_FILE, WAL_FILE};
use cind_server::WireEntity;
use cind_sim::clock::VirtualClock;
use cind_sim::{FaultPlan, SimVfs};
use cind_storage::Vfs;
use cinderella_core::{Capacity, Config};

const STORE: &str = "/torn/store";
const ENTITIES: u64 = 10;

fn options(vfs: Arc<SimVfs>) -> EngineOptions {
    EngineOptions {
        config: Config {
            weight: 0.3,
            // Small partitions so the replayed entities actually exercise
            // splits, not one flat segment.
            capacity: Capacity::MaxEntities(4),
            ..Config::default()
        },
        pool_pages: 64,
        query_threads: 1,
        // Per-op commits: the truncation sweep below reasons about the
        // exact bytes each acknowledged insert appended.
        group_commit_window: std::time::Duration::ZERO,
        vfs,
    }
}

fn fresh_vfs() -> Arc<SimVfs> {
    Arc::new(SimVfs::new(0, FaultPlan::none(), Arc::new(VirtualClock::new())))
}

fn write_file(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) {
    if let Some(parent) = path.parent() {
        vfs.create_dir_all(parent).expect("mkdir");
    }
    let mut f = vfs.create(path).expect("create");
    f.write_all(bytes).expect("write");
    f.sync().expect("sync");
}

fn entity(id: u64) -> WireEntity {
    // Varied arity and attribute sets so entities land in different
    // partitions and every WAL group has a different byte length.
    let mut attrs = vec![("kind".to_owned(), Value::Int(id as i64 % 3))];
    for a in 0..(id % 4) {
        attrs.push((format!("g{}_a{a}", id % 2), Value::Int(-(id as i64) * 7 + a as i64)));
    }
    if id.is_multiple_of(3) {
        attrs.push(("label".to_owned(), Value::Text(format!("e{id}"))));
    }
    WireEntity { id, attrs }
}

#[test]
fn every_truncation_offset_recovers_a_committed_prefix() {
    // Build the original store: open (checkpoints an empty snapshot and
    // stamps the log's epoch frame), then append one commit group per
    // entity, recording the log length after each.
    let vfs = fresh_vfs();
    let dir = Path::new(STORE);
    let engine = Engine::open(dir, options(vfs.clone())).expect("open");
    let wal_path = dir.join(WAL_FILE);
    let snap_path = dir.join(SNAPSHOT_FILE);

    let mut len_after = Vec::new();
    for id in 0..ENTITIES {
        engine.insert(&entity(id)).expect("insert");
        len_after.push(vfs.file_len(&wal_path).expect("wal exists"));
    }
    let wal = vfs.file_bytes(&wal_path).expect("wal bytes");
    let snap = vfs.file_bytes(&snap_path).expect("snapshot bytes");
    assert_eq!(*len_after.last().expect("non-empty"), wal.len());

    for cut in 0..=wal.len() {
        let copy = fresh_vfs();
        write_file(&*copy, &snap_path, &snap);
        write_file(&*copy, &wal_path, &wal[..cut]);

        let reopened = Engine::open(dir, options(copy.clone()))
            .unwrap_or_else(|e| panic!("cut {cut}: recovery failed: {e}"));

        // Exactly the entities whose commit group is fully inside the
        // retained prefix survive — never a later one, never a hole.
        let expect = len_after.iter().filter(|&&l| l <= cut).count() as u64;
        assert_eq!(
            reopened.stats().entities, expect,
            "cut {cut}: wrong survivor count"
        );
        reopened.with_parts(|table, _| {
            for id in 0..ENTITIES {
                let present = table.get(EntityId(id)).is_ok();
                assert_eq!(
                    present,
                    id < expect,
                    "cut {cut}: entity {id} presence (expected first {expect})"
                );
            }
        });

        // The recovered store passes the full structural validation —
        // what `cind check` runs after restoring a snapshot.
        let violations = reopened.validate().expect("validate runs");
        assert!(violations.is_empty(), "cut {cut}: {violations:?}");
    }
}
