//! Churn test: a long random sequence of inserts, updates, and deletes,
//! checked against an in-memory model after every phase.

use std::collections::HashMap;

use cinderella::core::{Capacity, Cinderella, Config};
use cinderella::model::{AttrId, Entity, EntityId, Synopsis, Value};
use cinderella::query::{execute, plan, Query};
use cinderella::storage::UniversalTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;

const UNIVERSE: u32 = 24;

fn random_entity(id: u64, rng: &mut StdRng) -> Entity {
    // Entities draw 1–6 attributes from one of three latent shapes plus
    // noise, producing realistic overlap.
    let shape = rng.gen_range(0..3u32);
    let base = shape * 8;
    let arity = rng.gen_range(1..=6usize);
    let mut attrs: Vec<u32> = Vec::new();
    while attrs.len() < arity {
        let a = if rng.gen_bool(0.8) {
            base + rng.gen_range(0..8)
        } else {
            rng.gen_range(0..UNIVERSE)
        };
        if !attrs.contains(&a) {
            attrs.push(a);
        }
    }
    Entity::new(
        EntityId(id),
        attrs
            .into_iter()
            .map(|a| (AttrId(a), Value::Int(rng.gen_range(0..100)))),
    )
    .expect("deduped")
}

/// Checks every cross-layer invariant between the table, the catalog, and
/// the model.
fn check_consistency(
    table: &UniversalTable,
    cindy: &Cinderella,
    model: &HashMap<EntityId, Entity>,
) {
    assert_eq!(table.entity_count(), model.len());
    let catalog_total: u64 = cindy.catalog().iter().map(|m| m.entities).sum();
    assert_eq!(catalog_total as usize, model.len());
    // Every model entity is stored, identical, in a cataloged partition.
    for (id, expected) in model {
        let stored = table.get(*id).expect("entity stored");
        assert_eq!(&stored, expected);
        let seg = table.location(*id).expect("located");
        assert!(cindy.catalog().get(seg).is_some(), "{seg} not cataloged");
    }
    // Per-partition: synopsis == OR of members, size == Σ arity.
    let universe = table.universe();
    for meta in cindy.catalog().iter() {
        let mut syn = Synopsis::empty(universe);
        let mut cells = 0u64;
        let mut count = 0u64;
        table
            .scan(meta.segment, |e| {
                syn.merge(&e.synopsis(universe));
                cells += e.arity() as u64;
                count += 1;
            })
            .expect("scan");
        assert_eq!(meta.attr_synopsis, syn);
        assert_eq!(meta.size, cells);
        assert_eq!(meta.entities, count);
        assert!(count > 0, "empty partition {} must have been dropped", meta.segment);
    }
    common::assert_fully_valid(cindy, table);
}

#[test]
fn random_churn_stays_consistent() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut table = UniversalTable::new(64);
    for i in 0..UNIVERSE {
        table.catalog_mut().intern(&format!("a{i}"));
    }
    let mut cindy = Cinderella::new(Config {
        weight: 0.3,
        capacity: Capacity::MaxEntities(40),
        ..Config::default()
    });
    let mut model: HashMap<EntityId, Entity> = HashMap::new();
    let mut next_id = 0u64;

    for step in 0..3_000 {
        let op = rng.gen_range(0..100);
        if op < 55 || model.is_empty() {
            let e = random_entity(next_id, &mut rng);
            next_id += 1;
            model.insert(e.id(), e.clone());
            cindy.insert(&mut table, e).expect("insert");
        } else if op < 80 {
            // Update a random live entity to a fresh random shape.
            let id = *model.keys().nth(rng.gen_range(0..model.len())).expect("non-empty");
            let mut e = random_entity(id.0, &mut rng);
            // Keep the id, randomise content fully (new shape likely).
            e = Entity::new(id, e.attrs().to_vec()).expect("valid");
            model.insert(id, e.clone());
            cindy.update(&mut table, e).expect("update");
        } else {
            let id = *model.keys().nth(rng.gen_range(0..model.len())).expect("non-empty");
            let removed = cindy.delete(&mut table, id).expect("delete");
            let expected = model.remove(&id).expect("in model");
            assert_eq!(removed, expected);
        }
        if step % 500 == 499 {
            check_consistency(&table, &cindy, &model);
        }
    }
    check_consistency(&table, &cindy, &model);

    // Final query check: every singleton query returns exactly the model's
    // matching entities.
    let view: Vec<_> = cindy
        .catalog()
        .pruning_view()
        .map(|(s, syn, _)| (s, syn.clone()))
        .collect();
    for a in 0..UNIVERSE {
        let q = Query::from_attrs(table.universe(), [AttrId(a)]);
        let p = plan(&q, view.iter().map(|(s, syn)| (*s, syn)));
        let r = execute(&table, &q, &p).expect("run");
        let expected = model.values().filter(|e| e.has(AttrId(a))).count() as u64;
        assert_eq!(r.rows, expected, "attribute a{a}");
    }

    let s = cindy.stats();
    assert!(s.splits > 0, "churn at B = 40 must trigger splits");
    assert!(s.partitions_dropped > 0, "deletes must empty some partition");
    assert!(s.update_moves > 0, "shape changes must move entities");
}

#[test]
fn delete_everything_leaves_nothing() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut table = UniversalTable::new(64);
    for i in 0..UNIVERSE {
        table.catalog_mut().intern(&format!("a{i}"));
    }
    let mut cindy = Cinderella::new(Config {
        weight: 0.3,
        capacity: Capacity::MaxEntities(25),
        ..Config::default()
    });
    let n = 500u64;
    for i in 0..n {
        let e = random_entity(i, &mut rng);
        cindy.insert(&mut table, e).expect("insert");
    }
    for i in 0..n {
        cindy.delete(&mut table, EntityId(i)).expect("delete");
    }
    assert_eq!(table.entity_count(), 0);
    assert_eq!(cindy.catalog().len(), 0);
    assert_eq!(table.segment_count(), 0);
    common::assert_fully_valid(&cindy, &table);
    assert_eq!(cindy.stats().partitions_dropped as usize, {
        // Every partition ever created must eventually have been dropped:
        // created = new-partition inserts + 2 per split; splits also remove
        // the split partition without "dropping" it (it never empties by
        // deletion), so dropped = created + splits − splits·1 … simplest
        // exact check: nothing is left.
        cindy.stats().partitions_created as usize + 2 * cindy.stats().splits as usize
            - cindy.stats().splits as usize
    });
}
