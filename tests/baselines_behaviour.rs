//! Cross-policy guarantees: every partitioner answers queries identically;
//! the efficiency ordering matches each policy's design.

use cinderella::baselines::{
    HashPartitioner, OfflineClustering, OfflineConfig, Partitioner, RangePartitioner,
    Unpartitioned,
};
use cinderella::core::{efficiency_of, Capacity, Cinderella, Config};
use cinderella::datagen::{DbpediaConfig, DbpediaGenerator, WorkloadBuilder};
use cinderella::model::Synopsis;
use cinderella::query::{execute, plan, Query};
use cinderella::storage::UniversalTable;

mod common;

const ENTITIES: usize = 4_000;

fn policies() -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(Unpartitioned::new()),
        Box::new(HashPartitioner::new(8)),
        Box::new(RangePartitioner::new(500)),
        Box::new(OfflineClustering::new(OfflineConfig {
            jaccard_threshold: 0.4,
            capacity: 500,
        })),
        Box::new(Cinderella::new(Config {
            weight: 0.2,
            capacity: Capacity::MaxEntities(500),
            ..Config::default()
        })),
    ]
}

#[test]
fn all_policies_answer_queries_identically() {
    let gen = DbpediaGenerator::new(DbpediaConfig {
        entities: ENTITIES,
        ..DbpediaConfig::default()
    });

    let mut loaded = Vec::new();
    for mut policy in policies() {
        let mut table = UniversalTable::new(64);
        let entities = gen.generate(table.catalog_mut());
        policy.load(&mut table, entities).expect("load");
        assert_eq!(table.entity_count(), ENTITIES, "{}", policy.name());
        loaded.push((table, policy));
    }

    let universe = loaded[0].0.universe();
    let specs = {
        let mut probe = UniversalTable::new(64);
        let entities = gen.generate(probe.catalog_mut());
        let all = WorkloadBuilder::default().build(universe, &entities);
        WorkloadBuilder::representatives(&all, &WorkloadBuilder::default_edges(), 2)
    };

    for spec in &specs {
        let q = Query::from_attrs(universe, spec.attrs.iter().copied());
        let mut baseline_rows: Option<u64> = None;
        for (table, policy) in &loaded {
            let view = policy.pruning_view();
            let p = plan(&q, view.iter().map(|(s, syn, _)| (*s, syn)));
            let r = execute(table, &q, &p).expect("run");
            match baseline_rows {
                None => baseline_rows = Some(r.rows),
                Some(expected) => assert_eq!(
                    r.rows,
                    expected,
                    "{} disagrees on {}",
                    policy.name(),
                    spec.label
                ),
            }
        }
    }

    for (table, policy) in &loaded {
        let report = policy.validate_structure(table);
        assert!(report.is_empty(), "{}: {report:?}", policy.name());
        common::assert_pool_valid(table);
    }
}

#[test]
fn efficiency_ordering_matches_design() {
    let gen = DbpediaGenerator::new(DbpediaConfig {
        entities: ENTITIES,
        ..DbpediaConfig::default()
    });
    let mut probe = UniversalTable::new(64);
    let entities = gen.generate(probe.catalog_mut());
    let universe = probe.universe();
    let specs = {
        let all = WorkloadBuilder::default().build(universe, &entities);
        WorkloadBuilder::representatives(&all, &WorkloadBuilder::default_edges(), 3)
    };
    let queries: Vec<Synopsis> = specs
        .iter()
        .map(|s| Synopsis::from_attrs(universe, s.attrs.iter().copied()))
        .collect();
    let entity_syns: Vec<(Synopsis, u64)> = entities
        .iter()
        .map(|e| (e.synopsis(universe), e.arity() as u64))
        .collect();

    let mut eff = std::collections::HashMap::new();
    for mut policy in policies() {
        let mut table = UniversalTable::new(64);
        let entities = gen.generate(table.catalog_mut());
        policy.load(&mut table, entities).expect("load");
        let report = policy.validate_structure(&table);
        assert!(report.is_empty(), "{}: {report:?}", policy.name());
        let parts: Vec<(Synopsis, u64)> = policy
            .pruning_view()
            .into_iter()
            .map(|(_, syn, size)| (syn, size))
            .collect();
        eff.insert(
            policy.name(),
            efficiency_of(entity_syns.iter().cloned(), &parts, &queries),
        );
    }

    // Hash partitioning destroys locality: it can never beat unpartitioned
    // on Definition 1 by more than rounding (all partitions carry all hot
    // attributes), and structure-aware policies must beat both.
    let uni = eff["unpartitioned"];
    let hash = eff["hash"];
    let cindy = eff["cinderella"];
    let offline = eff["offline-clustering"];
    assert!((hash - uni).abs() < 0.05, "hash ≈ unpartitioned ({hash} vs {uni})");
    assert!(cindy > uni + 0.02, "cinderella ({cindy}) must beat unpartitioned ({uni})");
    assert!(offline > uni, "offline clustering ({offline}) must beat unpartitioned ({uni})");
    for (_, e) in eff {
        assert!(e > 0.0 && e <= 1.0);
    }
}
