//! Table I correctness: Cinderella on perfectly regular data must
//! rediscover the schema and add only bounded scan overhead.

use cinderella::core::{Capacity, Cinderella, Config};
use cinderella::datagen::{tpch_query_columns, TpchConfig, TpchGenerator};
use cinderella::model::Synopsis;
use cinderella::query::{execute, plan, Query};
use cinderella::storage::{SegmentId, UniversalTable};

mod common;

fn load(b: u64) -> (UniversalTable, Cinderella, TpchGenerator) {
    let gen = TpchGenerator::new(TpchConfig { scale: 0.002, seed: 3 });
    let mut table = UniversalTable::new(128);
    let (entities, _) = gen.generate(table.catalog_mut());
    let mut cindy = Cinderella::new(Config {
        weight: 0.5,
        capacity: Capacity::MaxEntities(b),
        ..Config::default()
    });
    for e in entities {
        cindy.insert(&mut table, e).expect("insert");
    }
    common::assert_fully_valid(&cindy, &table);
    (table, cindy, gen)
}

#[test]
fn every_partition_is_exactly_one_relation() {
    for b in [500u64, 2_000, 10_000] {
        let (table, cindy, gen) = load(b);
        let relation_synopses: Vec<Synopsis> = gen
            .schema()
            .iter()
            .map(|r| r.synopsis(table.catalog()))
            .collect();
        for meta in cindy.catalog().iter() {
            assert!(
                relation_synopses.contains(&meta.attr_synopsis),
                "B={b}: partition {} mixes relations",
                meta.segment
            );
            // Regular data ⇒ perfectly dense partitions.
            assert_eq!(meta.sparseness(), 0.0, "B={b}: {}", meta.segment);
        }
    }
}

#[test]
fn tpch_queries_agree_with_native_schema() {
    let (cindy_table, cindy, gen) = load(2_000);

    // Native schema: one segment per relation.
    let mut native_table = UniversalTable::new(128);
    let (entities, origin) = gen.generate(native_table.catalog_mut());
    let segs: Vec<SegmentId> = gen
        .schema()
        .iter()
        .map(|_| native_table.create_segment())
        .collect();
    for (e, rel) in entities.iter().zip(&origin) {
        native_table.insert(segs[*rel], e).expect("native insert");
    }
    let native_view: Vec<(SegmentId, Synopsis)> = gen
        .schema()
        .iter()
        .zip(&segs)
        .map(|(rel, seg)| (*seg, rel.synopsis(native_table.catalog())))
        .collect();
    let cindy_view: Vec<(SegmentId, Synopsis)> = cindy
        .catalog()
        .pruning_view()
        .map(|(s, syn, _)| (s, syn.clone()))
        .collect();

    let mut cindy_pages = 0u64;
    let mut native_pages = 0u64;
    for (name, cols) in tpch_query_columns() {
        let q = Query::from_names(cindy_table.catalog(), cols.iter().copied())
            .expect("columns interned");
        let cp = plan(&q, cindy_view.iter().map(|(s, syn)| (*s, syn)));
        let np = plan(&q, native_view.iter().map(|(s, syn)| (*s, syn)));
        let cr = execute(&cindy_table, &q, &cp).expect("cinderella run");
        let nr = execute(&native_table, &q, &np).expect("native run");
        assert_eq!(cr.rows, nr.rows, "{name}");
        assert_eq!(cr.cells, nr.cells, "{name}");
        cindy_pages += cr.io.logical_reads;
        native_pages += nr.io.logical_reads;
    }
    // Table I: the overhead of the discovered partitioning is small. In
    // page terms it comes only from per-partition page fragmentation, so
    // it is bounded by a modest factor.
    assert!(
        (cindy_pages as f64) < native_pages as f64 * 1.25,
        "cinderella read {cindy_pages} pages vs native {native_pages}"
    );
}

#[test]
fn pruning_hits_only_referenced_relations() {
    let (table, cindy, gen) = load(2_000);
    // The Q1 column set references only lineitem; every scanned partition
    // must be a lineitem partition.
    let lineitem = gen.schema()[7].synopsis(table.catalog());
    let q = Query::from_names(
        table.catalog(),
        tpch_query_columns()[0].1.iter().copied(),
    )
    .expect("Q1 columns");
    let view: Vec<(SegmentId, Synopsis)> = cindy
        .catalog()
        .pruning_view()
        .map(|(s, syn, _)| (s, syn.clone()))
        .collect();
    let p = plan(&q, view.iter().map(|(s, syn)| (*s, syn)));
    assert!(!p.segments.is_empty());
    for seg in &p.segments {
        let meta = cindy.catalog().get(*seg).expect("cataloged");
        assert_eq!(meta.attr_synopsis, lineitem, "{seg} is not a lineitem partition");
    }
}
