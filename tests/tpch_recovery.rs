//! Table I correctness: Cinderella on perfectly regular data must
//! rediscover the schema and add only bounded scan overhead.

use cinderella::core::{Capacity, Cinderella, Config};
use cinderella::datagen::{tpch_query_columns, TpchConfig, TpchGenerator};
use cinderella::model::Synopsis;
use cinderella::query::{execute, plan, Query};
use cinderella::storage::{SegmentId, UniversalTable};

mod common;

fn load(b: u64) -> (UniversalTable, Cinderella, TpchGenerator) {
    let gen = TpchGenerator::new(TpchConfig { scale: 0.002, seed: 3 });
    let mut table = UniversalTable::new(128);
    let (entities, _) = gen.generate(table.catalog_mut());
    let mut cindy = Cinderella::new(Config {
        weight: 0.5,
        capacity: Capacity::MaxEntities(b),
        ..Config::default()
    });
    for e in entities {
        cindy.insert(&mut table, e).expect("insert");
    }
    common::assert_fully_valid(&cindy, &table);
    (table, cindy, gen)
}

#[test]
fn every_partition_is_exactly_one_relation() {
    for b in [500u64, 2_000, 10_000] {
        let (table, cindy, gen) = load(b);
        let relation_synopses: Vec<Synopsis> = gen
            .schema()
            .iter()
            .map(|r| r.synopsis(table.catalog()))
            .collect();
        for meta in cindy.catalog().iter() {
            assert!(
                relation_synopses.contains(&meta.attr_synopsis),
                "B={b}: partition {} mixes relations",
                meta.segment
            );
            // Regular data ⇒ perfectly dense partitions.
            assert_eq!(meta.sparseness(), 0.0, "B={b}: {}", meta.segment);
        }
    }
}

#[test]
fn tpch_queries_agree_with_native_schema() {
    let (cindy_table, cindy, gen) = load(2_000);

    // Native schema: one segment per relation.
    let mut native_table = UniversalTable::new(128);
    let (entities, origin) = gen.generate(native_table.catalog_mut());
    let segs: Vec<SegmentId> = gen
        .schema()
        .iter()
        .map(|_| native_table.create_segment())
        .collect();
    for (e, rel) in entities.iter().zip(&origin) {
        native_table.insert(segs[*rel], e).expect("native insert");
    }
    let native_view: Vec<(SegmentId, Synopsis)> = gen
        .schema()
        .iter()
        .zip(&segs)
        .map(|(rel, seg)| (*seg, rel.synopsis(native_table.catalog())))
        .collect();
    let cindy_view: Vec<(SegmentId, Synopsis)> = cindy
        .catalog()
        .pruning_view()
        .map(|(s, syn, _)| (s, syn.clone()))
        .collect();

    let mut cindy_pages = 0u64;
    let mut native_pages = 0u64;
    for (name, cols) in tpch_query_columns() {
        let q = Query::from_names(cindy_table.catalog(), cols.iter().copied())
            .expect("columns interned");
        let cp = plan(&q, cindy_view.iter().map(|(s, syn)| (*s, syn)));
        let np = plan(&q, native_view.iter().map(|(s, syn)| (*s, syn)));
        let cr = execute(&cindy_table, &q, &cp).expect("cinderella run");
        let nr = execute(&native_table, &q, &np).expect("native run");
        assert_eq!(cr.rows, nr.rows, "{name}");
        assert_eq!(cr.cells, nr.cells, "{name}");
        cindy_pages += cr.io.logical_reads;
        native_pages += nr.io.logical_reads;
    }
    // Table I: the overhead of the discovered partitioning is small. In
    // page terms it comes only from per-partition page fragmentation, so
    // it is bounded by a modest factor.
    assert!(
        (cindy_pages as f64) < native_pages as f64 * 1.25,
        "cinderella read {cindy_pages} pages vs native {native_pages}"
    );
}

#[test]
fn pruning_hits_only_referenced_relations() {
    let (table, cindy, gen) = load(2_000);
    // The Q1 column set references only lineitem; every scanned partition
    // must be a lineitem partition.
    let lineitem = gen.schema()[7].synopsis(table.catalog());
    let q = Query::from_names(
        table.catalog(),
        tpch_query_columns()[0].1.iter().copied(),
    )
    .expect("Q1 columns");
    let view: Vec<(SegmentId, Synopsis)> = cindy
        .catalog()
        .pruning_view()
        .map(|(s, syn, _)| (s, syn.clone()))
        .collect();
    let p = plan(&q, view.iter().map(|(s, syn)| (*s, syn)));
    assert!(!p.segments.is_empty());
    for seg in &p.segments {
        let meta = cindy.catalog().get(*seg).expect("cataloged");
        assert_eq!(meta.attr_synopsis, lineitem, "{seg} is not a lineitem partition");
    }
}

/// Kill-mid-load crash recovery: a server is crash-stopped (the
/// SIGKILL-equivalent `hard_kill`, which skips the drain, the WAL flush,
/// and the final checkpoint) in the middle of a concurrent mixed
/// workload. Reopening the store must replay the WAL suffix over the last
/// snapshot, every *acknowledged* write must be present, the rebuilt
/// partitioner must pass the full structural validation, and a fresh
/// snapshot of the recovered store must satisfy `cind check`.
#[test]
fn kill_mid_load_recovers_from_wal() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    use cinderella::model::AttributeCatalog;
    use cinderella::server::{
        shard_dir_name, Client, EngineOptions, ServeConfig, Server, ServerError,
        ShardedEngine, ShardedOptions, WireEntity,
    };

    let dir = std::env::temp_dir().join("cind_kill_mid_load");
    let _ = std::fs::remove_dir_all(&dir);

    // Wire-ready TPC-H entities (names, not ids — the server interns).
    let mut catalog = AttributeCatalog::new();
    let (entities, _) =
        TpchGenerator::new(TpchConfig { scale: 0.002, seed: 11 }).generate(&mut catalog);
    let wire: Vec<WireEntity> = entities
        .iter()
        .map(|e| WireEntity {
            id: e.id().0,
            attrs: e
                .attrs()
                .iter()
                .map(|(a, v)| (catalog.name(*a).expect("interned").to_string(), v.clone()))
                .collect(),
        })
        .collect();

    // Two shards: the crash must be recoverable per crash domain.
    let opts = ShardedOptions::new(EngineOptions::default(), 2);
    let engine = Arc::new(ShardedEngine::open(&dir, opts.clone()).expect("open store"));
    let handle = Server::start(
        Arc::clone(&engine),
        &ServeConfig { workers: 3, queue_depth: 16, shards: 2, ..ServeConfig::default() },
    )
    .expect("server start");
    let addr = format!("127.0.0.1:{}", handle.port());

    let acked = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    const CONNS: usize = 4;
    let mut chunks: Vec<Vec<WireEntity>> = (0..CONNS).map(|_| Vec::new()).collect();
    for (i, e) in wire.into_iter().enumerate() {
        chunks[i % CONNS].push(e);
    }
    let threads: Vec<_> = chunks
        .into_iter()
        .map(|chunk| {
            let addr = addr.clone();
            let acked = Arc::clone(&acked);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let Ok(mut client) = Client::connect(addr) else { return };
                let _ = client.set_timeout(Some(Duration::from_secs(5)));
                for (i, e) in chunk.into_iter().enumerate() {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    match client.insert(e) {
                        Ok(_) => {
                            acked.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(ServerError::Busy) => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        // Crash mid-load: the connection dies under us.
                        Err(_) => return,
                    }
                    // A query every 8 ops keeps readers in the mix.
                    if i % 8 == 7 && client.query(["l_shipdate"]).is_err() {
                        return;
                    }
                }
            })
        })
        .collect();

    // Let the mixed workload run, then pull the plug mid-flight.
    while acked.load(Ordering::SeqCst) < 200 {
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.hard_kill();
    stop.store(true, Ordering::SeqCst);
    for t in threads {
        let _ = t.join();
    }
    let acked = acked.load(Ordering::SeqCst);
    drop(engine); // release the WAL file handle before reopening

    // Recovery: per-shard snapshot + WAL-suffix replay + rebuild.
    let reopened = ShardedEngine::open(&dir, opts).expect("recover store");
    let stats = reopened.stats();
    assert!(
        stats.entities >= acked,
        "lost acknowledged writes: {} recovered < {acked} acked",
        stats.entities
    );
    assert!(
        reopened.validate().expect("validate").is_empty(),
        "recovered store fails structural validation"
    );

    // Recovery checkpointed each shard; every shard's snapshot must pass
    // the CLI's offline integrity check too.
    let shards = reopened.shard_count();
    drop(reopened);
    for i in 0..shards {
        let snap = dir.join(shard_dir_name(i)).join("store.cind");
        let report = cind_cli::check(&snap, 1024).expect("cind check");
        assert!(report.starts_with("ok:"), "shard {i}: unexpected check report: {report}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
