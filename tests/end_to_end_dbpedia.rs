//! End-to-end: DBpedia-like load through Cinderella vs the universal
//! table — correctness and the paper's headline claims.

use cinderella::baselines::{Partitioner, Unpartitioned};
use cinderella::core::{efficiency_of, Capacity, Cinderella, Config};
use cinderella::datagen::{DbpediaConfig, DbpediaGenerator, WorkloadBuilder};
use cinderella::model::Synopsis;
use cinderella::query::{execute, plan, Query};
use cinderella::storage::UniversalTable;

mod common;

const ENTITIES: usize = 8_000;

fn dataset(table: &mut UniversalTable) -> Vec<cinderella::model::Entity> {
    DbpediaGenerator::new(DbpediaConfig {
        entities: ENTITIES,
        ..DbpediaConfig::default()
    })
    .generate(table.catalog_mut())
}

fn load_cinderella(b: u64, w: f64) -> (UniversalTable, Cinderella) {
    let mut table = UniversalTable::new(128);
    let entities = dataset(&mut table);
    let mut cindy = Cinderella::new(Config {
        weight: w,
        capacity: Capacity::MaxEntities(b),
        ..Config::default()
    });
    for e in entities {
        cindy.insert(&mut table, e).expect("insert");
    }
    common::assert_fully_valid(&cindy, &table);
    (table, cindy)
}

#[test]
fn all_entities_survive_the_load() {
    let (table, cindy) = load_cinderella(500, 0.5);
    assert_eq!(table.entity_count(), ENTITIES);
    let catalog_total: u64 = cindy.catalog().iter().map(|m| m.entities).sum();
    assert_eq!(catalog_total as usize, ENTITIES);
    // Segment record counts agree with the catalog, partition by partition.
    for meta in cindy.catalog().iter() {
        let seg = table.segment(meta.segment).expect("live segment");
        assert_eq!(seg.record_count() as u64, meta.entities);
    }
}

#[test]
fn partition_synopses_are_exactly_the_or_of_members() {
    let (table, cindy) = load_cinderella(500, 0.5);
    let universe = table.universe();
    for meta in cindy.catalog().iter() {
        let mut expected = Synopsis::empty(universe);
        let mut cells = 0u64;
        table
            .scan(meta.segment, |e| {
                expected.merge(&e.synopsis(universe));
                cells += e.arity() as u64;
            })
            .expect("scan");
        assert_eq!(meta.attr_synopsis, expected, "synopsis drift in {}", meta.segment);
        assert_eq!(meta.size, cells, "size drift in {}", meta.segment);
    }
}

#[test]
fn capacity_limit_is_respected() {
    for b in [100u64, 500] {
        let (_, cindy) = load_cinderella(b, 0.5);
        for meta in cindy.catalog().iter() {
            assert!(
                meta.entities <= b,
                "partition {} holds {} > B = {b}",
                meta.segment,
                meta.entities
            );
        }
    }
}

#[test]
fn queries_agree_with_universal_and_prune_pages() {
    let (cindy_table, cindy) = load_cinderella(500, 0.5);
    let mut uni_table = UniversalTable::new(128);
    let entities = dataset(&mut uni_table);
    let specs = {
        let all = WorkloadBuilder::default().build(uni_table.universe(), &entities);
        WorkloadBuilder::representatives(&all, &WorkloadBuilder::default_edges(), 3)
    };
    let mut universal = Unpartitioned::new();
    universal.load(&mut uni_table, entities).expect("load");

    let cindy_view = Partitioner::pruning_view(&cindy);
    let uni_view = universal.pruning_view();
    let mut selective_cindy = 0u64;
    let mut selective_uni = 0u64;
    for spec in &specs {
        let q = Query::from_attrs(cindy_table.universe(), spec.attrs.iter().copied());
        let cp = plan(&q, cindy_view.iter().map(|(s, syn, _)| (*s, syn)));
        let up = plan(&q, uni_view.iter().map(|(s, syn, _)| (*s, syn)));
        let cr = execute(&cindy_table, &q, &cp).expect("run");
        let ur = execute(&uni_table, &q, &up).expect("run");
        assert_eq!(cr.rows, ur.rows, "{}", spec.label);
        assert_eq!(cr.cells, ur.cells, "{}", spec.label);
        if spec.selectivity < 0.1 {
            selective_cindy += cr.io.logical_reads;
            selective_uni += ur.io.logical_reads;
        }
    }
    assert!(
        selective_cindy < selective_uni,
        "selective queries must read fewer pages ({selective_cindy} vs {selective_uni})"
    );
}

#[test]
fn efficiency_beats_the_universal_table() {
    let (table, cindy) = load_cinderella(500, 0.2);
    let mut probe = UniversalTable::new(128);
    let entities = dataset(&mut probe);
    let universe = table.universe();
    let specs = {
        let all = WorkloadBuilder::default().build(universe, &entities);
        WorkloadBuilder::representatives(&all, &WorkloadBuilder::default_edges(), 3)
    };
    let queries: Vec<Synopsis> = specs
        .iter()
        .map(|s| Synopsis::from_attrs(universe, s.attrs.iter().copied()))
        .collect();
    let entity_syns: Vec<(Synopsis, u64)> = entities
        .iter()
        .map(|e| (e.synopsis(universe), e.arity() as u64))
        .collect();

    let eff = |view: Vec<(cinderella::storage::SegmentId, Synopsis, u64)>| {
        let parts: Vec<(Synopsis, u64)> =
            view.into_iter().map(|(_, syn, size)| (syn, size)).collect();
        efficiency_of(entity_syns.iter().cloned(), &parts, &queries)
    };
    let cindy_eff = eff(Partitioner::pruning_view(&cindy));
    // The universal table's efficiency: one partition with all cells.
    let total_cells: u64 = entity_syns.iter().map(|(_, c)| c).sum();
    let mut full = Synopsis::empty(universe);
    for (syn, _) in &entity_syns {
        full.merge(syn);
    }
    let uni_eff = eff(vec![(
        cinderella::storage::SegmentId(0),
        full,
        total_cells,
    )]);
    assert!(cindy_eff > uni_eff, "{cindy_eff} must beat {uni_eff}");
    assert!(cindy_eff > 0.0 && cindy_eff <= 1.0);
}

#[test]
fn smaller_b_gives_more_homogeneous_partitions() {
    let (_, small) = load_cinderella(200, 0.5);
    let (_, large) = load_cinderella(5_000, 0.5);
    assert!(small.catalog().len() > large.catalog().len());
    let mean_sparseness = |c: &Cinderella| {
        let v: Vec<f64> = c.catalog().iter().map(|m| m.sparseness()).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    assert!(
        mean_sparseness(&small) < mean_sparseness(&large),
        "smaller B must yield denser partitions"
    );
}
