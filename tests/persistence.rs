//! Full durability cycle: partition online → snapshot → restore → rebuild
//! the partitioner → continue modifying and querying.

use cinderella::core::{Capacity, Cinderella, Config};
use cinderella::datagen::{DbpediaConfig, DbpediaGenerator, WorkloadBuilder};
use cinderella::model::{EntityId, Synopsis};
use cinderella::query::{execute, plan, Query};
use cinderella::storage::UniversalTable;

mod common;

const ENTITIES: usize = 5_000;

fn config() -> Config {
    Config {
        weight: 0.3,
        capacity: Capacity::MaxEntities(400),
        ..Config::default()
    }
}

fn loaded() -> (UniversalTable, Cinderella, Vec<cinderella::model::Entity>) {
    let gen = DbpediaGenerator::new(DbpediaConfig {
        entities: ENTITIES,
        ..DbpediaConfig::default()
    });
    let mut table = UniversalTable::new(128);
    let entities = gen.generate(table.catalog_mut());
    let mut cindy = Cinderella::new(config());
    for e in entities.clone() {
        cindy.insert(&mut table, e).expect("insert");
    }
    (table, cindy, entities)
}

#[test]
fn snapshot_restore_rebuild_preserves_everything() {
    let (table, cindy, entities) = loaded();

    let mut snapshot = Vec::new();
    table.snapshot(&mut snapshot).expect("snapshot");
    let restored = UniversalTable::restore(&mut &snapshot[..], 128).expect("restore");
    let rebuilt = Cinderella::rebuild(&restored, config()).expect("rebuild");

    // Same partitions, same synopses, same sizes.
    assert_eq!(rebuilt.catalog().len(), cindy.catalog().len());
    for (a, b) in rebuilt.catalog().iter().zip(cindy.catalog().iter()) {
        assert_eq!(a.segment, b.segment);
        assert_eq!(a.attr_synopsis, b.attr_synopsis);
        assert_eq!(a.size, b.size);
        assert_eq!(a.entities, b.entities);
    }
    // Same data.
    assert_eq!(restored.entity_count(), ENTITIES);
    for e in &entities {
        assert_eq!(&restored.get(e.id()).expect("stored"), e);
    }
    common::assert_fully_valid(&cindy, &table);
    common::assert_fully_valid(&rebuilt, &restored);
}

#[test]
fn queries_agree_before_and_after_the_cycle() {
    let (table, cindy, entities) = loaded();
    let universe = table.universe();
    let specs = {
        let all = WorkloadBuilder::default().build(universe, &entities);
        WorkloadBuilder::representatives(&all, &WorkloadBuilder::default_edges(), 2)
    };

    let mut snapshot = Vec::new();
    table.snapshot(&mut snapshot).expect("snapshot");
    let restored = UniversalTable::restore(&mut &snapshot[..], 128).expect("restore");
    let rebuilt = Cinderella::rebuild(&restored, config()).expect("rebuild");

    for spec in &specs {
        let q = Query::from_attrs(universe, spec.attrs.iter().copied());
        let run = |t: &UniversalTable, c: &Cinderella| {
            let view: Vec<_> = c
                .catalog()
                .pruning_view()
                .map(|(s, syn, _)| (s, syn.clone()))
                .collect();
            let p = plan(&q, view.iter().map(|(s, syn)| (*s, syn)));
            execute(t, &q, &p).expect("run")
        };
        let before = run(&table, &cindy);
        let after = run(&restored, &rebuilt);
        assert_eq!(before.rows, after.rows, "{}", spec.label);
        assert_eq!(before.cells, after.cells, "{}", spec.label);
        assert_eq!(
            before.segments_pruned, after.segments_pruned,
            "{}: pruning must be identical",
            spec.label
        );
    }
}

#[test]
fn online_modifications_continue_after_rebuild() {
    let (table, _, _) = loaded();
    let mut snapshot = Vec::new();
    table.snapshot(&mut snapshot).expect("snapshot");
    let mut restored = UniversalTable::restore(&mut &snapshot[..], 128).expect("restore");
    let mut rebuilt = Cinderella::rebuild(&restored, config()).expect("rebuild");

    // Delete a slice, insert fresh entities with new ids, update one.
    for i in 0..200u64 {
        rebuilt.delete(&mut restored, EntityId(i)).expect("delete");
    }
    let gen = DbpediaGenerator::new(DbpediaConfig {
        entities: 100,
        seed: 4242,
        ..DbpediaConfig::default()
    });
    let mut probe = UniversalTable::new(16);
    for e in gen.generate(probe.catalog_mut()) {
        let e = cinderella::model::Entity::new(
            EntityId(1_000_000 + e.id().0),
            e.attrs().to_vec(),
        )
        .expect("valid");
        rebuilt.insert(&mut restored, e).expect("insert");
    }
    assert_eq!(restored.entity_count(), ENTITIES - 200 + 100);

    // Catalog still consistent with the table.
    let universe = restored.universe();
    for meta in rebuilt.catalog().iter() {
        let mut syn = Synopsis::empty(universe);
        let mut count = 0u64;
        restored
            .scan(meta.segment, |e| {
                syn.merge(&e.synopsis(universe));
                count += 1;
            })
            .expect("scan");
        assert_eq!(meta.attr_synopsis, syn);
        assert_eq!(meta.entities, count);
    }
    common::assert_fully_valid(&rebuilt, &restored);
}
