//! Integration tests for the §VII extensions: the merge pass and the
//! parallel bulk loader, exercised end to end on generated data.

use cinderella::core::{bulk_load, Capacity, Cinderella, Config};
use cinderella::datagen::{DbpediaConfig, DbpediaGenerator};
use cinderella::model::{EntityId, Synopsis};
use cinderella::storage::UniversalTable;

mod common;

const ENTITIES: usize = 6_000;

fn dataset(table: &mut UniversalTable) -> Vec<cinderella::model::Entity> {
    DbpediaGenerator::new(DbpediaConfig {
        entities: ENTITIES,
        ..DbpediaConfig::default()
    })
    .generate(table.catalog_mut())
}

fn config(b: u64) -> Config {
    Config {
        weight: 0.3,
        capacity: Capacity::MaxEntities(b),
        ..Config::default()
    }
}

/// Checks the catalog invariants against the physical table, then runs
/// the full structural validator on top.
fn assert_consistent(table: &UniversalTable, cindy: &Cinderella) {
    common::assert_fully_valid(cindy, table);
    let universe = table.universe();
    let total: u64 = cindy.catalog().iter().map(|m| m.entities).sum();
    assert_eq!(total as usize, table.entity_count());
    for meta in cindy.catalog().iter() {
        let mut syn = Synopsis::empty(universe);
        let mut cells = 0u64;
        let mut count = 0u64;
        table
            .scan(meta.segment, |e| {
                syn.merge(&e.synopsis(universe));
                cells += e.arity() as u64;
                count += 1;
            })
            .expect("scan");
        assert_eq!(meta.attr_synopsis, syn);
        assert_eq!(meta.size, cells);
        assert_eq!(meta.entities, count);
    }
}

#[test]
fn merge_pass_repairs_after_mass_deletes() {
    let mut table = UniversalTable::new(128);
    let entities = dataset(&mut table);
    let mut cindy = Cinderella::new(config(200));
    for e in entities {
        cindy.insert(&mut table, e).expect("insert");
    }
    let partitions_full = cindy.catalog().len();

    // Delete 90 % of the data: the partitioning fragments.
    for i in 0..ENTITIES as u64 {
        if i % 10 != 0 {
            cindy.delete(&mut table, EntityId(i)).expect("delete");
        }
    }
    assert_consistent(&table, &cindy);
    let partitions_fragmented = cindy.catalog().len();

    let report = cindy.merge_pass(&mut table, 0.5).expect("merge pass");
    assert!(report.merges > 0, "fragmented catalog must offer merges");
    assert!(cindy.catalog().len() < partitions_fragmented);
    assert_consistent(&table, &cindy);
    // Capacity still respected after merging.
    for m in cindy.catalog().iter() {
        assert!(m.entities <= 200);
    }
    // Sanity: we are not back to more partitions than the full load had.
    assert!(cindy.catalog().len() <= partitions_full);
}

#[test]
fn merge_pass_is_idempotent() {
    let mut table = UniversalTable::new(128);
    let entities = dataset(&mut table);
    let mut cindy = Cinderella::new(config(200));
    for e in entities {
        cindy.insert(&mut table, e).expect("insert");
    }
    for i in 0..ENTITIES as u64 {
        if i % 5 != 0 {
            cindy.delete(&mut table, EntityId(i)).expect("delete");
        }
    }
    cindy.merge_pass(&mut table, 0.5).expect("first pass");
    let after_first = cindy.catalog().len();
    let report = cindy.merge_pass(&mut table, 0.5).expect("second pass");
    assert_eq!(report.merges, 0, "second pass must find nothing (fixpoint)");
    assert_eq!(cindy.catalog().len(), after_first);
    common::assert_fully_valid(&cindy, &table);
}

#[test]
fn bulk_load_matches_sequential_quality() {
    // Sequential reference.
    let mut seq_table = UniversalTable::new(128);
    let entities = dataset(&mut seq_table);
    let mut seq = Cinderella::new(config(1_000));
    for e in entities {
        seq.insert(&mut seq_table, e).expect("insert");
    }

    // Parallel load of the same data.
    let mut par_table = UniversalTable::new(128);
    let entities = dataset(&mut par_table);
    let (par, report) =
        bulk_load(&mut par_table, config(1_000), entities, 4).expect("bulk load");
    assert_eq!(par_table.entity_count(), ENTITIES);
    assert_consistent(&par_table, &par);
    for m in par.catalog().iter() {
        assert!(m.entities <= 1_000);
    }
    // The stitched partitioning must be in the same ballpark as the
    // sequential one — within 4× on partition count (the loads see
    // different orders, identical quality is not expected; the stitch's
    // merge pass also folds underfull partitions the order-dependent
    // sequential load never revisits, so the parallel count runs lower).
    let (s, p) = (seq.catalog().len(), par.catalog().len());
    assert!(
        p <= s * 4 && s <= p * 4,
        "sequential {s} vs parallel {p} partitions (report {report:?})"
    );
}

#[test]
fn bulk_load_then_online_modifications() {
    // The stitched partitioner must keep working as a normal online
    // instance afterwards.
    let mut table = UniversalTable::new(128);
    let entities = dataset(&mut table);
    let (mut cindy, _) = bulk_load(&mut table, config(500), entities, 3).expect("bulk");
    // Online phase: delete some, insert new, update one.
    for i in 0..100u64 {
        cindy.delete(&mut table, EntityId(i)).expect("delete");
    }
    let mut probe = UniversalTable::new(16);
    let fresh = DbpediaGenerator::new(DbpediaConfig {
        entities: 50,
        seed: 999,
        ..DbpediaConfig::default()
    })
    .generate(probe.catalog_mut());
    for e in fresh {
        let e = cinderella::model::Entity::new(
            EntityId(1_000_000 + e.id().0),
            e.attrs().to_vec(),
        )
        .expect("valid");
        cindy.insert(&mut table, e).expect("insert");
    }
    assert_eq!(table.entity_count(), ENTITIES - 100 + 50);
    assert_consistent(&table, &cindy);
}
