//! Property tests over the partitioner's core invariants, driven by
//! arbitrary operation sequences.

use std::collections::HashMap;

use cinderella::core::{Capacity, Cinderella, Config};
use cinderella::model::{AttrId, Entity, EntityId, Synopsis, Value};
use cinderella::storage::UniversalTable;
use proptest::prelude::*;

mod common;

const UNIVERSE: u32 = 12;

#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<u32>),
    Update(usize, Vec<u32>),
    Delete(usize),
}

fn attrs() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..UNIVERSE, 1..6).prop_map(|s| s.into_iter().collect())
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => attrs().prop_map(Op::Insert),
            1 => (any::<usize>(), attrs()).prop_map(|(i, a)| Op::Update(i, a)),
            1 => any::<usize>().prop_map(Op::Delete),
        ],
        1..80,
    )
}

fn entity(id: u64, attrs: &[u32]) -> Entity {
    Entity::new(
        EntityId(id),
        attrs.iter().map(|&a| (AttrId(a), Value::Int(i64::from(a)))),
    )
    .expect("unique")
}

fn setup() -> (UniversalTable, Cinderella) {
    let mut table = UniversalTable::new(32);
    for i in 0..UNIVERSE {
        table.catalog_mut().intern(&format!("a{i}"));
    }
    let cindy = Cinderella::new(Config {
        weight: 0.3,
        capacity: Capacity::MaxEntities(5),
        ..Config::default()
    });
    (table, cindy)
}

fn check_invariants(
    table: &UniversalTable,
    cindy: &Cinderella,
    model: &HashMap<EntityId, Entity>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(table.entity_count(), model.len());
    let total: u64 = cindy.catalog().iter().map(|m| m.entities).sum();
    prop_assert_eq!(total as usize, model.len());
    let universe = table.universe();
    for meta in cindy.catalog().iter() {
        prop_assert!(meta.entities > 0, "no empty partitions");
        prop_assert!(meta.entities <= 5, "capacity respected");
        let mut syn = Synopsis::empty(universe);
        let mut cells = 0u64;
        table
            .scan(meta.segment, |e| {
                syn.merge(&e.synopsis(universe));
                cells += e.arity() as u64;
            })
            .expect("scan");
        prop_assert_eq!(&meta.attr_synopsis, &syn, "synopsis = OR of members");
        prop_assert_eq!(meta.size, cells, "size = sum of member sizes");
    }
    for (id, e) in model {
        prop_assert_eq!(&table.get(*id).expect("stored"), e);
    }
    common::assert_fully_valid(cindy, table);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After every operation of an arbitrary insert/update/delete sequence,
    /// the catalog invariants hold and the stored data equals the model.
    #[test]
    fn invariants_hold_under_arbitrary_sequences(ops in ops()) {
        let (mut table, mut cindy) = setup();
        let mut model: HashMap<EntityId, Entity> = HashMap::new();
        let mut next = 0u64;
        for op in ops {
            match op {
                Op::Insert(a) => {
                    let e = entity(next, &a);
                    next += 1;
                    model.insert(e.id(), e.clone());
                    cindy.insert(&mut table, e).expect("insert");
                }
                Op::Update(pick, a) => {
                    if model.is_empty() { continue; }
                    let id = *model.keys().nth(pick % model.len()).expect("non-empty");
                    let e = entity(id.0, &a);
                    model.insert(id, e.clone());
                    cindy.update(&mut table, e).expect("update");
                }
                Op::Delete(pick) => {
                    if model.is_empty() { continue; }
                    let id = *model.keys().nth(pick % model.len()).expect("non-empty");
                    model.remove(&id);
                    cindy.delete(&mut table, id).expect("delete");
                }
            }
            check_invariants(&table, &cindy, &model)?;
        }
    }

    /// With w = 0 every partition is perfectly homogeneous: all members
    /// share exactly the partition synopsis (sparseness 0).
    #[test]
    fn weight_zero_partitions_are_homogeneous(shapes in prop::collection::vec(attrs(), 1..40)) {
        let mut table = UniversalTable::new(32);
        for i in 0..UNIVERSE {
            table.catalog_mut().intern(&format!("a{i}"));
        }
        let mut cindy = Cinderella::new(Config {
            weight: 0.0,
            capacity: Capacity::MaxEntities(1000),
            ..Config::default()
        });
        for (i, shape) in shapes.iter().enumerate() {
            cindy.insert(&mut table, entity(i as u64, shape)).expect("insert");
        }
        let distinct: std::collections::HashSet<Vec<u32>> =
            shapes.iter().cloned().collect();
        prop_assert_eq!(cindy.catalog().len(), distinct.len(),
            "one partition per distinct shape");
        for meta in cindy.catalog().iter() {
            prop_assert_eq!(meta.sparseness(), 0.0);
        }
        common::assert_fully_valid(&cindy, &table);
    }

    /// The efficiency metric stays in (0, 1] for any partitioning Cinderella
    /// produces and any non-empty workload that matches something.
    #[test]
    fn efficiency_is_a_fraction(shapes in prop::collection::vec(attrs(), 1..40), qattr in 0..UNIVERSE) {
        let (mut table, mut cindy) = setup();
        for (i, shape) in shapes.iter().enumerate() {
            cindy.insert(&mut table, entity(i as u64, shape)).expect("insert");
        }
        let q = Synopsis::from_bits(UNIVERSE as usize, [qattr]);
        let eff = cinderella::core::efficiency(&table, &cindy, std::slice::from_ref(&q));
        prop_assert!(eff > 0.0 && eff <= 1.0, "efficiency {eff} out of range");
    }

    /// Loading the same entities in any order preserves the entity set and
    /// the capacity bound (the partitioning itself is order-dependent by
    /// design — it is an online algorithm).
    #[test]
    fn any_insertion_order_is_safe(shapes in prop::collection::vec(attrs(), 2..30), seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut order: Vec<usize> = (0..shapes.len()).collect();
        order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let (mut table, mut cindy) = setup();
        for &i in &order {
            cindy.insert(&mut table, entity(i as u64, &shapes[i])).expect("insert");
        }
        prop_assert_eq!(table.entity_count(), shapes.len());
        for meta in cindy.catalog().iter() {
            prop_assert!(meta.entities <= 5);
        }
        for (i, shape) in shapes.iter().enumerate() {
            prop_assert_eq!(&table.get(EntityId(i as u64)).expect("stored"), &entity(i as u64, shape));
        }
        common::assert_fully_valid(&cindy, &table);
    }
}
