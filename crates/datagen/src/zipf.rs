//! Zipf-distributed sampling.

use rand::Rng;

/// A Zipf sampler over ranks `0..n` with exponent `s`:
/// `P(rank k) ∝ 1 / (k+1)^s`.
///
/// Uses a precomputed CDF and binary search — O(n) setup, O(log n) per
/// sample — which is plenty for the generator workloads here (n ≤ a few
/// hundred).
///
/// ```
/// use cind_datagen::Zipf;
/// use rand::SeedableRng;
///
/// let z = Zipf::new(10, 1.0);
/// assert!(z.pmf(0) > z.pmf(9), "head ranks are likelier");
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// assert!(z.sample(&mut rng) < 10);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite and ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n > 0");
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (construction requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        let hi = self.cdf[k];
        let lo = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        hi - lo
    }

    /// Samples a rank.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one_and_decays() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1));
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_matches_pmf_roughly() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 20];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let observed = f64::from(count) / f64::from(n);
            let expected = z.pmf(k);
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {k}: observed {observed:.4} vs expected {expected:.4}"
            );
        }
    }

    #[test]
    fn sample_is_always_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }
}
