//! Synthetic query workload (§V-B construction).
//!
//! The paper: "We created multiple sets of attributes. Each of the
//! individual attributes forms an attribute set. Additionally, we combined
//! the 20 most frequent attributes to pairs and triples. […] We collected
//! representative queries to reasonably cover the range of possible
//! selectivities; three representative queries for each selectivity."
//!
//! [`WorkloadBuilder::build`] generates the full candidate set with exact
//! selectivities (inclusion–exclusion over one pass of co-occurrence
//! counting); [`WorkloadBuilder::representatives`] picks the binned
//! representatives the figures average over.
//!
//! # Drift scenarios
//!
//! The static construction above freezes the workload; the reorganizer
//! (DESIGN.md §15) is evaluated against workloads that *move*.
//! [`DriftScenario`] generates a seeded, deterministic operation stream —
//! inserts, deletes, and queries over a grouped attribute universe — in
//! four shapes ([`DriftMode`]):
//!
//! * `steady` — uniform focus throughout (control: a reorganizer should
//!   find little to do);
//! * `drift` — the query focus rotates across attribute groups phase by
//!   phase, so partitions laid out for the old focus go stale;
//! * `flash-crowd` — a mid-run burst hammers one hot attribute pair;
//! * `churn` — Zipf-skewed inserts plus deletes of live entities hollow
//!   out partitions, leaving cold fragments to merge.

use std::fmt;
use std::str::FromStr;

use cind_model::{AttrId, AttributeCatalog, Entity, EntityId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// One candidate query: an attribute set plus its exact selectivity against
/// the generated data.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// The queried attributes.
    pub attrs: Vec<AttrId>,
    /// Fraction of entities instantiating at least one of them.
    pub selectivity: f64,
    /// Human-readable label, e.g. `single(a3)` or `pair(a0,a5)`.
    pub label: String,
}

/// Builds the paper's synthetic workload.
#[derive(Clone, Debug)]
pub struct WorkloadBuilder {
    /// How many of the most frequent attributes to combine (paper: 20).
    pub top_k: usize,
}

impl Default for WorkloadBuilder {
    fn default() -> Self {
        Self { top_k: 20 }
    }
}

impl WorkloadBuilder {
    /// Generates all candidate queries: one singleton per attribute that
    /// occurs at all, plus pairs and triples of the `top_k` most frequent
    /// attributes, each with exact selectivity.
    pub fn build(&self, universe: usize, entities: &[Entity]) -> Vec<QuerySpec> {
        let n = entities.len().max(1) as f64;
        // Pass 1: attribute frequencies.
        let mut freq = vec![0u64; universe];
        for e in entities {
            for (a, _) in e.attrs() {
                freq[a.0 as usize] += 1;
            }
        }
        // Top-k attributes by frequency (stable: ties by id).
        let mut ranked: Vec<u32> = (0..universe as u32).collect();
        ranked.sort_by_key(|&a| (std::cmp::Reverse(freq[a as usize]), a));
        let top: Vec<u32> = ranked
            .iter()
            .copied()
            .take(self.top_k)
            .filter(|&a| freq[a as usize] > 0)
            .collect();
        let k = top.len();
        let rank_of = {
            let mut m = vec![usize::MAX; universe];
            for (r, &a) in top.iter().enumerate() {
                m[a as usize] = r;
            }
            m
        };
        // Pass 2: pair and triple co-occurrence among the top-k.
        let mut pair = vec![0u64; k * k];
        let mut triple = std::collections::HashMap::<(usize, usize, usize), u64>::new();
        for e in entities {
            let present: Vec<usize> = e
                .attrs()
                .iter()
                .filter_map(|(a, _)| {
                    let r = rank_of[a.0 as usize];
                    (r != usize::MAX).then_some(r)
                })
                .collect();
            for (i, &a) in present.iter().enumerate() {
                for &b in &present[i + 1..] {
                    let (lo, hi) = (a.min(b), a.max(b));
                    pair[lo * k + hi] += 1;
                }
            }
            for (i, &a) in present.iter().enumerate() {
                for (j, &b) in present.iter().enumerate().skip(i + 1) {
                    for &c in &present[j + 1..] {
                        let mut t = [a, b, c];
                        t.sort_unstable();
                        *triple.entry((t[0], t[1], t[2])).or_default() += 1;
                    }
                }
            }
        }

        let mut specs = Vec::new();
        // Singletons over every attribute that occurs.
        for a in 0..universe as u32 {
            if freq[a as usize] > 0 {
                specs.push(QuerySpec {
                    attrs: vec![AttrId(a)],
                    selectivity: freq[a as usize] as f64 / n,
                    label: format!("single(a{a})"),
                });
            }
        }
        // Pairs of top-k: |A ∪ B| = f_A + f_B − f_AB.
        for i in 0..k {
            for j in (i + 1)..k {
                let (a, b) = (top[i], top[j]);
                let union = freq[a as usize] + freq[b as usize] - pair[i * k + j];
                specs.push(QuerySpec {
                    attrs: vec![AttrId(a), AttrId(b)],
                    selectivity: union as f64 / n,
                    label: format!("pair(a{a},a{b})"),
                });
            }
        }
        // Triples of top-k, by inclusion–exclusion.
        for i in 0..k {
            for j in (i + 1)..k {
                for l in (j + 1)..k {
                    let (a, b, c) = (top[i], top[j], top[l]);
                    let f3 = triple.get(&(i, j, l)).copied().unwrap_or(0);
                    let union = freq[a as usize] + freq[b as usize] + freq[c as usize]
                        - pair[i * k + j]
                        - pair[i * k + l]
                        - pair[j * k + l]
                        + f3;
                    specs.push(QuerySpec {
                        attrs: vec![AttrId(a), AttrId(b), AttrId(c)],
                        selectivity: union as f64 / n,
                        label: format!("triple(a{a},a{b},a{c})"),
                    });
                }
            }
        }
        specs
    }

    /// Picks up to `per_bin` representatives per selectivity bin. `edges`
    /// are ascending upper bin boundaries; a spec falls in the first bin
    /// whose edge is ≥ its selectivity. Returns the picks sorted by
    /// selectivity.
    pub fn representatives(
        specs: &[QuerySpec],
        edges: &[f64],
        per_bin: usize,
    ) -> Vec<QuerySpec> {
        let mut sorted: Vec<&QuerySpec> = specs.iter().collect();
        sorted.sort_by(|a, b| a.selectivity.total_cmp(&b.selectivity));
        let mut out: Vec<QuerySpec> = Vec::new();
        let mut cursor = 0usize;
        let mut lower = 0.0f64;
        for &edge in edges {
            let mut taken = 0;
            // Specs are sorted; take the first `per_bin` in (lower, edge].
            while cursor < sorted.len() && sorted[cursor].selectivity <= edge {
                if sorted[cursor].selectivity > lower && taken < per_bin {
                    out.push(sorted[cursor].clone());
                    taken += 1;
                }
                cursor += 1;
            }
            lower = edge;
        }
        out
    }

    /// The selectivity bin edges the harnesses use (log-spaced over the
    /// range Figs. 5–6 cover).
    pub fn default_edges() -> Vec<f64> {
        vec![0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0]
    }
}

/// Which drift scenario shapes a generated operation stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DriftMode {
    /// Uniform focus throughout — the control scenario.
    #[default]
    Steady,
    /// Query focus rotates across attribute groups phase by phase.
    Drift,
    /// A mid-run burst concentrates queries on one hot attribute pair.
    FlashCrowd,
    /// Zipf-skewed inserts plus deletes of live entities (population churn).
    Churn,
}

impl FromStr for DriftMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "steady" => Ok(Self::Steady),
            "drift" => Ok(Self::Drift),
            "flash-crowd" | "flashcrowd" => Ok(Self::FlashCrowd),
            "churn" => Ok(Self::Churn),
            other => Err(format!(
                "unknown drift mode '{other}' (expected steady|drift|flash-crowd|churn)"
            )),
        }
    }
}

impl fmt::Display for DriftMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Steady => "steady",
            Self::Drift => "drift",
            Self::FlashCrowd => "flash-crowd",
            Self::Churn => "churn",
        })
    }
}

/// One operation of a drift scenario stream.
#[derive(Clone, Debug, PartialEq)]
pub enum DriftOp {
    /// Insert a fresh entity.
    Insert(Entity),
    /// Delete a previously inserted (and still live) entity.
    Delete(EntityId),
    /// Run a conjunctive query over the given attributes.
    Query(Vec<AttrId>),
}

/// Knobs for [`DriftScenario`]. Everything is derived from the seed;
/// two generators with equal configs emit identical streams.
#[derive(Clone, Debug)]
pub struct DriftConfig {
    /// Scenario shape.
    pub mode: DriftMode,
    /// Total operations to emit (inserts + deletes + queries).
    pub ops: usize,
    /// Attribute groups; each entity draws its attributes from one group.
    pub groups: usize,
    /// Attributes per group.
    pub group_width: usize,
    /// Approximate fraction of operations that are queries.
    pub query_share: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            mode: DriftMode::Steady,
            ops: 2_000,
            groups: 8,
            group_width: 8,
            query_share: 0.35,
            seed: 0xD21F7,
        }
    }
}

/// Number of phases a stream is divided into; `drift` rotates its query
/// focus once per phase, `flash-crowd` burns during the middle two.
const DRIFT_PHASES: usize = 4;

/// Generates drift scenario streams. Construct once, then
/// [`generate`](DriftScenario::generate).
#[derive(Clone, Debug)]
pub struct DriftScenario {
    cfg: DriftConfig,
}

impl DriftScenario {
    /// Builds a scenario generator, clamping degenerate knobs (at least
    /// two groups of two attributes, `query_share` into `[0, 0.9]`).
    #[must_use]
    pub fn new(cfg: DriftConfig) -> Self {
        let query_share = if cfg.query_share.is_finite() {
            cfg.query_share.clamp(0.0, 0.9)
        } else {
            0.35
        };
        Self {
            cfg: DriftConfig {
                groups: cfg.groups.max(2),
                group_width: cfg.group_width.max(2),
                query_share,
                ..cfg
            },
        }
    }

    /// The (clamped) configuration.
    #[must_use]
    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }

    /// Interns the grouped attribute names (`g{group}_a{slot}`) into
    /// `catalog` and returns them as `ids[group][slot]`.
    pub fn intern_attributes(&self, catalog: &mut AttributeCatalog) -> Vec<Vec<AttrId>> {
        (0..self.cfg.groups)
            .map(|g| {
                (0..self.cfg.group_width)
                    .map(|j| catalog.intern(&format!("g{g}_a{j}")))
                    .collect()
            })
            .collect()
    }

    /// Emits the full operation stream. Entity ids are sequential from
    /// `first_id`; every `Delete` targets an id inserted earlier in the
    /// same stream and not yet deleted, so replaying the stream in order
    /// against an empty store never references a missing entity.
    pub fn generate(&self, catalog: &mut AttributeCatalog, first_id: u64) -> Vec<DriftOp> {
        let ids = self.intern_attributes(catalog);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let group_pick = match self.cfg.mode {
            // Churn skews the insert population toward head groups.
            DriftMode::Churn => Zipf::new(self.cfg.groups, 1.1),
            _ => Zipf::new(self.cfg.groups, 0.0),
        };
        // Churn deletes prefer the oldest live entities (rank 0 = oldest),
        // hollowing out the partitions built earliest.
        let delete_pick = Zipf::new(CHURN_DELETE_WINDOW, 0.8);

        let mut out = Vec::with_capacity(self.cfg.ops);
        let mut live: Vec<EntityId> = Vec::new();
        let mut next_id = first_id;
        for i in 0..self.cfg.ops {
            let phase = (i * DRIFT_PHASES) / self.cfg.ops.max(1);
            if !live.is_empty() && rng.gen::<f64>() < self.cfg.query_share {
                out.push(DriftOp::Query(self.pick_query(&ids, phase, &mut rng)));
                continue;
            }
            let wants_delete = self.cfg.mode == DriftMode::Churn
                && live.len() > CHURN_DELETE_WINDOW
                && rng.gen::<f64>() < CHURN_DELETE_SHARE;
            if wants_delete {
                let rank = delete_pick.sample(&mut rng).min(live.len() - 1);
                out.push(DriftOp::Delete(live.remove(rank)));
                continue;
            }
            let group = group_pick.sample(&mut rng);
            let id = EntityId(next_id);
            next_id += 1;
            if let Some(entity) = self.make_entity(id, &ids[group], &ids, &mut rng) {
                live.push(id);
                out.push(DriftOp::Insert(entity));
            }
        }
        out
    }

    /// Query attribute pick for one operation: a one- or two-attribute
    /// conjunction from a mode- and phase-dependent focus group.
    fn pick_query(&self, ids: &[Vec<AttrId>], phase: usize, rng: &mut StdRng) -> Vec<AttrId> {
        let uniform = rng.gen_range(0..self.cfg.groups);
        let group = match self.cfg.mode {
            DriftMode::Steady | DriftMode::Churn => uniform,
            // Focus rotates with the phase; a small uniform floor keeps
            // the stale groups warm enough to be measured.
            DriftMode::Drift => {
                if rng.gen::<f64>() < FOCUS_SHARE {
                    phase % self.cfg.groups
                } else {
                    uniform
                }
            }
            DriftMode::FlashCrowd => {
                let burning = phase == 1 || phase == 2;
                if burning && rng.gen::<f64>() < FOCUS_SHARE {
                    // The crowd hits one fixed pair of group 0.
                    return vec![ids[0][0], ids[0][1]];
                }
                uniform
            }
        };
        let a = rng.gen_range(0..self.cfg.group_width);
        if rng.gen::<f64>() < 0.5 {
            vec![ids[group][a]]
        } else {
            let b = (a + 1 + rng.gen_range(0..self.cfg.group_width - 1)) % self.cfg.group_width;
            vec![ids[group][a.min(b)], ids[group][a.max(b)]]
        }
    }

    /// One entity of `group`: a run of its group's attributes (at least
    /// two) plus, occasionally, a single leaked attribute from a foreign
    /// group. Attribute ids are distinct by construction.
    fn make_entity(
        &self,
        id: EntityId,
        group: &[AttrId],
        all: &[Vec<AttrId>],
        rng: &mut StdRng,
    ) -> Option<Entity> {
        let mut attrs: Vec<(AttrId, Value)> = Vec::with_capacity(group.len() + 1);
        for (j, a) in group.iter().enumerate() {
            if j < 2 || rng.gen::<f64>() < 0.6 {
                attrs.push((*a, Value::Int(rng.gen_range(0..10_000))));
            }
        }
        if rng.gen::<f64>() < LEAK_SHARE {
            let g = rng.gen_range(0..all.len());
            let leak = all[g][rng.gen_range(0..all[g].len())];
            if !attrs.iter().any(|(a, _)| *a == leak) {
                attrs.push((leak, Value::Int(rng.gen_range(0..10_000))));
            }
        }
        Entity::new(id, attrs).ok()
    }
}

/// Fraction of focused queries that actually hit the focus (drift and
/// flash-crowd modes); the rest stay uniform.
const FOCUS_SHARE: f64 = 0.9;
/// Probability a churn write is a delete rather than an insert.
const CHURN_DELETE_SHARE: f64 = 0.35;
/// How deep into the oldest live entities churn deletes reach.
const CHURN_DELETE_WINDOW: usize = 64;
/// Probability an entity carries one attribute leaked from a foreign group.
const LEAK_SHARE: f64 = 0.1;

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::{EntityId, Value};

    /// 10 entities: attr 0 on all, attr 1 on half, attr 2 on 20 %, attr 3
    /// co-occurring with attr 1.
    fn entities() -> Vec<Entity> {
        (0..10u64)
            .map(|i| {
                let mut attrs = vec![(AttrId(0), Value::Int(1))];
                if i % 2 == 0 {
                    attrs.push((AttrId(1), Value::Int(1)));
                    attrs.push((AttrId(3), Value::Int(1)));
                }
                if i % 5 == 0 {
                    attrs.push((AttrId(2), Value::Int(1)));
                }
                Entity::new(EntityId(i), attrs).unwrap()
            })
            .collect()
    }

    #[test]
    fn singleton_selectivities_are_frequencies() {
        let specs = WorkloadBuilder { top_k: 4 }.build(4, &entities());
        let get = |label: &str| {
            specs
                .iter()
                .find(|s| s.label == label)
                .unwrap_or_else(|| panic!("{label} missing"))
                .selectivity
        };
        assert!((get("single(a0)") - 1.0).abs() < 1e-12);
        assert!((get("single(a1)") - 0.5).abs() < 1e-12);
        assert!((get("single(a2)") - 0.2).abs() < 1e-12);
    }

    #[test]
    fn pair_and_triple_use_inclusion_exclusion() {
        let specs = WorkloadBuilder { top_k: 4 }.build(4, &entities());
        // a1 ∪ a2: 5 + 2 − 1 (entity 0 has both) = 6 → 0.6.
        let pair = specs
            .iter()
            .find(|s| s.label == "pair(a1,a2)" || s.label == "pair(a2,a1)")
            .unwrap();
        assert!((pair.selectivity - 0.6).abs() < 1e-12);
        // a1 ∪ a2 ∪ a3 = a1 ∪ a2 (a3 ⊆ a1) = 0.6.
        let triple = specs
            .iter()
            .find(|s| s.attrs.len() == 3 && !s.attrs.contains(&AttrId(0)))
            .unwrap();
        assert!((triple.selectivity - 0.6).abs() < 1e-12);
    }

    #[test]
    fn counts_of_generated_specs() {
        let specs = WorkloadBuilder { top_k: 4 }.build(4, &entities());
        // 4 singletons + C(4,2)=6 pairs + C(4,3)=4 triples.
        assert_eq!(specs.len(), 4 + 6 + 4);
        // With top_k exceeding the live attributes, k clamps to 4.
        let specs = WorkloadBuilder { top_k: 20 }.build(4, &entities());
        assert_eq!(specs.len(), 4 + 6 + 4);
    }

    #[test]
    fn representatives_cover_bins() {
        let specs = WorkloadBuilder { top_k: 4 }.build(4, &entities());
        let reps = WorkloadBuilder::representatives(&specs, &[0.3, 0.7, 1.0], 2);
        assert!(reps.len() <= 6);
        // Sorted by selectivity.
        for w in reps.windows(2) {
            assert!(w[0].selectivity <= w[1].selectivity);
        }
        // The low bin (≤ 0.3) and the top bin (> 0.7) both contribute.
        assert!(reps.iter().any(|s| s.selectivity <= 0.3));
        assert!(reps.iter().any(|s| s.selectivity > 0.7));
        // Per-bin cap respected.
        let low = reps.iter().filter(|s| s.selectivity <= 0.3).count();
        assert!(low <= 2);
    }

    fn scenario(mode: DriftMode, seed: u64) -> Vec<DriftOp> {
        let mut catalog = AttributeCatalog::new();
        DriftScenario::new(DriftConfig { mode, ops: 1_200, seed, ..DriftConfig::default() })
            .generate(&mut catalog, 0)
    }

    #[test]
    fn drift_streams_are_deterministic_per_seed() {
        for mode in [DriftMode::Steady, DriftMode::Drift, DriftMode::FlashCrowd, DriftMode::Churn]
        {
            assert_eq!(scenario(mode, 7), scenario(mode, 7), "{mode}");
            assert_ne!(scenario(mode, 7), scenario(mode, 8), "{mode}");
        }
    }

    #[test]
    fn drift_streams_never_reference_missing_entities() {
        for mode in [DriftMode::Steady, DriftMode::Churn] {
            let mut live = std::collections::BTreeSet::new();
            for op in scenario(mode, 3) {
                match op {
                    DriftOp::Insert(e) => {
                        assert!(live.insert(e.id()), "duplicate insert of {:?}", e.id());
                        assert!(e.arity() >= 2, "entities carry at least two attributes");
                    }
                    DriftOp::Delete(id) => {
                        assert!(live.remove(&id), "delete of missing {id:?}");
                    }
                    DriftOp::Query(attrs) => {
                        assert!(!attrs.is_empty() && attrs.len() <= 2);
                    }
                }
            }
        }
    }

    #[test]
    fn churn_deletes_steady_does_not() {
        let deletes = |mode| {
            scenario(mode, 5).iter().filter(|op| matches!(op, DriftOp::Delete(_))).count()
        };
        assert_eq!(deletes(DriftMode::Steady), 0);
        assert!(deletes(DriftMode::Churn) > 20, "churn must actually churn");
    }

    #[test]
    fn drift_rotates_the_query_focus() {
        let mut catalog = AttributeCatalog::new();
        let cfg = DriftConfig { mode: DriftMode::Drift, ops: 2_000, seed: 11, ..Default::default() };
        let scenario = DriftScenario::new(cfg.clone());
        let ops = scenario.generate(&mut catalog, 0);
        let ids = scenario.intern_attributes(&mut catalog);
        // Count queries per (phase, group) and check the diagonal dominates.
        let group_of = |a: AttrId| {
            ids.iter().position(|g| g.contains(&a)).expect("query attrs come from the universe")
        };
        for phase in 0..DRIFT_PHASES {
            let lo = phase * cfg.ops / DRIFT_PHASES;
            let hi = (phase + 1) * cfg.ops / DRIFT_PHASES;
            let mut counts = vec![0usize; cfg.groups];
            for op in &ops[lo..hi.min(ops.len())] {
                if let DriftOp::Query(attrs) = op {
                    counts[group_of(attrs[0])] += 1;
                }
            }
            let hot = phase % cfg.groups;
            let total: usize = counts.iter().sum();
            assert!(
                counts[hot] * 2 > total,
                "phase {phase}: hot group {hot} got {}/{total} queries",
                counts[hot]
            );
        }
    }

    #[test]
    fn flash_crowd_burns_one_pair_mid_run() {
        let ops = scenario(DriftMode::FlashCrowd, 9);
        let n = ops.len();
        let pair_hits = |range: std::ops::Range<usize>| {
            ops[range]
                .iter()
                .filter(|op| matches!(op, DriftOp::Query(a) if a.len() == 2
                    && a[0] == AttrId(0) && a[1] == AttrId(1)))
                .count()
        };
        // Burst phases (1 and 2) hammer the pair; the edges barely touch it.
        let edge = pair_hits(0..n / 4) + pair_hits(3 * n / 4..n);
        let burst = pair_hits(n / 4..3 * n / 4);
        assert!(burst > 10 * edge.max(1), "burst {burst} vs edge {edge}");
    }

    #[test]
    fn drift_mode_parses_and_displays() {
        for mode in [DriftMode::Steady, DriftMode::Drift, DriftMode::FlashCrowd, DriftMode::Churn]
        {
            assert_eq!(mode.to_string().parse::<DriftMode>(), Ok(mode));
        }
        assert!("hot".parse::<DriftMode>().is_err());
    }
}
