//! Synthetic query workload (§V-B construction).
//!
//! The paper: "We created multiple sets of attributes. Each of the
//! individual attributes forms an attribute set. Additionally, we combined
//! the 20 most frequent attributes to pairs and triples. […] We collected
//! representative queries to reasonably cover the range of possible
//! selectivities; three representative queries for each selectivity."
//!
//! [`WorkloadBuilder::build`] generates the full candidate set with exact
//! selectivities (inclusion–exclusion over one pass of co-occurrence
//! counting); [`WorkloadBuilder::representatives`] picks the binned
//! representatives the figures average over.

use cind_model::{AttrId, Entity};

/// One candidate query: an attribute set plus its exact selectivity against
/// the generated data.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// The queried attributes.
    pub attrs: Vec<AttrId>,
    /// Fraction of entities instantiating at least one of them.
    pub selectivity: f64,
    /// Human-readable label, e.g. `single(a3)` or `pair(a0,a5)`.
    pub label: String,
}

/// Builds the paper's synthetic workload.
#[derive(Clone, Debug)]
pub struct WorkloadBuilder {
    /// How many of the most frequent attributes to combine (paper: 20).
    pub top_k: usize,
}

impl Default for WorkloadBuilder {
    fn default() -> Self {
        Self { top_k: 20 }
    }
}

impl WorkloadBuilder {
    /// Generates all candidate queries: one singleton per attribute that
    /// occurs at all, plus pairs and triples of the `top_k` most frequent
    /// attributes, each with exact selectivity.
    pub fn build(&self, universe: usize, entities: &[Entity]) -> Vec<QuerySpec> {
        let n = entities.len().max(1) as f64;
        // Pass 1: attribute frequencies.
        let mut freq = vec![0u64; universe];
        for e in entities {
            for (a, _) in e.attrs() {
                freq[a.0 as usize] += 1;
            }
        }
        // Top-k attributes by frequency (stable: ties by id).
        let mut ranked: Vec<u32> = (0..universe as u32).collect();
        ranked.sort_by_key(|&a| (std::cmp::Reverse(freq[a as usize]), a));
        let top: Vec<u32> = ranked
            .iter()
            .copied()
            .take(self.top_k)
            .filter(|&a| freq[a as usize] > 0)
            .collect();
        let k = top.len();
        let rank_of = {
            let mut m = vec![usize::MAX; universe];
            for (r, &a) in top.iter().enumerate() {
                m[a as usize] = r;
            }
            m
        };
        // Pass 2: pair and triple co-occurrence among the top-k.
        let mut pair = vec![0u64; k * k];
        let mut triple = std::collections::HashMap::<(usize, usize, usize), u64>::new();
        for e in entities {
            let present: Vec<usize> = e
                .attrs()
                .iter()
                .filter_map(|(a, _)| {
                    let r = rank_of[a.0 as usize];
                    (r != usize::MAX).then_some(r)
                })
                .collect();
            for (i, &a) in present.iter().enumerate() {
                for &b in &present[i + 1..] {
                    let (lo, hi) = (a.min(b), a.max(b));
                    pair[lo * k + hi] += 1;
                }
            }
            for (i, &a) in present.iter().enumerate() {
                for (j, &b) in present.iter().enumerate().skip(i + 1) {
                    for &c in &present[j + 1..] {
                        let mut t = [a, b, c];
                        t.sort_unstable();
                        *triple.entry((t[0], t[1], t[2])).or_default() += 1;
                    }
                }
            }
        }

        let mut specs = Vec::new();
        // Singletons over every attribute that occurs.
        for a in 0..universe as u32 {
            if freq[a as usize] > 0 {
                specs.push(QuerySpec {
                    attrs: vec![AttrId(a)],
                    selectivity: freq[a as usize] as f64 / n,
                    label: format!("single(a{a})"),
                });
            }
        }
        // Pairs of top-k: |A ∪ B| = f_A + f_B − f_AB.
        for i in 0..k {
            for j in (i + 1)..k {
                let (a, b) = (top[i], top[j]);
                let union = freq[a as usize] + freq[b as usize] - pair[i * k + j];
                specs.push(QuerySpec {
                    attrs: vec![AttrId(a), AttrId(b)],
                    selectivity: union as f64 / n,
                    label: format!("pair(a{a},a{b})"),
                });
            }
        }
        // Triples of top-k, by inclusion–exclusion.
        for i in 0..k {
            for j in (i + 1)..k {
                for l in (j + 1)..k {
                    let (a, b, c) = (top[i], top[j], top[l]);
                    let f3 = triple.get(&(i, j, l)).copied().unwrap_or(0);
                    let union = freq[a as usize] + freq[b as usize] + freq[c as usize]
                        - pair[i * k + j]
                        - pair[i * k + l]
                        - pair[j * k + l]
                        + f3;
                    specs.push(QuerySpec {
                        attrs: vec![AttrId(a), AttrId(b), AttrId(c)],
                        selectivity: union as f64 / n,
                        label: format!("triple(a{a},a{b},a{c})"),
                    });
                }
            }
        }
        specs
    }

    /// Picks up to `per_bin` representatives per selectivity bin. `edges`
    /// are ascending upper bin boundaries; a spec falls in the first bin
    /// whose edge is ≥ its selectivity. Returns the picks sorted by
    /// selectivity.
    pub fn representatives(
        specs: &[QuerySpec],
        edges: &[f64],
        per_bin: usize,
    ) -> Vec<QuerySpec> {
        let mut sorted: Vec<&QuerySpec> = specs.iter().collect();
        sorted.sort_by(|a, b| a.selectivity.total_cmp(&b.selectivity));
        let mut out: Vec<QuerySpec> = Vec::new();
        let mut cursor = 0usize;
        let mut lower = 0.0f64;
        for &edge in edges {
            let mut taken = 0;
            // Specs are sorted; take the first `per_bin` in (lower, edge].
            while cursor < sorted.len() && sorted[cursor].selectivity <= edge {
                if sorted[cursor].selectivity > lower && taken < per_bin {
                    out.push(sorted[cursor].clone());
                    taken += 1;
                }
                cursor += 1;
            }
            lower = edge;
        }
        out
    }

    /// The selectivity bin edges the harnesses use (log-spaced over the
    /// range Figs. 5–6 cover).
    pub fn default_edges() -> Vec<f64> {
        vec![0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::{EntityId, Value};

    /// 10 entities: attr 0 on all, attr 1 on half, attr 2 on 20 %, attr 3
    /// co-occurring with attr 1.
    fn entities() -> Vec<Entity> {
        (0..10u64)
            .map(|i| {
                let mut attrs = vec![(AttrId(0), Value::Int(1))];
                if i % 2 == 0 {
                    attrs.push((AttrId(1), Value::Int(1)));
                    attrs.push((AttrId(3), Value::Int(1)));
                }
                if i % 5 == 0 {
                    attrs.push((AttrId(2), Value::Int(1)));
                }
                Entity::new(EntityId(i), attrs).unwrap()
            })
            .collect()
    }

    #[test]
    fn singleton_selectivities_are_frequencies() {
        let specs = WorkloadBuilder { top_k: 4 }.build(4, &entities());
        let get = |label: &str| {
            specs
                .iter()
                .find(|s| s.label == label)
                .unwrap_or_else(|| panic!("{label} missing"))
                .selectivity
        };
        assert!((get("single(a0)") - 1.0).abs() < 1e-12);
        assert!((get("single(a1)") - 0.5).abs() < 1e-12);
        assert!((get("single(a2)") - 0.2).abs() < 1e-12);
    }

    #[test]
    fn pair_and_triple_use_inclusion_exclusion() {
        let specs = WorkloadBuilder { top_k: 4 }.build(4, &entities());
        // a1 ∪ a2: 5 + 2 − 1 (entity 0 has both) = 6 → 0.6.
        let pair = specs
            .iter()
            .find(|s| s.label == "pair(a1,a2)" || s.label == "pair(a2,a1)")
            .unwrap();
        assert!((pair.selectivity - 0.6).abs() < 1e-12);
        // a1 ∪ a2 ∪ a3 = a1 ∪ a2 (a3 ⊆ a1) = 0.6.
        let triple = specs
            .iter()
            .find(|s| s.attrs.len() == 3 && !s.attrs.contains(&AttrId(0)))
            .unwrap();
        assert!((triple.selectivity - 0.6).abs() < 1e-12);
    }

    #[test]
    fn counts_of_generated_specs() {
        let specs = WorkloadBuilder { top_k: 4 }.build(4, &entities());
        // 4 singletons + C(4,2)=6 pairs + C(4,3)=4 triples.
        assert_eq!(specs.len(), 4 + 6 + 4);
        // With top_k exceeding the live attributes, k clamps to 4.
        let specs = WorkloadBuilder { top_k: 20 }.build(4, &entities());
        assert_eq!(specs.len(), 4 + 6 + 4);
    }

    #[test]
    fn representatives_cover_bins() {
        let specs = WorkloadBuilder { top_k: 4 }.build(4, &entities());
        let reps = WorkloadBuilder::representatives(&specs, &[0.3, 0.7, 1.0], 2);
        assert!(reps.len() <= 6);
        // Sorted by selectivity.
        for w in reps.windows(2) {
            assert!(w[0].selectivity <= w[1].selectivity);
        }
        // The low bin (≤ 0.3) and the top bin (> 0.7) both contribute.
        assert!(reps.iter().any(|s| s.selectivity <= 0.3));
        assert!(reps.iter().any(|s| s.selectivity > 0.7));
        // Per-bin cap respected.
        let low = reps.iter().filter(|s| s.selectivity <= 0.3).count();
        assert!(low <= 2);
    }
}
