//! Electronics product catalog generator (Fig. 1 motivation scenario).
//!
//! The paper motivates the universal table with a product catalog of
//! electronic devices: cameras have `resolution`/`aperture`, TVs have
//! `screen`/`tuner`, hard drives have `rotation`/`form factor`, and almost
//! everything has `name` and `weight`. This generator produces such a
//! catalog for the examples and the quickstart.

use cind_model::{AttrId, AttributeCatalog, Entity, EntityId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A product category: a name, mandatory attributes, and optional
/// attributes instantiated with probability 0.5.
struct Category {
    name: &'static str,
    mandatory: &'static [&'static str],
    optional: &'static [&'static str],
}

const CATEGORIES: &[Category] = &[
    Category {
        name: "compact-camera",
        mandatory: &["name", "resolution", "aperture", "screen", "weight"],
        optional: &["zoom", "gps", "wifi"],
    },
    Category {
        name: "dslr-camera",
        mandatory: &["name", "resolution", "screen", "weight"],
        optional: &["aperture", "viewfinder", "gps"],
    },
    Category {
        name: "smartphone",
        mandatory: &["name", "resolution", "screen", "storage", "weight"],
        optional: &["wifi", "dualSim", "nfc"],
    },
    Category {
        name: "media-player",
        mandatory: &["name", "screen", "storage", "weight"],
        optional: &["radio", "wifi"],
    },
    Category {
        name: "tv",
        mandatory: &["name", "resolution", "screen", "tuner", "weight"],
        optional: &["smartTv", "wifi"],
    },
    Category {
        name: "hard-drive",
        mandatory: &["name", "storage", "rotation", "formFactor", "weight"],
        optional: &["cache"],
    },
    Category {
        name: "gps-device",
        mandatory: &["name", "screen", "weight"],
        optional: &["storage", "gps", "rotation"],
    },
];

/// Generates product entities across the Fig. 1 categories.
pub struct ProductGenerator {
    seed: u64,
}

impl ProductGenerator {
    /// Creates a generator with a seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Category names, in generation order.
    pub fn category_names() -> Vec<&'static str> {
        CATEGORIES.iter().map(|c| c.name).collect()
    }

    /// Generates `n` products round-robin over the categories. Returns the
    /// entities and each entity's category index.
    pub fn generate(
        &self,
        catalog: &mut AttributeCatalog,
        n: usize,
    ) -> (Vec<Entity>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut entities = Vec::with_capacity(n);
        let mut origin = Vec::with_capacity(n);
        for i in 0..n {
            let cat_idx = i % CATEGORIES.len();
            let cat = &CATEGORIES[cat_idx];
            let mut attrs: Vec<(AttrId, Value)> = Vec::new();
            for a in cat.mandatory {
                attrs.push((catalog.intern(a), Self::value(a, cat.name, i, &mut rng)));
            }
            for a in cat.optional {
                if rng.gen_bool(0.5) {
                    attrs.push((catalog.intern(a), Self::value(a, cat.name, i, &mut rng)));
                }
            }
            entities.push(Entity::new(EntityId(i as u64), attrs).expect("unique attrs"));
            origin.push(cat_idx);
        }
        (entities, origin)
    }

    fn value(attr: &str, category: &str, i: usize, rng: &mut StdRng) -> Value {
        match attr {
            "name" => Value::Text(format!("{category}-{i}")),
            "weight" => Value::Int(rng.gen_range(80..10_000)),
            "resolution" => Value::Float(f64::from(rng.gen_range(50..500)) / 10.0),
            "screen" => Value::Float(f64::from(rng.gen_range(20..700)) / 10.0),
            "storage" => Value::Text(format!("{}GB", 2u32 << rng.gen_range(0..10))),
            "rotation" => Value::Int([5400, 7200, 10_000][rng.gen_range(0..3usize)]),
            "aperture" => Value::Float(f64::from(rng.gen_range(10..40)) / 10.0),
            _ => Value::Bool(true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_categories() {
        let mut catalog = AttributeCatalog::new();
        let (entities, origin) = ProductGenerator::new(1).generate(&mut catalog, 70);
        assert_eq!(entities.len(), 70);
        for cat_idx in 0..CATEGORIES.len() {
            assert!(origin.contains(&cat_idx));
        }
        // Every entity has its category's mandatory attributes.
        for (e, &c) in entities.iter().zip(&origin) {
            for a in CATEGORIES[c].mandatory {
                let id = catalog.lookup(a).unwrap();
                assert!(e.has(id), "{} missing {a}", CATEGORIES[c].name);
            }
        }
    }

    #[test]
    fn shared_and_specific_attributes() {
        let mut catalog = AttributeCatalog::new();
        let (entities, origin) = ProductGenerator::new(2).generate(&mut catalog, 140);
        let name = catalog.lookup("name").unwrap();
        assert!(entities.iter().all(|e| e.has(name)), "name is universal");
        // Tuner only on TVs, aperture never on hard drives.
        let tuner = catalog.lookup("tuner").unwrap();
        let tv = CATEGORIES.iter().position(|c| c.name == "tv").unwrap();
        for (e, &c) in entities.iter().zip(&origin) {
            assert_eq!(e.has(tuner), c == tv);
        }
    }
}
