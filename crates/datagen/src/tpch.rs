//! TPC-H-shaped regular data (Table I experiment).
//!
//! Table I loads perfectly regular TPC-H data (SF 0.5) into a
//! Cinderella-partitioned universal table and checks that (a) Cinderella
//! rediscovers exactly the TPC-H relations as partitions and (b) the query
//! overhead over the native schema is small. Both properties depend only on
//! the relations' column sets and relative cardinalities, so this generator
//! produces the eight TPC-H relations with their exact column lists and
//! proportional row counts, filled with synthetic values.

use cind_model::schema::{ColumnKind, RelationSchema};
use cind_model::{AttrId, AttributeCatalog, Entity, EntityId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ColumnKind::{Float, Int, Text};

/// The eight TPC-H relations with their standard column sets.
pub fn tpch_schema() -> Vec<RelationSchema> {
    vec![
        RelationSchema::new(
            "region",
            [("r_regionkey", Int), ("r_name", Text), ("r_comment", Text)],
        ),
        RelationSchema::new(
            "nation",
            [
                ("n_nationkey", Int),
                ("n_name", Text),
                ("n_regionkey", Int),
                ("n_comment", Text),
            ],
        ),
        RelationSchema::new(
            "supplier",
            [
                ("s_suppkey", Int),
                ("s_name", Text),
                ("s_address", Text),
                ("s_nationkey", Int),
                ("s_phone", Text),
                ("s_acctbal", Float),
                ("s_comment", Text),
            ],
        ),
        RelationSchema::new(
            "customer",
            [
                ("c_custkey", Int),
                ("c_name", Text),
                ("c_address", Text),
                ("c_nationkey", Int),
                ("c_phone", Text),
                ("c_acctbal", Float),
                ("c_mktsegment", Text),
                ("c_comment", Text),
            ],
        ),
        RelationSchema::new(
            "part",
            [
                ("p_partkey", Int),
                ("p_name", Text),
                ("p_mfgr", Text),
                ("p_brand", Text),
                ("p_type", Text),
                ("p_size", Int),
                ("p_container", Text),
                ("p_retailprice", Float),
                ("p_comment", Text),
            ],
        ),
        RelationSchema::new(
            "partsupp",
            [
                ("ps_partkey", Int),
                ("ps_suppkey", Int),
                ("ps_availqty", Int),
                ("ps_supplycost", Float),
                ("ps_comment", Text),
            ],
        ),
        RelationSchema::new(
            "orders",
            [
                ("o_orderkey", Int),
                ("o_custkey", Int),
                ("o_orderstatus", Text),
                ("o_totalprice", Float),
                ("o_orderdate", Text),
                ("o_orderpriority", Text),
                ("o_clerk", Text),
                ("o_shippriority", Int),
                ("o_comment", Text),
            ],
        ),
        RelationSchema::new(
            "lineitem",
            [
                ("l_orderkey", Int),
                ("l_partkey", Int),
                ("l_suppkey", Int),
                ("l_linenumber", Int),
                ("l_quantity", Float),
                ("l_extendedprice", Float),
                ("l_discount", Float),
                ("l_tax", Float),
                ("l_returnflag", Text),
                ("l_linestatus", Text),
                ("l_shipdate", Text),
                ("l_commitdate", Text),
                ("l_receiptdate", Text),
                ("l_shipinstruct", Text),
                ("l_shipmode", Text),
                ("l_comment", Text),
            ],
        ),
    ]
}

/// Base row counts at scale factor 1.0 (TPC-H specification).
const BASE_ROWS: [(usize, u64); 8] = [
    (0, 5),         // region (fixed)
    (1, 25),        // nation (fixed)
    (2, 10_000),    // supplier
    (3, 150_000),   // customer
    (4, 200_000),   // part
    (5, 800_000),   // partsupp
    (6, 1_500_000), // orders
    (7, 6_000_000), // lineitem
];

/// Referenced-column sets of the 22 TPC-H queries (projection, predicates,
/// joins, grouping). These drive the Table I scans — in our substrate a
/// query's cost is the scan of every partition carrying any referenced
/// column of each referenced relation.
pub fn tpch_query_columns() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        ("Q1", vec!["l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice", "l_discount", "l_tax", "l_shipdate"]),
        ("Q2", vec!["p_partkey", "p_mfgr", "p_size", "p_type", "s_acctbal", "s_name", "s_address", "s_phone", "s_comment", "s_suppkey", "s_nationkey", "ps_partkey", "ps_suppkey", "ps_supplycost", "n_name", "n_nationkey", "n_regionkey", "r_regionkey", "r_name"]),
        ("Q3", vec!["c_mktsegment", "c_custkey", "o_orderkey", "o_custkey", "o_orderdate", "o_shippriority", "l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"]),
        ("Q4", vec!["o_orderkey", "o_orderdate", "o_orderpriority", "l_orderkey", "l_commitdate", "l_receiptdate"]),
        ("Q5", vec!["c_custkey", "c_nationkey", "o_orderkey", "o_custkey", "o_orderdate", "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "s_suppkey", "s_nationkey", "n_nationkey", "n_regionkey", "n_name", "r_regionkey", "r_name"]),
        ("Q6", vec!["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"]),
        ("Q7", vec!["s_suppkey", "s_nationkey", "l_suppkey", "l_orderkey", "l_shipdate", "l_extendedprice", "l_discount", "o_orderkey", "o_custkey", "c_custkey", "c_nationkey", "n_nationkey", "n_name"]),
        ("Q8", vec!["p_partkey", "p_type", "l_partkey", "l_suppkey", "l_orderkey", "l_extendedprice", "l_discount", "s_suppkey", "s_nationkey", "o_orderkey", "o_custkey", "o_orderdate", "c_custkey", "c_nationkey", "n_nationkey", "n_regionkey", "n_name", "r_regionkey", "r_name"]),
        ("Q9", vec!["p_partkey", "p_name", "s_suppkey", "s_nationkey", "l_partkey", "l_suppkey", "l_orderkey", "l_quantity", "l_extendedprice", "l_discount", "ps_partkey", "ps_suppkey", "ps_supplycost", "o_orderkey", "o_orderdate", "n_nationkey", "n_name"]),
        ("Q10", vec!["c_custkey", "c_name", "c_acctbal", "c_address", "c_phone", "c_comment", "c_nationkey", "o_orderkey", "o_custkey", "o_orderdate", "l_orderkey", "l_returnflag", "l_extendedprice", "l_discount", "n_nationkey", "n_name"]),
        ("Q11", vec!["ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost", "s_suppkey", "s_nationkey", "n_nationkey", "n_name"]),
        ("Q12", vec!["o_orderkey", "o_orderpriority", "l_orderkey", "l_shipmode", "l_commitdate", "l_shipdate", "l_receiptdate"]),
        ("Q13", vec!["c_custkey", "o_orderkey", "o_custkey", "o_comment"]),
        ("Q14", vec!["l_partkey", "l_shipdate", "l_extendedprice", "l_discount", "p_partkey", "p_type"]),
        ("Q15", vec!["l_suppkey", "l_shipdate", "l_extendedprice", "l_discount", "s_suppkey", "s_name", "s_address", "s_phone"]),
        ("Q16", vec!["ps_partkey", "ps_suppkey", "p_partkey", "p_brand", "p_type", "p_size", "s_suppkey", "s_comment"]),
        ("Q17", vec!["l_partkey", "l_quantity", "l_extendedprice", "p_partkey", "p_brand", "p_container"]),
        ("Q18", vec!["c_name", "c_custkey", "o_orderkey", "o_custkey", "o_orderdate", "o_totalprice", "l_orderkey", "l_quantity"]),
        ("Q19", vec!["l_partkey", "l_quantity", "l_extendedprice", "l_discount", "l_shipmode", "l_shipinstruct", "p_partkey", "p_brand", "p_container", "p_size"]),
        ("Q20", vec!["s_suppkey", "s_name", "s_address", "s_nationkey", "n_nationkey", "n_name", "ps_partkey", "ps_suppkey", "ps_availqty", "p_partkey", "p_name", "l_partkey", "l_suppkey", "l_shipdate", "l_quantity"]),
        ("Q21", vec!["s_suppkey", "s_name", "s_nationkey", "l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate", "o_orderkey", "o_orderstatus", "n_nationkey", "n_name"]),
        ("Q22", vec!["c_phone", "c_acctbal", "c_custkey", "o_custkey"]),
    ]
}

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct TpchConfig {
    /// TPC-H scale factor. The paper uses 0.5; the harness default of 0.01
    /// keeps runtimes laptop-friendly while preserving all cardinality
    /// *ratios* (which is what schema recovery and relative overhead depend
    /// on).
    pub scale: f64,
    /// RNG seed for the synthetic values.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        Self { scale: 0.01, seed: 0x79C4 }
    }
}

/// Generates TPC-H-shaped entities.
pub struct TpchGenerator {
    config: TpchConfig,
    schema: Vec<RelationSchema>,
}

impl TpchGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics on a non-positive scale.
    pub fn new(config: TpchConfig) -> Self {
        assert!(config.scale > 0.0, "scale must be positive");
        Self { config, schema: tpch_schema() }
    }

    /// The relation schemas.
    pub fn schema(&self) -> &[RelationSchema] {
        &self.schema
    }

    /// Scaled row count per relation (index-aligned with
    /// [`tpch_schema`]). `region` and `nation` stay fixed per the spec;
    /// every other relation gets at least one row.
    pub fn row_counts(&self) -> Vec<u64> {
        BASE_ROWS
            .iter()
            .map(|&(i, base)| {
                if i <= 1 {
                    base
                } else {
                    ((base as f64 * self.config.scale).round() as u64).max(1)
                }
            })
            .collect()
    }

    /// Generates all rows as universal-table entities, interleaved
    /// round-robin across relations (so Cinderella sees shapes in mixed
    /// order, as a real load would), with sequential entity ids.
    ///
    /// Returns `(entities, relation index per entity)` so experiments can
    /// check which relation each entity came from.
    pub fn generate(&self, catalog: &mut AttributeCatalog) -> (Vec<Entity>, Vec<usize>) {
        let ids: Vec<Vec<AttrId>> = self
            .schema
            .iter()
            .map(|r| r.intern_into(catalog))
            .collect();
        let counts = self.row_counts();
        let total: u64 = counts.iter().sum();
        let mut remaining = counts.clone();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut entities = Vec::with_capacity(total as usize);
        let mut origin = Vec::with_capacity(total as usize);
        let mut eid = 0u64;
        // Deal rows out proportionally: each round emits one row of every
        // relation that still owes rows, largest-first within the round.
        while entities.len() < total as usize {
            let mut order: Vec<usize> = (0..self.schema.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(remaining[i]));
            for rel in order {
                if remaining[rel] == 0 {
                    continue;
                }
                remaining[rel] -= 1;
                entities.push(self.row(rel, &ids[rel], eid, &mut rng));
                origin.push(rel);
                eid += 1;
            }
        }
        (entities, origin)
    }

    fn row(&self, rel: usize, ids: &[AttrId], eid: u64, rng: &mut StdRng) -> Entity {
        let schema = &self.schema[rel];
        let attrs: Vec<(AttrId, Value)> = schema
            .columns
            .iter()
            .zip(ids)
            .map(|(col, id)| {
                let v = match col.kind {
                    Int => Value::Int(rng.gen_range(0..1_000_000)),
                    Float => Value::Float(f64::from(rng.gen_range(0..1_000_000u32)) / 100.0),
                    Text => Value::Text(format!("{}#{}", &col.name[..2], rng.gen_range(0..10_000u32))),
                };
                (*id, v)
            })
            .collect();
        Entity::new(EntityId(eid), attrs).expect("schema columns unique")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn schema_has_eight_relations_with_standard_arities() {
        let s = tpch_schema();
        assert_eq!(s.len(), 8);
        let arities: Vec<usize> = s.iter().map(RelationSchema::arity).collect();
        assert_eq!(arities, vec![3, 4, 7, 8, 9, 5, 9, 16]);
        // 61 distinct column names in total.
        let names: HashSet<&str> = s
            .iter()
            .flat_map(|r| r.columns.iter().map(|c| c.name.as_str()))
            .collect();
        assert_eq!(names.len(), 61);
    }

    #[test]
    fn query_columns_all_exist_in_schema() {
        let s = tpch_schema();
        let names: HashSet<&str> = s
            .iter()
            .flat_map(|r| r.columns.iter().map(|c| c.name.as_str()))
            .collect();
        let queries = tpch_query_columns();
        assert_eq!(queries.len(), 22);
        for (q, cols) in &queries {
            assert!(!cols.is_empty(), "{q} empty");
            for c in cols {
                assert!(names.contains(c), "{q} references unknown column {c}");
            }
            let distinct: HashSet<&&str> = cols.iter().collect();
            assert_eq!(distinct.len(), cols.len(), "{q} has duplicate columns");
        }
    }

    #[test]
    fn row_counts_scale_proportionally() {
        let g = TpchGenerator::new(TpchConfig { scale: 0.01, seed: 1 });
        let counts = g.row_counts();
        assert_eq!(counts[0], 5); // region fixed
        assert_eq!(counts[1], 25); // nation fixed
        assert_eq!(counts[7], 60_000); // lineitem = 6M × 0.01
        assert_eq!(counts[6], 15_000);
        // lineitem:orders ratio is 4:1 regardless of scale.
        let g2 = TpchGenerator::new(TpchConfig { scale: 0.002, seed: 1 });
        let c2 = g2.row_counts();
        assert_eq!(c2[7] / c2[6], 4);
    }

    #[test]
    fn generated_entities_match_their_relation_shape() {
        let g = TpchGenerator::new(TpchConfig { scale: 0.001, seed: 2 });
        let mut catalog = AttributeCatalog::new();
        let (entities, origin) = g.generate(&mut catalog);
        assert_eq!(catalog.len(), 61);
        assert_eq!(entities.len(), origin.len());
        let expected_total: u64 = g.row_counts().iter().sum();
        assert_eq!(entities.len() as u64, expected_total);
        let schema = g.schema();
        for (e, &rel) in entities.iter().zip(&origin) {
            assert_eq!(e.arity(), schema[rel].arity(), "entity of {}", schema[rel].name);
            let syn = schema[rel].synopsis(&catalog);
            assert_eq!(e.synopsis(catalog.len()), syn);
        }
        // Entity ids are unique and dense.
        let ids: HashSet<u64> = entities.iter().map(|e| e.id().0).collect();
        assert_eq!(ids.len(), entities.len());
    }

    #[test]
    fn interleaving_mixes_relations_early() {
        let g = TpchGenerator::new(TpchConfig { scale: 0.001, seed: 2 });
        let mut catalog = AttributeCatalog::new();
        let (_, origin) = g.generate(&mut catalog);
        // Within the first round (≤ 8 entities) every relation appears.
        let head: HashSet<usize> = origin.iter().take(8).copied().collect();
        assert_eq!(head.len(), 8, "first 8 entities cover all relations");
    }
}
