//! Synthetic data and workload generators calibrated to the paper.
//!
//! The paper evaluates on (a) 100 000 DBpedia person entities with 100
//! attributes and (b) TPC-H at scale factor 0.5. Neither dataset ships with
//! this repository, so this crate generates faithful synthetic stand-ins
//! (see DESIGN.md §3 for the substitution argument):
//!
//! * [`dbpedia`] — irregular entities whose attribute-frequency distribution
//!   and attributes-per-entity distribution match Fig. 4: two near-universal
//!   attributes, eleven "fairly common" ones (> 30 %), ≥ 85 % of attributes
//!   below 10 %, overall sparseness ≈ 0.94, arity mass in 2–15. Latent
//!   *groups* give the co-occurrence structure Cinderella exploits.
//! * [`tpch`] — the eight TPC-H relations with their exact column sets and
//!   proportional cardinalities, loaded as perfectly regular entities
//!   (Table I), plus the referenced-column sets of the 22 TPC-H queries.
//! * [`products`] — the electronics product catalog of Fig. 1, for the
//!   examples.
//! * [`workload`] — the paper's synthetic query construction: every single
//!   attribute, plus pairs and triples of the 20 most frequent attributes,
//!   binned by selectivity with representatives per bin.
//! * [`zipf`] — the Zipf sampler behind the long-tail distributions (the
//!   paper cites Zipf-distributed attribute frequencies as characteristic
//!   of irregular data).
//!
//! Every generator is seeded and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dbpedia;
pub mod products;
pub mod tpch;
pub mod workload;
pub mod zipf;

pub use dbpedia::{DbpediaConfig, DbpediaGenerator};
pub use products::ProductGenerator;
pub use tpch::{tpch_query_columns, tpch_schema, TpchConfig, TpchGenerator};
pub use workload::{DriftConfig, DriftMode, DriftOp, DriftScenario, QuerySpec, WorkloadBuilder};
pub use zipf::Zipf;
