//! DBpedia-person-like irregular entity generator (Fig. 4 calibration).
//!
//! The paper extracts 100 000 person entities with 100 attributes from
//! DBpedia and reports (Fig. 4): two attributes "extremely common" (on
//! almost every entity), eleven "fairly common" (> 30 %), 85 % of
//! attributes below 10 %, attributes-per-entity mostly between 2 and 15
//! with outliers up to 27, and an overall sparseness of 0.94.
//!
//! This generator reproduces those marginals *and* adds the latent
//! co-occurrence structure real data has (athletes share team/position,
//! politicians share party/office, …): each entity draws a latent *group*
//! (Zipf-distributed) and instantiates group-affine attributes with a
//! boosted probability. Per-attribute target frequencies are solved so the
//! realized marginal matches the Fig. 4 curve regardless of group sizes.

use cind_model::{AttrId, AttributeCatalog, Entity, EntityId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Human-readable names for the first attributes (the common head of the
/// person schema); the long tail falls back to `attr{i}`.
const HEAD_NAMES: &[&str] = &[
    "name",
    "birthDate",
    "birthPlace",
    "occupation",
    "nationality",
    "deathDate",
    "deathPlace",
    "almaMater",
    "spouse",
    "knownFor",
    "award",
    "residence",
    "children",
    "team",
    "party",
    "genre",
    "instrument",
    "position",
    "club",
    "office",
];

/// Generator configuration. The default matches the paper's dataset.
#[derive(Clone, Debug)]
pub struct DbpediaConfig {
    /// Number of entities (paper: 100 000).
    pub entities: usize,
    /// Number of attributes (paper: 100).
    pub attributes: usize,
    /// Number of latent groups ("person types").
    pub groups: usize,
    /// Zipf exponent of the group-size distribution.
    pub group_exponent: f64,
    /// Probability ratio for instantiating an attribute of a *foreign*
    /// group relative to the own group (cross-type leakage).
    pub leakage: f64,
    /// RNG seed (generation is deterministic per seed).
    pub seed: u64,
}

impl Default for DbpediaConfig {
    fn default() -> Self {
        Self {
            entities: 100_000,
            attributes: 100,
            groups: 12,
            group_exponent: 0.9,
            leakage: 0.08,
            seed: 0xD8_BED1A,
        }
    }
}

/// The calibrated generator. Construct once, then
/// [`generate`](DbpediaGenerator::generate).
pub struct DbpediaGenerator {
    config: DbpediaConfig,
    /// Target marginal frequency per attribute.
    freqs: Vec<f64>,
    /// Own-group instantiation probability per attribute (solved from the
    /// marginal).
    q: Vec<f64>,
    /// Home group of each attribute (universal attributes use `usize::MAX`
    /// = group-independent).
    group_of: Vec<usize>,
    /// Full group membership per attribute. Tail attributes belong to just
    /// their home group; common attributes span several groups — otherwise
    /// a > 30 % marginal is unreachable from a small group even at
    /// in-group probability 1 (an athlete-only attribute cannot be on a
    /// third of all persons).
    members: Vec<Vec<usize>>,
    group_dist: Zipf,
}

/// Number of group-independent, near-universal attributes.
const UNIVERSALS: usize = 2;

impl DbpediaGenerator {
    /// Builds the generator, solving the per-attribute probabilities.
    ///
    /// # Panics
    /// Panics if the configuration is degenerate (fewer than 16 attributes,
    /// no groups, or leakage outside `[0, 1]`).
    pub fn new(config: DbpediaConfig) -> Self {
        assert!(config.attributes >= 16, "need the Fig. 4 head + tail");
        assert!(config.groups >= 1, "need at least one group");
        assert!((0.0..=1.0).contains(&config.leakage), "leakage in [0,1]");
        let n = config.attributes;
        let mut freqs = Vec::with_capacity(n);
        for i in 0..n {
            freqs.push(Self::target_frequency(i, n));
        }
        let group_dist = Zipf::new(config.groups, config.group_exponent);
        // Groups in descending probability (Zipf pmf is already sorted).
        let mut group_of = vec![usize::MAX; n];
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut q = vec![0.0; n];
        for i in UNIVERSALS..n {
            // Deterministic pseudo-random home group, spreading the
            // fairly-common head attributes across distinct groups.
            let home = if i < 13 {
                (i - UNIVERSALS) % config.groups
            } else {
                (i * 7 + 3) % config.groups
            };
            group_of[i] = home;
            // Grow the membership set (home group first, then the largest
            // groups) until the marginal is reachable with headroom:
            // P(attr) = P(members)·q + (1 − P(members))·leak·q with q ≤ 1.
            let mut mem = vec![home];
            let mut p_mem = group_dist.pmf(home);
            let reachable =
                |p: f64| p + (1.0 - p) * config.leakage;
            for g in 0..config.groups {
                if reachable(p_mem) >= freqs[i] * 1.15 {
                    break;
                }
                if g != home {
                    mem.push(g);
                    p_mem += group_dist.pmf(g);
                }
            }
            mem.sort_unstable();
            let denom = reachable(p_mem);
            q[i] = (freqs[i] / denom).min(1.0);
            members[i] = mem;
        }
        Self { config, freqs, q, group_of, members, group_dist }
    }

    /// The Fig. 4(a) target curve: index → marginal frequency.
    fn target_frequency(i: usize, n: usize) -> f64 {
        match i {
            // Two near-universal attributes.
            0 => 0.96,
            1 => 0.87,
            // Eleven fairly common attributes, > 30 %.
            2..=12 => 0.42 - 0.011 * (i - 2) as f64,
            // Two transition attributes between 10 % and 30 %.
            13 => 0.22,
            14 => 0.13,
            // Long tail below 10 %, Zipf decay.
            _ => {
                let rank = (i - 14) as f64;
                (0.095 * rank.powf(-0.9)).max(0.5 / n as f64)
            }
        }
    }

    /// The target marginal frequencies, by attribute index.
    pub fn target_frequencies(&self) -> &[f64] {
        &self.freqs
    }

    /// The configuration.
    pub fn config(&self) -> &DbpediaConfig {
        &self.config
    }

    /// Interns the attribute names into `catalog` (in frequency-rank order)
    /// and returns the ids.
    pub fn intern_attributes(&self, catalog: &mut AttributeCatalog) -> Vec<AttrId> {
        (0..self.config.attributes)
            .map(|i| {
                let name = HEAD_NAMES
                    .get(i)
                    .map(|s| (*s).to_owned())
                    .unwrap_or_else(|| format!("attr{i}"));
                catalog.intern(&name)
            })
            .collect()
    }

    /// Generates the full entity set (ids `0..entities`, in the random
    /// group order the sampler produces — the paper inserts "in random
    /// order", which this stream already is with respect to shape).
    pub fn generate(&self, catalog: &mut AttributeCatalog) -> Vec<Entity> {
        let ids = self.intern_attributes(catalog);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut out = Vec::with_capacity(self.config.entities);
        for eid in 0..self.config.entities {
            out.push(self.generate_one(eid as u64, &ids, &mut rng));
        }
        out
    }

    fn generate_one(&self, eid: u64, ids: &[AttrId], rng: &mut StdRng) -> Entity {
        let group = self.group_dist.sample(rng);
        let mut attrs: Vec<(AttrId, Value)> = Vec::with_capacity(8);
        for (i, id) in ids.iter().enumerate() {
            let p = if self.group_of[i] == usize::MAX {
                self.freqs[i]
            } else if self.members[i].binary_search(&group).is_ok() {
                self.q[i]
            } else {
                self.q[i] * self.config.leakage
            };
            if rng.gen::<f64>() < p {
                attrs.push((*id, self.value_for(i, rng)));
            }
        }
        // Fig. 4(b): every person record has at least its name.
        if attrs.is_empty() {
            attrs.push((ids[0], self.value_for(0, rng)));
        }
        Entity::new(EntityId(eid), attrs).expect("attribute ids are unique")
    }

    /// Values are typed per attribute (stable assignment) and kept short,
    /// like DBpedia literals.
    fn value_for(&self, i: usize, rng: &mut StdRng) -> Value {
        match i % 3 {
            0 => Value::Text(format!("v{}_{}", i, rng.gen_range(0..10_000u32))),
            1 => Value::Int(rng.gen_range(0..100_000)),
            _ => Value::Float(f64::from(rng.gen_range(0..10_000u32)) / 100.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Vec<Entity>, AttributeCatalog, DbpediaGenerator) {
        let gen = DbpediaGenerator::new(DbpediaConfig {
            entities: 20_000,
            ..DbpediaConfig::default()
        });
        let mut catalog = AttributeCatalog::new();
        let entities = gen.generate(&mut catalog);
        (entities, catalog, gen)
    }

    /// Realized attribute frequencies.
    fn frequencies(entities: &[Entity], attrs: usize) -> Vec<f64> {
        let mut counts = vec![0u32; attrs];
        for e in entities {
            for (a, _) in e.attrs() {
                counts[a.0 as usize] += 1;
            }
        }
        counts
            .into_iter()
            .map(|c| f64::from(c) / entities.len() as f64)
            .collect()
    }

    #[test]
    fn marginals_match_fig4a() {
        let (entities, catalog, gen) = small();
        assert_eq!(catalog.len(), 100);
        let f = frequencies(&entities, 100);
        // Two extremely common attributes.
        assert!(f[0] > 0.9, "name freq {}", f[0]);
        assert!(f[1] > 0.8, "birthDate freq {}", f[1]);
        // Eleven fairly common (> 30 %).
        let common = f.iter().filter(|&&x| (0.3..0.8).contains(&x)).count();
        assert!((10..=14).contains(&common), "fairly-common count {common}");
        // At least 85 % of attributes below 10 %.
        let rare = f.iter().filter(|&&x| x < 0.10).count();
        assert!(rare >= 85, "rare count {rare}");
        // Realized marginals track the targets (group solving works).
        for (i, (got, want)) in f.iter().zip(gen.target_frequencies()).enumerate() {
            assert!(
                (got - want).abs() < 0.05,
                "attr {i}: realized {got:.3} vs target {want:.3}"
            );
        }
    }

    #[test]
    fn arity_distribution_matches_fig4b() {
        let (entities, _, _) = small();
        let arities: Vec<usize> = entities.iter().map(Entity::arity).collect();
        let mean = arities.iter().sum::<usize>() as f64 / arities.len() as f64;
        // Sparseness = 1 - mean/100 ≈ 0.94 in the paper.
        assert!((5.0..8.5).contains(&mean), "mean arity {mean}");
        let max = *arities.iter().max().unwrap();
        assert!((16..=40).contains(&max), "max arity {max}");
        let in_band = arities.iter().filter(|&&a| (2..=15).contains(&a)).count();
        assert!(
            in_band as f64 / arities.len() as f64 > 0.8,
            "majority of entities must have 2–15 attributes"
        );
        assert!(arities.iter().all(|&a| a >= 1));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = |seed| {
            let g = DbpediaGenerator::new(DbpediaConfig {
                entities: 100,
                seed,
                ..DbpediaConfig::default()
            });
            let mut c = AttributeCatalog::new();
            g.generate(&mut c)
        };
        assert_eq!(gen(1), gen(1));
        assert_ne!(gen(1), gen(2));
    }

    #[test]
    fn groups_create_cooccurrence() {
        // Attributes of the same group must co-occur far more often than
        // attributes of different groups (given comparable marginals).
        let (entities, _, gen) = small();
        // Find two tail attributes sharing a group and two from different
        // groups with similar target frequency.
        let g = &gen.group_of;
        let mut same = None;
        let mut diff = None;
        for a in 20..100 {
            for b in (a + 1)..100 {
                if g[a] == g[b] && same.is_none() {
                    same = Some((a, b));
                }
                if g[a] != g[b] && diff.is_none() {
                    diff = Some((a, b));
                }
            }
        }
        let count_pair = |(a, b): (usize, usize)| {
            entities
                .iter()
                .filter(|e| {
                    e.has(AttrId(a as u32)) && e.has(AttrId(b as u32))
                })
                .count() as f64
                / entities.len() as f64
        };
        let f = frequencies(&entities, 100);
        let lift = |(a, b): (usize, usize)| count_pair((a, b)) / (f[a] * f[b]).max(1e-9);
        let same_lift = lift(same.unwrap());
        let diff_lift = lift(diff.unwrap());
        assert!(
            same_lift > diff_lift,
            "same-group lift {same_lift:.2} must exceed cross-group {diff_lift:.2}"
        );
        assert!(same_lift > 2.0, "same-group attributes must attract, lift {same_lift:.2}");
    }
}
