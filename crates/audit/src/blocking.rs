//! CIND-A009: no blocking call while a lock guard is live.
//!
//! Generalizes A003/A006/A007 into one engine-backed analysis: every
//! function body in non-test library code is walked and every *blocking*
//! operation — file sync, socket/WAL writes, `Vfs` I/O, channel
//! send/recv, condvar waits, `thread::join`/`thread::sleep` — that is
//! lexically reachable while a `let`-bound lock guard is held becomes a
//! finding. A condvar `wait(st)`/`wait_timeout(st, …)` releases the guard
//! it is handed, so that guard is excluded from the held set at the call.
//!
//! The analysis is lexical, per function: a blocking call inside a callee
//! is not attributed to the caller's guard. That keeps it zero-surprise
//! and fast; the cross-function lock story is A008's graph.
//!
//! ## The allow contract
//!
//! A justified hold is annotated in a *comment* (never matched inside
//! strings — those are blanked):
//!
//! ```text
//! // audit:allow(RULE, why this hold is sound)
//! ```
//!
//! with `A009` or `CIND-A009` as the RULE. Placement decides scope: a
//! trailing comment covers its own line; a comment on its own line covers
//! the next code line — or, when that next item is a `fn`, the whole
//! function body. Every allow must be load-bearing: an allow without a
//! reason is a finding, and so is a stale allow that suppresses nothing —
//! the annotation cannot outlive the code it excuses.

use crate::scan::line_of;
use crate::syntax::{self, Event, Held};
use crate::{Finding, SourceFile};

const RULE: &str = "CIND-A009";

/// CIND-A009 entry point.
#[must_use]
pub fn blocking_in_critical_section(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !crate::rules::is_library_code(&f.path) {
            continue;
        }
        let allows = parse_allows(f);
        let mut used = vec![false; allows.len()];
        for finding in raw_findings(f) {
            let suppressed = allows.iter().enumerate().any(|(i, a)| {
                let hit = a.rule == RULE && a.has_reason && a.covers(finding.line);
                used[i] |= hit;
                hit
            });
            if !suppressed {
                out.push(finding);
            }
        }
        for (a, used) in allows.iter().zip(used) {
            if !a.has_reason {
                out.push(Finding {
                    file: f.path.clone(),
                    line: a.line,
                    rule: RULE,
                    message: format!(
                        "audit:allow({}) without a reason — every allow must say why \
                         the hold is sound",
                        a.short
                    ),
                });
            } else if !used {
                out.push(Finding {
                    file: f.path.clone(),
                    line: a.line,
                    rule: RULE,
                    message: format!(
                        "stale audit:allow({}) — it suppresses no finding; remove it",
                        a.short
                    ),
                });
            }
        }
    }
    out
}

/// Is a call with this name (and argument shape) blocking?
///
/// Names with argument-shape conditions: `flush`/`recv`/`join`/`drain`
/// only with empty parens (`slice.join(", ")` and `vec.drain(..)` are
/// not blocking), `read` only *with* arguments (empty-args `.read()` is a
/// `RwLock` acquisition, the walker's domain).
fn is_blocking(name: &str, empty_args: bool) -> bool {
    match name {
        "sync" | "sync_all" | "sync_data" | "write_all" | "flush_wal" | "snapshot_to"
        | "create" | "send" | "recv_timeout" | "wait" | "wait_timeout" | "wait_durable" => {
            true
        }
        "flush" | "recv" | "join" | "drain" => empty_args,
        "read" => !empty_args,
        _ => false,
    }
}

fn raw_findings(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for func in syntax::functions(f) {
        for ev in syntax::events(f, &func) {
            let (line, call, held) = match &ev {
                Event::Call { line, name, empty_args, first_arg_ident, held, .. }
                    if is_blocking(name, *empty_args) =>
                {
                    // A condvar wait releases the guard it consumes.
                    let held: Vec<&Held> = if name == "wait" || name == "wait_timeout" {
                        held.iter()
                            .filter(|h| h.var.as_deref() != first_arg_ident.as_deref())
                            .collect()
                    } else {
                        held.iter().collect()
                    };
                    (*line, format!(".{name}("), held)
                }
                Event::PathCall { line, path, held } if path == "thread::sleep" => {
                    (*line, path.clone(), held.iter().collect())
                }
                _ => continue,
            };
            if let Some(h) = held.last() {
                out.push(Finding {
                    file: f.path.clone(),
                    line,
                    rule: RULE,
                    message: format!(
                        "blocking `{call}` while holding lock guard on `{}` \
                         (acquired line {}) — move it outside the critical section \
                         or annotate why the hold is sound",
                        h.class, h.line
                    ),
                });
            }
        }
    }
    out
}

/// One parsed allow annotation and the line range it covers.
struct Allow {
    /// Normalized rule id, `CIND-Axxx`.
    rule: String,
    /// The rule exactly as written (for messages).
    short: String,
    /// Line of the annotation itself.
    line: usize,
    has_reason: bool,
    from: usize,
    to: usize,
}

impl Allow {
    fn covers(&self, line: usize) -> bool {
        self.from <= line && line <= self.to
    }
}

/// Extracts every `audit:allow(<rule>[, <reason>])` from the file's
/// comment tokens. Text whose rule is not `Annn`/`CIND-Annn` is prose,
/// not an annotation.
fn parse_allows(f: &SourceFile) -> Vec<Allow> {
    const NEEDLE: &str = "audit:allow(";
    let mut out = Vec::new();
    for (idx, tok) in f.tokens.iter().enumerate() {
        if !tok.is_comment() || tok.masked {
            continue;
        }
        let text = tok.text(&f.raw);
        let mut from = 0;
        while let Some(pos) = text[from..].find(NEEDLE) {
            let inner_start = from + pos + NEEDLE.len();
            from = inner_start;
            let Some(close) = text[inner_start..].find(')') else { break };
            let inner = &text[inner_start..inner_start + close];
            let (rule_txt, reason) = match inner.split_once(',') {
                Some((r, rest)) => (r.trim(), Some(rest.trim())),
                None => (inner.trim(), None),
            };
            let Some(rule) = normalize_rule(rule_txt) else { continue };
            let line = line_of(&f.raw, tok.start);
            let (scope_from, scope_to) = allow_scope(f, idx, line);
            out.push(Allow {
                rule,
                short: rule_txt.to_owned(),
                line,
                has_reason: reason.is_some_and(|r| !r.is_empty()),
                from: scope_from,
                to: scope_to,
            });
        }
    }
    out
}

/// `A9`/`A009`/`CIND-A009` → `CIND-A009`; anything else is not a rule id.
fn normalize_rule(s: &str) -> Option<String> {
    let digits = s.strip_prefix("CIND-").unwrap_or(s).strip_prefix('A')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some(format!("CIND-A{:03}", digits.parse::<u32>().ok()?))
}

/// The line range an allow at comment-token `idx` covers (see module docs).
fn allow_scope(f: &SourceFile, idx: usize, comment_line: usize) -> (usize, usize) {
    let toks = &f.tokens;
    let src = &f.raw;
    // Trailing comment: code earlier on the same line.
    let trailing = toks[..idx].iter().any(|t| {
        !t.is_comment() && line_of(src, t.start) == comment_line
    });
    if trailing {
        return (comment_line, comment_line);
    }
    // Own line: find the next code token.
    let Some(next) = toks[idx + 1..]
        .iter()
        .position(|t| !t.is_comment() && !t.masked)
        .map(|p| idx + 1 + p)
    else {
        return (comment_line, comment_line);
    };
    // If a `fn` keyword appears before the first `{`, the allow covers the
    // whole function body (attributes between the comment and the fn are
    // fine — they carry no braces).
    let mut saw_fn = false;
    for (j, t) in toks.iter().enumerate().skip(next) {
        if t.is_comment() {
            continue;
        }
        if t.is_ident(src, "fn") {
            saw_fn = true;
        } else if t.is_punct(src, b'{') {
            if saw_fn {
                let mut depth = 0i64;
                for t2 in &toks[j..] {
                    if t2.is_punct(src, b'{') {
                        depth += 1;
                    } else if t2.is_punct(src, b'}') {
                        depth -= 1;
                        if depth == 0 {
                            return (comment_line, line_of(src, t2.start));
                        }
                    }
                }
            }
            break;
        } else if t.is_punct(src, b';') {
            break;
        }
    }
    let next_line = line_of(src, toks[next].start);
    (next_line, next_line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs", src)
    }

    #[test]
    fn sync_under_guard_is_a_finding() {
        let found = blocking_in_critical_section(&[file(
            "fn f(&self) {\n    let g = self.state.lock().unwrap();\n    \
             self.file.sync_all().unwrap();\n}\n",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "CIND-A009");
        assert_eq!(found[0].line, 3);
        assert!(found[0].message.contains("`.sync_all(`"), "{}", found[0].message);
        assert!(found[0].message.contains("acquired line 2"), "{}", found[0].message);
    }

    #[test]
    fn sync_without_guard_is_clean() {
        let found = blocking_in_critical_section(&[file(
            "fn f(&self) {\n    let g = self.state.lock().unwrap();\n    drop(g);\n    \
             self.file.sync_all().unwrap();\n}\n",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn condvar_wait_releases_its_own_guard() {
        let clean = blocking_in_critical_section(&[file(
            "fn f(&self) {\n    let mut st = self.state.lock().unwrap();\n    \
             st = self.cond.wait(st).unwrap();\n    let _ = st;\n}\n",
        )]);
        assert!(clean.is_empty(), "{clean:?}");
        // But waiting while holding a *different* guard still blocks it.
        let dirty = blocking_in_critical_section(&[file(
            "fn f(&self) {\n    let other = self.io.lock().unwrap();\n    \
             let mut st = self.state.lock().unwrap();\n    \
             st = self.cond.wait(st).unwrap();\n}\n",
        )]);
        assert_eq!(dirty.len(), 1, "{dirty:?}");
        assert_eq!(dirty[0].line, 4);
    }

    #[test]
    fn argful_join_and_drain_are_not_blocking() {
        let found = blocking_in_critical_section(&[file(
            "fn f(&self) {\n    let g = self.state.lock().unwrap();\n    \
             let s = parts.join(sep);\n    q.drain(range);\n}\n",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn socket_read_with_args_blocks_but_rwlock_read_does_not() {
        let found = blocking_in_critical_section(&[file(
            "fn f(&self) {\n    let g = self.slots[0].read();\n    \
             self.stream.read(buf).unwrap();\n}\n",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn trailing_allow_with_reason_suppresses_the_line() {
        let found = blocking_in_critical_section(&[file(
            "fn f(&self) {\n    let g = self.rx.lock().unwrap();\n    \
             g.recv_timeout(d) // audit:allow(A009, receiver usable only under its mutex)\n}\n",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn own_line_allow_covers_the_next_code_line() {
        let found = blocking_in_critical_section(&[file(
            "fn f(&self) {\n    let g = self.rx.lock().unwrap();\n    \
             // audit:allow(A009, bounded poll under the receiver mutex)\n    \
             let t = g.recv_timeout(d);\n}\n",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn fn_scoped_allow_covers_the_whole_body() {
        let found = blocking_in_critical_section(&[file(
            "// audit:allow(A009, shutdown-only: the write lock must span the I/O)\n\
             fn checkpoint(&self) {\n    let g = self.state.write();\n    \
             self.file.sync_all().unwrap();\n    self.vfs.create(p).unwrap();\n}\n",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn allow_without_reason_is_a_finding_and_does_not_suppress() {
        let found = blocking_in_critical_section(&[file(
            "fn f(&self) {\n    let g = self.state.lock().unwrap();\n    \
             self.file.sync_all().unwrap(); // audit:allow(A009)\n}\n",
        )]);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().any(|f| f.message.contains("without a reason")), "{found:?}");
        assert!(found.iter().any(|f| f.message.contains("`.sync_all(`")), "{found:?}");
    }

    #[test]
    fn stale_allow_is_a_finding() {
        let found = blocking_in_critical_section(&[file(
            "fn f(&self) {\n    // audit:allow(A009, historical; the sync moved away)\n    \
             let x = 1;\n}\n",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("stale audit:allow(A009)"), "{}", found[0].message);
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn prose_mentioning_the_format_is_not_an_annotation() {
        let found = blocking_in_critical_section(&[file(
            "// Write audit:allow(RULE, reason) to justify a hold.\nfn f() {}\n",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn strings_never_carry_allows() {
        let found = blocking_in_critical_section(&[file(
            "fn f(&self) {\n    let g = self.state.lock().unwrap();\n    \
             let s = \"audit:allow(A009, nice try)\";\n    \
             self.file.sync_all().unwrap();\n}\n",
        )]);
        assert_eq!(found.len(), 1, "the string is not an annotation: {found:?}");
    }

    #[test]
    fn binaries_are_out_of_scope() {
        let f = SourceFile::new(
            "crates/x/src/main.rs",
            "fn f(&self) {\n    let g = self.state.lock().unwrap();\n    \
             self.file.sync_all().unwrap();\n}\n",
        );
        assert!(blocking_in_critical_section(&[f]).is_empty());
    }

    #[test]
    fn test_code_is_out_of_scope() {
        let f = file(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t(&self) {\n        \
             let g = self.state.lock().unwrap();\n        \
             self.file.sync_all().unwrap();\n    }\n}\n",
        );
        assert!(blocking_in_critical_section(&[f]).is_empty());
    }

    #[test]
    fn thread_sleep_under_guard_is_a_finding() {
        let found = blocking_in_critical_section(&[file(
            "fn f(&self) {\n    let g = self.state.lock().unwrap();\n    \
             std::thread::sleep(d);\n}\n",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("thread::sleep"), "{}", found[0].message);
    }
}
