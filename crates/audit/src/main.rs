#![forbid(unsafe_code)]
//! `cind-audit` binary: `cargo run -p cind-audit -- check`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cind_audit::{baseline, rules, run_all, sarif};

const USAGE: &str = "\
cind-audit — workspace lint pass for the Cinderella codebase

USAGE:
  cind-audit check [--format text|json|sarif] [--write-baseline] [--root DIR]

Exit status: 0 clean, 1 findings, 2 usage/IO error.
--write-baseline regenerates audit-baseline.toml from the current tree
(refusing to grow any entry: the panic baseline only shrinks).";

fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    explicit.unwrap_or_else(|| {
        // crates/audit -> crates -> workspace root.
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
    })
}

fn run() -> Result<bool, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut format = Format::Text;
    let mut write_baseline = false;
    let mut root: Option<PathBuf> = None;
    let mut saw_check = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "check" => saw_check = true,
            "--format" => match it.next().map(String::as_str) {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                Some("sarif") => format = Format::Sarif,
                other => return Err(format!("bad --format {other:?}\n\n{USAGE}")),
            },
            "--write-baseline" => write_baseline = true,
            "--root" => {
                root = Some(PathBuf::from(
                    it.next().ok_or_else(|| format!("--root needs a value\n\n{USAGE}"))?,
                ));
            }
            "help" | "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument {other}\n\n{USAGE}")),
        }
    }
    if !saw_check {
        return Err(USAGE.to_owned());
    }

    let root = workspace_root(root);
    let files = load(&root)?;
    let baseline_path = root.join("audit-baseline.toml");
    let old_baseline = baseline::read(&baseline_path)?;

    if write_baseline {
        let raw = rules::panic_sites(&files);
        let new = baseline::shrink(&raw, &old_baseline).map_err(|grew| {
            format!(
                "refusing to grow the panic baseline:\n  {}",
                grew.join("\n  ")
            )
        })?;
        std::fs::write(&baseline_path, baseline::render(&new))
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        eprintln!(
            "wrote {} ({} files, {} sites)",
            baseline_path.display(),
            new.len(),
            new.values().sum::<u64>()
        );
    }

    let current_baseline =
        if write_baseline { baseline::read(&baseline_path)? } else { old_baseline };
    let findings = run_all(&files, &current_baseline);
    match format {
        Format::Json => {
            let objects: Vec<String> =
                findings.iter().map(cind_audit::Finding::to_json).collect();
            println!("[{}]", objects.join(","));
        }
        Format::Sarif => println!("{}", sarif::render(&findings)),
        Format::Text => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!(
                "cind-audit: {} finding{} over {} files",
                findings.len(),
                if findings.len() == 1 { "" } else { "s" },
                files.len()
            );
        }
    }
    Ok(findings.is_empty())
}

enum Format {
    Text,
    Json,
    Sarif,
}

fn load(root: &Path) -> Result<Vec<cind_audit::SourceFile>, String> {
    let files = cind_audit::load_workspace(root)
        .map_err(|e| format!("loading workspace at {}: {e}", root.display()))?;
    if files.is_empty() {
        return Err(format!("no sources under {} — wrong --root?", root.display()));
    }
    Ok(files)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
