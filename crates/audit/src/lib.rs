#![forbid(unsafe_code)]
//! `cind-audit` — the workspace's own static pass.
//!
//! Clippy checks what the Rust compiler can see; this crate checks what only
//! this codebase knows: that every crate root forbids `unsafe`, that library
//! code stays panic-free outside a shrinking baseline, that the buffer
//! pool's shard latches are never held across another acquisition, that
//! every [`Config`] knob reaches the CLI, that deterministic
//! replay/plan paths never read the wall clock, that no lock guard is
//! held across the sharded engine's fan-out calls, and that every
//! sync/flush decision in the serving crate stays inside the group-commit
//! coordinator.
//!
//! The pass is deliberately token-level, not AST-level: it has zero
//! dependencies, so it builds and runs even when the rest of the workspace
//! is mid-refactor, and its rules survive syntax the paper-reproduction
//! code does not use. A single lexer pass ([`lexer`]) yields both a token
//! stream and a blanked "code view" (comments, string literals, and
//! `#[cfg(test)]` regions replaced by spaces — length-preserving, so line
//! numbers hold); line rules run over the view, structural rules
//! ([`syntax`], [`locks`], [`blocking`]) walk the tokens through a
//! brace-tree with function/impl scoping. Rules that need doc comments or
//! CLI usage strings read the raw text explicitly.
//!
//! Rules:
//!
//! | id        | rule |
//! |-----------|------|
//! | CIND-A001 | every crate root starts with `#![forbid(unsafe_code)]` |
//! | CIND-A002 | no `unwrap()`/`expect()`/`panic!` in non-test library code beyond `audit-baseline.toml` |
//! | CIND-A003 | buffer-pool lock discipline: one shard latch at a time; `IoStats` only via its atomic API |
//! | CIND-A004 | every `Config` field is documented and wired to a CLI flag |
//! | CIND-A005 | no `Instant::now`/`SystemTime` in deterministic replay/plan paths |
//! | CIND-A006 | no lock guard held across a shard fan-out call in the sharded engine |
//! | CIND-A007 | no `sync`/`flush` calls in the serving crate outside the group-commit coordinator |
//! | CIND-A008 | the workspace-wide lock acquisition-order graph is acyclic (witness chain on failure) |
//! | CIND-A009 | no blocking call (I/O, channel, condvar, join) while a lock guard is live, unless `audit:allow`ed with a reason |
//!
//! Run as `cargo run -p cind-audit -- check` (add `--format json` or
//! `--format sarif` for machine-readable output, `--write-baseline` to
//! ratchet the panic baseline down after a burn-down). Exit status is
//! non-zero iff findings remain.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod blocking;
pub mod lexer;
pub mod locks;
pub mod rules;
pub mod sarif;
pub mod scan;
pub mod syntax;

/// One rule violation, machine-readable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id, `CIND-Axxx`.
    pub rule: &'static str,
    /// Human explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {} {}", self.file, self.line, self.rule, self.message)
    }
}

impl Finding {
    /// Renders the finding as one JSON object (no escaping surprises: paths
    /// and messages contain no control characters by construction).
    #[must_use]
    pub fn to_json(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            esc(&self.file),
            self.line,
            self.rule,
            esc(&self.message)
        )
    }
}

/// A workspace source file: raw text, lexed tokens, and the blanked code
/// view — all derived in one lexer pass.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// The file exactly as on disk.
    pub raw: String,
    /// `raw` with comments, string literals, and `#[cfg(test)]` regions
    /// replaced by spaces — same length, same line structure.
    pub code: String,
    /// The token stream; tokens inside `#[cfg(test)]` regions are
    /// `masked` and skipped by structural rules.
    pub tokens: Vec<lexer::Token>,
}

impl SourceFile {
    /// Builds a file from its path and raw content, deriving the token
    /// stream and the code view.
    #[must_use]
    pub fn new(path: impl Into<String>, raw: impl Into<String>) -> Self {
        let raw = raw.into();
        let (mut tokens, stripped) = lexer::lex(&raw);
        let ranges = scan::test_region_ranges(&stripped);
        for t in &mut tokens {
            t.masked = ranges.iter().any(|&(s, e)| t.start >= s && t.start < e);
        }
        let code = scan::mask_test_regions(&stripped);
        Self { path: path.into(), raw, code, tokens }
    }
}

/// Loads every `.rs` under `crates/*/src` and the root package's `src`.
///
/// # Errors
/// I/O errors reading the tree.
pub fn load_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in std::fs::read_dir(&crates)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut paths)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut paths)?;
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let raw = std::fs::read_to_string(&p)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile::new(rel, raw));
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Runs every rule over `files`, applying the panic baseline, and returns
/// all findings sorted by (file, line, rule).
#[must_use]
pub fn run_all(files: &[SourceFile], panic_baseline: &BTreeMap<String, u64>) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(rules::forbid_unsafe(files));
    out.extend(baseline::apply(rules::panic_sites(files), panic_baseline));
    out.extend(rules::lock_discipline(files));
    out.extend(rules::config_coverage(files));
    out.extend(rules::no_wall_clock(files));
    out.extend(rules::shard_fanout_lock_freedom(files));
    out.extend(rules::commit_path_sync_discipline(files));
    out.extend(locks::lock_order(files));
    out.extend(blocking::blocking_in_critical_section(files));
    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_renders_grep_friendly_and_json() {
        let f = Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: "CIND-A001",
            message: "missing #![forbid(unsafe_code)]".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:7: CIND-A001 missing #![forbid(unsafe_code)]"
        );
        let json = f.to_json();
        assert!(json.contains("\"line\":7"), "{json}");
        assert!(json.contains("\"rule\":\"CIND-A001\""), "{json}");
    }

    /// The acceptance gate: the pass itself reports a clean tree. Seeded
    /// violations are covered per-rule in [`rules::tests`].
    #[test]
    fn real_workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/audit has a workspace root two levels up");
        let files = load_workspace(root).expect("workspace readable");
        assert!(
            files.iter().any(|f| f.path.ends_with("core/src/catalog.rs")),
            "loader missed the core crate — looked under {}",
            root.display()
        );
        let baseline = baseline::read(&root.join("audit-baseline.toml"))
            .expect("audit-baseline.toml parses");
        let findings = run_all(&files, &baseline);
        assert!(
            findings.is_empty(),
            "audit found violations in the tree:\n{}",
            findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }
}
