//! The line-level audit rules (A001–A007). Each takes the loaded
//! workspace and returns machine-readable [`Finding`]s; each has a
//! self-test seeding the violation it exists to catch. The structural
//! pieces of A003/A006 run on the [`crate::syntax`] event walker; the
//! engine-backed workspace analyses live in [`crate::locks`] (A008) and
//! [`crate::blocking`] (A009).

use crate::scan::lines;
use crate::{syntax, Finding, SourceFile};

/// CIND-A001: every crate root (`src/lib.rs`, `src/main.rs`,
/// `src/bin/*.rs`) declares `#![forbid(unsafe_code)]`.
///
/// `forbid` (not `deny`) so no inner module can re-allow it: the engine's
/// concurrency claims (sharded pool, parallel scan) rest on the borrow
/// checker, and this keeps that audit-enforced rather than convention.
#[must_use]
pub fn forbid_unsafe(files: &[SourceFile]) -> Vec<Finding> {
    files
        .iter()
        .filter(|f| is_crate_root(&f.path))
        .filter(|f| !f.code.contains("#![forbid(unsafe_code)]"))
        .map(|f| Finding {
            file: f.path.clone(),
            line: 1,
            rule: "CIND-A001",
            message: "crate root is missing #![forbid(unsafe_code)]".into(),
        })
        .collect()
}

fn is_crate_root(path: &str) -> bool {
    path.ends_with("/src/lib.rs")
        || path.ends_with("/src/main.rs")
        || path == "src/lib.rs"
        || path == "src/main.rs"
        || (path.contains("/src/bin/") && path.ends_with(".rs"))
}

/// CIND-A002, raw pass: every `unwrap()`/`expect()`/`panic!` site in
/// non-test library code. The caller nets these against the baseline
/// ([`crate::baseline::apply`]); binaries (`main.rs`, `src/bin/`) are out
/// of scope — the rule protects code other crates link against.
#[must_use]
pub fn panic_sites(files: &[SourceFile]) -> Vec<Finding> {
    const TOKENS: [&str; 3] = [".unwrap()", ".expect(", "panic!"];
    let mut out = Vec::new();
    for f in files {
        if !is_library_code(&f.path) {
            continue;
        }
        for (n, line) in lines(&f.code) {
            for tok in TOKENS {
                for _ in line.matches(tok) {
                    out.push(Finding {
                        file: f.path.clone(),
                        line: n,
                        rule: "CIND-A002",
                        message: format!("`{tok}` in library code"),
                    });
                }
            }
        }
    }
    out
}

pub(crate) fn is_library_code(path: &str) -> bool {
    !path.ends_with("/main.rs") && !path.contains("/src/bin/")
}

/// CIND-A003: lock discipline in `cind-storage`'s buffer pool.
///
/// Two checks over `crates/storage/src/buffer.rs`:
///
/// 1. **One shard latch at a time.** A `let`-bound guard from `.lock(` is
///    considered held until its enclosing block closes; any further
///    `.lock(` while one is held is a deadlock-shaped bug (shard order is
///    caller-dependent). Temporary guards (`shard.lock().…` in expression
///    position) are checked against held guards but do not themselves
///    hold past their statement.
/// 2. **`IoStats` only via its atomic API.** A direct assignment
///    (`stats.<field> =`, `+=`, …) would need `&mut` and would un-share
///    the pool; the counters must go through `fetch_add`-style methods.
#[must_use]
pub fn lock_discipline(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !f.path.ends_with("storage/src/buffer.rs") {
            continue;
        }
        out.extend(nested_lock_findings(f));
        out.extend(stats_write_findings(f));
    }
    out
}

/// Walker-backed port of the original A003 byte-machine: a `.lock(`
/// acquisition while a `.lock(`-method guard is already held. Guards from
/// `.read()`/`.write()` are tracked by the walker but do not count as
/// shard latches here — exactly the legacy scope.
fn nested_lock_findings(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for func in syntax::functions(f) {
        for ev in syntax::events(f, &func) {
            if let syntax::Event::Acquire { line, method, held, .. } = &ev {
                if method == "lock" && held.iter().any(|h| h.method == "lock") {
                    out.push(Finding {
                        file: f.path.clone(),
                        line: *line,
                        rule: "CIND-A003",
                        message: "shard latch acquired while another is held \
                                  (guards must drop before the next .lock())"
                            .into(),
                    });
                }
            }
        }
    }
    out
}

fn stats_write_findings(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (n, line) in lines(&f.code) {
        let mut from = 0;
        while let Some(pos) = line[from..].find("stats.") {
            let at = from + pos;
            let rest = &line[at + "stats.".len()..];
            let field_len =
                rest.bytes().take_while(|c| c.is_ascii_alphanumeric() || *c == b'_').count();
            let after = rest[field_len..].trim_start();
            let direct_write = (after.starts_with('=') && !after.starts_with("=="))
                || after.starts_with("+=")
                || after.starts_with("-=");
            if field_len > 0 && direct_write {
                out.push(Finding {
                    file: f.path.clone(),
                    line: n,
                    rule: "CIND-A003",
                    message: format!(
                        "IoStats field `{}` written directly; use the atomic API",
                        &rest[..field_len]
                    ),
                });
            }
            from = at + "stats.".len();
        }
    }
    out
}

/// CIND-A004: every field of a user-facing config struct —
/// `cinderella_core::Config` and the serving layer's `ServeConfig` — is
/// doc-commented and reachable from the CLI as `--kebab-case-name`.
///
/// The structs are parsed from their crate's raw text (doc comments do
/// not survive the code view); the flag search runs over the raw text of
/// `crates/cli/src` so usage strings count as wiring evidence alongside
/// `args.get("…")` parsing.
#[must_use]
pub fn config_coverage(files: &[SourceFile]) -> Vec<Finding> {
    const CONFIGS: [(&str, &str); 2] = [
        ("core/src/config.rs", "Config"),
        ("server/src/config.rs", "ServeConfig"),
    ];
    let cli_text: String = files
        .iter()
        .filter(|f| f.path.contains("cli/src/"))
        .map(|f| f.raw.as_str())
        .collect();
    let mut out = Vec::new();
    for (path_suffix, struct_name) in CONFIGS {
        let Some(config) = files.iter().find(|f| f.path.ends_with(path_suffix)) else {
            continue; // synthetic trees without the crate: nothing to check
        };
        for field in config_fields(&config.raw, struct_name) {
            if !field.documented {
                out.push(Finding {
                    file: config.path.clone(),
                    line: field.line,
                    rule: "CIND-A004",
                    message: format!(
                        "{struct_name} field `{}` has no doc comment",
                        field.name
                    ),
                });
            }
            let flag = format!("--{}", field.name.replace('_', "-"));
            if !cli_text.contains(&flag) {
                out.push(Finding {
                    file: config.path.clone(),
                    line: field.line,
                    rule: "CIND-A004",
                    message: format!(
                        "{struct_name} field `{}` is not wired to a `{flag}` CLI flag",
                        field.name
                    ),
                });
            }
        }
    }
    out
}

struct ConfigField {
    name: String,
    line: usize,
    documented: bool,
}

/// Extracts `pub <name>:` fields of `pub struct <struct_name> { … }` with
/// their line numbers and whether a `///` line directly precedes them.
fn config_fields(raw: &str, struct_name: &str) -> Vec<ConfigField> {
    let mut out = Vec::new();
    let all: Vec<&str> = raw.lines().collect();
    let header = format!("pub struct {struct_name} {{");
    let Some(start) = all.iter().position(|l| l.trim_start().starts_with(&header)) else {
        return out;
    };
    let mut depth = 0usize;
    for (off, line) in all[start..].iter().enumerate() {
        depth += line.matches('{').count();
        depth = depth.saturating_sub(line.matches('}').count());
        if off > 0 && depth == 0 {
            break;
        }
        let trimmed = line.trim_start();
        if off > 0 && depth == 1 && trimmed.starts_with("pub ") {
            if let Some(name) = trimmed
                .strip_prefix("pub ")
                .and_then(|r| r.split_once(':'))
                .map(|(n, _)| n.trim())
            {
                if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    let documented = all[start + off - 1].trim_start().starts_with("///");
                    out.push(ConfigField {
                        name: name.to_owned(),
                        line: start + off + 1,
                        documented,
                    });
                }
            }
        }
    }
    out
}

/// CIND-A005: deterministic replay and planning paths never read the wall
/// clock. WAL replay, snapshot restore, query planning, and the catalog's
/// split/rating machinery must produce identical results run-to-run; an
/// `Instant::now()` that leaks into a decision breaks replayability.
#[must_use]
pub fn no_wall_clock(files: &[SourceFile]) -> Vec<Finding> {
    const DETERMINISTIC: [&str; 7] = [
        "storage/src/wal.rs",
        "storage/src/persist.rs",
        "query/src/planner.rs",
        "core/src/catalog.rs",
        "core/src/arena.rs",
        "core/src/rating.rs",
        "core/src/placement.rs",
    ];
    const CLOCKS: [&str; 2] = ["Instant::now", "SystemTime"];
    let mut out = Vec::new();
    for f in files {
        if !DETERMINISTIC.iter().any(|d| f.path.ends_with(d)) {
            continue;
        }
        for (n, line) in lines(&f.code) {
            for clock in CLOCKS {
                if line.contains(clock) {
                    out.push(Finding {
                        file: f.path.clone(),
                        line: n,
                        rule: "CIND-A005",
                        message: format!("`{clock}` in a deterministic replay/plan path"),
                    });
                }
            }
        }
    }
    out
}

/// CIND-A006: no lock guard held across shard fan-out.
///
/// `ShardedEngine`'s slot locks exist only to swap an `Arc<Engine>` during
/// `reopen_shard`; every fan-out path (query fan-out, stats, validate,
/// flush/checkpoint/merge) must clone the engine handles first
/// (`engines()`) and run lock-free. A `let`-bound guard from
/// `.read()`/`.write()`/`.lock(` still live at a call that fans over every
/// shard (`.engines()`, `thread::scope`) would serialise the whole store
/// behind one shard — the exact global-writer-lock regression sharding
/// removed. Temporary guards in expression position drop within their own
/// statement and are fine.
#[must_use]
pub fn shard_fanout_lock_freedom(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !f.path.ends_with("server/src/sharded.rs") {
            continue;
        }
        out.extend(fanout_findings(f));
    }
    out
}

/// CIND-A007: all durability decisions live in the commit coordinator.
///
/// The serving crate has exactly one place that is allowed to decide when
/// bytes become durable: `server/src/commit.rs`, the group-commit
/// coordinator. A stray `.sync_all()` on a file elsewhere would either
/// double-sync (silently eating the throughput the coordinator exists to
/// buy) or — worse — ack data the coordinator never sequenced, breaking
/// the "acked ⇒ replayable" contract the crash tests pin down. `.flush()`
/// is banned alongside the sync family: on files it is a durability
/// half-measure, and on sockets it hides buffering decisions that belong
/// to the batched writers. Everything outside `crates/server` (storage's
/// own sinks, the sim VFS, CLI stdout) is out of scope.
#[must_use]
pub fn commit_path_sync_discipline(files: &[SourceFile]) -> Vec<Finding> {
    const SYNCS: [&str; 4] = [".sync(", ".sync_all(", ".sync_data(", ".flush()"];
    let mut out = Vec::new();
    for f in files {
        if !f.path.contains("server/src/") || f.path.ends_with("server/src/commit.rs") {
            continue;
        }
        for (n, line) in lines(&f.code) {
            for t in SYNCS {
                if line.contains(t) {
                    out.push(Finding {
                        file: f.path.clone(),
                        line: n,
                        rule: "CIND-A007",
                        message: format!(
                            "`{t}` outside the group-commit coordinator — every \
                             sync/flush decision in the serving crate belongs to \
                             commit.rs"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Walker-backed port of the original A006 byte-machine: any guard
/// (`.lock(`/`.read()`/`.write()`, `let`-bound) still live at a fan-out
/// call — `.engines()` or a `thread::scope` mention.
fn fanout_findings(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut push = |line: usize| {
        out.push(Finding {
            file: f.path.clone(),
            line,
            rule: "CIND-A006",
            message: "lock guard held across a shard fan-out call \
                      (clone the engine handles first, then drop the guard)"
                .into(),
        });
    };
    for func in syntax::functions(f) {
        for ev in syntax::events(f, &func) {
            match &ev {
                syntax::Event::Call { line, name, empty_args: true, held, .. }
                    if name == "engines" && !held.is_empty() =>
                {
                    push(*line);
                }
                syntax::Event::PathCall { line, path, held }
                    if path == "thread::scope" && !held.is_empty() =>
                {
                    push(*line);
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, raw: &str) -> SourceFile {
        SourceFile::new(path, raw)
    }

    // ---- CIND-A001 -----------------------------------------------------

    #[test]
    fn a001_catches_missing_forbid_and_accepts_present() {
        let bad = file("crates/x/src/lib.rs", "//! docs\npub fn f() {}\n");
        let good =
            file("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n");
        let non_root = file("crates/x/src/inner.rs", "pub fn f() {}\n");
        let found = forbid_unsafe(&[bad, non_root]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "CIND-A001");
        assert_eq!(found[0].line, 1);
        assert!(forbid_unsafe(&[good]).is_empty());
    }

    #[test]
    fn a001_covers_bin_targets_and_root_package() {
        let bins = [
            file("crates/bench/src/bin/fig4.rs", "fn main() {}\n"),
            file("crates/cli/src/main.rs", "fn main() {}\n"),
            file("src/lib.rs", "pub mod x;\n"),
        ];
        assert_eq!(forbid_unsafe(&bins).len(), 3);
    }

    // ---- CIND-A002 -----------------------------------------------------

    #[test]
    fn a002_counts_sites_in_library_code_only() {
        let lib = file(
            "crates/x/src/lib.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }\n\
             fn g(x: Option<u8>) { x.expect(\"reason\"); panic!(\"boom\"); }\n\
             #[cfg(test)]\nmod tests { fn t() { None::<u8>.unwrap(); } }\n",
        );
        let main = file("crates/x/src/main.rs", "fn main() { None::<u8>.unwrap(); }\n");
        let found = panic_sites(&[lib, main]);
        assert_eq!(found.len(), 3, "{found:?}");
        assert!(found.iter().all(|f| f.rule == "CIND-A002"));
        assert_eq!(found[0].line, 1);
        assert_eq!(found[1].line, 2);
        assert!(found.iter().all(|f| f.file.ends_with("lib.rs")), "binaries exempt");
    }

    #[test]
    fn a002_ignores_comments_doc_examples_and_strings() {
        let lib = file(
            "crates/x/src/lib.rs",
            "/// ```\n/// x.unwrap();\n/// ```\n\
             // a comment saying panic!\n\
             fn f() { let s = \"don't .unwrap() me\"; let _ = s; }\n",
        );
        assert!(panic_sites(&[lib]).is_empty());
    }

    // ---- CIND-A003 -----------------------------------------------------

    #[test]
    fn a003_catches_nested_shard_lock() {
        let bad = file(
            "crates/storage/src/buffer.rs",
            "impl P {\n\
             fn steal(&self) {\n\
                 let mut g = self.shards[0].lock().unwrap();\n\
                 let other = self.shards[1].lock().unwrap();\n\
                 g.merge(other);\n\
             }\n\
             }\n",
        );
        let found = lock_discipline(&[bad]);
        let nested: Vec<_> =
            found.iter().filter(|f| f.message.contains("latch")).collect();
        assert_eq!(nested.len(), 1, "{found:?}");
        assert_eq!(nested[0].line, 4);
        assert_eq!(nested[0].rule, "CIND-A003");
    }

    #[test]
    fn a003_allows_sequential_per_shard_locking() {
        let good = file(
            "crates/storage/src/buffer.rs",
            "impl P {\n\
             fn sweep(&self) {\n\
                 for shard in self.shards.iter() {\n\
                     let g = shard.lock().unwrap();\n\
                     g.touch();\n\
                 }\n\
             }\n\
             fn count(&self) -> usize {\n\
                 self.shards.iter().map(|s| s.lock().unwrap().len()).sum()\n\
             }\n\
             }\n",
        );
        let found = nested_lock_findings(&good);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn a003_catches_direct_stats_write_but_not_atomic_api() {
        let bad = file(
            "crates/storage/src/buffer.rs",
            "fn f(&self, hit: bool) {\n\
                 self.stats.logical_reads += 1;\n\
                 self.stats.evictions = 9;\n\
                 if self.stats.hits == 0 {}\n\
                 self.stats.record_access(hit, false);\n\
             }\n",
        );
        let found = stats_write_findings(&bad);
        assert_eq!(found.len(), 2, "{found:?}");
        assert_eq!((found[0].line, found[1].line), (2, 3));
        assert!(found[0].message.contains("logical_reads"));
    }

    #[test]
    fn a003_only_fires_on_the_buffer_pool() {
        let elsewhere = file(
            "crates/core/src/catalog.rs",
            "fn f(&self) { let a = x.lock().unwrap(); let b = y.lock().unwrap(); }\n",
        );
        assert!(lock_discipline(&[elsewhere]).is_empty());
    }

    // ---- CIND-A004 -----------------------------------------------------

    fn config_src(with_doc: bool) -> String {
        format!(
            "pub struct Config {{\n\
             {}    pub weight: f64,\n\
             \x20   /// Capacity B.\n\
             \x20   pub max_size: u64,\n\
             }}\n",
            if with_doc { "    /// Weight w.\n" } else { "" }
        )
    }

    #[test]
    fn a004_catches_undocumented_and_unwired_fields() {
        let config = file("crates/core/src/config.rs", &config_src(false));
        let cli = file("crates/cli/src/main.rs", "const USAGE: &str = \"--max-size N\";\n");
        let found = config_coverage(&[config, cli]);
        // `weight`: undocumented AND unwired; `max_size`: wired + documented.
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found[0].message.contains("doc comment"), "{found:?}");
        assert!(found[1].message.contains("--weight"), "{found:?}");
        assert!(found.iter().all(|f| f.rule == "CIND-A004"));
    }

    #[test]
    fn a004_accepts_documented_wired_fields() {
        let config = file("crates/core/src/config.rs", &config_src(true));
        let cli = file(
            "crates/cli/src/main.rs",
            "const USAGE: &str = \"--weight W --max-size N\";\n",
        );
        assert!(config_coverage(&[config, cli]).is_empty());
    }

    #[test]
    fn a004_covers_serve_config_too() {
        let serve = file(
            "crates/server/src/config.rs",
            "pub struct ServeConfig {\n\
             \x20   pub queue_depth: usize,\n\
             }\n",
        );
        let cli = file("crates/cli/src/main.rs", "const USAGE: &str = \"\";\n");
        let found = config_coverage(&[serve, cli]);
        // `queue_depth`: undocumented AND not wired to --queue-depth.
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().all(|f| f.message.contains("ServeConfig")), "{found:?}");
        assert!(found[1].message.contains("--queue-depth"), "{found:?}");
    }

    #[test]
    fn a004_accepts_wired_serve_config() {
        let serve = file(
            "crates/server/src/config.rs",
            "pub struct ServeConfig {\n\
             \x20   /// Queue bound.\n\
             \x20   pub queue_depth: usize,\n\
             }\n",
        );
        let cli = file(
            "crates/cli/src/main.rs",
            "const USAGE: &str = \"--queue-depth K\";\n",
        );
        assert!(config_coverage(&[serve, cli]).is_empty());
    }

    // ---- CIND-A005 -----------------------------------------------------

    #[test]
    fn a005_catches_wall_clock_in_deterministic_paths_only() {
        let planner = file(
            "crates/query/src/planner.rs",
            "fn plan() { let t0 = std::time::Instant::now(); let _ = t0; }\n",
        );
        let executor = file(
            "crates/query/src/executor.rs",
            "fn run() { let t0 = std::time::Instant::now(); let _ = t0; }\n",
        );
        let found = no_wall_clock(&[planner, executor]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "CIND-A005");
        assert!(found[0].file.ends_with("planner.rs"), "timing code elsewhere is fine");
    }

    #[test]
    fn a005_catches_system_time_in_wal() {
        let wal = file(
            "crates/storage/src/wal.rs",
            "fn stamp() { let _ = std::time::SystemTime::now(); }\n",
        );
        assert_eq!(no_wall_clock(&[wal]).len(), 1);
    }

    // ---- CIND-A006 -----------------------------------------------------

    #[test]
    fn a006_catches_guard_held_across_engines_fanout() {
        let bad = file(
            "crates/server/src/sharded.rs",
            "fn stats(&self) {\n    let guard = self.slots[0].read();\n    \
             for e in self.engines() { e.stats(); }\n    drop(guard);\n}\n",
        );
        let found = shard_fanout_lock_freedom(&[bad]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "CIND-A006");
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn a006_catches_guard_held_across_thread_scope() {
        let bad = file(
            "crates/server/src/sharded.rs",
            "fn query(&self) {\n    let g = self.slots[1].write();\n    \
             std::thread::scope(|s| { let _ = s; });\n}\n",
        );
        assert_eq!(shard_fanout_lock_freedom(&[bad]).len(), 1);
    }

    #[test]
    fn a006_accepts_clone_first_then_lock_free_fanout() {
        let good = file(
            "crates/server/src/sharded.rs",
            "fn ok(&self) {\n    let engines = self.engines();\n    \
             for e in engines { e.flush(); }\n    \
             let mut guard = self.slots[0].write();\n    *guard = new_engine();\n}\n",
        );
        assert!(shard_fanout_lock_freedom(&[good]).is_empty());
    }

    #[test]
    fn a006_releases_guards_when_their_block_closes() {
        let good = file(
            "crates/server/src/sharded.rs",
            "fn ok(&self) {\n    {\n        let g = self.slots[0].read();\n        \
             drop(g);\n    }\n    for e in self.engines() { e.flush(); }\n}\n",
        );
        assert!(shard_fanout_lock_freedom(&[good]).is_empty());
    }

    #[test]
    fn a006_ignores_other_files() {
        let elsewhere = file(
            "crates/server/src/server.rs",
            "fn f(&self) { let g = self.lock.read(); self.engines(); drop(g); }\n",
        );
        assert!(shard_fanout_lock_freedom(&[elsewhere]).is_empty());
    }

    // ---- CIND-A007 -----------------------------------------------------

    #[test]
    fn a007_catches_stray_sync_and_flush_in_serving_crate() {
        let bad = file(
            "crates/server/src/engine.rs",
            "fn persist(f: &mut std::fs::File) {\n    f.sync_all().unwrap();\n}\n\
             fn persist2(f: &mut std::fs::File) {\n    f.sync_data().unwrap();\n}\n\
             fn push(s: &mut std::net::TcpStream) {\n    s.flush().unwrap();\n}\n",
        );
        let found = commit_path_sync_discipline(&[bad]);
        assert_eq!(found.len(), 3, "{found:?}");
        assert!(found.iter().all(|f| f.rule == "CIND-A007"));
        assert_eq!(found[0].line, 2);
        assert_eq!(found[1].line, 5);
        assert_eq!(found[2].line, 8);
    }

    #[test]
    fn a007_catches_vfs_file_sync_outside_coordinator() {
        let bad = file(
            "crates/server/src/server.rs",
            "fn f(file: &mut Box<dyn VfsFile>) { file.sync().unwrap(); }\n",
        );
        assert_eq!(commit_path_sync_discipline(&[bad]).len(), 1);
    }

    #[test]
    fn a007_allows_the_coordinator_itself() {
        let coordinator = file(
            "crates/server/src/commit.rs",
            "fn group(file: &mut Box<dyn VfsFile>) { file.sync().unwrap(); }\n",
        );
        assert!(commit_path_sync_discipline(&[coordinator]).is_empty());
    }

    #[test]
    fn a007_ignores_other_crates_and_test_code() {
        let storage = file(
            "crates/storage/src/vfs.rs",
            "fn f(file: &mut std::fs::File) { file.sync_all().unwrap(); }\n",
        );
        let test_only = file(
            "crates/server/src/client.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn f(s: &mut std::net::TcpStream) { s.flush().unwrap(); }\n}\n",
        );
        assert!(commit_path_sync_discipline(&[storage, test_only]).is_empty());
    }
}
