//! The brace-tree: function/impl scoping and the guard-tracking event
//! walker every structural rule (A003, A006, A008, A009) runs on.
//!
//! [`functions`] finds every `fn` body in a file together with the impl
//! type it belongs to; [`events`] walks one body and emits a flat event
//! stream — lock acquisitions, method calls, `path::calls` — each carrying
//! a snapshot of the lock guards lexically live at that point.
//!
//! Guard tracking is deliberately conservative and mirrors the original
//! A003/A006 byte-walkers: a `let`-bound guard from `.lock(…)` /
//! `.read()` / `.write()` is held until its enclosing block closes or a
//! `drop(<var>)` names it. Expression-position temporaries
//! (`self.write().table.flush()`) and non-`let` reassignments
//! (`st = self.lock()`) are *not* tracked — a documented under-approximation
//! (see DESIGN.md §14), never a source of false positives.

use crate::lexer::{Token, TokenKind};
use crate::scan::line_of;
use crate::SourceFile;

/// One `fn` body with its lexical context.
pub struct Function {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl` target type (`impl Engine`, `impl Display for X`
    /// → `X`), if any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token-index range of the body: first token after `{` .. index of
    /// the matching `}`.
    pub body: std::ops::Range<usize>,
}

/// A lock guard lexically live at an event.
#[derive(Clone, Debug)]
pub struct Held {
    /// Lock class ([`lock_class`]).
    pub class: String,
    /// Acquiring method: `lock`, `read`, or `write`.
    pub method: String,
    /// The `let`-bound variable name, when one could be parsed.
    pub var: Option<String>,
    /// 1-based line of the acquisition.
    pub line: usize,
    /// Brace depth the binding lives at (internal: release bookkeeping).
    depth: usize,
}

/// One event in a function body, with the guards held at that point.
#[derive(Debug)]
pub enum Event {
    /// A lock acquisition: `.lock(…)`, or empty-args `.read()`/`.write()`.
    /// `held` is the snapshot *before* this guard is added.
    Acquire {
        /// 1-based line.
        line: usize,
        /// Lock class ([`lock_class`]).
        class: String,
        /// `lock` / `read` / `write`.
        method: String,
        /// Whether the statement `let`-binds the guard (tracked past the
        /// statement) or drops it as a temporary.
        let_bound: bool,
        /// Guards live before this acquisition.
        held: Vec<Held>,
    },
    /// Any other method call `.name(…)`.
    Call {
        /// 1-based line.
        line: usize,
        /// Method name.
        name: String,
        /// Receiver tail identifier (`self.cond.wait(…)` → `cond`), when
        /// one could be resolved.
        recv_tail: Option<String>,
        /// `()` — no arguments.
        empty_args: bool,
        /// First argument when it is a bare identifier (`wait(st)` → `st`).
        first_arg_ident: Option<String>,
        /// Guards live at the call.
        held: Vec<Held>,
    },
    /// A `prefix::name` path mention (`thread::sleep`, `thread::scope`).
    PathCall {
        /// 1-based line.
        line: usize,
        /// `prefix::name` (last two path segments).
        path: String,
        /// Guards live at the mention.
        held: Vec<Held>,
    },
}

impl Event {
    /// The event's line, whatever its kind.
    #[must_use]
    pub fn line(&self) -> usize {
        match self {
            Event::Acquire { line, .. }
            | Event::Call { line, .. }
            | Event::PathCall { line, .. } => *line,
        }
    }
}

/// Names the lock class of an acquisition or channel endpoint from its
/// receiver tail: `self` resolves to the impl type (so `self.lock()`
/// helpers and their call sites unify), anything else is the tail
/// identifier depluralized (`slots[0]` and `slot` are one class).
#[must_use]
pub fn lock_class(tail: Option<&str>, impl_type: Option<&str>) -> String {
    match tail {
        Some("self") => impl_type.unwrap_or("self").to_owned(),
        Some(t) => depluralize(t),
        None => "<expr>".to_owned(),
    }
}

fn depluralize(s: &str) -> String {
    if s.len() > 3 && s.ends_with('s') && !s.ends_with("ss") {
        s[..s.len() - 1].to_owned()
    } else {
        s.to_owned()
    }
}

fn next_code(toks: &[Token], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if !toks[i].is_comment() {
            return Some(i);
        }
        i += 1;
    }
    None
}

fn prev_code(toks: &[Token], i: usize, lo: usize) -> Option<usize> {
    let mut j = i;
    while j > lo {
        j -= 1;
        if !toks[j].is_comment() {
            return Some(j);
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[Token], src: &str, open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(src, b'{') {
            depth += 1;
        } else if t.is_punct(src, b'}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// From the token after `fn <name>`, the body's `{` index — skipping the
/// signature (parens balanced; a `;` at paren depth 0 means no body).
fn body_open(toks: &[Token], src: &str, from: usize) -> Option<usize> {
    let mut paren = 0i64;
    for (j, t) in toks.iter().enumerate().skip(from) {
        if t.is_comment() {
            continue;
        }
        if t.is_punct(src, b'(') {
            paren += 1;
        } else if t.is_punct(src, b')') {
            paren -= 1;
        } else if paren == 0 && t.is_punct(src, b'{') {
            return Some(j);
        } else if paren == 0 && t.is_punct(src, b';') {
            return None;
        }
    }
    None
}

/// The target type of an `impl` header starting after the `impl` keyword:
/// the last ident at angle-bracket depth 0 before the body `{` (so
/// `impl Trait for Type` → `Type`, `impl Engine<K>` → `Engine`), plus the
/// body-`{` token index.
fn impl_header(toks: &[Token], src: &str, from: usize) -> Option<(String, usize)> {
    let mut angle = 0i64;
    let mut ty: Option<String> = None;
    let mut j = from;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_comment() {
            j += 1;
            continue;
        }
        match t.kind {
            TokenKind::Punct => match src.as_bytes()[t.start] {
                b'<' => angle += 1,
                // `->` inside an `impl Fn(…) -> T` bound must not close
                // a generic.
                b'>' if !(j > from && toks[j - 1].is_punct(src, b'-')) => angle -= 1,
                b'{' if angle <= 0 => return ty.map(|t| (t, j)),
                b';' if angle <= 0 => return None,
                _ => {}
            },
            TokenKind::Ident => {
                let text = t.text(src);
                if angle <= 0 && text == "where" {
                    // Type settled; skip the clause to the body brace.
                    let open = (j..toks.len()).find(|&k| toks[k].is_punct(src, b'{'))?;
                    return ty.map(|t| (t, open));
                }
                if angle <= 0 && !matches!(text, "for" | "dyn" | "mut" | "const" | "unsafe") {
                    ty = Some(text.to_owned());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Every function body in the file, with nesting and `impl` context
/// resolved. `#[cfg(test)]` items are skipped (their tokens are masked).
#[must_use]
pub fn functions(f: &SourceFile) -> Vec<Function> {
    let toks = &f.tokens;
    let src = &f.raw;
    let mut out = Vec::new();
    // Stack of (end-token-index, impl target type).
    let mut impls: Vec<(usize, String)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while impls.last().is_some_and(|&(end, _)| i >= end) {
            impls.pop();
        }
        let t = &toks[i];
        if t.masked || t.is_comment() {
            i += 1;
            continue;
        }
        if t.is_ident(src, "impl") {
            if let Some((ty, open)) = impl_header(toks, src, i + 1) {
                if let Some(end) = match_brace(toks, src, open) {
                    impls.push((end, ty));
                }
                i = open + 1;
                continue;
            }
        }
        if t.is_ident(src, "fn") {
            if let Some(ni) = next_code(toks, i + 1) {
                if toks[ni].kind == TokenKind::Ident {
                    if let Some(open) = body_open(toks, src, ni + 1) {
                        if let Some(close) = match_brace(toks, src, open) {
                            out.push(Function {
                                name: toks[ni].text(src).to_owned(),
                                impl_type: impls.last().map(|(_, ty)| ty.clone()),
                                line: line_of(src, t.start),
                                body: open + 1..close,
                            });
                        }
                    }
                    // Keep scanning from just past the name so nested fns
                    // inside this body are discovered too.
                    i = ni + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Receiver tail ident of a method call, backtracking from its `.` token:
/// `state.lock()` → `state`; `self.shard(key).lock()` → `shard` (balance
/// the call parens); `self.slots[0].read()` → `slots` (balance the index);
/// `self.0.drain()` → `self` (skip the tuple field).
fn recv_tail(toks: &[Token], src: &str, dot: usize, lo: usize) -> Option<String> {
    let mut j = prev_code(toks, dot, lo)?;
    loop {
        match toks[j].kind {
            TokenKind::Ident => return Some(toks[j].text(src).to_owned()),
            TokenKind::Num => {
                // Tuple field: `recv.0.send(…)` — hop over `.` and resolve
                // the receiver proper.
                j = prev_code(toks, j, lo)?;
                if !toks[j].is_punct(src, b'.') {
                    return None;
                }
                j = prev_code(toks, j, lo)?;
            }
            TokenKind::Punct => {
                let (close, open) = match src.as_bytes()[toks[j].start] {
                    b')' => (b')', b'('),
                    b']' => (b']', b'['),
                    _ => return None,
                };
                let mut depth = 0i64;
                loop {
                    let t = &toks[j];
                    if t.is_punct(src, close) {
                        depth += 1;
                    } else if t.is_punct(src, open) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j = prev_code(toks, j, lo)?;
                }
                j = prev_code(toks, j, lo)?;
            }
            _ => return None,
        }
    }
}

/// `let [mut] <ident>` → the ident; destructuring patterns give `None`.
fn let_var(toks: &[Token], src: &str, after_let: usize) -> Option<String> {
    let mut j = next_code(toks, after_let)?;
    if toks[j].is_ident(src, "mut") {
        j = next_code(toks, j + 1)?;
    }
    (toks[j].kind == TokenKind::Ident).then(|| toks[j].text(src).to_owned())
}

/// Walks one function body and emits its event stream. Guards held are
/// tracked exactly as the legacy A003/A006 walkers did (see module docs);
/// nested `fn` items are skipped (they get their own walk).
#[must_use]
pub fn events(f: &SourceFile, func: &Function) -> Vec<Event> {
    let src = &f.raw;
    let toks = &f.tokens;
    let lo = func.body.start;
    let mut out = Vec::new();
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;
    let mut stmt_is_let = false;
    let mut bound_var: Option<String> = None;
    let mut i = lo;
    while i < func.body.end {
        let t = &toks[i];
        if t.is_comment() || t.masked {
            i += 1;
            continue;
        }
        match t.kind {
            TokenKind::Punct => match src.as_bytes()[t.start] {
                b'{' => {
                    depth += 1;
                    stmt_is_let = false;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    held.retain(|h| h.depth <= depth);
                    stmt_is_let = false;
                }
                b';' => {
                    stmt_is_let = false;
                    bound_var = None;
                }
                b'.' => {
                    if let Some(ev) =
                        method_call(toks, src, i, lo, &held, func, stmt_is_let)
                    {
                        // Guard bookkeeping for acquisitions.
                        if let Event::Acquire { line, class, method, let_bound: true, .. } = &ev
                        {
                            held.push(Held {
                                class: class.clone(),
                                method: method.clone(),
                                var: bound_var.clone(),
                                line: *line,
                                depth,
                            });
                        }
                        out.push(ev);
                    }
                }
                _ => {}
            },
            TokenKind::Ident => {
                let text = t.text(src);
                match text {
                    "let" => {
                        stmt_is_let = true;
                        bound_var = let_var(toks, src, i + 1);
                    }
                    "fn" => {
                        // Nested fn item: its body is not this function's
                        // critical section — skip it.
                        if let Some(ni) = next_code(toks, i + 1) {
                            if let Some(open) = body_open(toks, src, ni + 1) {
                                if let Some(close) = match_brace(toks, src, open) {
                                    i = close + 1;
                                    continue;
                                }
                            }
                        }
                    }
                    "drop" => {
                        // `drop(g)` releases the named guard early.
                        if let Some(p) = next_code(toks, i + 1) {
                            if toks[p].is_punct(src, b'(') {
                                if let Some(a) = next_code(toks, p + 1) {
                                    if toks[a].kind == TokenKind::Ident {
                                        if let Some(c) = next_code(toks, a + 1) {
                                            if toks[c].is_punct(src, b')') {
                                                let name = toks[a].text(src);
                                                held.retain(|h| {
                                                    h.var.as_deref() != Some(name)
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    _ => {
                        // `prefix::name` path mention.
                        if let Some(c2) = prev_code(toks, i, lo) {
                            if toks[c2].is_punct(src, b':') {
                                if let Some(c1) = prev_code(toks, c2, lo) {
                                    if toks[c1].is_punct(src, b':') {
                                        if let Some(pi) = prev_code(toks, c1, lo) {
                                            if toks[pi].kind == TokenKind::Ident {
                                                out.push(Event::PathCall {
                                                    line: line_of(src, t.start),
                                                    path: format!(
                                                        "{}::{}",
                                                        toks[pi].text(src),
                                                        text
                                                    ),
                                                    held: held.clone(),
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Builds the event for the method call whose `.` is at token `dot`, if
/// `.` + ident + `(` is what follows. Acquisitions (`lock` with any args,
/// empty-args `read`/`write`) become [`Event::Acquire`]; everything else
/// is an [`Event::Call`].
fn method_call(
    toks: &[Token],
    src: &str,
    dot: usize,
    lo: usize,
    held: &[Held],
    func: &Function,
    stmt_is_let: bool,
) -> Option<Event> {
    let ni = next_code(toks, dot + 1)?;
    if toks[ni].kind != TokenKind::Ident {
        return None;
    }
    let oi = next_code(toks, ni + 1)?;
    if !toks[oi].is_punct(src, b'(') {
        return None;
    }
    let name = toks[ni].text(src).to_owned();
    let ai = next_code(toks, oi + 1)?;
    let empty_args = toks[ai].is_punct(src, b')');
    let first_arg_ident =
        (toks[ai].kind == TokenKind::Ident).then(|| toks[ai].text(src).to_owned());
    let line = line_of(src, toks[ni].start);
    let tail = recv_tail(toks, src, dot, lo);
    let acquires =
        name == "lock" || ((name == "read" || name == "write") && empty_args);
    if acquires {
        Some(Event::Acquire {
            line,
            class: lock_class(tail.as_deref(), func.impl_type.as_deref()),
            method: name,
            let_bound: stmt_is_let,
            held: held.to_vec(),
        })
    } else {
        Some(Event::Call {
            line,
            name,
            recv_tail: tail,
            empty_args,
            first_arg_ident,
            held: held.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs", src)
    }

    #[test]
    fn finds_functions_with_impl_context() {
        let f = file(
            "impl Engine {\n    fn write_op(&self) {}\n}\n\
             impl fmt::Display for Finding {\n    fn fmt(&self) {}\n}\n\
             fn free() {}\n",
        );
        let fns = functions(&f);
        let got: Vec<(String, Option<String>)> =
            fns.iter().map(|f| (f.name.clone(), f.impl_type.clone())).collect();
        assert_eq!(
            got,
            vec![
                ("write_op".into(), Some("Engine".into())),
                ("fmt".into(), Some("Finding".into())),
                ("free".into(), None),
            ]
        );
    }

    #[test]
    fn generic_impls_resolve_to_the_type() {
        let f = file(
            "impl<K: Ord> Engine<K> {\n    fn get(&self) {}\n}\n\
             impl<T> From<T> for Wrapper<T> where T: Clone {\n    fn from(_: T) {}\n}\n",
        );
        let fns = functions(&f);
        assert_eq!(fns[0].impl_type.as_deref(), Some("Engine"));
        assert_eq!(fns[1].impl_type.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn cfg_test_functions_are_skipped() {
        let f = file(
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn fake() {}\n}\n",
        );
        let fns = functions(&f);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }

    fn events_of(src: &str) -> Vec<Event> {
        let f = file(src);
        let fns = functions(&f);
        assert_eq!(fns.len(), 1, "test source must hold exactly one fn");
        events(&f, &fns[0])
    }

    #[test]
    fn let_bound_guard_is_held_until_block_close() {
        let evs = events_of(
            "fn f(&self) {\n    {\n        let g = self.state.lock().unwrap();\n        \
             self.file.sync_all();\n    }\n    self.file.sync_all();\n}\n",
        );
        let syncs: Vec<&Event> = evs
            .iter()
            .filter(|e| matches!(e, Event::Call { name, .. } if name == "sync_all"))
            .collect();
        assert_eq!(syncs.len(), 2);
        let held_at = |e: &Event| match e {
            Event::Call { held, .. } => held.len(),
            _ => 0,
        };
        assert_eq!(held_at(syncs[0]), 1, "inside the block the guard is live");
        assert_eq!(held_at(syncs[1]), 0, "after the block it is gone");
    }

    #[test]
    fn drop_releases_by_name() {
        let evs = events_of(
            "fn f(&self) {\n    let st = self.state.lock().unwrap();\n    drop(st);\n    \
             self.file.sync_all();\n}\n",
        );
        let sync = evs
            .iter()
            .find(|e| matches!(e, Event::Call { name, .. } if name == "sync_all"))
            .unwrap();
        match sync {
            Event::Call { held, .. } => assert!(held.is_empty(), "{held:?}"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn expression_temporaries_are_not_tracked() {
        let evs = events_of(
            "fn f(&self) {\n    self.state.lock().unwrap().push(1);\n    \
             self.file.sync_all();\n}\n",
        );
        let sync = evs
            .iter()
            .find(|e| matches!(e, Event::Call { name, .. } if name == "sync_all"))
            .unwrap();
        match sync {
            Event::Call { held, .. } => assert!(held.is_empty(), "{held:?}"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn receiver_tails_resolve_through_calls_indexes_and_tuples() {
        let evs = events_of(
            "fn f(&self) {\n    let a = self.shard(key).lock().unwrap();\n    \
             let b = self.slots[0].read();\n    self.0.send(x);\n}\n",
        );
        let classes: Vec<String> = evs
            .iter()
            .filter_map(|e| match e {
                Event::Acquire { class, .. } => Some(class.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(classes, vec!["shard".to_owned(), "slot".to_owned()]);
        let send = evs
            .iter()
            .find(|e| matches!(e, Event::Call { name, .. } if name == "send"))
            .unwrap();
        match send {
            Event::Call { recv_tail, .. } => {
                assert_eq!(recv_tail.as_deref(), Some("self"));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn self_receiver_unifies_on_the_impl_type() {
        let f = file(
            "impl GroupCommit {\n    fn submit(&self) {\n        \
             let mut st = self.lock();\n        st.queue.push(1);\n    }\n}\n",
        );
        let fns = functions(&f);
        let evs = events(&f, &fns[0]);
        match &evs[0] {
            Event::Acquire { class, let_bound, .. } => {
                assert_eq!(class, "GroupCommit");
                assert!(let_bound);
            }
            other => panic!("expected acquire, got {other:?}"),
        }
    }

    #[test]
    fn path_calls_are_reported_with_held_guards() {
        let evs = events_of(
            "fn f(&self) {\n    let g = self.m.lock().unwrap();\n    \
             std::thread::sleep(d);\n    drop(g);\n}\n",
        );
        let sleep = evs
            .iter()
            .find(|e| matches!(e, Event::PathCall { path, .. } if path == "thread::sleep"))
            .expect("sleep path call");
        match sleep {
            Event::PathCall { held, .. } => assert_eq!(held.len(), 1),
            _ => unreachable!(),
        }
    }

    #[test]
    fn nested_fn_bodies_are_skipped() {
        let f = file(
            "fn outer(&self) {\n    let g = self.m.lock().unwrap();\n    \
             fn helper(f: &File) { f.sync_all().ok(); }\n    let _ = g;\n}\n",
        );
        let fns = functions(&f);
        // Both the outer fn and the nested helper are discovered …
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "helper"]);
        // … but the helper's body is not part of the outer fn's walk, so
        // its sync_all never sees the outer guard.
        let evs = events(&f, &fns[0]);
        assert!(
            !evs.iter()
                .any(|e| matches!(e, Event::Call { name, .. } if name == "sync_all")),
            "{evs:?}"
        );
    }
}
