//! Minimal SARIF 2.1.0 rendering so CI can annotate PRs with findings.
//!
//! Hand-rolled (the crate is zero-dependency): one run, one driver, one
//! result per [`Finding`] with a physical location. Only the fields GitHub
//! code scanning actually reads are emitted.

use crate::Finding;

/// All the rule ids the engine can emit, with one-line descriptions —
/// SARIF wants the driver to declare its rules up front.
const RULES: [(&str, &str); 9] = [
    ("CIND-A001", "every crate root starts with #![forbid(unsafe_code)]"),
    ("CIND-A002", "no unwrap/expect/panic! in non-test library code beyond the baseline"),
    ("CIND-A003", "buffer-pool lock discipline"),
    ("CIND-A004", "every config field is documented and wired to a CLI flag"),
    ("CIND-A005", "no wall-clock reads in deterministic replay/plan paths"),
    ("CIND-A006", "no lock guard held across a shard fan-out call"),
    ("CIND-A007", "no sync/flush in the serving crate outside the group-commit coordinator"),
    ("CIND-A008", "the workspace lock acquisition-order graph is acyclic"),
    ("CIND-A009", "no blocking call while a lock guard is live"),
];

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the findings as a SARIF 2.1.0 log.
#[must_use]
pub fn render(findings: &[Finding]) -> String {
    let rules: Vec<String> = RULES
        .iter()
        .map(|(id, desc)| {
            format!(
                "{{\"id\":\"{id}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
                esc(desc)
            )
        })
        .collect();
    let results: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
                 {{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{}}}}}}}]}}",
                f.rule,
                esc(&f.message),
                esc(&f.file),
                f.line
            )
        })
        .collect();
    format!(
        "{{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
         Schemata/sarif-schema-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{{\"tool\":\
         {{\"driver\":{{\"name\":\"cind-audit\",\"informationUri\":\
         \"https://example.invalid/cind-audit\",\"rules\":[{}]}}}},\"results\":[{}]}}]}}",
        rules.join(","),
        results.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_schema_rules_and_results() {
        let f = Finding {
            file: "crates/server/src/server.rs".into(),
            line: 42,
            rule: "CIND-A009",
            message: "blocking `.write_all(` while holding lock guard on `out`".into(),
        };
        let s = render(&[f]);
        assert!(s.contains("\"version\":\"2.1.0\""), "{s}");
        assert!(s.contains("\"ruleId\":\"CIND-A009\""), "{s}");
        assert!(s.contains("\"startLine\":42"), "{s}");
        assert!(s.contains("crates/server/src/server.rs"), "{s}");
        for (id, _) in RULES {
            assert!(s.contains(id), "driver must declare {id}");
        }
    }

    #[test]
    fn empty_findings_still_render_a_valid_run() {
        let s = render(&[]);
        assert!(s.contains("\"results\":[]"), "{s}");
    }

    #[test]
    fn escapes_quotes_and_backslashes() {
        let f = Finding {
            file: "a.rs".into(),
            line: 1,
            rule: "CIND-A002",
            message: "`\"quoted\"` and back\\slash".into(),
        };
        let s = render(&[f]);
        assert!(s.contains("\\\"quoted\\\""), "{s}");
        assert!(s.contains("back\\\\slash"), "{s}");
    }
}
