//! The panic-site baseline: a ratchet, not an allowlist.
//!
//! `audit-baseline.toml` records, per library file, how many
//! `unwrap()`/`expect()`/`panic!` sites existed when the audit was
//! introduced. CIND-A002 fails a file only when it *exceeds* its recorded
//! count — new panic sites are rejected, old ones are tolerated until
//! burned down. `cind-audit check --write-baseline` regenerates the file
//! from the current tree, and refuses to grow any entry: the baseline only
//! shrinks.
//!
//! The format is the flat subset of TOML this crate can parse without a
//! dependency: comments, blank lines, and `"path" = count` pairs.

use std::collections::BTreeMap;
use std::path::Path;

use crate::Finding;

/// Parses the baseline file; a missing file is an empty baseline.
///
/// # Errors
/// `Err(message)` on unparseable lines or I/O failures other than
/// not-found.
pub fn read(path: &Path) -> Result<BTreeMap<String, u64>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
        Err(e) => return Err(format!("reading {}: {e}", path.display())),
    };
    parse(&text).map_err(|(n, why)| format!("{}:{n}: {why}", path.display()))
}

/// Parses baseline text. Errors carry `(line number, reason)`.
///
/// # Errors
/// Lines that are not comments, blanks, or `"path" = count`.
pub fn parse(text: &str) -> Result<BTreeMap<String, u64>, (usize, &'static str)> {
    let mut out = BTreeMap::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) =
            line.split_once('=').ok_or((n + 1, "expected `\"path\" = count`"))?;
        let key = key.trim().trim_matches('"');
        if key.is_empty() {
            return Err((n + 1, "empty path"));
        }
        let count: u64 =
            value.trim().parse().map_err(|_| (n + 1, "count is not an integer"))?;
        out.insert(key.to_owned(), count);
    }
    Ok(out)
}

/// Renders a baseline in the format [`parse`] reads, sorted by path.
#[must_use]
pub fn render(counts: &BTreeMap<String, u64>) -> String {
    let mut out = String::from(
        "# cind-audit panic-site baseline (rule CIND-A002).\n\
         # Counts only shrink: burn a site down, then regenerate with\n\
         # `cargo run -p cind-audit -- check --write-baseline`.\n",
    );
    for (path, count) in counts {
        out.push_str(&format!("\"{path}\" = {count}\n"));
    }
    out
}

/// Filters raw CIND-A002 findings through the baseline: a file at or under
/// its recorded count is clean; a file over it reports every site, plus a
/// summary line naming the budget.
#[must_use]
pub fn apply(raw: Vec<Finding>, baseline: &BTreeMap<String, u64>) -> Vec<Finding> {
    let mut by_file: BTreeMap<&str, Vec<&Finding>> = BTreeMap::new();
    for f in &raw {
        by_file.entry(&f.file).or_default().push(f);
    }
    let mut out = Vec::new();
    for (file, findings) in by_file {
        let allowed = baseline.get(file).copied().unwrap_or(0);
        if findings.len() as u64 > allowed {
            out.push(Finding {
                file: file.to_owned(),
                line: findings[0].line,
                rule: "CIND-A002",
                message: format!(
                    "{} panic sites but the baseline allows {allowed} \
                     (shrink, or burn down and --write-baseline)",
                    findings.len()
                ),
            });
            out.extend(findings.into_iter().cloned());
        }
    }
    out
}

/// Computes the new baseline from raw findings, enforcing the ratchet:
/// no entry may exceed the old baseline.
///
/// # Errors
/// `Err(files)` naming files whose count grew.
pub fn shrink(
    raw: &[Finding],
    old: &BTreeMap<String, u64>,
) -> Result<BTreeMap<String, u64>, Vec<String>> {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for f in raw {
        *counts.entry(f.file.clone()).or_default() += 1;
    }
    let grew: Vec<String> = counts
        .iter()
        .filter(|(file, &n)| n > old.get(*file).copied().unwrap_or(0) && !old.is_empty())
        .map(|(file, &n)| {
            format!("{file}: {n} > {}", old.get(file).copied().unwrap_or(0))
        })
        .collect();
    if grew.is_empty() {
        Ok(counts)
    } else {
        Err(grew)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: usize) -> Finding {
        Finding {
            file: file.into(),
            line,
            rule: "CIND-A002",
            message: "`unwrap()` in library code".into(),
        }
    }

    #[test]
    fn parse_roundtrips_render() {
        let mut b = BTreeMap::new();
        b.insert("crates/a/src/lib.rs".to_owned(), 3);
        b.insert("crates/b/src/x.rs".to_owned(), 1);
        assert_eq!(parse(&render(&b)).unwrap(), b);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("not a pair").is_err());
        assert!(parse("\"x\" = lots").is_err());
        assert_eq!(parse("# only comments\n\n").unwrap().len(), 0);
    }

    #[test]
    fn apply_suppresses_at_or_under_budget_and_reports_over() {
        let mut baseline = BTreeMap::new();
        baseline.insert("a.rs".to_owned(), 2);
        // Exactly at budget: clean.
        let clean = apply(vec![finding("a.rs", 1), finding("a.rs", 9)], &baseline);
        assert!(clean.is_empty(), "{clean:?}");
        // One over: the summary plus all three sites surface.
        let over = apply(
            vec![finding("a.rs", 1), finding("a.rs", 9), finding("a.rs", 20)],
            &baseline,
        );
        assert_eq!(over.len(), 4, "{over:?}");
        assert!(over[0].message.contains("3 panic sites"), "{}", over[0].message);
        // A file absent from the baseline has budget zero.
        let unknown = apply(vec![finding("new.rs", 5)], &baseline);
        assert_eq!(unknown.len(), 2);
    }

    #[test]
    fn shrink_refuses_to_grow() {
        let mut old = BTreeMap::new();
        old.insert("a.rs".to_owned(), 1);
        let grown = shrink(&[finding("a.rs", 1), finding("a.rs", 2)], &old);
        assert!(grown.is_err());
        let shrunk = shrink(&[finding("a.rs", 1)], &old).unwrap();
        assert_eq!(shrunk.get("a.rs"), Some(&1));
        // First-ever baseline (old empty) records freely.
        let fresh = shrink(&[finding("a.rs", 1), finding("a.rs", 2)], &BTreeMap::new());
        assert_eq!(fresh.unwrap().get("a.rs"), Some(&2));
    }
}
