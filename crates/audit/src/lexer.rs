//! The zero-dependency Rust lexer every audit rule runs on.
//!
//! One pass over the raw bytes yields two things at once:
//!
//! 1. a **token stream** ([`Token`]) with byte spans — identifiers,
//!    numbers, single-byte punctuation, comments, string/char literals,
//!    and lifetimes (the classic `'a`-vs-`'a'` disambiguation lives here,
//!    as does raw-string hash counting and block-comment nesting);
//! 2. the **blanked view**: the source with comments, string literals and
//!    char literals replaced by spaces, length- and newline-preserving, so
//!    a byte offset in the view is the same line/column in the file.
//!
//! The blanking rules are bit-for-bit the ones the original per-rule
//! byte-walkers used (the differential test in `tests/differential.rs`
//! pins that down against an inlined copy of the legacy pass), so every
//! line-oriented rule ported onto the lexer reports identical findings.
//!
//! Tokens carry a `masked` flag, set by [`crate::SourceFile::new`] for
//! tokens inside `#[cfg(test)]` regions: structural analyses skip masked
//! tokens the same way line rules skip blanked test code.

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// `// …` through end of line (incl. `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` with nesting, incl. `/** … */` doc comments.
    BlockComment,
    /// `"…"` or `b"…"`, escapes handled.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##`.
    RawStr,
    /// `'x'` or `'\n'` — a character (or byte-character) literal.
    CharLit,
    /// `'a` in `<'a>` — the quote plus its label.
    Lifetime,
    /// Identifier or keyword: `[A-Za-z_][A-Za-z0-9_]*`.
    Ident,
    /// Numeric literal, suffix included: `42`, `0xFF`, `1usize`.
    Num,
    /// Any other single non-whitespace byte: `{`, `.`, `(`, `;`, …
    Punct,
}

/// One lexed token: its kind and byte span in the raw source.
#[derive(Clone, Debug)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// Inside a `#[cfg(test)]` region (set after lexing by the loader).
    pub masked: bool,
}

impl Token {
    /// The token's text in `src` (the raw source it was lexed from).
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end.min(src.len())]
    }

    /// True for a [`TokenKind::Punct`] token equal to byte `c`.
    #[must_use]
    pub fn is_punct(&self, src: &str, c: u8) -> bool {
        self.kind == TokenKind::Punct && src.as_bytes().get(self.start) == Some(&c)
    }

    /// True for an [`TokenKind::Ident`] token spelling `name`.
    #[must_use]
    pub fn is_ident(&self, src: &str, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text(src) == name
    }

    /// True for either comment kind.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

fn tok(kind: TokenKind, start: usize, end: usize) -> Token {
    Token { kind, start, end, masked: false }
}

/// Lexes `src`, returning the token stream and the blanked view (comments,
/// strings, and char literals spaced out; newlines and length preserved).
#[must_use]
pub fn lex(src: &str) -> (Vec<Token>, String) {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut toks: Vec<Token> = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let start = i;
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
                toks.push(tok(TokenKind::LineComment, start, i));
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
                toks.push(tok(TokenKind::BlockComment, start, i));
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                // r"…", r#"…"#, br#"…"#: count hashes, blank to the
                // matching `"#…#` terminator.
                let mut j = i + 1;
                if b[j] == b'r' {
                    j += 1;
                }
                let hash_start = j;
                while j < b.len() && b[j] == b'#' {
                    j += 1;
                }
                let hashes = j - hash_start;
                debug_assert_eq!(b[j], b'"');
                j += 1;
                // Find `"` followed by `hashes` hashes.
                while j < b.len() {
                    if b[j] == b'"'
                        && b[j + 1..].iter().take(hashes).filter(|&&c| c == b'#').count()
                            == hashes
                    {
                        j += 1 + hashes;
                        break;
                    }
                    j += 1;
                }
                for c in &mut out[i..j.min(b.len())] {
                    if *c != b'\n' {
                        *c = b' ';
                    }
                }
                i = j;
                toks.push(tok(TokenKind::RawStr, start, i.min(b.len())));
            }
            b'"' | b'b' if b[i] == b'"' || (b[i] == b'b' && b.get(i + 1) == Some(&b'"')) => {
                if b[i] == b'b' {
                    out[i] = b' ';
                    i += 1;
                }
                out[i] = b' ';
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' {
                        out[i] = b' ';
                        if i + 1 < b.len() && b[i + 1] != b'\n' {
                            out[i + 1] = b' ';
                        }
                        i += 2;
                    } else if b[i] == b'"' {
                        out[i] = b' ';
                        i += 1;
                        break;
                    } else {
                        if b[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
                toks.push(tok(TokenKind::Str, start, i.min(b.len())));
            }
            b'\'' => {
                // Char literal vs. lifetime: `'x'` / `'\n'` are literals,
                // `'a` in `<'a>` is not.
                if b.get(i + 1) == Some(&b'\\') {
                    // Escaped char: blank through the closing quote.
                    out[i] = b' ';
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        out[i] = b' ';
                        i += 1;
                    }
                    if i < b.len() {
                        out[i] = b' ';
                        i += 1;
                    }
                    toks.push(tok(TokenKind::CharLit, start, i));
                } else if b.get(i + 2) == Some(&b'\'') {
                    out[i] = b' ';
                    out[i + 1] = b' ';
                    out[i + 2] = b' ';
                    i += 3;
                    toks.push(tok(TokenKind::CharLit, start, i));
                } else {
                    // Lifetime: the quote plus its label; nothing blanked.
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    toks.push(tok(TokenKind::Lifetime, start, i));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(tok(TokenKind::Ident, start, i));
            }
            c if c.is_ascii_digit() => {
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(tok(TokenKind::Num, start, i));
            }
            c if c.is_ascii_whitespace() => i += 1,
            _ => {
                toks.push(tok(TokenKind::Punct, start, i + 1));
                i += 1;
            }
        }
    }
    (toks, String::from_utf8_lossy(&out).into_owned())
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // r"…" | r#"…" | br"…" | br#"…"
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if b.get(j) != Some(&b'r') {
            return false;
        }
    }
    if b.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
        // Reject identifiers like `for` / `expr` ending in r before a
        // string: require `r` to start a token.
        && (i == 0 || !b[i - 1].is_ascii_alphanumeric() && b[i - 1] != b'_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).0.into_iter().map(|t| (t.kind, t.text(src).to_owned())).collect()
    }

    #[test]
    fn tokenizes_idents_nums_puncts() {
        let got = kinds("let x2 = foo(41usize);");
        assert_eq!(
            got,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x2".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Ident, "foo".into()),
                (TokenKind::Punct, "(".into()),
                (TokenKind::Num, "41usize".into()),
                (TokenKind::Punct, ")".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn comments_and_strings_become_single_tokens_and_blank() {
        let src = "a /* x /* y */ z */ \"s{\" // tail.unwrap()\nb";
        let (toks, view) = lex(src);
        let kinds: Vec<TokenKind> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Ident,
                TokenKind::BlockComment,
                TokenKind::Str,
                TokenKind::LineComment,
                TokenKind::Ident,
            ]
        );
        assert!(!view.contains('{'), "{view}");
        assert!(!view.contains("unwrap"), "{view}");
        assert_eq!(view.len(), src.len(), "length preserved");
        assert_eq!(view.lines().count(), 2, "newlines preserved");
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = "r#\"raw \" panic!\"# x br\"y\" z";
        let (toks, view) = lex(src);
        assert_eq!(toks[0].kind, TokenKind::RawStr);
        assert_eq!(toks[1].kind, TokenKind::Ident);
        assert_eq!(toks[2].kind, TokenKind::RawStr);
        assert!(!view.contains("panic"), "{view}");
        assert!(view.contains('x') && view.contains('z'), "{view}");
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let src = "'{' <'a, 'static> '\\n' 'x'";
        let (toks, view) = lex(src);
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'static"]);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::CharLit).count(),
            3,
            "'{{', '\\n', 'x'"
        );
        assert!(!view.contains('{'), "{view}");
        assert!(view.contains("'a"), "lifetimes survive blanking: {view}");
    }

    #[test]
    fn method_chain_tokens_carry_positions() {
        let src = "self.slots[0].read()";
        let (toks, _) = lex(src);
        let texts: Vec<&str> = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(texts, vec!["self", ".", "slots", "[", "0", "]", ".", "read", "(", ")"]);
        assert_eq!(toks[7].start, src.find("read").unwrap());
    }

    #[test]
    fn byte_string_and_byte_char() {
        let src = "f(b\"bytes\", b'x')";
        let (toks, view) = lex(src);
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
        assert!(!view.contains("bytes"), "{view}");
        // `b'x'`: the prefix stays an ident, the literal is blanked —
        // mirroring the legacy blanking pass exactly.
        assert!(toks.iter().any(|t| t.kind == TokenKind::CharLit));
        assert!(!view.contains("'x'"), "{view}");
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["\"open", "r#\"open", "/* open", "'\\", "b\"open"] {
            let (_, view) = lex(src);
            assert_eq!(view.len(), src.len());
        }
    }
}
