//! Length-preserving source transforms: blank comments, string literals,
//! and `#[cfg(test)]` regions so rules can match tokens without a parser.
//!
//! Everything here replaces text with spaces rather than removing it, so a
//! byte offset in the transformed text is the same line and column in the
//! file — findings point at real locations.

/// Blanks comments (`//…`, `/* … */` with nesting, incl. doc comments),
/// string literals (`"…"` with escapes, raw `r#"…"#`), and character
/// literals, preserving newlines and length.
#[must_use]
pub fn strip_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'r' | b'b'
                if is_raw_string_start(b, i) =>
            {
                // r"…", r#"…"#, br#"…"#: count hashes, blank to the
                // matching `"#…#` terminator.
                let mut j = i + 1;
                if b[j] == b'r' {
                    j += 1;
                }
                let hash_start = j;
                while j < b.len() && b[j] == b'#' {
                    j += 1;
                }
                let hashes = j - hash_start;
                debug_assert_eq!(b[j], b'"');
                j += 1;
                // Find `"` followed by `hashes` hashes.
                while j < b.len() {
                    if b[j] == b'"' && b[j + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes
                    {
                        j += 1 + hashes;
                        break;
                    }
                    j += 1;
                }
                for c in &mut out[i..j.min(b.len())] {
                    if *c != b'\n' {
                        *c = b' ';
                    }
                }
                i = j;
            }
            b'"' | b'b' if b[i] == b'"' || (b[i] == b'b' && b.get(i + 1) == Some(&b'"')) => {
                if b[i] == b'b' {
                    out[i] = b' ';
                    i += 1;
                }
                out[i] = b' ';
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' {
                        out[i] = b' ';
                        if i + 1 < b.len() && b[i + 1] != b'\n' {
                            out[i + 1] = b' ';
                        }
                        i += 2;
                    } else if b[i] == b'"' {
                        out[i] = b' ';
                        i += 1;
                        break;
                    } else {
                        if b[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal vs. lifetime: `'x'` / `'\n'` are literals,
                // `'a` in `<'a>` is not.
                if b.get(i + 1) == Some(&b'\\') {
                    // Escaped char: blank through the closing quote.
                    out[i] = b' ';
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        out[i] = b' ';
                        i += 1;
                    }
                    if i < b.len() {
                        out[i] = b' ';
                        i += 1;
                    }
                } else if b.get(i + 2) == Some(&b'\'') {
                    out[i] = b' ';
                    out[i + 1] = b' ';
                    out[i + 2] = b' ';
                    i += 3;
                } else {
                    i += 1; // lifetime; leave it
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // r"…" | r#"…" | br"…" | br#"…"
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if b.get(j) != Some(&b'r') {
            return false;
        }
    }
    if b.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
        // Reject identifiers like `for` / `expr` ending in r before a
        // string: require `r` to start a token.
        && (i == 0 || !b[i - 1].is_ascii_alphanumeric() && b[i - 1] != b'_')
}

/// Blanks every `#[cfg(test)]`-attributed item in already-stripped text:
/// from the attribute through the item's matching `}` (or `;` for non-block
/// items). Input must come from [`strip_comments_and_strings`] so braces
/// inside strings cannot unbalance the walk.
#[must_use]
pub fn mask_test_regions(stripped: &str) -> String {
    const ATTR: &str = "#[cfg(test)]";
    let mut out = stripped.as_bytes().to_vec();
    let mut from = 0;
    while let Some(pos) = stripped[from..].find(ATTR) {
        let start = from + pos;
        // Walk forward to the end of the attributed item: the matching `}`
        // of its first brace, or a `;` seen before any brace.
        let bytes = stripped.as_bytes();
        let mut j = start + ATTR.len();
        let mut depth = 0usize;
        let mut end = bytes.len();
        while j < bytes.len() {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = j + 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        for c in &mut out[start..end] {
            if *c != b'\n' {
                *c = b' ';
            }
        }
        from = end;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// The full code view: comments and strings stripped, test regions masked.
#[must_use]
pub fn code_view(raw: &str) -> String {
    mask_test_regions(&strip_comments_and_strings(raw))
}

/// Yields `(1-based line number, line)` pairs.
pub fn lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines().enumerate().map(|(i, l)| (i + 1, l))
}

/// 1-based line number of byte offset `at`.
#[must_use]
pub fn line_of(text: &str, at: usize) -> usize {
    text.as_bytes()[..at.min(text.len())].iter().filter(|&&c| c == b'\n').count() + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_doc_comments() {
        let s = strip_comments_and_strings("let x = 1; // c.unwrap()\n/// doc panic!\nlet y;");
        assert!(!s.contains("unwrap"), "{s}");
        assert!(!s.contains("panic"), "{s}");
        assert!(s.contains("let y;"));
        assert_eq!(s.lines().count(), 3, "line structure preserved");
    }

    #[test]
    fn strips_nested_block_comments_and_strings() {
        let s = strip_comments_and_strings(
            "a /* outer /* inner */ still */ b \"str with } and \\\" quote\" c",
        );
        assert!(!s.contains("inner") && !s.contains("still"), "{s}");
        assert!(!s.contains('}'), "{s}");
        assert!(s.contains('a') && s.contains('b') && s.contains('c'));
    }

    #[test]
    fn strips_raw_strings_and_char_literals() {
        let s = strip_comments_and_strings("r#\"raw \" panic!\"# '{' 'a' <'a, 'b> '\\n'");
        assert!(!s.contains("panic"), "{s}");
        assert!(!s.contains('{'), "{s}");
        assert!(s.contains("<'a, 'b>"), "lifetimes survive: {s}");
    }

    #[test]
    fn masks_cfg_test_mod_but_not_library_code() {
        let src = "\
fn real() { maybe.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); panic!(); }
}
fn also_real() {}
";
        let v = code_view(src);
        assert!(v.contains("fn real"), "{v}");
        assert!(v.contains("maybe.unwrap()"), "{v}");
        assert!(v.contains("fn also_real"), "{v}");
        assert!(!v.contains("fn t"), "{v}");
        assert!(!v.contains("panic!"), "{v}");
        assert_eq!(v.lines().count(), src.lines().count());
    }

    #[test]
    fn masks_cfg_test_on_statement_without_eating_rest_of_file() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {}\n";
        let v = code_view(src);
        assert!(!v.contains("foo::bar"), "{v}");
        assert!(v.contains("fn real"), "{v}");
    }

    #[test]
    fn line_of_counts_newlines() {
        let t = "a\nbb\nccc";
        assert_eq!(line_of(t, 0), 1);
        assert_eq!(line_of(t, 2), 2);
        assert_eq!(line_of(t, t.len() - 1), 3);
    }
}
