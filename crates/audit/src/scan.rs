//! Length-preserving source transforms built on the lexer: blank comments,
//! string literals, and `#[cfg(test)]` regions so rules can match tokens
//! without a parser.
//!
//! Everything here replaces text with spaces rather than removing it, so a
//! byte offset in the transformed text is the same line and column in the
//! file — findings point at real locations. The blanking itself happens in
//! [`crate::lexer::lex`] (one pass yields tokens *and* the blanked view);
//! this module layers the test-region mask on top.

use crate::lexer;

/// Byte ranges of `#[cfg(test)]`-attributed items in already-blanked text:
/// from the attribute through the item's matching `}` (or `;` for non-block
/// items). Input must come from the lexer's blanked view so braces inside
/// strings cannot unbalance the walk.
#[must_use]
pub fn test_region_ranges(stripped: &str) -> Vec<(usize, usize)> {
    const ATTR: &str = "#[cfg(test)]";
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = stripped[from..].find(ATTR) {
        let start = from + pos;
        // Walk forward to the end of the attributed item: the matching `}`
        // of its first brace, or a `;` seen before any brace.
        let bytes = stripped.as_bytes();
        let mut j = start + ATTR.len();
        let mut depth = 0usize;
        let mut end = bytes.len();
        while j < bytes.len() {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = j + 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        out.push((start, end));
        from = end;
    }
    out
}

/// Blanks every [`test_region_ranges`] region in already-blanked text,
/// preserving newlines and length.
#[must_use]
pub fn mask_test_regions(stripped: &str) -> String {
    let mut out = stripped.as_bytes().to_vec();
    for (start, end) in test_region_ranges(stripped) {
        for c in &mut out[start..end] {
            if *c != b'\n' {
                *c = b' ';
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// The full code view: comments and strings blanked, test regions masked.
#[must_use]
pub fn code_view(raw: &str) -> String {
    mask_test_regions(&lexer::lex(raw).1)
}

/// Yields `(1-based line number, line)` pairs.
pub fn lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines().enumerate().map(|(i, l)| (i + 1, l))
}

/// 1-based line number of byte offset `at`.
#[must_use]
pub fn line_of(text: &str, at: usize) -> usize {
    text.as_bytes()[..at.min(text.len())].iter().filter(|&&c| c == b'\n').count() + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip(src: &str) -> String {
        lexer::lex(src).1
    }

    #[test]
    fn strips_line_and_doc_comments() {
        let s = strip("let x = 1; // c.unwrap()\n/// doc panic!\nlet y;");
        assert!(!s.contains("unwrap"), "{s}");
        assert!(!s.contains("panic"), "{s}");
        assert!(s.contains("let y;"));
        assert_eq!(s.lines().count(), 3, "line structure preserved");
    }

    #[test]
    fn strips_nested_block_comments_and_strings() {
        let s = strip("a /* outer /* inner */ still */ b \"str with } and \\\" quote\" c");
        assert!(!s.contains("inner") && !s.contains("still"), "{s}");
        assert!(!s.contains('}'), "{s}");
        assert!(s.contains('a') && s.contains('b') && s.contains('c'));
    }

    #[test]
    fn strips_raw_strings_and_char_literals() {
        let s = strip("r#\"raw \" panic!\"# '{' 'a' <'a, 'b> '\\n'");
        assert!(!s.contains("panic"), "{s}");
        assert!(!s.contains('{'), "{s}");
        assert!(s.contains("<'a, 'b>"), "lifetimes survive: {s}");
    }

    #[test]
    fn masks_cfg_test_mod_but_not_library_code() {
        let src = "\
fn real() { maybe.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); panic!(); }
}
fn also_real() {}
";
        let v = code_view(src);
        assert!(v.contains("fn real"), "{v}");
        assert!(v.contains("maybe.unwrap()"), "{v}");
        assert!(v.contains("fn also_real"), "{v}");
        assert!(!v.contains("fn t"), "{v}");
        assert!(!v.contains("panic!"), "{v}");
        assert_eq!(v.lines().count(), src.lines().count());
    }

    #[test]
    fn masks_cfg_test_on_statement_without_eating_rest_of_file() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {}\n";
        let v = code_view(src);
        assert!(!v.contains("foo::bar"), "{v}");
        assert!(v.contains("fn real"), "{v}");
    }

    #[test]
    fn test_region_ranges_reports_spans() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests { fn t() {} }\nfn b() {}\n";
        let stripped = strip(src);
        let ranges = test_region_ranges(&stripped);
        assert_eq!(ranges.len(), 1);
        let (s, e) = ranges[0];
        assert!(src[s..e].starts_with("#[cfg(test)]"));
        assert!(src[s..e].ends_with('}'));
    }

    #[test]
    fn line_of_counts_newlines() {
        let t = "a\nbb\nccc";
        assert_eq!(line_of(t, 0), 1);
        assert_eq!(line_of(t, 2), 2);
        assert_eq!(line_of(t, t.len() - 1), 3);
    }
}
