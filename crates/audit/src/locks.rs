//! CIND-A008: the workspace-wide lock acquisition-order graph is acyclic.
//!
//! Every function body in the workspace is walked ([`crate::syntax`]);
//! whenever a lock is acquired while other guards are live, one directed
//! edge `held-class → acquired-class` is recorded, together with the first
//! witness site (file, line, and where the held guard was taken). Channel
//! endpoints and the group-commit ticket wait are acquirable resources
//! too: a blocking `send`/`recv`/`recv_timeout` becomes an edge into
//! `channel:<class>`, a `wait_durable` call an edge into `GroupCommit` —
//! they cannot themselves hold anything afterwards (the call returns or
//! blocks), so they only ever appear as edge *targets*.
//!
//! Lock classes are named by [`crate::syntax::lock_class`]: receiver-tail
//! ident, depluralized, with `self` resolving to the impl type. That makes
//! `self.slots[i].read()` in one file and `self.slots[j].write()` in
//! another the same class `slot`, which is exactly what lets a
//! `commit.rs` ↔ `sharded.rs` inversion close a cycle across files.
//!
//! A cycle fails the audit with the full witness chain, one hop per edge:
//! which file:line acquired what while holding what. Same-class nesting
//! (an edge `c → c`) is deliberately not an A008 cycle — that is A003's
//! single-latch domain.

use std::collections::{BTreeMap, BTreeSet};

use crate::syntax::{self, Event};
use crate::{Finding, SourceFile};

/// First observed witness for an acquisition-order edge.
struct Witness {
    file: String,
    line: usize,
    held_line: usize,
}

/// CIND-A008 entry point: build the graph, fail on cycles.
#[must_use]
pub fn lock_order(files: &[SourceFile]) -> Vec<Finding> {
    let mut edges: BTreeMap<(String, String), Witness> = BTreeMap::new();
    for f in files {
        for func in syntax::functions(f) {
            for ev in syntax::events(f, &func) {
                let (line, target, held) = match &ev {
                    Event::Acquire { line, class, held, .. } => {
                        (*line, Some(class.clone()), held)
                    }
                    Event::Call { line, name, recv_tail, empty_args, held, .. } => {
                        let target = match (name.as_str(), empty_args) {
                            ("send" | "recv_timeout", _) | ("recv", true) => {
                                Some(format!(
                                    "channel:{}",
                                    syntax::lock_class(
                                        recv_tail.as_deref(),
                                        func.impl_type.as_deref(),
                                    )
                                ))
                            }
                            ("wait_durable", _) => Some("GroupCommit".to_owned()),
                            _ => None,
                        };
                        (*line, target, held)
                    }
                    Event::PathCall { .. } => continue,
                };
                let Some(to) = target else { continue };
                for h in held {
                    if h.class == to {
                        continue;
                    }
                    edges.entry((h.class.clone(), to.clone())).or_insert(Witness {
                        file: f.path.clone(),
                        line,
                        held_line: h.line,
                    });
                }
            }
        }
    }

    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }

    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in adj.keys() {
        let mut path = vec![(*start).to_owned()];
        dfs(start, &adj, &mut path, &mut cycles);
    }

    cycles
        .into_iter()
        .map(|cycle| {
            let mut chain = cycle.join(" -> ");
            chain.push_str(" -> ");
            chain.push_str(&cycle[0]);
            let hops: Vec<String> = (0..cycle.len())
                .map(|i| {
                    let from = &cycle[i];
                    let to = &cycle[(i + 1) % cycle.len()];
                    let w = &edges[&(from.clone(), to.clone())];
                    format!(
                        "{}:{} acquires {to} while holding {from} (line {})",
                        w.file, w.line, w.held_line
                    )
                })
                .collect();
            let first = &edges[&(cycle[0].clone(), cycle[1 % cycle.len()].clone())];
            Finding {
                file: first.file.clone(),
                line: first.line,
                rule: "CIND-A008",
                message: format!("lock-order cycle: {chain}; {}", hops.join("; ")),
            }
        })
        .collect()
}

/// Path-stack DFS: every simple cycle is found (the graph has a handful of
/// nodes — lock classes — so the exponential worst case is theoretical),
/// canonicalized by rotation so each cycle is reported once.
fn dfs(
    node: &str,
    adj: &BTreeMap<&str, Vec<&str>>,
    path: &mut Vec<String>,
    cycles: &mut BTreeSet<Vec<String>>,
) {
    let Some(nexts) = adj.get(node) else { return };
    for next in nexts {
        if let Some(pos) = path.iter().position(|p| p == next) {
            cycles.insert(canonical(&path[pos..]));
        } else {
            path.push((*next).to_owned());
            dfs(next, adj, path, cycles);
            path.pop();
        }
    }
}

/// Rotates the cycle so its lexicographically smallest class comes first.
fn canonical(cycle: &[String]) -> Vec<String> {
    let min = cycle
        .iter()
        .enumerate()
        .min_by_key(|&(_, c)| c)
        .map_or(0, |(i, _)| i);
    let mut out = Vec::with_capacity(cycle.len());
    out.extend_from_slice(&cycle[min..]);
    out.extend_from_slice(&cycle[..min]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::new(path, src)
    }

    #[test]
    fn consistent_order_is_clean() {
        let a = file(
            "crates/x/src/a.rs",
            "impl A {\nfn f(&self) {\n    let q = self.queue.lock().unwrap();\n    \
             let s = self.slots[0].read();\n    drop(s); drop(q);\n}\n}\n",
        );
        let b = file(
            "crates/x/src/b.rs",
            "impl B {\nfn g(&self) {\n    let q = self.queue.lock().unwrap();\n    \
             let s = self.slots[1].write();\n}\n}\n",
        );
        assert!(lock_order(&[a, b]).is_empty());
    }

    #[test]
    fn cross_file_inversion_is_a_cycle_with_witnesses() {
        let a = file(
            "crates/x/src/a.rs",
            "impl A {\nfn f(&self) {\n    let q = self.queue.lock().unwrap();\n    \
             let s = self.slots[0].read();\n}\n}\n",
        );
        let b = file(
            "crates/x/src/b.rs",
            "impl B {\nfn g(&self) {\n    let s = self.slots[1].write();\n    \
             let q = self.queue.lock().unwrap();\n}\n}\n",
        );
        let found = lock_order(&[a, b]);
        assert_eq!(found.len(), 1, "{found:?}");
        let f = &found[0];
        assert_eq!(f.rule, "CIND-A008");
        assert!(f.message.contains("queue -> slot -> queue"), "{}", f.message);
        assert!(f.message.contains("crates/x/src/a.rs:4"), "{}", f.message);
        assert!(f.message.contains("crates/x/src/b.rs:4"), "{}", f.message);
    }

    #[test]
    fn blocking_channel_ops_are_edge_targets() {
        let a = file(
            "crates/x/src/a.rs",
            "impl A {\nfn f(&self) {\n    let g = self.state.lock().unwrap();\n    \
             self.ready.send(1).unwrap();\n}\n\
             fn h(&self) {\n    let c = self.ready.recv();\n}\n}\n",
        );
        // state → channel:ready exists, but nothing closes a cycle.
        assert!(lock_order(&[a]).is_empty());
    }

    #[test]
    fn ticket_wait_under_a_lock_can_close_a_cycle() {
        // f: state → GroupCommit (wait_durable while holding state);
        // g: inside GroupCommit, self.lock() gives class GroupCommit, then
        // state.lock() while held → GroupCommit → state. Cycle.
        let a = file(
            "crates/x/src/a.rs",
            "impl Engine {\nfn f(&self) {\n    let g = self.state.write();\n    \
             self.commit.wait_durable(t);\n}\n}\n\
             impl GroupCommit {\nfn flush(&self) {\n    let mut st = self.lock();\n    \
             let s = self.state.lock().unwrap();\n}\n}\n",
        );
        let found = lock_order(&[a]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(
            found[0].message.contains("GroupCommit -> state -> GroupCommit")
                || found[0].message.contains("state -> GroupCommit -> state"),
            "{}",
            found[0].message
        );
    }

    #[test]
    fn same_class_nesting_is_not_a_cycle() {
        let a = file(
            "crates/x/src/a.rs",
            "impl A {\nfn f(&self) {\n    let x = self.shards[0].lock().unwrap();\n    \
             let y = self.shards[1].lock().unwrap();\n}\n}\n",
        );
        assert!(lock_order(&[a]).is_empty(), "A003's domain, not A008's");
    }
}
