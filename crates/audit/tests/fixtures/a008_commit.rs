//! Seeded CIND-A008 fixture (commit side): `queue` is locked first, then a
//! `slot` latch is taken — the opposite of the sharded side's order.

pub struct GroupCommit {
    queue: std::sync::Mutex<Vec<u64>>,
    slots: Vec<std::sync::RwLock<u64>>,
}

impl GroupCommit {
    pub fn submit(&self, ticket: u64) {
        let mut queue = self.queue.lock().unwrap();
        let slot = self.slots[0].read().unwrap();
        queue.push(ticket + *slot);
    }
}
