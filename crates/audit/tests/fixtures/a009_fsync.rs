//! Seeded CIND-A009 fixture: a WAL fsync issued while the state lock is
//! still held — the guard must drop before the durability wait.

pub struct WalFlush {
    state: std::sync::Mutex<u64>,
    file: std::fs::File,
}

impl WalFlush {
    pub fn append(&self, n: u64) {
        let mut state = self.state.lock().unwrap();
        *state += n;
        self.file.sync_all().unwrap();
    }
}
