//! Seeded CIND-A008 fixture (sharded side): a `slot` latch is taken first,
//! then `queue` — inverting the commit side's order and closing the cycle.

pub struct ShardedEngine {
    queue: std::sync::Mutex<Vec<u64>>,
    slots: Vec<std::sync::RwLock<u64>>,
}

impl ShardedEngine {
    pub fn reopen(&self) {
        let mut slot = self.slots[0].write().unwrap();
        let queue = self.queue.lock().unwrap();
        *slot = queue.len() as u64;
    }
}
