//! Seeded-violation self-tests: committed fixture files carrying one known
//! A008 lock-order inversion and one known A009 blocking-in-critical-section
//! hold, loaded under virtual `crates/server/src/` paths so path-scoped
//! rules treat them as library code. The assertions pin the *exact*
//! diagnostics — rule id, location, and the full witness chain — so any
//! regression in lock-class naming, guard tracking, or witness formatting
//! fails loudly rather than degrading the message.

use cind_audit::{blocking, locks, SourceFile};

fn fixture(virtual_path: &str, fixture_name: &str) -> SourceFile {
    let path = format!("{}/tests/fixtures/{fixture_name}", env!("CARGO_MANIFEST_DIR"));
    let raw = std::fs::read_to_string(&path).expect("fixture exists");
    SourceFile::new(virtual_path, raw)
}

#[test]
fn seeded_commit_sharded_inversion_yields_full_witness_chain() {
    let files = [
        fixture("crates/server/src/commit.rs", "a008_commit.rs"),
        fixture("crates/server/src/sharded.rs", "a008_sharded.rs"),
    ];
    let found = locks::lock_order(&files);
    assert_eq!(found.len(), 1, "exactly one cycle expected: {found:?}");
    let f = &found[0];
    assert_eq!(f.rule, "CIND-A008");
    assert_eq!(f.file, "crates/server/src/commit.rs");
    assert_eq!(f.line, 12);
    assert_eq!(
        f.message,
        "lock-order cycle: queue -> slot -> queue; \
         crates/server/src/commit.rs:12 acquires slot while holding queue (line 11); \
         crates/server/src/sharded.rs:12 acquires queue while holding slot (line 11)"
    );
}

#[test]
fn seeded_inversion_is_order_independent() {
    // The same cycle must be found (and canonicalized identically) no
    // matter which file the scan reads first.
    let files = [
        fixture("crates/server/src/sharded.rs", "a008_sharded.rs"),
        fixture("crates/server/src/commit.rs", "a008_commit.rs"),
    ];
    let found = locks::lock_order(&files);
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(
        found[0].message.starts_with("lock-order cycle: queue -> slot -> queue;"),
        "{}",
        found[0].message
    );
}

#[test]
fn seeded_guard_across_fsync_is_flagged_with_acquisition_site() {
    let files = [fixture("crates/server/src/wal_flush.rs", "a009_fsync.rs")];
    let found = blocking::blocking_in_critical_section(&files);
    assert_eq!(found.len(), 1, "exactly one hold expected: {found:?}");
    let f = &found[0];
    assert_eq!(f.rule, "CIND-A009");
    assert_eq!(f.file, "crates/server/src/wal_flush.rs");
    assert_eq!(f.line, 13);
    assert_eq!(
        f.message,
        "blocking `.sync_all(` while holding lock guard on `state` \
         (acquired line 11) — move it outside the critical section \
         or annotate why the hold is sound"
    );
}

#[test]
fn fixing_the_seeded_violations_silences_both_rules() {
    // Reorder the sharded side to match the commit side's order, and drop
    // the guard before the fsync: both findings must disappear. This is the
    // "removing the fix re-fires the rule" contract run in reverse.
    let fixed_sharded = "\
impl ShardedEngine {
    pub fn reopen(&self) {
        let queue = self.queue.lock().unwrap();
        let mut slot = self.slots[0].write().unwrap();
        *slot = queue.len() as u64;
    }
}
";
    let fixed_fsync = "\
impl WalFlush {
    pub fn append(&self, n: u64) {
        let mut state = self.state.lock().unwrap();
        *state += n;
        drop(state);
        self.file.sync_all().unwrap();
    }
}
";
    let files = [
        fixture("crates/server/src/commit.rs", "a008_commit.rs"),
        SourceFile::new("crates/server/src/sharded.rs", fixed_sharded),
        SourceFile::new("crates/server/src/wal_flush.rs", fixed_fsync),
    ];
    assert!(locks::lock_order(&files).is_empty());
    assert!(blocking::blocking_in_critical_section(&files).is_empty());
}
