//! Differential test: the lexer-backed engine is a drop-in replacement for
//! the retired byte-walkers.
//!
//! `mod legacy` below is the pre-engine implementation, inlined verbatim
//! (blanking, test-region masking, and the A003/A006 walkers). Over the
//! *real current workspace* we assert:
//!
//! 1. the legacy code view and the lexer's code view are byte-identical for
//!    every file — which carries A001/A002/A004/A005/A007 with it, since
//!    those rules still run line-wise over `SourceFile::code`/`raw` and were
//!    not otherwise changed; and
//! 2. the legacy A003 and A006 walkers report exactly the same `file:line`
//!    sets as their event-walker ports.
//!
//! Known, accepted divergence (not present in the tree, and caught by
//! assertion 1 if it ever appears): an identifier ending in `b` followed
//! directly by a string literal (`ab"x"`) — the legacy blanker ate the `b`
//! as a byte-string prefix; the lexer keeps `ab` one identifier.

use std::collections::BTreeSet;
use std::path::Path;

use cind_audit::{load_workspace, rules, SourceFile};

mod legacy {
    //! The pre-engine byte-walkers, verbatim.

    use cind_audit::SourceFile;

    #[must_use]
    pub fn strip_comments_and_strings(src: &str) -> String {
        let b = src.as_bytes();
        let mut out = b.to_vec();
        let mut i = 0;
        while i < b.len() {
            match b[i] {
                b'/' if b.get(i + 1) == Some(&b'/') => {
                    while i < b.len() && b[i] != b'\n' {
                        out[i] = b' ';
                        i += 1;
                    }
                }
                b'/' if b.get(i + 1) == Some(&b'*') => {
                    let mut depth = 0usize;
                    while i < b.len() {
                        if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                            depth += 1;
                            out[i] = b' ';
                            out[i + 1] = b' ';
                            i += 2;
                        } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                            depth -= 1;
                            out[i] = b' ';
                            out[i + 1] = b' ';
                            i += 2;
                            if depth == 0 {
                                break;
                            }
                        } else {
                            if b[i] != b'\n' {
                                out[i] = b' ';
                            }
                            i += 1;
                        }
                    }
                }
                b'r' | b'b' if is_raw_string_start(b, i) => {
                    let mut j = i + 1;
                    if b[j] == b'r' {
                        j += 1;
                    }
                    let hash_start = j;
                    while j < b.len() && b[j] == b'#' {
                        j += 1;
                    }
                    let hashes = j - hash_start;
                    debug_assert_eq!(b[j], b'"');
                    j += 1;
                    while j < b.len() {
                        if b[j] == b'"'
                            && b[j + 1..].iter().take(hashes).filter(|&&c| c == b'#').count()
                                == hashes
                        {
                            j += 1 + hashes;
                            break;
                        }
                        j += 1;
                    }
                    for c in &mut out[i..j.min(b.len())] {
                        if *c != b'\n' {
                            *c = b' ';
                        }
                    }
                    i = j;
                }
                b'"' | b'b' if b[i] == b'"' || (b[i] == b'b' && b.get(i + 1) == Some(&b'"')) => {
                    if b[i] == b'b' {
                        out[i] = b' ';
                        i += 1;
                    }
                    out[i] = b' ';
                    i += 1;
                    while i < b.len() {
                        if b[i] == b'\\' {
                            out[i] = b' ';
                            if i + 1 < b.len() && b[i + 1] != b'\n' {
                                out[i + 1] = b' ';
                            }
                            i += 2;
                        } else if b[i] == b'"' {
                            out[i] = b' ';
                            i += 1;
                            break;
                        } else {
                            if b[i] != b'\n' {
                                out[i] = b' ';
                            }
                            i += 1;
                        }
                    }
                }
                b'\'' => {
                    if b.get(i + 1) == Some(&b'\\') {
                        out[i] = b' ';
                        i += 1;
                        while i < b.len() && b[i] != b'\'' {
                            out[i] = b' ';
                            i += 1;
                        }
                        if i < b.len() {
                            out[i] = b' ';
                            i += 1;
                        }
                    } else if b.get(i + 2) == Some(&b'\'') {
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        out[i + 2] = b' ';
                        i += 3;
                    } else {
                        i += 1;
                    }
                }
                _ => i += 1,
            }
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    fn is_raw_string_start(b: &[u8], i: usize) -> bool {
        let mut j = i;
        if b[j] == b'b' {
            j += 1;
            if b.get(j) != Some(&b'r') {
                return false;
            }
        }
        if b.get(j) != Some(&b'r') {
            return false;
        }
        j += 1;
        while b.get(j) == Some(&b'#') {
            j += 1;
        }
        b.get(j) == Some(&b'"')
            && (i == 0 || !b[i - 1].is_ascii_alphanumeric() && b[i - 1] != b'_')
    }

    #[must_use]
    pub fn mask_test_regions(stripped: &str) -> String {
        const ATTR: &str = "#[cfg(test)]";
        let mut out = stripped.as_bytes().to_vec();
        let mut from = 0;
        while let Some(pos) = stripped[from..].find(ATTR) {
            let start = from + pos;
            let bytes = stripped.as_bytes();
            let mut j = start + ATTR.len();
            let mut depth = 0usize;
            let mut end = bytes.len();
            while j < bytes.len() {
                match bytes[j] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            end = j + 1;
                            break;
                        }
                    }
                    b';' if depth == 0 => {
                        end = j + 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            for c in &mut out[start..end] {
                if *c != b'\n' {
                    *c = b' ';
                }
            }
            from = end;
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    fn line_of(text: &str, at: usize) -> usize {
        text.as_bytes()[..at.min(text.len())].iter().filter(|&&c| c == b'\n').count() + 1
    }

    fn prev_is_ident(code: &[u8], i: usize) -> bool {
        i > 0 && (code[i - 1].is_ascii_alphanumeric() || code[i - 1] == b'_')
    }

    /// Legacy A003 walker; returns 1-based finding lines.
    #[must_use]
    pub fn nested_lock_lines(f: &SourceFile) -> Vec<usize> {
        let mut out = Vec::new();
        let code = f.code.as_bytes();
        let mut depth: usize = 0;
        let mut held: Vec<usize> = Vec::new();
        let mut stmt_is_let = false;
        let mut i = 0;
        while i < code.len() {
            match code[i] {
                b'{' => {
                    depth += 1;
                    stmt_is_let = false;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    held.retain(|&d| d <= depth);
                    stmt_is_let = false;
                }
                b';' => stmt_is_let = false,
                b'l' if f.code[i..].starts_with("let")
                    && !prev_is_ident(code, i)
                    && code.get(i + 3).is_some_and(|c| c.is_ascii_whitespace()) =>
                {
                    stmt_is_let = true;
                }
                b'.' if f.code[i..].starts_with(".lock(") => {
                    if !held.is_empty() {
                        out.push(line_of(&f.code, i));
                    }
                    if stmt_is_let {
                        held.push(depth);
                    }
                }
                _ => {}
            }
            i += 1;
        }
        out
    }

    /// Legacy A006 walker; returns 1-based finding lines.
    #[must_use]
    pub fn fanout_lines(f: &SourceFile) -> Vec<usize> {
        const GUARDS: [&str; 3] = [".read()", ".write()", ".lock("];
        const FANOUT: [&str; 2] = [".engines()", "thread::scope"];
        let mut out = Vec::new();
        let code = f.code.as_bytes();
        let mut depth: usize = 0;
        let mut held: Vec<usize> = Vec::new();
        let mut stmt_is_let = false;
        let mut i = 0;
        while i < code.len() {
            match code[i] {
                b'{' => {
                    depth += 1;
                    stmt_is_let = false;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    held.retain(|&d| d <= depth);
                    stmt_is_let = false;
                }
                b';' => stmt_is_let = false,
                b'l' if f.code[i..].starts_with("let")
                    && !prev_is_ident(code, i)
                    && code.get(i + 3).is_some_and(|c| c.is_ascii_whitespace()) =>
                {
                    stmt_is_let = true;
                }
                b'.' if stmt_is_let && GUARDS.iter().any(|g| f.code[i..].starts_with(g)) => {
                    held.push(depth);
                }
                _ => {}
            }
            if (code[i] == b'.' || !prev_is_ident(code, i))
                && FANOUT.iter().any(|t| f.code[i..].starts_with(t))
                && !held.is_empty()
            {
                out.push(line_of(&f.code, i));
            }
            i += 1;
        }
        out
    }
}

fn workspace() -> Vec<SourceFile> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    load_workspace(&root).expect("workspace loads")
}

#[test]
fn code_views_are_byte_identical_to_legacy_blanking() {
    let files = workspace();
    assert!(!files.is_empty());
    for f in &files {
        let legacy_view = legacy::mask_test_regions(&legacy::strip_comments_and_strings(&f.raw));
        if legacy_view != f.code {
            let at = legacy_view
                .bytes()
                .zip(f.code.bytes())
                .position(|(a, b)| a != b)
                .unwrap_or(legacy_view.len().min(f.code.len()));
            panic!(
                "{}: code views diverge at byte {at} (line {}): legacy {:?} vs lexer {:?}",
                f.path,
                f.code[..at].lines().count(),
                &legacy_view[at..(at + 40).min(legacy_view.len())],
                &f.code[at..(at + 40).min(f.code.len())],
            );
        }
    }
}

#[test]
fn a003_walker_matches_legacy_on_the_real_tree() {
    let files = workspace();
    let legacy_set: BTreeSet<(String, usize)> = files
        .iter()
        .filter(|f| f.path.ends_with("storage/src/buffer.rs"))
        .flat_map(|f| legacy::nested_lock_lines(f).into_iter().map(|l| (f.path.clone(), l)))
        .collect();
    let new_set: BTreeSet<(String, usize)> = rules::lock_discipline(&files)
        .into_iter()
        .filter(|f| f.message.starts_with("shard latch"))
        .map(|f| (f.file, f.line))
        .collect();
    assert_eq!(legacy_set, new_set);
}

#[test]
fn a006_walker_matches_legacy_on_the_real_tree() {
    let files = workspace();
    let legacy_set: BTreeSet<(String, usize)> = files
        .iter()
        .filter(|f| f.path.ends_with("server/src/sharded.rs"))
        .flat_map(|f| legacy::fanout_lines(f).into_iter().map(|l| (f.path.clone(), l)))
        .collect();
    let new_set: BTreeSet<(String, usize)> = rules::shard_fanout_lock_freedom(&files)
        .into_iter()
        .map(|f| (f.file, f.line))
        .collect();
    assert_eq!(legacy_set, new_set);
}
