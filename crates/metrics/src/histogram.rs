//! Log-bucketed latency histogram (Fig. 8).

use std::time::Duration;

/// Sub-buckets per decade. Four gives bucket boundaries at 1, 1.8, 3.2,
/// 5.6, 10 — enough resolution to see the split hump Fig. 8 shows without
/// drowning the report in rows.
const PER_DECADE: usize = 4;

/// A histogram over durations with logarithmic buckets from 100 ns to
/// 100 s.
///
/// Fig. 8 plots the distribution of per-insert execution times, which spans
/// four orders of magnitude (normal inserts ~1 ms, splits up to seconds);
/// linear buckets cannot show that, log buckets can.
///
/// ```
/// use cind_metrics::LatencyHistogram;
/// use std::time::Duration;
///
/// let mut h = LatencyHistogram::new();
/// h.record(Duration::from_micros(800)); // a normal insert
/// h.record(Duration::from_micros(900));
/// h.record(Duration::from_millis(40));  // a split
/// assert_eq!(h.len(), 3);
/// assert_eq!(h.buckets().len(), 2, "two populations, two buckets");
/// assert!(h.percentile(50.0).unwrap() < Duration::from_millis(1));
/// assert!(h.percentile(100.0).unwrap() >= Duration::from_millis(40));
/// ```
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    /// All samples in nanoseconds, kept for exact percentiles. The
    /// experiments record ≤ a few hundred thousand inserts, so this is
    /// cheap and makes percentile math exact instead of bucket-interpolated.
    samples: Vec<u64>,
}

/// 100 ns in nanos — the left edge of the first bucket.
const FLOOR_NANOS: f64 = 100.0;
/// Bucket count: 9 decades × PER_DECADE.
const BUCKETS: usize = 9 * PER_DECADE;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; BUCKETS + 1], total: 0, samples: Vec::new() }
    }

    fn bucket_of(nanos: u64) -> usize {
        if (nanos as f64) < FLOOR_NANOS {
            return 0;
        }
        let pos = ((nanos as f64) / FLOOR_NANOS).log10() * PER_DECADE as f64;
        (pos.floor() as usize + 1).min(BUCKETS)
    }

    /// Lower edge of bucket `i`.
    fn edge(i: usize) -> Duration {
        if i == 0 {
            return Duration::ZERO;
        }
        let nanos = FLOOR_NANOS * 10f64.powf((i - 1) as f64 / PER_DECADE as f64);
        Duration::from_nanos(nanos.round() as u64)
    }

    /// Records one sample.
    pub fn record(&mut self, d: Duration) {
        let nanos = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.counts[Self::bucket_of(nanos)] += 1;
        self.total += 1;
        self.samples.push(nanos);
    }

    /// Number of samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Non-empty buckets as `(lower edge, upper edge, count)`, ascending.
    pub fn buckets(&self) -> Vec<(Duration, Duration, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::edge(i), Self::edge(i + 1), c))
            .collect()
    }

    /// Exact percentile (`p` in `[0, 100]`) over the recorded samples;
    /// `None` when empty.
    pub fn percentile(&mut self, p: f64) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort_unstable();
        let rank = ((p / 100.0) * (self.samples.len() - 1) as f64).round() as usize;
        Some(Duration::from_nanos(self.samples[rank]))
    }

    /// Mean duration; `None` when empty.
    pub fn mean(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: u128 = self.samples.iter().map(|&n| u128::from(n)).sum();
        Some(Duration::from_nanos((sum / self.samples.len() as u128) as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_logarithmic() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(1)); // 1000 ns
        h.record(Duration::from_micros(1));
        h.record(Duration::from_millis(1));
        h.record(Duration::from_secs(1));
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].2, 2);
        // Each sample lands in a bucket whose range contains it.
        for (lo, hi, _) in &buckets {
            assert!(lo < hi);
        }
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn same_decade_separation() {
        // 1 ms and 9 ms must land in different sub-decade buckets.
        let a = LatencyHistogram::bucket_of(1_000_000);
        let b = LatencyHistogram::bucket_of(9_000_000);
        assert_ne!(a, b);
        // But 1.0 ms and 1.2 ms share one.
        let c = LatencyHistogram::bucket_of(1_200_000);
        assert_eq!(a, c);
    }

    #[test]
    fn tiny_and_huge_samples_clamp() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_secs(10_000));
        assert_eq!(h.len(), 2);
        let buckets = h.buckets();
        assert_eq!(buckets.first().unwrap().0, Duration::ZERO);
    }

    #[test]
    fn percentiles_and_mean() {
        let mut h = LatencyHistogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.percentile(0.0), Some(Duration::from_millis(1)));
        assert_eq!(h.percentile(100.0), Some(Duration::from_millis(100)));
        let median = h.percentile(50.0).unwrap();
        assert!((49..=52).contains(&(median.as_millis() as u64)));
        let mean = h.mean().unwrap();
        assert!((50..=51).contains(&(mean.as_millis() as u64)));
    }

    #[test]
    fn empty_histogram() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert!(h.buckets().is_empty());
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mean(), None);
    }
}
