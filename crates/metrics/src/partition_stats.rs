//! Per-partitioning statistics — the four series of Fig. 7.

use crate::Summary;

/// One partition's raw numbers, as the Fig. 7 analysis needs them.
#[derive(Clone, Copy, Debug)]
pub struct PartitionNumbers {
    /// Member entities (Fig. 7(b)).
    pub entities: u64,
    /// Attributes in the synopsis (Fig. 7(c)).
    pub attributes: u32,
    /// Sparseness of the `entities × attributes` rectangle (Fig. 7(d)).
    pub sparseness: f64,
}

/// The Fig. 7 report for one partitioning.
#[derive(Clone, Debug)]
pub struct PartitioningReport {
    /// Number of partitions (Fig. 7(a)).
    pub partitions: usize,
    /// Distribution of entities per partition.
    pub entities: Option<Summary>,
    /// Distribution of attributes per partition.
    pub attributes: Option<Summary>,
    /// Distribution of sparseness per partition.
    pub sparseness: Option<Summary>,
}

impl PartitioningReport {
    /// Builds the report from per-partition numbers.
    pub fn from_partitions(parts: impl IntoIterator<Item = PartitionNumbers>) -> Self {
        let parts: Vec<PartitionNumbers> = parts.into_iter().collect();
        let col = |f: fn(&PartitionNumbers) -> f64| {
            Summary::of(&parts.iter().map(f).collect::<Vec<f64>>())
        };
        Self {
            partitions: parts.len(),
            entities: col(|p| p.entities as f64),
            attributes: col(|p| f64::from(p.attributes)),
            sparseness: col(|p| p.sparseness),
        }
    }
}

impl std::fmt::Display for PartitioningReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "partitions: {}", self.partitions)?;
        let line = |name: &str, s: &Option<Summary>| match s {
            Some(s) => format!("  {name:<12} {s}"),
            None => format!("  {name:<12} (no partitions)"),
        };
        writeln!(f, "{}", line("entities", &self.entities))?;
        writeln!(f, "{}", line("attributes", &self.attributes))?;
        write!(f, "{}", line("sparseness", &self.sparseness))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_the_three_series() {
        let report = PartitioningReport::from_partitions([
            PartitionNumbers { entities: 10, attributes: 4, sparseness: 0.0 },
            PartitionNumbers { entities: 30, attributes: 8, sparseness: 0.5 },
        ]);
        assert_eq!(report.partitions, 2);
        let e = report.entities.unwrap();
        assert_eq!(e.min, 10.0);
        assert_eq!(e.max, 30.0);
        assert_eq!(e.mean, 20.0);
        assert_eq!(report.attributes.unwrap().median, 6.0);
        assert_eq!(report.sparseness.unwrap().max, 0.5);
    }

    #[test]
    fn empty_partitioning() {
        let report = PartitioningReport::from_partitions([]);
        assert_eq!(report.partitions, 0);
        assert!(report.entities.is_none());
        let s = report.to_string();
        assert!(s.contains("no partitions"));
    }
}
