//! Text tables and CSV output for the harness binaries.

use std::io::Write;
use std::path::Path;

/// A fixed-width text table: headers plus rows of strings, rendered with
/// column alignment. The harness binaries print one per figure/table so the
/// console output reads like the paper's artifacts.
///
/// ```
/// use cind_metrics::Table;
/// let mut t = Table::new(["B", "splits"]);
/// t.row(["500", "274"]).row(["50000", "0"]);
/// let rendered = t.render();
/// assert!(rendered.starts_with("B      splits"));
/// assert_eq!(rendered.lines().count(), 4); // header + rule + 2 rows
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
            }
            line.trim_end().to_owned()
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        for row in &self.rows {
            out.push('\n');
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Writes the table as CSV to `path`.
    ///
    /// # Errors
    /// I/O errors from file creation or writing.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut rows = Vec::with_capacity(self.rows.len() + 1);
        rows.push(self.headers.clone());
        rows.extend(self.rows.iter().cloned());
        write_csv(path, &rows)
    }
}

/// Writes rows of cells as CSV (quoting cells containing commas, quotes, or
/// newlines).
///
/// # Errors
/// I/O errors from file creation or writing.
pub fn write_csv(path: &Path, rows: &[Vec<String>]) -> std::io::Result<()> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .map(|cell| {
                if cell.contains([',', '"', '\n']) {
                    format!("\"{}\"", cell.replace('"', "\"\""))
                } else {
                    cell.clone()
                }
            })
            .collect();
        writeln!(out, "{}", line.join(","))?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["selectivity", "time"]);
        t.row(["0.01", "1.5ms"]).row(["0.5", "200ms"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("selectivity"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("0.01"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let dir = std::env::temp_dir().join("cind_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        let rows = vec![
            vec!["a".to_owned(), "b,c".to_owned()],
            vec!["x\"y".to_owned(), "z".to_owned()],
        ];
        write_csv(&path, &rows).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,\"b,c\"\n\"x\"\"y\",z\n");
        std::fs::remove_file(&path).unwrap();
    }
}
