//! Five-number summaries (Fig. 7 box-plot data).

/// Minimum, quartiles, maximum, and mean of a sample.
///
/// ```
/// use cind_metrics::Summary;
/// let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
/// assert_eq!((s.min, s.median, s.max, s.mean), (1.0, 2.0, 3.0, 2.0));
/// assert!(Summary::of(&[]).is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Summary {
    /// Smallest value.
    pub min: f64,
    /// 25th percentile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q75: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub count: usize,
}

impl Summary {
    /// Summarises `values`; `None` when empty or when any value is NaN.
    pub fn of(values: &[f64]) -> Option<Self> {
        if values.is_empty() || values.iter().any(|v| v.is_nan()) {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let q = |p: f64| {
            // Linear interpolation between closest ranks.
            let pos = p * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        };
        Some(Self {
            min: sorted[0],
            q25: q(0.25),
            median: q(0.5),
            q75: q(0.75),
            max: *sorted.last().expect("non-empty"),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            count: sorted.len(),
        })
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min={:.3} q25={:.3} med={:.3} q75={:.3} max={:.3} mean={:.3} (n={})",
            self.min, self.q25, self.median, self.q75, self.max, self.mean, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_numbers_of_a_range() {
        let v: Vec<f64> = (1..=9).map(f64::from).collect();
        let s = Summary::of(&v).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q25, 3.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.q75, 7.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.count, 9);
    }

    #[test]
    fn interpolates_between_ranks() {
        let s = Summary::of(&[1.0, 2.0]).unwrap();
        assert_eq!(s.median, 1.5);
        assert_eq!(s.q25, 1.25);
        assert_eq!(s.q75, 1.75);
    }

    #[test]
    fn single_value_and_empty() {
        let s = Summary::of(&[4.2]).unwrap();
        assert_eq!(s.min, 4.2);
        assert_eq!(s.max, 4.2);
        assert_eq!(s.median, 4.2);
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = Summary::of(&[9.0, 1.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.max, 9.0);
    }
}
