//! Measurement utilities for the experiments.
//!
//! * [`LatencyHistogram`] — log-bucketed latency histogram, the shape of
//!   Fig. 8 (insert execution times spanning µs to seconds).
//! * [`Summary`] — five-number summary + mean, the box-plot data behind
//!   Fig. 7(b)–(d).
//! * [`partition_stats`] — turns a partitioning's per-partition numbers
//!   into the four Fig. 7 series.
//! * [`report`] — fixed-width text tables and CSV output for the harness
//!   binaries (hand-rolled; no serde dependency needed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
pub mod partition_stats;
pub mod report;
mod summary;

pub use histogram::LatencyHistogram;
pub use partition_stats::PartitioningReport;
pub use report::{write_csv, Table};
pub use summary::Summary;
