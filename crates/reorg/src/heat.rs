//! Partition heat tracking with a deterministic epoch-based sliding
//! window.
//!
//! Cinderella adapts only on insert; once an entity lands, nothing in the
//! paper re-examines the placement when the *query* workload moves. The
//! heat map is the reorganizer's memory of that workload: per-partition
//! scan counters (how often a partition survived pruning for a query) and
//! a bounded set of recent distinct query synopses with occurrence
//! weights — the empirical workload the cost model prices candidate
//! actions against.
//!
//! Decay is **op-count based, never wall-clock** (rule CIND-A005): after
//! `epoch_ops` recorded operations the epoch advances and every counter
//! and weight is halved (integer division, entries reaching zero are
//! dropped). A run is thus a pure function of its operation sequence —
//! the simulation harness replays byte-identical decisions.

use std::collections::BTreeMap;

use cind_model::Synopsis;
use cind_storage::SegmentId;

/// Upper bound on distinct query synopses remembered as the workload.
/// Matches the simulation harness's own `WORKLOAD_CAP` order of magnitude:
/// enough to capture a drifting mix, small enough that the cost model's
/// full sweep stays trivially cheap.
pub const WORKLOAD_CAP: usize = 32;

/// Epochs a partition stays merge-vetoed after its last scan. Halving
/// decay erases one or two scans within a couple of epochs, so "decayed
/// heat is zero" alone does not mean "the workload is done with this
/// partition" — during a flash crowd the hammered pair starves everyone
/// else of heat, the merge phase folds partitions the background workload
/// still touches, and the post-crowd re-hit forces them straight back
/// apart. The cool-off remembers the *last scan epoch* un-decayed and
/// keeps such partitions off the merge menu until the workload has
/// demonstrably moved on.
pub const MERGE_COOLOFF_EPOCHS: u64 = 4;

/// Per-partition heat counters for the current window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionHeat {
    /// Queries this partition survived pruning for (it was scanned).
    pub scans: u64,
}

/// The decayed view of the recent workload: who is hot, and what the
/// queries looked like.
#[derive(Clone, Debug)]
pub struct HeatMap {
    /// Ops per epoch (≥ 1); reaching it halves everything.
    epoch_ops: u64,
    /// Recorded ops in the current epoch.
    ops_in_epoch: u64,
    /// Epochs completed so far.
    epoch: u64,
    /// Scan heat per partition. `BTreeMap` for deterministic iteration —
    /// driver decisions must not depend on hash order.
    parts: BTreeMap<SegmentId, PartitionHeat>,
    /// Epoch of each partition's most recent scan, un-decayed. Entries
    /// older than [`MERGE_COOLOFF_EPOCHS`] are pruned at epoch close.
    scan_epoch: BTreeMap<SegmentId, u64>,
    /// Recent distinct query synopses with decayed occurrence weights.
    workload: Vec<(Synopsis, u64)>,
}

impl HeatMap {
    /// A heat map that decays every `epoch_ops` operations.
    #[must_use]
    pub fn new(epoch_ops: u64) -> Self {
        Self {
            epoch_ops: epoch_ops.max(1),
            ops_in_epoch: 0,
            epoch: 0,
            parts: BTreeMap::new(),
            scan_epoch: BTreeMap::new(),
            workload: Vec::new(),
        }
    }

    /// Records one query: its synopsis joins (or re-weights in) the
    /// workload window, and every partition that survived pruning for it
    /// gains scan heat. Counts as one op toward the epoch.
    pub fn record_query(
        &mut self,
        query: &Synopsis,
        scanned: impl IntoIterator<Item = SegmentId>,
    ) {
        for seg in scanned {
            self.parts.entry(seg).or_default().scans += 1;
            self.scan_epoch.insert(seg, self.epoch);
        }
        match self.workload.iter_mut().find(|(q, _)| q == query) {
            Some((_, w)) => *w += 1,
            None => {
                if self.workload.len() == WORKLOAD_CAP {
                    // Evict the lightest (first among ties) — the query
                    // shape contributing least to the cost model.
                    if let Some(idx) = self
                        .workload
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (_, w))| *w)
                        .map(|(i, _)| i)
                    {
                        self.workload.remove(idx);
                    }
                }
                self.workload.push((query.clone(), 1));
            }
        }
        self.tick();
    }

    /// Records one mutation (insert / update / delete). Counts toward the
    /// epoch so heat decays even in write-only phases.
    pub fn record_op(&mut self) {
        self.tick();
    }

    fn tick(&mut self) {
        self.ops_in_epoch += 1;
        if self.ops_in_epoch >= self.epoch_ops {
            self.ops_in_epoch = 0;
            self.epoch += 1;
            self.decay();
        }
    }

    /// Halves every counter and weight; entries reaching zero drop out —
    /// partitions (and query shapes) the workload stopped touching fade
    /// from the model within a few epochs.
    fn decay(&mut self) {
        self.parts.retain(|_, h| {
            h.scans /= 2;
            h.scans > 0
        });
        let epoch = self.epoch;
        self.scan_epoch.retain(|_, last| epoch - *last <= MERGE_COOLOFF_EPOCHS);
        self.workload.retain_mut(|(_, w)| {
            *w /= 2;
            *w > 0
        });
    }

    /// Scan heat of one partition in the current window.
    #[must_use]
    pub fn heat(&self, seg: SegmentId) -> u64 {
        self.parts.get(&seg).map_or(0, |h| h.scans)
    }

    /// Whether the partition was scanned within the last
    /// [`MERGE_COOLOFF_EPOCHS`] epochs — the merge veto's predicate.
    /// Independent of the decayed counter: a single scan three epochs ago
    /// has heat zero but is still "recent" here.
    #[must_use]
    pub fn recently_scanned(&self, seg: SegmentId) -> bool {
        self.scan_epoch
            .get(&seg)
            .is_some_and(|&last| self.epoch - last <= MERGE_COOLOFF_EPOCHS)
    }

    /// The decayed workload: distinct query synopses with weights.
    #[must_use]
    pub fn workload(&self) -> &[(Synopsis, u64)] {
        &self.workload
    }

    /// Completed epochs.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total scan heat across all partitions (the hysteresis denominator
    /// scale when no partition-local cost is available).
    #[must_use]
    pub fn total_heat(&self) -> u64 {
        self.parts.values().map(|h| h.scans).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syn(bits: &[u32]) -> Synopsis {
        Synopsis::from_attrs(128, bits.iter().map(|&b| cind_model::AttrId(b)))
    }

    #[test]
    fn heat_accumulates_and_decays_on_epoch() {
        let mut h = HeatMap::new(4);
        let q = syn(&[1, 2]);
        for _ in 0..3 {
            h.record_query(&q, [SegmentId(7)]);
        }
        assert_eq!(h.heat(SegmentId(7)), 3);
        assert_eq!(h.epoch(), 0);
        h.record_query(&q, [SegmentId(7)]);
        // Fourth op closes the epoch: 4 scans halve to 2, weight 4 → 2.
        assert_eq!(h.epoch(), 1);
        assert_eq!(h.heat(SegmentId(7)), 2);
        assert_eq!(h.workload(), &[(q, 2)]);
    }

    #[test]
    fn cold_partitions_fade_out() {
        let mut h = HeatMap::new(1);
        h.record_query(&syn(&[1]), [SegmentId(3)]);
        // One scan halves to zero at the immediate epoch close.
        assert_eq!(h.heat(SegmentId(3)), 0);
        assert!(h.workload().is_empty());
    }

    #[test]
    fn workload_is_bounded_and_evicts_lightest() {
        let mut h = HeatMap::new(u64::MAX);
        for i in 0..WORKLOAD_CAP as u32 {
            h.record_query(&syn(&[i]), []);
        }
        // Re-weight one shape so it is no longer the lightest.
        h.record_query(&syn(&[0]), []);
        h.record_query(&syn(&[99]), []);
        assert_eq!(h.workload().len(), WORKLOAD_CAP);
        assert!(h.workload().iter().any(|(q, _)| *q == syn(&[99])));
        assert!(h.workload().iter().any(|(q, w)| *q == syn(&[0]) && *w == 2));
    }

    #[test]
    fn cooloff_outlives_decayed_heat() {
        let mut h = HeatMap::new(1);
        h.record_query(&syn(&[1]), [SegmentId(3)]);
        // One scan halves to zero at the immediate epoch close…
        assert_eq!(h.heat(SegmentId(3)), 0);
        // …but the partition stays merge-vetoed for the cool-off window.
        assert!(h.recently_scanned(SegmentId(3)));
        for _ in 1..MERGE_COOLOFF_EPOCHS {
            h.record_op();
        }
        assert!(h.recently_scanned(SegmentId(3)));
        h.record_op();
        assert!(!h.recently_scanned(SegmentId(3)));
    }

    #[test]
    fn rescan_refreshes_the_cooloff() {
        let mut h = HeatMap::new(1);
        h.record_query(&syn(&[1]), [SegmentId(9)]);
        for _ in 0..MERGE_COOLOFF_EPOCHS {
            h.record_op();
        }
        h.record_query(&syn(&[1]), [SegmentId(9)]);
        for _ in 1..MERGE_COOLOFF_EPOCHS {
            h.record_op();
        }
        assert!(h.recently_scanned(SegmentId(9)));
    }

    #[test]
    fn mutations_advance_the_epoch_too() {
        let mut h = HeatMap::new(2);
        h.record_query(&syn(&[1]), [SegmentId(1)]);
        h.record_op();
        assert_eq!(h.epoch(), 1);
    }
}
