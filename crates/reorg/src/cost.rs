//! The reorganizer's cost model: pricing candidate actions in Definition-1
//! terms *before* paying for them.
//!
//! The key observation making this exact rather than heuristic: for a
//! workload `Q`, `EFFICIENCY(P)`'s **numerator** (`Σ_q Σ_e sgn(|e ∧ q|) ·
//! SIZE(e)`) does not depend on the partitioning at all — reorganization
//! cannot change which entities match a query. Only the **denominator**
//! (`Σ_q Σ_p sgn(|p ∧ q|) · SIZE(p)`, the bytes scanned) moves. And the
//! denominator is computable from the partition catalog alone — attribute
//! synopses and sizes, no table I/O — so a candidate action's ΔEFFICIENCY
//! sign is the sign of its scan-cost delta, priced here against the heat
//! map's decayed workload.
//!
//! Per-action facts the driver relies on:
//!
//! * **Merge** `a + b → a∨b`: for a query overlapping both or neither
//!   side the cost is unchanged; overlapping exactly one side starts
//!   paying the other side's size too. The merged synopsis is *exactly*
//!   `a ∨ b` (the catalog keeps per-attribute member counts), so
//!   [`merge_damage`] is exact, not an estimate. Merging never helps the
//!   denominator — its gain is catalog overhead, so the driver enacts it
//!   only on cold partitions where the priced damage is ~zero.
//! * **Re-split** `p → (p₁, p₂)`: every member lands in one of the halves,
//!   so `p₁ ∨ p₂ ⊆ p` and `SIZE(p₁) + SIZE(p₂) = SIZE(p)` — the measured
//!   delta is never positive. [`resplit_saving`] *predicts* the split
//!   using the starter pair as proxies for the halves (the same seeds the
//!   actual split machinery uses), claiming a saving only for queries that
//!   overlap exactly one seed.
//! * **Migrate** `e: p → t`: `t` grows by exactly `e`'s synopsis and size;
//!   `p` keeps at most its old synopsis at `SIZE(p) − SIZE(e)`.
//!   [`migrate_delta`] prices `p`'s side conservatively (synopsis
//!   unchanged), so the true delta is ≤ the prediction — a predicted
//!   saving is a guaranteed saving.

use cind_model::Synopsis;

/// The decayed workload: distinct query synopses with occurrence weights.
pub type WeightedQueries = [(Synopsis, u64)];

/// Workload-weighted scan cost of a set of partitions:
/// `Σ_q w_q · Σ_p sgn(|p ∧ q|) · SIZE(p)` — the (weighted) denominator of
/// Definition 1 restricted to `parts`.
#[must_use]
pub fn scan_cost<'a>(
    parts: impl IntoIterator<Item = (&'a Synopsis, u64)>,
    workload: &WeightedQueries,
) -> u128 {
    let mut total = 0u128;
    for (syn, size) in parts {
        for (q, w) in workload {
            if !syn.is_disjoint(q) {
                total += u128::from(*w) * u128::from(size);
            }
        }
    }
    total
}

/// Exact extra scan cost of merging partitions `a` and `b` (synopsis,
/// size): queries overlapping exactly one side start paying for the other
/// side too. Always ≥ 0 — a merge never improves the denominator.
#[must_use]
pub fn merge_damage(
    a: (&Synopsis, u64),
    b: (&Synopsis, u64),
    workload: &WeightedQueries,
) -> u128 {
    let mut damage = 0u128;
    for (q, w) in workload {
        let hits_a = !a.0.is_disjoint(q);
        let hits_b = !b.0.is_disjoint(q);
        let extra = match (hits_a, hits_b) {
            (true, false) => b.1,  // starts scanning b's bytes as well
            (false, true) => a.1,
            _ => 0,
        };
        damage += u128::from(*w) * u128::from(extra);
    }
    damage
}

/// Predicted scan-cost saving of re-splitting partition `p` (synopsis,
/// size), using the split-starter pair `(seed_a, seed_b)` as proxies for
/// the two halves (each at half of `p`'s size). A saving is claimed only
/// for queries that overlap `p` and exactly one seed — queries overlapping
/// both (or neither) seed are conservatively assumed to keep paying the
/// full partition.
///
/// The *measured* saving of an actual re-split is always ≥ 0 (the halves'
/// synopses are subsets of `p`'s and their sizes sum to `SIZE(p)`), so a
/// positive prediction never has the wrong sign — it can only be
/// over-optimistic in magnitude, which the driver's hysteresis threshold
/// absorbs.
#[must_use]
pub fn resplit_saving(
    p: (&Synopsis, u64),
    seed_a: &Synopsis,
    seed_b: &Synopsis,
    workload: &WeightedQueries,
) -> u128 {
    let half_a = p.1 / 2;
    let half_b = p.1 - half_a;
    let mut saving = 0u128;
    for (q, w) in workload {
        if p.0.is_disjoint(q) {
            continue;
        }
        let hits_a = !seed_a.is_disjoint(q);
        let hits_b = !seed_b.is_disjoint(q);
        let saved = match (hits_a, hits_b) {
            (true, false) => half_b, // stops scanning the b-half
            (false, true) => half_a,
            _ => 0,
        };
        saving += u128::from(*w) * u128::from(saved);
    }
    saving
}

/// Predicted scan-cost delta (negative = saving) of migrating entity `e`
/// (attribute synopsis, size) from partition `from` to partition `to`.
/// `to`'s side is exact (`to ∨ e` at `SIZE(to) + SIZE(e)`); `from`'s side
/// is conservative — its synopsis is assumed unchanged, only its size
/// shrinks — so the true delta is ≤ the returned value and a predicted
/// saving is a guaranteed saving.
#[must_use]
pub fn migrate_delta(
    e: (&Synopsis, u64),
    from: (&Synopsis, u64),
    to: (&Synopsis, u64),
    workload: &WeightedQueries,
) -> i128 {
    let mut delta = 0i128;
    for (q, w) in workload {
        let w = i128::from(*w);
        // Target side: already scanned → pays e's bytes on top; newly
        // dragged in by e's attributes → pays its whole new size.
        if !to.0.is_disjoint(q) {
            delta += w * i128::from(e.1);
        } else if !e.0.is_disjoint(q) {
            delta += w * i128::from(to.1 + e.1);
        }
        // Source side: every query scanning `from` stops paying e's bytes
        // (synopsis conservatively unchanged).
        if !from.0.is_disjoint(q) {
            delta -= w * i128::from(e.1);
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::AttrId;

    fn syn(bits: &[u32]) -> Synopsis {
        Synopsis::from_attrs(64, bits.iter().map(|&b| AttrId(b)))
    }

    #[test]
    fn scan_cost_counts_overlapping_partitions_weighted() {
        let parts = [(syn(&[1, 2]), 10u64), (syn(&[5]), 100)];
        let workload = vec![(syn(&[1]), 3u64), (syn(&[5]), 1)];
        let cost = scan_cost(parts.iter().map(|(s, z)| (s, *z)), &workload);
        assert_eq!(cost, 3 * 10 + 100);
    }

    #[test]
    fn merge_damage_is_zero_for_twins_and_positive_for_disjoint() {
        let a = (syn(&[1, 2]), 10u64);
        let b = (syn(&[1, 2]), 20u64);
        let w = vec![(syn(&[1]), 5u64)];
        assert_eq!(merge_damage((&a.0, a.1), (&b.0, b.1), &w), 0);

        let c = (syn(&[9]), 20u64);
        // The query hits only `a`; merging drags in c's 20 bytes, ×5.
        assert_eq!(merge_damage((&a.0, a.1), (&c.0, c.1), &w), 100);
    }

    #[test]
    fn resplit_saving_rewards_separable_seeds() {
        let p = (syn(&[1, 2, 9]), 100u64);
        let sa = syn(&[1, 2]);
        let sb = syn(&[9]);
        let w = vec![(syn(&[1]), 2u64), (syn(&[9]), 1)];
        // q=[1] hits only seed a → saves the b-half (50) ×2; q=[9] hits
        // only seed b → saves the a-half (50) ×1.
        assert_eq!(resplit_saving((&p.0, p.1), &sa, &sb, &w), 150);
        // Inseparable seeds predict nothing.
        assert_eq!(resplit_saving((&p.0, p.1), &sa, &sa, &w), 0);
    }

    #[test]
    fn migrate_delta_signs() {
        let e = (syn(&[9]), 5u64);
        let from = (syn(&[1, 9]), 50u64);
        let to = (syn(&[9]), 30u64);
        // Query [1] scans `from` only: moving e out saves its 5 bytes.
        let w1 = vec![(syn(&[1]), 1u64)];
        assert_eq!(migrate_delta((&e.0, e.1), (&from.0, from.1), (&to.0, to.1), &w1), -5);
        // Query [9] scans both: `to` pays 5 more, `from` pays 5 less — a wash.
        let w2 = vec![(syn(&[9]), 1u64)];
        assert_eq!(migrate_delta((&e.0, e.1), (&from.0, from.1), (&to.0, to.1), &w2), 0);
        // Moving e into a partition the query did not scan drags it in.
        let cold = (syn(&[20]), 40u64);
        let w3 = vec![(syn(&[9]), 1u64)];
        assert_eq!(
            migrate_delta((&e.0, e.1), (&from.0, from.1), (&cold.0, cold.1), &w3),
            40 + 5 - 5
        );
    }
}
