//! The incremental reorganization executor.
//!
//! [`ReorgDriver::step`] runs between foreground operations under the
//! engine's writer lock and enacts **at most one** cost-cleared action per
//! invocation, with the work bounded by the configured budget — the same
//! order of cost as a single overflow split, so a background step never
//! stalls the write path for longer than Algorithm 1 itself can.
//!
//! Action selection each step, in priority order:
//!
//! 1. **Re-split** a hot mixed partition — the only action that *gains*
//!    Definition-1 efficiency outright, so it goes first.
//! 2. **Migrate** one entity out of the hottest partition to the partition
//!    whose synopsis rates it highest, when the priced scan-cost delta is
//!    a guaranteed saving (see [`crate::cost::migrate_delta`]).
//! 3. **Merge** two cold underfull partitions — housekeeping that trims
//!    catalog overhead; enacted only when its exactly-priced efficiency
//!    damage stays under the hysteresis bar.
//!
//! Every enacted action is WAL-framed by the core seams it calls
//! ([`Cinderella::resplit`], [`Cinderella::migrate_entity`],
//! [`Cinderella::merge_partitions`]), so a crash mid-action recovers to
//! the pre- or post-action state — the simulation harness sweeps every
//! such crash point.

use cind_model::{EntityId, Synopsis};
use cind_storage::{SegmentId, UniversalTable};
use cinderella_core::{Capacity, Cinderella, CoreError, ReorgConfig, SynopsisMode};

use crate::cost::{merge_damage, migrate_delta, resplit_saving, scan_cost};
use crate::heat::HeatMap;

/// How many of the smallest cold partitions the merge search pairs up per
/// step — bounds the pair sweep at 28 cost evaluations.
const MERGE_POOL: usize = 8;

/// One enacted reorganization action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActionKind {
    /// Partition re-split through the split machinery.
    Resplit {
        /// The partition that was split.
        seg: SegmentId,
        /// The two partitions it became.
        into: (SegmentId, SegmentId),
    },
    /// Entity migrated to the partition rating it highest.
    Migrate {
        /// The entity that moved.
        id: EntityId,
        /// Where it lived before the step.
        from: SegmentId,
        /// Where it landed.
        to: SegmentId,
    },
    /// Cold partition folded into a peer.
    Merge {
        /// The partition that was drained and dropped.
        from: SegmentId,
        /// The surviving partition that absorbed it.
        into: SegmentId,
    },
}

/// What one [`ReorgDriver::step`] did.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepReport {
    /// The enacted action, if any cleared the hysteresis bar.
    pub action: Option<ActionKind>,
    /// The model's workload-weighted scan-cost delta for the action
    /// (negative = predicted saving; a merge's damage is positive). The
    /// efficiency property test checks the *measured* delta against this
    /// prediction's sign.
    pub predicted_delta: i128,
    /// Entities physically moved by the action.
    pub entities_moved: u64,
}

/// Cumulative driver counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReorgStats {
    /// Steps executed (including no-op steps).
    pub steps: u64,
    /// Re-splits enacted.
    pub resplits: u64,
    /// Entity migrations enacted.
    pub migrations: u64,
    /// Cold merges enacted.
    pub merges: u64,
    /// Entities physically moved across all actions.
    pub entities_moved: u64,
}

/// The background reorganizer: heat tracking plus the step executor.
/// One driver per engine (per shard); all state is in-memory and rebuilt
/// empty after a crash — heat is advisory, the WAL-framed actions carry
/// the durability.
#[derive(Debug)]
pub struct ReorgDriver {
    cfg: ReorgConfig,
    heat: HeatMap,
    ops_since_step: u64,
    stats: ReorgStats,
}

impl ReorgDriver {
    /// A driver with the given knobs (heat decays every `cfg.epoch_ops`).
    #[must_use]
    pub fn new(cfg: ReorgConfig) -> Self {
        Self {
            heat: HeatMap::new(cfg.epoch_ops),
            cfg,
            ops_since_step: 0,
            stats: ReorgStats::default(),
        }
    }

    /// The configured knobs.
    #[must_use]
    pub fn config(&self) -> &ReorgConfig {
        &self.cfg
    }

    /// Cumulative counters.
    #[must_use]
    pub fn stats(&self) -> ReorgStats {
        self.stats
    }

    /// The heat map (read access for observability and tests).
    #[must_use]
    pub fn heat(&self) -> &HeatMap {
        &self.heat
    }

    /// Feeds one query into the heat map: its synopsis plus the partitions
    /// that survived pruning for it. Returns `true` when a step is due.
    pub fn record_query(
        &mut self,
        query: &Synopsis,
        scanned: impl IntoIterator<Item = SegmentId>,
    ) -> bool {
        if !self.cfg.enabled() {
            return false;
        }
        self.heat.record_query(query, scanned);
        self.bump()
    }

    /// Feeds one mutation (insert / update / delete) into the cadence and
    /// decay clocks. Returns `true` when a step is due.
    pub fn record_write(&mut self) -> bool {
        if !self.cfg.enabled() {
            return false;
        }
        self.heat.record_op();
        self.bump()
    }

    fn bump(&mut self) -> bool {
        self.ops_since_step += 1;
        self.ops_since_step >= self.cfg.epoch_ops
    }

    /// Runs one bounded reorganization step: price the candidates against
    /// the decayed workload, enact the best action that clears the
    /// hysteresis bar (at most one), and report what happened. Call under
    /// the engine's writer discipline — the enacted seams mutate the table
    /// and catalog together.
    ///
    /// # Errors
    /// Storage errors from the enacted action's moves; WAL commit
    /// failures.
    pub fn step(
        &mut self,
        table: &mut UniversalTable,
        cindy: &mut Cinderella,
    ) -> Result<StepReport, CoreError> {
        self.ops_since_step = 0;
        if !self.cfg.enabled() {
            return Ok(StepReport::default());
        }
        self.stats.steps += 1;
        let workload = self.heat.workload().to_vec();
        if workload.is_empty() {
            return Ok(StepReport::default());
        }

        // Owned snapshot of the pruning view — the enactments below take
        // `&mut Cinderella`.
        let parts: Vec<(SegmentId, Synopsis, u64)> = cindy
            .catalog()
            .pruning_view()
            .map(|(seg, syn, size)| (seg, syn.clone(), size))
            .collect();
        // Feed the decayed scan heat into the tiered index's promotion
        // machinery: the partitions the workload actually hits earn exact
        // hot-tier bitmaps. A no-op while the exact tier is active.
        for (seg, _, _) in &parts {
            let heat = self.heat.heat(*seg);
            if heat > 0 {
                cindy.note_partition_heat(*seg, u32::try_from(heat).unwrap_or(u32::MAX));
            }
        }
        let per_part = |seg: SegmentId| -> u128 {
            parts
                .iter()
                .find(|(s, _, _)| *s == seg)
                .map_or(0, |(_, syn, size)| scan_cost([(syn, *size)], &workload))
        };
        // Hysteresis bar for a gain touching `cost`: at least the
        // configured fraction of it, and never zero — a zero-gain action
        // is churn.
        let gain_bar = |cost: u128| -> u128 {
            let scaled = (cost as f64 * self.cfg.threshold).ceil();
            (scaled as u128).max(1)
        };

        // 1) Re-split the hot mixed partition with the best priced saving.
        let mut best_split: Option<(SegmentId, u128)> = None;
        for (seg, syn, size) in &parts {
            if self.heat.heat(*seg) == 0 {
                continue;
            }
            let Some(meta) = cindy.catalog().get(*seg) else { continue };
            // Budget bounds the entities a step may move; the starter pair
            // must exist and actually separate something.
            if meta.entities < 2
                || meta.entities > self.cfg.budget
                || meta.starters.pair_diff() == 0
            {
                continue;
            }
            let (Some((_, seed_a)), Some((_, seed_b))) =
                (meta.starters.a(), meta.starters.b())
            else {
                continue;
            };
            let saving = resplit_saving((syn, *size), seed_a, seed_b, &workload);
            if saving >= gain_bar(per_part(*seg))
                && best_split.is_none_or(|(_, s)| s < saving)
            {
                best_split = Some((*seg, saving));
            }
        }
        if let Some((seg, saving)) = best_split {
            let moves_before = cindy.stats().split_moves;
            if let Some(into) = cindy.resplit(table, seg)? {
                let moved = cindy.stats().split_moves - moves_before;
                self.stats.resplits += 1;
                self.stats.entities_moved += moved;
                return Ok(StepReport {
                    action: Some(ActionKind::Resplit { seg, into }),
                    predicted_delta: -(saving as i128),
                    entities_moved: moved,
                });
            }
        }

        // 2) Migrate one entity out of the hottest partition (one per
        // step: the conservative delta is only a *guaranteed* saving for a
        // single move). Deterministic hot pick: max heat, ties to the
        // lowest segment id.
        let hottest = parts
            .iter()
            .filter(|(seg, _, _)| self.heat.heat(*seg) > 0)
            .max_by_key(|(seg, _, _)| (self.heat.heat(*seg), std::cmp::Reverse(*seg)));
        if let Some((seg, psyn, psize)) = hottest {
            if let Some((id, to, delta)) =
                self.pick_migration(table, cindy, *seg, psyn, *psize, &workload)?
            {
                if delta < 0 && delta.unsigned_abs() >= gain_bar(per_part(*seg)) {
                    let landed = cindy.migrate_entity(table, id)?;
                    self.stats.migrations += 1;
                    self.stats.entities_moved += 1;
                    return Ok(StepReport {
                        action: Some(ActionKind::Migrate { id, from: *seg, to: landed }),
                        // `landed` can differ from the priced target when
                        // the re-insert rating flips; the conservative
                        // model still bounds the common case, and the
                        // property check carries the hysteresis slack.
                        predicted_delta: if landed == to { delta } else { 0 },
                        entities_moved: 1,
                    });
                }
            }
        }

        // 3) Cold housekeeping: fold the cheapest pair of cold underfull
        // partitions when the exactly-priced damage stays under the bar.
        // The bar is *pair-local* — the hysteresis fraction of the two
        // candidates' own current scan cost, not of the catalog total. A
        // flash crowd inflates the total with the hammered partitions'
        // traffic, and a total-relative bar then waves through merges
        // whose damage to the background workload is very real; a pair
        // the remembered workload doesn't touch has bar zero, so only
        // provably free merges clear it.
        // A flash crowd hammers one query shape, which starves every other
        // partition of heat without the workload having actually moved on
        // — and a merge enacted on that false "cold" signal is paid back
        // with interest when the crowd passes (PR 9's bench recorded the
        // loss). Two guards keep such merges off the menu:
        //
        // * **Monopoly veto**: while a single shape carries the majority
        //   of the window's weight, the sample is not representative of
        //   what the workload touches, so cold-merge housekeeping is
        //   suspended outright for the step. Organic mixes (steady,
        //   drift, churn) spread weight over many shapes and never
        //   trip this.
        // * **Cool-off veto**: a partition scanned within the last few
        //   epochs is not cold even if halving already erased its
        //   counter — covers the crowd's rise and fall edges, where the
        //   window is mixed enough to escape the monopoly test.
        let total_weight: u64 = workload.iter().map(|(_, w)| *w).sum();
        let top_weight: u64 = workload.iter().map(|(_, w)| *w).max().unwrap_or(0);
        if top_weight * 2 > total_weight {
            return Ok(StepReport::default());
        }
        let mut cold: Vec<(u64, SegmentId)> = parts
            .iter()
            .filter(|(seg, _, _)| {
                self.heat.heat(*seg) == 0 && !self.heat.recently_scanned(*seg)
            })
            .filter_map(|(seg, _, _)| {
                let meta = cindy.catalog().get(*seg)?;
                let underfull = match cindy.config().capacity {
                    Capacity::MaxEntities(b) => meta.entities * 2 <= b,
                    Capacity::MaxSize(b) => meta.size * 2 <= b,
                };
                (underfull && meta.entities <= self.cfg.budget)
                    .then_some((meta.entities, *seg))
            })
            .collect();
        cold.sort_unstable();
        cold.truncate(MERGE_POOL);
        let mut best_merge: Option<(SegmentId, SegmentId, u128)> = None;
        for (i, &(ents_a, a)) in cold.iter().enumerate() {
            for &(ents_b, b) in &cold[i + 1..] {
                let (Some((syn_a, size_a)), Some((syn_b, size_b))) =
                    (part_view(&parts, a), part_view(&parts, b))
                else {
                    continue;
                };
                let fits = match cindy.config().capacity {
                    Capacity::MaxEntities(cap) => ents_a + ents_b <= cap,
                    Capacity::MaxSize(cap) => size_a + size_b <= cap,
                };
                if !fits {
                    continue;
                }
                let damage = merge_damage((syn_a, size_a), (syn_b, size_b), &workload);
                let damage_bar =
                    ((per_part(a) + per_part(b)) as f64 * self.cfg.threshold) as u128;
                if damage <= damage_bar
                    && best_merge.is_none_or(|(_, _, d)| damage < d)
                {
                    // Fold the smaller (fewer moves) into the larger.
                    best_merge = Some(if ents_a <= ents_b {
                        (a, b, damage)
                    } else {
                        (b, a, damage)
                    });
                }
            }
        }
        if let Some((from, into, damage)) = best_merge {
            if let Some(moved) = cindy.merge_partitions(table, from, into)? {
                self.stats.merges += 1;
                self.stats.entities_moved += moved;
                return Ok(StepReport {
                    action: Some(ActionKind::Merge { from, into }),
                    predicted_delta: damage as i128,
                    entities_moved: moved,
                });
            }
        }

        Ok(StepReport::default())
    }

    /// Scans the hot partition and prices each member's best migration;
    /// returns the most-saving candidate (entity, target, priced delta).
    /// The scan is the step's bounded I/O — one partition, same class as
    /// the split's read.
    fn pick_migration(
        &self,
        table: &UniversalTable,
        cindy: &Cinderella,
        seg: SegmentId,
        psyn: &Synopsis,
        psize: u64,
        workload: &[(Synopsis, u64)],
    ) -> Result<Option<(EntityId, SegmentId, i128)>, CoreError> {
        let members = table.scan_collect(seg)?;
        let cfg = cindy.config();
        let universe = table.universe();
        let mut best: Option<(EntityId, SegmentId, i128)> = None;
        for e in &members {
            let attr_syn = e.synopsis(universe);
            let rating_syn = match &cfg.mode {
                SynopsisMode::EntityBased => attr_syn.clone(),
                mode => mode.entity_synopsis(e, universe),
            };
            let size_e = cfg.size_model.entity_size(e);
            // The same screen `rebalance_entities` applies: a strictly
            // different, non-negatively rated target with room.
            let (bp, _) = cindy.catalog().best_partition(&rating_syn, size_e, cfg.weight);
            let Some((target, r)) = bp else { continue };
            if target == seg || r < 0.0 {
                continue;
            }
            let Some(tmeta) = cindy.catalog().get(target) else { continue };
            if cfg.capacity.would_overflow(tmeta.entities, tmeta.size, size_e) {
                continue;
            }
            let delta = migrate_delta(
                (&attr_syn, size_e),
                (psyn, psize),
                (&tmeta.attr_synopsis, tmeta.size),
                workload,
            );
            if delta < 0 && best.is_none_or(|(_, _, d)| delta < d) {
                best = Some((e.id(), target, delta));
            }
        }
        Ok(best)
    }

}

fn part_view(
    parts: &[(SegmentId, Synopsis, u64)],
    seg: SegmentId,
) -> Option<(&Synopsis, u64)> {
    parts
        .iter()
        .find(|(s, _, _)| *s == seg)
        .map(|(_, syn, size)| (syn, *size))
}
