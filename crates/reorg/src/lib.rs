//! # cind-reorg — the workload-adaptive background reorganizer
//!
//! Cinderella (Herrmann, Voigt, Lehner; ICDE Workshops 2014) adapts the
//! partitioning **only on insert**: once an entity lands, nothing ever
//! re-partitions when the *query* workload moves, so `EFFICIENCY(P)`
//! decays under drift — the exact gap the paper's §VII flags as future
//! work. This crate closes it with three cooperating pieces:
//!
//! * [`heat`] — per-partition scan counters and a bounded window of
//!   recent distinct query synopses, decayed on a deterministic
//!   **op-count epoch** (never wall-clock): the empirical workload.
//! * [`cost`] — prices candidate actions in Definition-1 terms using the
//!   partition catalog alone (synopses + sizes, zero table I/O). The
//!   numerator of EFFICIENCY is partitioning-independent, so the
//!   denominator delta *is* the efficiency delta.
//! * [`driver`] — [`ReorgDriver::step`], the incremental executor: at
//!   most one cost-cleared action per step (re-split a hot mixed
//!   partition, migrate an entity to the partition rating it highest, or
//!   merge two cold partitions), each WAL-framed by the core seams so a
//!   crash recovers to the pre- or post-action state.
//!
//! The server layer owns scheduling: it feeds queries and writes into the
//! driver and invokes `step` between foreground operations when the
//! configured cadence (`ReorgConfig::epoch_ops`) elapses. With
//! `--reorg off` (the default) the driver records nothing and acts never
//! — the server's differential test proves the WAL and snapshot bytes are
//! identical to a build without this subsystem.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod driver;
pub mod heat;

pub use cost::{merge_damage, migrate_delta, resplit_saving, scan_cost};
pub use driver::{ActionKind, ReorgDriver, ReorgStats, StepReport};
pub use heat::{HeatMap, PartitionHeat, MERGE_COOLOFF_EPOCHS, WORKLOAD_CAP};
