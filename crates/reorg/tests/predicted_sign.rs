//! Property: an enacted reorg action's *measured* ΔEFFICIENCY has the
//! model-predicted sign, within the configured hysteresis (DESIGN.md §15).
//!
//! The cost model prices actions on the same terms Definition 1 measures
//! the denominator: a query scans a partition iff their synopses
//! intersect, weighted by partition SIZE. The numerator (relevant data)
//! is partitioning-independent. Two layers of guarantee are checked on
//! every enacted action:
//!
//! * **Uniform-weight signs** (`efficiency_counters_for`, each distinct
//!   query counted once) — these are per-query monotone, so they hold for
//!   *any* weighting: a re-split never increases the denominator (child
//!   synopses ⊆ parent, sizes sum) and a merge never decreases it (the
//!   union synopsis is hit whenever either side was).
//! * **Model-unit magnitudes** (`scan_cost` over the driver's own decayed
//!   workload, snapshotted before the step) — a migration priced with a
//!   negative conservative delta strictly decreases the weighted cost,
//!   and a merge's exactly-priced damage stays within the hysteresis
//!   fraction of the weighted total. These are stated in the model's
//!   weights because epoch decay can land mid-round, skewing the
//!   recorded counts away from uniform.

use cind_model::{AttrId, EntityId, Synopsis, Value};
use cind_reorg::{ActionKind, ReorgDriver};
use cind_storage::UniversalTable;
use cinderella_core::{
    efficiency_counters_for, Capacity, Cinderella, Config, ReorgConfig, ReorgMode,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GROUPS: usize = 4;
const WIDTH: usize = 5;
const CAPACITY: u64 = 24;
const THRESHOLD: f64 = 0.05;

struct World {
    table: UniversalTable,
    cindy: Cinderella,
    driver: ReorgDriver,
    /// `ids[group][slot]` over the grouped attribute universe.
    ids: Vec<Vec<AttrId>>,
    /// The fixed distinct-query workload (uniform weights by
    /// construction: recorded in full rounds).
    queries: Vec<Synopsis>,
    live: Vec<EntityId>,
    next_id: u64,
    observed: ActionCounts,
}

#[derive(Default, Debug)]
struct ActionCounts {
    resplits: u64,
    migrations: u64,
    merges: u64,
}

fn build_world() -> World {
    let mut table = UniversalTable::new(256);
    let ids: Vec<Vec<AttrId>> = (0..GROUPS)
        .map(|g| {
            (0..WIDTH).map(|j| table.catalog_mut().intern(&format!("g{g}_a{j}"))).collect()
        })
        .collect();
    let universe = table.universe();
    // Two distinct queries per group: the leading pair and a lone tail
    // attribute — 2·GROUPS synopses, far under the driver's workload cap.
    let queries: Vec<Synopsis> = ids
        .iter()
        .flat_map(|g| {
            [
                Synopsis::from_attrs(universe, [g[0], g[1]]),
                Synopsis::from_attrs(universe, [g[WIDTH - 1]]),
            ]
        })
        .collect();
    let reorg = ReorgConfig {
        mode: ReorgMode::Auto,
        budget: CAPACITY,
        threshold: THRESHOLD,
        epoch_ops: 8,
    };
    let config = Config {
        capacity: Capacity::MaxEntities(CAPACITY),
        reorg,
        ..Config::default()
    };
    World {
        table,
        cindy: Cinderella::new(config),
        driver: ReorgDriver::new(reorg),
        ids,
        queries,
        live: Vec::new(),
        next_id: 0,
        observed: ActionCounts::default(),
    }
}

impl World {
    fn insert(&mut self, group: usize, rng: &mut StdRng) {
        let g = &self.ids[group];
        let mut attrs: Vec<(AttrId, Value)> = Vec::with_capacity(WIDTH);
        for (j, a) in g.iter().enumerate() {
            if j < 2 || rng.gen::<f64>() < 0.5 {
                attrs.push((*a, Value::Int(rng.gen_range(0..1_000))));
            }
        }
        let id = EntityId(self.next_id);
        self.next_id += 1;
        let entity = cind_model::Entity::new(id, attrs).expect("distinct attr ids");
        self.cindy.insert(&mut self.table, entity).expect("insert");
        self.live.push(id);
        if self.driver.record_write() {
            self.measured_step();
        }
    }

    fn delete(&mut self, rng: &mut StdRng) {
        if self.live.len() < 8 {
            return;
        }
        let idx = rng.gen_range(0..self.live.len() / 2);
        let id = self.live.remove(idx);
        self.cindy.delete(&mut self.table, id).expect("delete");
        if self.driver.record_write() {
            self.measured_step();
        }
    }

    /// Records one full round of the workload — every distinct query
    /// exactly once, so the driver's decayed weights stay uniform.
    /// `retired` drops one group's queries from the round: its partitions
    /// go genuinely quiet (heat, cool-off, and workload shapes all fade),
    /// which is the only coldness the merge phase acts on.
    fn query_round(&mut self, retired: Option<usize>) {
        let mut due = false;
        for (qi, q) in self.queries.iter().enumerate() {
            if retired == Some(qi / 2) {
                continue;
            }
            let scanned: Vec<_> = self
                .cindy
                .catalog()
                .pruning_view()
                .filter(|(_, syn, _)| !q.is_disjoint(syn))
                .map(|(seg, _, _)| seg)
                .collect();
            due |= self.driver.record_query(q, scanned);
        }
        if due {
            self.measured_step();
        }
    }

    /// Weighted scan cost of the current partitioning against a workload
    /// snapshot — the model's own units.
    fn model_cost(&self, workload: &[(Synopsis, u64)]) -> u128 {
        let parts: Vec<(Synopsis, u64)> = self
            .cindy
            .catalog()
            .pruning_view()
            .map(|(_, syn, size)| (syn.clone(), size))
            .collect();
        cind_reorg::scan_cost(parts.iter().map(|(s, z)| (s, *z)), workload)
    }

    /// Runs one driver step with Definition-1 counters measured on both
    /// sides, asserting the predicted sign of every enacted action.
    fn measured_step(&mut self) {
        // Snapshot the driver's decayed workload before stepping — the
        // step resets nothing, but actions must be judged against the
        // workload they were priced on.
        let workload = self.driver.heat().workload().to_vec();
        let model_before = self.model_cost(&workload);
        let before = efficiency_counters_for(&self.table, &self.cindy, &self.queries);
        let report =
            self.driver.step(&mut self.table, &mut self.cindy).expect("reorg step");
        let Some(action) = report.action else { return };
        let model_after = self.model_cost(&workload);
        let after = efficiency_counters_for(&self.table, &self.cindy, &self.queries);
        assert_eq!(
            after.0, before.0,
            "{action:?}: the numerator (relevant data) must be partitioning-independent"
        );
        match action {
            ActionKind::Resplit { .. } => {
                self.observed.resplits += 1;
                assert!(
                    after.1 <= before.1,
                    "resplit increased the uniform denominator: {} -> {} (predicted {})",
                    before.1,
                    after.1,
                    report.predicted_delta
                );
                assert!(
                    model_after <= model_before,
                    "resplit increased the weighted cost: {model_before} -> {model_after} \
                     (predicted {})",
                    report.predicted_delta
                );
            }
            ActionKind::Migrate { .. } => {
                self.observed.migrations += 1;
                // A migration that landed off the priced target reports
                // predicted 0: no guarantee to check.
                if report.predicted_delta < 0 {
                    assert!(
                        model_after < model_before,
                        "migration predicted a strict weighted saving: \
                         {model_before} -> {model_after} (predicted {})",
                        report.predicted_delta
                    );
                }
            }
            ActionKind::Merge { .. } => {
                self.observed.merges += 1;
                assert!(
                    after.1 >= before.1,
                    "merge decreased the uniform denominator: {} -> {} — the damage \
                     sign must be non-negative (predicted {})",
                    before.1,
                    after.1,
                    report.predicted_delta
                );
                let bar = (model_before as f64 * THRESHOLD) as u128;
                assert!(
                    model_after - model_before <= bar,
                    "merge damage {model_before} -> {model_after} exceeds the \
                     hysteresis bar {bar} (predicted {})",
                    report.predicted_delta
                );
            }
        }
        // Structural sanity after every enacted action.
        let violations = self.cindy.validate(&self.table).expect("validate runs");
        assert!(violations.is_empty(), "{action:?} broke invariants: {violations:?}");
    }
}

/// Drives one seeded scenario: phase-drifting inserts, occasional
/// deletes, and full query rounds, stepping the driver on its own
/// cadence. Returns the actions observed so the deterministic sweep can
/// prove the properties aren't vacuous.
fn run_scenario(seed: u64, ops: usize) -> ActionCounts {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut world = build_world();
    for i in 0..ops {
        // The hot group rotates per quarter so heat actually moves.
        let hot = (i * GROUPS) / ops.max(1) % GROUPS;
        let roll = rng.gen::<f64>();
        if roll < 0.55 {
            let group = if rng.gen::<f64>() < 0.7 { hot } else { rng.gen_range(0..GROUPS) };
            world.insert(group, &mut rng);
        } else if roll < 0.70 {
            world.delete(&mut rng);
        } else {
            // On even seeds, group 0 retires from the query mix for the
            // third quarter: the only workload shift that leaves
            // partitions *genuinely* cold (unscanned past the cool-off,
            // shapes faded from the window), which is what the merge
            // phase now requires. The group revives for the final
            // quarter, so the driver also has to clean up after its own
            // merges — re-splits and migrations out of the folded
            // partitions. Odd seeds keep the full mix throughout.
            let retired = seed.is_multiple_of(2) && (ops / 2..ops * 3 / 4).contains(&i);
            world.query_round(retired.then_some(0));
        }
    }
    world.observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The sign property holds for every enacted action across seeded
    /// drift scenarios (assertions live inside `measured_step`).
    #[test]
    fn predicted_efficiency_sign_holds(seed in 0u64..10_000) {
        run_scenario(seed, 400);
    }
}

/// The properties above must not be vacuous: across a fixed seed sweep
/// the driver enacts re-splits and merges. (Migrations went from common
/// to rare with the flash-crowd merge guards — most of the sweep's old
/// migrations were cleanup after merges the driver no longer enacts — so
/// their coverage lives in the dedicated scenario below.)
#[test]
fn scenario_sweep_enacts_resplits_and_merges() {
    let mut total = ActionCounts::default();
    for seed in 0..12 {
        let got = run_scenario(seed, 600);
        total.resplits += got.resplits;
        total.migrations += got.migrations;
        total.merges += got.merges;
    }
    assert!(total.resplits > 0, "no resplit enacted across the sweep: {total:?}");
    assert!(total.merges > 0, "no merge enacted across the sweep: {total:?}");
}

/// Deterministic migration coverage: a stray entity buried in a merged
/// mixed partition rates a pure peer strictly higher (Cinderella's
/// insert rating repels asymmetric joins at the default weight, so the
/// mixed home is forged through the same WAL-framed `merge_partitions`
/// seam the driver's own cold merges use). With `budget: 1` a re-split
/// (which must move the partition's ≥ 2 entities) is out of budget, so
/// the migration path alone carries the cleanup — and its priced delta
/// must be a measured weighted saving.
#[test]
fn migration_enacts_on_a_stray_entity() {
    let mut table = UniversalTable::new(64);
    let b0 = table.catalog_mut().intern("b0");
    let b1 = table.catalog_mut().intern("b1");
    let cs: Vec<AttrId> = (0..9).map(|j| table.catalog_mut().intern(&format!("c{j}"))).collect();
    let universe = table.universe();
    let reorg = ReorgConfig {
        mode: cinderella_core::ReorgMode::Auto,
        budget: 1,
        threshold: THRESHOLD,
        epoch_ops: 4,
    };
    let mut cindy = Cinderella::new(Config {
        capacity: Capacity::MaxEntities(24),
        reorg,
        ..Config::default()
    });
    let mut driver = ReorgDriver::new(reorg);
    let insert = |cindy: &mut Cinderella, table: &mut UniversalTable, id: u64, attrs: &[AttrId]| {
        let e = cind_model::Entity::new(
            EntityId(id),
            attrs.iter().map(|a| (*a, Value::Int(1))).collect::<Vec<_>>(),
        )
        .expect("distinct attrs");
        cindy.insert(table, e).expect("insert");
    };
    let part_with = |cindy: &Cinderella, a: AttrId| {
        let probe = Synopsis::from_attrs(universe, [a]);
        cindy
            .catalog()
            .pruning_view()
            .find(|(_, syn, _)| !probe.is_disjoint(syn))
            .map(|(seg, _, _)| seg)
            .expect("partition exists")
    };

    // The stray and a wide c-heavy entity open separate partitions (the
    // rating of {b0,b1} against {b0,c0..c8} is deeply negative both
    // ways), then a past cold merge folds the stray's partition into the
    // wide one: the mixed home the insert path alone would never build.
    insert(&mut cindy, &mut table, 1, &[b0, b1]);
    let wide: Vec<AttrId> = std::iter::once(b0).chain(cs.iter().copied()).collect();
    insert(&mut cindy, &mut table, 2, &wide);
    let stray_part = part_with(&cindy, b1);
    let home = part_with(&cindy, cs[0]);
    assert_ne!(stray_part, home);
    let moved = cindy.merge_partitions(&mut table, stray_part, home).expect("merge seam");
    assert_eq!(moved, Some(1), "the stray folds into the wide partition");

    // Only now does the pure b-pair partition open — against the merged
    // home ({b0,b1,c0..c8}, size 12) a {b0,b1} entity rates negative, so
    // it cannot be absorbed and becomes the stray's natural target.
    insert(&mut cindy, &mut table, 3, &[b0, b1]);
    insert(&mut cindy, &mut table, 4, &[b0, b1]);
    // The merged home's synopsis also covers b1, so find the pure pair
    // partition as "has b1, is not the home".
    let probe_b1 = Synopsis::from_attrs(universe, [b1]);
    let target = cindy
        .catalog()
        .pruning_view()
        .find(|(seg, syn, _)| *seg != home && !probe_b1.is_disjoint(syn))
        .map(|(seg, _, _)| seg)
        .expect("pure pair partition exists");
    assert_ne!(home, target);

    // Heat the home with a query the stray does not share: migrating the
    // stray out is a pure saving (the c-query never touches the target).
    let q = Synopsis::from_attrs(universe, [cs[0]]);
    for _ in 0..reorg.epoch_ops {
        let scanned: Vec<_> = cindy
            .catalog()
            .pruning_view()
            .filter(|(_, syn, _)| !q.is_disjoint(syn))
            .map(|(seg, _, _)| seg)
            .collect();
        driver.record_query(&q, scanned);
    }
    let workload = driver.heat().workload().to_vec();
    let cost = |cindy: &Cinderella| {
        let parts: Vec<(Synopsis, u64)> = cindy
            .catalog()
            .pruning_view()
            .map(|(_, syn, size)| (syn.clone(), size))
            .collect();
        cind_reorg::scan_cost(parts.iter().map(|(s, z)| (s, *z)), &workload)
    };
    let before = cost(&cindy);
    let report = driver.step(&mut table, &mut cindy).expect("step");
    match report.action {
        Some(ActionKind::Migrate { id, from, to }) => {
            assert_eq!(id, EntityId(1));
            assert_eq!(from, home);
            assert_eq!(to, target);
        }
        other => panic!("expected the stray's migration, got {other:?}"),
    }
    assert!(report.predicted_delta < 0, "migration must be priced as a saving");
    let after = cost(&cindy);
    assert!(after < before, "measured weighted cost must strictly drop: {before} -> {after}");
    let violations = cindy.validate(&table).expect("validate runs");
    assert!(violations.is_empty(), "migration broke invariants: {violations:?}");
}
