//! Property: an enacted reorg action's *measured* ΔEFFICIENCY has the
//! model-predicted sign, within the configured hysteresis (DESIGN.md §15).
//!
//! The cost model prices actions on the same terms Definition 1 measures
//! the denominator: a query scans a partition iff their synopses
//! intersect, weighted by partition SIZE. The numerator (relevant data)
//! is partitioning-independent. Two layers of guarantee are checked on
//! every enacted action:
//!
//! * **Uniform-weight signs** (`efficiency_counters_for`, each distinct
//!   query counted once) — these are per-query monotone, so they hold for
//!   *any* weighting: a re-split never increases the denominator (child
//!   synopses ⊆ parent, sizes sum) and a merge never decreases it (the
//!   union synopsis is hit whenever either side was).
//! * **Model-unit magnitudes** (`scan_cost` over the driver's own decayed
//!   workload, snapshotted before the step) — a migration priced with a
//!   negative conservative delta strictly decreases the weighted cost,
//!   and a merge's exactly-priced damage stays within the hysteresis
//!   fraction of the weighted total. These are stated in the model's
//!   weights because epoch decay can land mid-round, skewing the
//!   recorded counts away from uniform.

use cind_model::{AttrId, EntityId, Synopsis, Value};
use cind_reorg::{ActionKind, ReorgDriver};
use cind_storage::UniversalTable;
use cinderella_core::{
    efficiency_counters_for, Capacity, Cinderella, Config, ReorgConfig, ReorgMode,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GROUPS: usize = 4;
const WIDTH: usize = 5;
const CAPACITY: u64 = 24;
const THRESHOLD: f64 = 0.05;

struct World {
    table: UniversalTable,
    cindy: Cinderella,
    driver: ReorgDriver,
    /// `ids[group][slot]` over the grouped attribute universe.
    ids: Vec<Vec<AttrId>>,
    /// The fixed distinct-query workload (uniform weights by
    /// construction: recorded in full rounds).
    queries: Vec<Synopsis>,
    live: Vec<EntityId>,
    next_id: u64,
    observed: ActionCounts,
}

#[derive(Default, Debug)]
struct ActionCounts {
    resplits: u64,
    migrations: u64,
    merges: u64,
}

fn build_world() -> World {
    let mut table = UniversalTable::new(256);
    let ids: Vec<Vec<AttrId>> = (0..GROUPS)
        .map(|g| {
            (0..WIDTH).map(|j| table.catalog_mut().intern(&format!("g{g}_a{j}"))).collect()
        })
        .collect();
    let universe = table.universe();
    // Two distinct queries per group: the leading pair and a lone tail
    // attribute — 2·GROUPS synopses, far under the driver's workload cap.
    let queries: Vec<Synopsis> = ids
        .iter()
        .flat_map(|g| {
            [
                Synopsis::from_attrs(universe, [g[0], g[1]]),
                Synopsis::from_attrs(universe, [g[WIDTH - 1]]),
            ]
        })
        .collect();
    let reorg = ReorgConfig {
        mode: ReorgMode::Auto,
        budget: CAPACITY,
        threshold: THRESHOLD,
        epoch_ops: 8,
    };
    let config = Config {
        capacity: Capacity::MaxEntities(CAPACITY),
        reorg,
        ..Config::default()
    };
    World {
        table,
        cindy: Cinderella::new(config),
        driver: ReorgDriver::new(reorg),
        ids,
        queries,
        live: Vec::new(),
        next_id: 0,
        observed: ActionCounts::default(),
    }
}

impl World {
    fn insert(&mut self, group: usize, rng: &mut StdRng) {
        let g = &self.ids[group];
        let mut attrs: Vec<(AttrId, Value)> = Vec::with_capacity(WIDTH);
        for (j, a) in g.iter().enumerate() {
            if j < 2 || rng.gen::<f64>() < 0.5 {
                attrs.push((*a, Value::Int(rng.gen_range(0..1_000))));
            }
        }
        let id = EntityId(self.next_id);
        self.next_id += 1;
        let entity = cind_model::Entity::new(id, attrs).expect("distinct attr ids");
        self.cindy.insert(&mut self.table, entity).expect("insert");
        self.live.push(id);
        if self.driver.record_write() {
            self.measured_step();
        }
    }

    fn delete(&mut self, rng: &mut StdRng) {
        if self.live.len() < 8 {
            return;
        }
        let idx = rng.gen_range(0..self.live.len() / 2);
        let id = self.live.remove(idx);
        self.cindy.delete(&mut self.table, id).expect("delete");
        if self.driver.record_write() {
            self.measured_step();
        }
    }

    /// Records one full round of the workload — every distinct query
    /// exactly once, so the driver's decayed weights stay uniform.
    fn query_round(&mut self) {
        let mut due = false;
        for q in &self.queries {
            let scanned: Vec<_> = self
                .cindy
                .catalog()
                .pruning_view()
                .filter(|(_, syn, _)| !q.is_disjoint(syn))
                .map(|(seg, _, _)| seg)
                .collect();
            due |= self.driver.record_query(q, scanned);
        }
        if due {
            self.measured_step();
        }
    }

    /// Weighted scan cost of the current partitioning against a workload
    /// snapshot — the model's own units.
    fn model_cost(&self, workload: &[(Synopsis, u64)]) -> u128 {
        let parts: Vec<(Synopsis, u64)> = self
            .cindy
            .catalog()
            .pruning_view()
            .map(|(_, syn, size)| (syn.clone(), size))
            .collect();
        cind_reorg::scan_cost(parts.iter().map(|(s, z)| (s, *z)), workload)
    }

    /// Runs one driver step with Definition-1 counters measured on both
    /// sides, asserting the predicted sign of every enacted action.
    fn measured_step(&mut self) {
        // Snapshot the driver's decayed workload before stepping — the
        // step resets nothing, but actions must be judged against the
        // workload they were priced on.
        let workload = self.driver.heat().workload().to_vec();
        let model_before = self.model_cost(&workload);
        let before = efficiency_counters_for(&self.table, &self.cindy, &self.queries);
        let report =
            self.driver.step(&mut self.table, &mut self.cindy).expect("reorg step");
        let Some(action) = report.action else { return };
        let model_after = self.model_cost(&workload);
        let after = efficiency_counters_for(&self.table, &self.cindy, &self.queries);
        assert_eq!(
            after.0, before.0,
            "{action:?}: the numerator (relevant data) must be partitioning-independent"
        );
        match action {
            ActionKind::Resplit { .. } => {
                self.observed.resplits += 1;
                assert!(
                    after.1 <= before.1,
                    "resplit increased the uniform denominator: {} -> {} (predicted {})",
                    before.1,
                    after.1,
                    report.predicted_delta
                );
                assert!(
                    model_after <= model_before,
                    "resplit increased the weighted cost: {model_before} -> {model_after} \
                     (predicted {})",
                    report.predicted_delta
                );
            }
            ActionKind::Migrate { .. } => {
                self.observed.migrations += 1;
                // A migration that landed off the priced target reports
                // predicted 0: no guarantee to check.
                if report.predicted_delta < 0 {
                    assert!(
                        model_after < model_before,
                        "migration predicted a strict weighted saving: \
                         {model_before} -> {model_after} (predicted {})",
                        report.predicted_delta
                    );
                }
            }
            ActionKind::Merge { .. } => {
                self.observed.merges += 1;
                assert!(
                    after.1 >= before.1,
                    "merge decreased the uniform denominator: {} -> {} — the damage \
                     sign must be non-negative (predicted {})",
                    before.1,
                    after.1,
                    report.predicted_delta
                );
                let bar = (model_before as f64 * THRESHOLD) as u128;
                assert!(
                    model_after - model_before <= bar,
                    "merge damage {model_before} -> {model_after} exceeds the \
                     hysteresis bar {bar} (predicted {})",
                    report.predicted_delta
                );
            }
        }
        // Structural sanity after every enacted action.
        let violations = self.cindy.validate(&self.table).expect("validate runs");
        assert!(violations.is_empty(), "{action:?} broke invariants: {violations:?}");
    }
}

/// Drives one seeded scenario: phase-drifting inserts, occasional
/// deletes, and full query rounds, stepping the driver on its own
/// cadence. Returns the actions observed so the deterministic sweep can
/// prove the properties aren't vacuous.
fn run_scenario(seed: u64, ops: usize) -> ActionCounts {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut world = build_world();
    for i in 0..ops {
        // The hot group rotates per quarter so heat actually moves.
        let hot = (i * GROUPS) / ops.max(1) % GROUPS;
        let roll = rng.gen::<f64>();
        if roll < 0.55 {
            let group = if rng.gen::<f64>() < 0.7 { hot } else { rng.gen_range(0..GROUPS) };
            world.insert(group, &mut rng);
        } else if roll < 0.70 {
            world.delete(&mut rng);
        } else {
            world.query_round();
        }
    }
    world.observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The sign property holds for every enacted action across seeded
    /// drift scenarios (assertions live inside `measured_step`).
    #[test]
    fn predicted_efficiency_sign_holds(seed in 0u64..10_000) {
        run_scenario(seed, 400);
    }
}

/// The properties above must not be vacuous: across a fixed seed sweep
/// the driver enacts every action kind at least once.
#[test]
fn scenario_sweep_enacts_every_action_kind() {
    let mut total = ActionCounts::default();
    for seed in 0..12 {
        let got = run_scenario(seed, 600);
        total.resplits += got.resplits;
        total.migrations += got.migrations;
        total.merges += got.merges;
    }
    assert!(total.resplits > 0, "no resplit enacted across the sweep: {total:?}");
    assert!(total.migrations > 0, "no migration enacted across the sweep: {total:?}");
    assert!(total.merges > 0, "no merge enacted across the sweep: {total:?}");
}
