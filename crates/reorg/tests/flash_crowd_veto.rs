//! The flash-crowd merge-thrash regression (ROADMAP open item after
//! PR 9's bench recorded an honest −0.043 EFFICIENCY *loss* on the
//! flash-crowd scenario).
//!
//! Mechanism of the loss: the crowd hammers one attribute pair, so every
//! other partition's decayed scan heat halves to zero within a couple of
//! epochs even though the background workload still touches them. The
//! merge phase reads "heat zero" as "cold", folds those partitions, and
//! the post-crowd re-hit forces them straight back apart — each round
//! trip paying the merge's efficiency damage plus the re-split's moves.
//!
//! The fix is a cool-off veto: [`HeatMap::recently_scanned`] remembers
//! the *last scan epoch* un-decayed, and the driver keeps any partition
//! scanned within [`MERGE_COOLOFF_EPOCHS`] off the merge menu. Two
//! layers of proof here:
//!
//! * a driver-level unit scenario showing the veto blocks the exact
//!   merge that enacts once the cool-off expires, and
//! * the full seeded flash-crowd datagen stream (the bench's scenario at
//!   reduced op count) asserting `--reorg auto` no longer loses
//!   EFFICIENCY against `--reorg off`.

use cind_datagen::{DriftConfig, DriftMode, DriftOp, DriftScenario};
use cind_model::{AttrId, EntityId, Synopsis, Value};
use cind_reorg::{ActionKind, ReorgDriver, MERGE_COOLOFF_EPOCHS};
use cind_storage::{SegmentId, UniversalTable};
use cinderella_core::{efficiency, Capacity, Cinderella, Config, ReorgConfig, ReorgMode};

fn reorg_cfg(mode: ReorgMode, epoch_ops: u64) -> ReorgConfig {
    ReorgConfig { mode, budget: 64, threshold: 0.05, epoch_ops }
}

/// The partition whose synopsis contains `attr` (there must be exactly
/// one in these scenarios).
fn partition_of(cindy: &Cinderella, universe: usize, attr: AttrId) -> SegmentId {
    let probe = Synopsis::from_attrs(universe, [attr]);
    let mut hits = cindy
        .catalog()
        .pruning_view()
        .filter(|(_, syn, _)| !probe.is_disjoint(syn))
        .map(|(seg, _, _)| seg);
    let seg = hits.next().expect("attribute group has a partition");
    assert_eq!(hits.next(), None, "attribute group split across partitions");
    seg
}

/// Survivors of `q` under exact pruning — what the server feeds the heat
/// map per query.
fn scanned(cindy: &Cinderella, q: &Synopsis) -> Vec<SegmentId> {
    cindy
        .catalog()
        .pruning_view()
        .filter(|(_, syn, _)| !q.is_disjoint(syn))
        .map(|(seg, _, _)| seg)
        .collect()
}

/// Driver-level veto: two underfull partitions whose decayed heat is zero
/// but whose last scan is inside the cool-off window must not merge; the
/// identical step enacts the merge once the window expires.
#[test]
fn merge_waits_out_the_cooloff() {
    let mut table = UniversalTable::new(64);
    let groups: Vec<Vec<AttrId>> = (0..3)
        .map(|g| (0..3).map(|j| table.catalog_mut().intern(&format!("g{g}_a{j}"))).collect())
        .collect();
    let universe = table.universe();
    let rc = reorg_cfg(ReorgMode::Auto, 4);
    let mut cindy = Cinderella::new(Config {
        capacity: Capacity::MaxEntities(24),
        reorg: rc,
        ..Config::default()
    });
    let mut driver = ReorgDriver::new(rc);

    // Three disjoint attribute groups → three partitions (a disjoint
    // entity rates negative everywhere, so each group opens its own).
    // Identical members per group: nothing for re-split (pair_diff 0) or
    // migration (every entity already sits where it rates highest) to do,
    // so the step's only candidate action is the cold merge.
    let mut next_id = 0u64;
    for g in &groups {
        for _ in 0..3 {
            let attrs: Vec<(AttrId, Value)> = g.iter().map(|a| (*a, Value::Int(1))).collect();
            let e = cind_model::Entity::new(EntityId(next_id), attrs).expect("distinct attrs");
            next_id += 1;
            cindy.insert(&mut table, e).expect("insert");
        }
    }
    let seg_a = partition_of(&cindy, universe, groups[0][0]);
    let seg_b = partition_of(&cindy, universe, groups[1][0]);

    // One background query touches partitions A and B (epoch 0)…
    let q_ab = Synopsis::from_attrs(universe, [groups[0][0], groups[1][0]]);
    let hits = scanned(&cindy, &q_ab);
    assert!(hits.contains(&seg_a) && hits.contains(&seg_b));
    driver.record_query(&q_ab, hits);
    // …then the workload moves to group C — a *mix* of C shapes (so no
    // single shape monopolizes the window and only the cool-off is in
    // play) — until A's and B's counters have halved to zero but their
    // last scan is still inside the cool-off.
    let q_cs: Vec<Synopsis> = [
        vec![groups[2][0], groups[2][1]],
        vec![groups[2][1], groups[2][2]],
        vec![groups[2][0]],
    ]
    .into_iter()
    .map(|attrs| Synopsis::from_attrs(universe, attrs))
    .collect();
    let crowd = |driver: &mut ReorgDriver, cindy: &Cinderella, n: u64| {
        for i in 0..n {
            let q = &q_cs[(i % 3) as usize];
            let hits = scanned(cindy, q);
            driver.record_query(q, hits);
        }
    };
    crowd(&mut driver, &cindy, rc.epoch_ops * 2 - 1);
    assert_eq!(driver.heat().heat(seg_a), 0, "background heat fully decayed");
    assert!(driver.heat().recently_scanned(seg_a), "cool-off still open");

    let report = driver.step(&mut table, &mut cindy).expect("step");
    assert_eq!(report.action, None, "cool-off vetoes the cold merge");
    assert_eq!(driver.stats().merges, 0);

    // Let the cool-off expire (the C mix keeps running), then step again:
    // the very merge the veto blocked now enacts.
    crowd(&mut driver, &cindy, rc.epoch_ops * (MERGE_COOLOFF_EPOCHS + 1));
    assert!(!driver.heat().recently_scanned(seg_a), "cool-off expired");
    let report = driver.step(&mut table, &mut cindy).expect("step");
    match report.action {
        Some(ActionKind::Merge { from, into }) => {
            let pair = [from, into];
            assert!(pair.contains(&seg_a) && pair.contains(&seg_b));
        }
        other => panic!("expected the A/B merge after cool-off, got {other:?}"),
    }
}

/// A monopolized window — one shape carrying the majority of the weight,
/// the flash crowd's signature — suspends cold merges outright, however
/// stale the other partitions' scans are: starvation under a monopolized
/// sample is not evidence of coldness.
#[test]
fn crowd_monopoly_suspends_merges() {
    let mut table = UniversalTable::new(64);
    let groups: Vec<Vec<AttrId>> = (0..3)
        .map(|g| (0..3).map(|j| table.catalog_mut().intern(&format!("g{g}_a{j}"))).collect())
        .collect();
    let universe = table.universe();
    let rc = reorg_cfg(ReorgMode::Auto, 4);
    let mut cindy = Cinderella::new(Config {
        capacity: Capacity::MaxEntities(24),
        reorg: rc,
        ..Config::default()
    });
    let mut driver = ReorgDriver::new(rc);
    let mut next_id = 0u64;
    for g in &groups {
        for _ in 0..3 {
            let attrs: Vec<(AttrId, Value)> = g.iter().map(|a| (*a, Value::Int(1))).collect();
            let e = cind_model::Entity::new(EntityId(next_id), attrs).expect("distinct attrs");
            next_id += 1;
            cindy.insert(&mut table, e).expect("insert");
        }
    }
    let seg_a = partition_of(&cindy, universe, groups[0][0]);

    // One fixed shape hammered far past the cool-off window: partitions
    // A and B are unscanned, decayed cold, and cool-off-expired — yet the
    // monopoly veto still withholds the merge.
    let q_c = Synopsis::from_attrs(universe, [groups[2][0], groups[2][1]]);
    for _ in 0..(rc.epoch_ops * (MERGE_COOLOFF_EPOCHS + 4)) {
        let hits = scanned(&cindy, &q_c);
        driver.record_query(&q_c, hits);
    }
    assert!(!driver.heat().recently_scanned(seg_a), "cool-off long expired");
    let report = driver.step(&mut table, &mut cindy).expect("step");
    assert_eq!(report.action, None, "monopolized window suspends merges");
    assert_eq!(driver.stats().merges, 0);
}

/// The PR 9 bench scenario (same generator, same seed, reduced op count):
/// with the veto in place, `--reorg auto` must no longer lose EFFICIENCY
/// against `--reorg off` on the flash crowd beyond noise.
#[test]
fn flash_crowd_no_longer_regresses_efficiency() {
    const OPS: usize = 2_500;
    const TRAIL: usize = 300;

    let run = |reorg: ReorgMode| -> f64 {
        let scenario = DriftScenario::new(DriftConfig {
            mode: DriftMode::FlashCrowd,
            ops: OPS,
            groups: 8,
            group_width: 8,
            query_share: 0.35,
            seed: 0xBE9C,
        });
        let mut table = UniversalTable::new(4096);
        let ops = scenario.generate(table.catalog_mut(), 0);
        let universe = table.universe();
        let rc = reorg_cfg(reorg, 32);
        let mut cindy = Cinderella::new(Config {
            capacity: Capacity::MaxEntities(64),
            reorg: rc,
            ..Config::default()
        });
        let mut driver = ReorgDriver::new(rc);
        let mut trail: Vec<Synopsis> = Vec::new();
        for op in &ops {
            let due = match op {
                DriftOp::Insert(e) => {
                    cindy.insert(&mut table, e.clone()).expect("insert");
                    driver.record_write()
                }
                DriftOp::Delete(id) => {
                    cindy.delete(&mut table, *id).expect("delete");
                    driver.record_write()
                }
                DriftOp::Query(attrs) => {
                    let q = Synopsis::from_attrs(universe, attrs.iter().copied());
                    let due = driver.record_query(&q, scanned(&cindy, &q));
                    trail.push(q);
                    if trail.len() > TRAIL {
                        trail.remove(0);
                    }
                    due
                }
            };
            if due {
                driver.step(&mut table, &mut cindy).expect("reorg step");
            }
        }
        // The current workload: distinct synopses of the trailing window.
        let mut current: Vec<Synopsis> = Vec::new();
        for q in &trail {
            if !current.contains(q) {
                current.push(q.clone());
            }
        }
        efficiency(&table, &cindy, &current)
    };

    let off = run(ReorgMode::Off);
    let auto = run(ReorgMode::Auto);
    // PR 9 recorded −0.043 here; the veto must hold the gap to noise.
    assert!(
        auto >= off - 0.01,
        "flash-crowd thrash is back: auto {auto:.4} vs off {off:.4}"
    );
}
