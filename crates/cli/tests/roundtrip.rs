//! Property test: arbitrary sparse tables round-trip through the whole
//! CLI pipeline — CSV → load (partition + snapshot) → query — with exact
//! answers.

use cind_cli::{load, query, LoadOptions, QueryOptions};
use proptest::prelude::*;

/// One generated row: id and an optional value per attribute column.
#[derive(Clone, Debug)]
struct Row {
    id: u64,
    cells: Vec<Option<i64>>,
}

const COLS: usize = 6;

fn rows() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        prop::collection::vec(prop::option::of(-1000i64..1000), COLS),
        1..40,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, cells)| Row { id: i as u64, cells })
            .collect()
    })
}

fn to_csv(rows: &[Row]) -> String {
    let mut out = String::from("id");
    for c in 0..COLS {
        out.push_str(&format!(",attr{c}"));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&row.id.to_string());
        for cell in &row.cells {
            out.push(',');
            if let Some(v) = cell {
                out.push_str(&v.to_string());
            }
        }
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn csv_load_query_roundtrip(rows in rows(), qcol in 0..COLS) {
        let dir = std::env::temp_dir().join(format!(
            "cind_cli_prop_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.csv");
        let snap = dir.join("t.cind");
        std::fs::write(&input, to_csv(&rows)).unwrap();

        load(
            &input,
            &snap,
            &LoadOptions { weight: 0.3, capacity: 10, ..LoadOptions::default() },
        )
        .expect("load");

        let attr = format!("attr{qcol}");
        let expected = rows.iter().filter(|r| r.cells[qcol].is_some()).count();
        match query(
            &snap,
            &[attr.as_str()],
            &QueryOptions { limit: None, pool_pages: 64, ..QueryOptions::default() },
        ) {
            Ok(out) => {
                prop_assert!(
                    out.contains(&format!("\n{expected} rows;")),
                    "expected {expected} rows in:\n{out}"
                );
            }
            Err(e) => {
                // The attribute exists in the header, so the query must
                // never fail.
                prop_assert!(false, "query failed: {e}");
            }
        }
    }
}
