//! The CLI's verbs as library functions.

use std::path::Path;

use cind_model::{AttributeCatalog, SizeModel, Value};
use cind_query::{execute_collect, plan_from_survivors, plan_with, Parallelism, Query};
use cind_storage::{PersistError, StorageError, UniversalTable};
use cind_server::{EngineOptions, ServeConfig, Server, ServerError};
use cinderella_core::{
    bulk_load, Capacity, Cinderella, Config, CoreError, IndexMode, IndexTier, SynopsisMode,
};

use crate::csv::{parse_entities, CsvError};

/// Errors surfaced to the user, with context.
#[derive(Debug)]
pub enum CliError {
    /// File I/O failed.
    Io(std::io::Error),
    /// The input CSV was malformed.
    Csv(CsvError),
    /// Snapshot (de)serialisation failed.
    Persist(PersistError),
    /// The partitioner failed.
    Core(CoreError),
    /// The storage engine failed.
    Storage(StorageError),
    /// The serving layer failed (bind, protocol, or remote error).
    Server(ServerError),
    /// Bad command-line usage; the payload is the message.
    Usage(String),
    /// Deep validation (`cind check`) found structural invariant
    /// violations; the payload is the rendered diagnostics, one per line.
    Invariant(String),
}

macro_rules! from_err {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for CliError {
            fn from(e: $ty) -> Self {
                CliError::$variant(e)
            }
        }
    };
}
from_err!(Io, std::io::Error);
from_err!(Csv, CsvError);
from_err!(Persist, PersistError);
from_err!(Core, CoreError);
from_err!(Storage, StorageError);
from_err!(Server, ServerError);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Io(e) => write!(f, "io: {e}"),
            CliError::Csv(e) => write!(f, "csv: {e}"),
            CliError::Persist(e) => write!(f, "snapshot: {e}"),
            CliError::Core(e) => write!(f, "partitioner: {e}"),
            CliError::Storage(e) => write!(f, "storage: {e}"),
            CliError::Server(e) => write!(f, "server: {e}"),
            CliError::Usage(msg) => write!(f, "usage: {msg}"),
            CliError::Invariant(report) => {
                write!(f, "invariant violations:\n{report}")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// The `--mode` flag: which synopsis space rates entities (§II).
///
/// Workload mode carries the workload itself as attribute-name queries,
/// resolved against the catalog once the input's schema is known.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModeSpec {
    /// Rating synopsis = the entity's attribute set (the default).
    Entity,
    /// Rating synopsis = relevant workload queries; each inner vec is one
    /// query's attribute names.
    Workload(Vec<Vec<String>>),
}

impl std::str::FromStr for ModeSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "entity" {
            return Ok(Self::Entity);
        }
        let Some(spec) = s.strip_prefix("workload:") else {
            return Err(format!(
                "bad mode {s:?}; use entity or workload:a,b;c,d (queries \
                 split by `;`, attributes by `,`)"
            ));
        };
        let queries: Vec<Vec<String>> = spec
            .split(';')
            .map(|q| {
                q.split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(str::to_owned)
                    .collect()
            })
            .filter(|q: &Vec<String>| !q.is_empty())
            .collect();
        if queries.is_empty() {
            return Err("workload mode needs at least one query, e.g. workload:a,b".into());
        }
        Ok(Self::Workload(queries))
    }
}

impl ModeSpec {
    /// Resolves the spec against a concrete attribute catalog.
    fn resolve(&self, catalog: &AttributeCatalog) -> Result<SynopsisMode, CliError> {
        match self {
            ModeSpec::Entity => Ok(SynopsisMode::EntityBased),
            ModeSpec::Workload(queries) => {
                let synopses = queries
                    .iter()
                    .map(|q| {
                        Query::from_names(catalog, q.iter().map(String::as_str))
                            .map(|query| query.synopsis().clone())
                            .ok_or_else(|| {
                                CliError::Usage(format!(
                                    "--mode workload query {q:?} names an attribute \
                                     absent from the input"
                                ))
                            })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(SynopsisMode::WorkloadBased(synopses))
            }
        }
    }
}

/// Options of [`load`].
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Rating weight `w`.
    pub weight: f64,
    /// Partition capacity `B` (entities).
    pub capacity: u64,
    /// The `SIZE()` function (`cells`/`bytes`) behind sparseness and
    /// capacity accounting.
    pub size_model: SizeModel,
    /// Entity-based or workload-based rating synopses.
    pub mode: ModeSpec,
    /// Record the per-insert event trace and summarise it in the report.
    pub record_events: bool,
    /// Parallel load workers (1 = sequential).
    pub threads: usize,
    /// Buffer-pool pages for the load.
    pub pool_pages: usize,
    /// Catalog index mode (`auto`/`on`/`off`) for the rating scan.
    pub index: IndexMode,
    /// Pruning-index tier (`exact`/`tiered`/`auto`): `tiered` swaps the
    /// exact presence bitmaps for blocked Bloom filters plus a bounded hot
    /// tier; `auto` ratchets to tiered once the catalog is large enough.
    pub tier: IndexTier,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            weight: 0.2,
            capacity: 5_000,
            size_model: SizeModel::Cells,
            mode: ModeSpec::Entity,
            record_events: false,
            threads: 1,
            pool_pages: 1024,
            index: IndexMode::default(),
            tier: IndexTier::default(),
        }
    }
}

fn config_of(opts: &LoadOptions, catalog: &AttributeCatalog) -> Result<Config, CliError> {
    Ok(Config {
        weight: opts.weight,
        capacity: Capacity::MaxEntities(opts.capacity),
        size_model: opts.size_model,
        mode: opts.mode.resolve(catalog)?,
        record_events: opts.record_events,
        index: opts.index,
        tier: opts.tier,
        // Reorg is a serving-time feature (`cind serve --reorg auto`);
        // an offline bulk load has no heat to react to.
        reorg: cinderella_core::ReorgConfig::default(),
    })
}

/// `cind load`: parse a CSV of irregular entities, partition it with
/// Cinderella, write a snapshot, and return a human-readable report.
///
/// # Errors
/// CSV, I/O, partitioner, and snapshot errors.
pub fn load(input: &Path, snapshot: &Path, opts: &LoadOptions) -> Result<String, CliError> {
    let text = std::fs::read_to_string(input)?;
    let mut table = UniversalTable::new(opts.pool_pages);
    let entities = parse_entities(&text, table.catalog_mut())?;
    let n = entities.len();
    let config = config_of(opts, table.catalog())?;
    let t0 = std::time::Instant::now();
    let (mut cindy, _) = bulk_load(&mut table, config, entities, opts.threads)?;
    let elapsed = t0.elapsed();

    let mut out = std::io::BufWriter::new(std::fs::File::create(snapshot)?);
    table.snapshot(&mut out)?;
    drop(out);

    let stats = cindy.stats();
    let mut report = format!(
        "loaded {n} entities ({} attributes) in {elapsed:.2?}\n\
         partitions: {} ({} splits, {} created)\n\
         snapshot: {}",
        table.universe(),
        cindy.catalog().len(),
        stats.splits,
        stats.partitions_created,
        snapshot.display(),
    );
    if opts.record_events {
        let events = cindy.take_events();
        let splits = events.iter().filter(|e| e.outcome.is_split()).count();
        let total: std::time::Duration = events.iter().map(|e| e.duration).sum();
        report.push_str(&format!(
            "\nevents: {} inserts recorded ({} splits, {:.2?} total insert time)",
            events.len(),
            splits,
            total,
        ));
    }
    Ok(report)
}

/// Options of [`query`].
#[derive(Clone, Debug)]
pub struct QueryOptions {
    /// Maximum rows to render (`None` = all).
    pub limit: Option<usize>,
    /// Buffer-pool pages.
    pub pool_pages: usize,
    /// Worker threads for the scan (1 = sequential; >1 fans the surviving
    /// `UNION ALL` branches over a pool).
    pub threads: usize,
    /// Catalog index mode: `auto`/`on` plan via the attribute-presence
    /// bitmaps, `off` tests every partition's synopsis.
    pub index: IndexMode,
    /// Pruning-index tier (`exact`/`tiered`/`auto`); tiered planning is
    /// superset-sound, so the rendered rows are identical either way.
    pub tier: IndexTier,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            limit: Some(20),
            pool_pages: 1024,
            threads: 1,
            index: IndexMode::default(),
            tier: IndexTier::default(),
        }
    }
}

fn render_value(v: &Option<Value>) -> String {
    v.as_ref().map_or_else(|| "∅".to_owned(), Value::to_string)
}

/// `cind query`: restore a snapshot, rebuild the pruning catalog, and run
/// one `SELECT attrs WHERE … IS NOT NULL OR …` query. Returns the rendered
/// result table plus the pruning report.
///
/// # Errors
/// Unknown attribute names are a usage error; plus snapshot/storage errors.
pub fn query(
    snapshot: &Path,
    attrs: &[&str],
    opts: &QueryOptions,
) -> Result<String, CliError> {
    if attrs.is_empty() {
        return Err(CliError::Usage("query needs --attrs a,b,…".into()));
    }
    let mut file = std::io::BufReader::new(std::fs::File::open(snapshot)?);
    let table = UniversalTable::restore(&mut file, opts.pool_pages)?;
    let cindy = Cinderella::rebuild(
        &table,
        Config { index: opts.index, tier: opts.tier, ..Config::default() },
    )?;

    let q = Query::from_names(table.catalog(), attrs.iter().copied()).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown attribute among {:?}; try `cind stats` for the schema",
            attrs
        ))
    })?;
    let parallelism = if opts.threads > 1 {
        Parallelism::Threads(opts.threads)
    } else {
        Parallelism::Sequential
    };
    // Survivor set from the catalog's attribute-presence bitmaps; with the
    // index off, fall back to the per-partition |p ∧ q| = 0 test.
    let p = match cindy.catalog().plan_survivors(q.synopsis()) {
        Some((segments, pruned)) => {
            plan_from_survivors(segments, pruned).with_parallelism(parallelism)
        }
        None => {
            let view: Vec<_> = cindy
                .catalog()
                .pruning_view()
                .map(|(s, syn, _)| (s, syn.clone()))
                .collect();
            plan_with(&q, view.iter().map(|(s, syn)| (*s, syn)), parallelism)
        }
    };
    let (result, rows) = execute_collect(&table, &q, &p)?;

    let mut t = cind_metrics::Table::new(
        std::iter::once("id".to_owned()).chain(attrs.iter().map(|a| (*a).to_owned())),
    );
    // execute_collect drops ids; re-project with ids via a second pass kept
    // simple: render from the collected rows (ids are not part of the
    // paper's query form, so we show a row counter instead).
    let shown = opts.limit.unwrap_or(rows.len()).min(rows.len());
    for (i, row) in rows.iter().take(shown).enumerate() {
        let mut cells = vec![format!("#{i}")];
        cells.extend(row.iter().map(render_value));
        t.row(cells);
    }
    let mut out = t.render();
    if shown < rows.len() {
        out.push_str(&format!("\n… {} more rows", rows.len() - shown));
    }
    out.push_str(&format!(
        "\n{} rows; scanned {} of {} partitions ({} pruned); {} pages read in {:.2?}",
        result.rows,
        result.segments_read,
        result.segments_read + result.segments_pruned,
        result.segments_pruned,
        result.io.logical_reads,
        result.duration,
    ));
    Ok(out)
}

/// `cind stats`: restore a snapshot and describe the table and its
/// partitioning.
///
/// # Errors
/// Snapshot and storage errors.
pub fn stats(snapshot: &Path, pool_pages: usize) -> Result<String, CliError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(snapshot)?);
    let table = UniversalTable::restore(&mut file, pool_pages)?;
    let cindy = Cinderella::rebuild(&table, Config::default())?;

    let mut out = format!(
        "entities: {}\nattributes: {}\npartitions: {}\n\nper-partition:\n",
        table.entity_count(),
        table.universe(),
        cindy.catalog().len(),
    );
    let mut t = cind_metrics::Table::new(["partition", "entities", "attrs", "sparseness", "pages"]);
    for meta in cindy.catalog().iter() {
        let pages = table.segment(meta.segment)?.page_count();
        t.row([
            meta.segment.to_string(),
            meta.entities.to_string(),
            meta.attr_synopsis.cardinality().to_string(),
            format!("{:.3}", meta.sparseness()),
            pages.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\n\nattributes: ");
    let names: Vec<&str> = table.catalog().iter().map(|(_, n)| n).collect();
    out.push_str(&names.join(", "));
    Ok(out)
}

/// `cind merge`: restore, run a merge pass at `threshold`, and write the
/// (re-partitioned) snapshot back.
///
/// # Errors
/// Snapshot, storage, and partitioner errors.
pub fn merge(snapshot: &Path, threshold: f64, pool_pages: usize) -> Result<String, CliError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(snapshot)?);
    let mut table = UniversalTable::restore(&mut file, pool_pages)?;
    let mut cindy = Cinderella::rebuild(&table, Config::default())?;
    let before = cindy.catalog().len();
    let report = cindy.merge_pass(&mut table, threshold)?;
    let mut out = std::io::BufWriter::new(std::fs::File::create(snapshot)?);
    table.snapshot(&mut out)?;
    Ok(format!(
        "merge pass at threshold {threshold}: {} → {} partitions \
         ({} merges, {} entities moved, {} kept)",
        before,
        before - report.merges as usize,
        report.merges,
        report.entities_moved,
        report.kept,
    ))
}

/// `cind check`: restore a snapshot, rebuild the partitioning catalog, and
/// run the full structural validation — arena/free-list consistency,
/// presence-bitmap refcounts, partition synopses vs. the stored entities,
/// split-starter membership, segment accounting. Returns a short clean
/// report, or [`CliError::Invariant`] listing every violation.
///
/// This is the release-build entry to the same checks `debug_assertions`
/// builds run at every split/merge/relayout boundary.
///
/// # Errors
/// Snapshot/storage errors, and [`CliError::Invariant`] on violations.
pub fn check(snapshot: &Path, pool_pages: usize) -> Result<String, CliError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(snapshot)?);
    let table = UniversalTable::restore(&mut file, pool_pages)?;
    let cindy = Cinderella::rebuild(&table, Config::default())?;
    let violations = cindy.validate(&table)?;
    if violations.is_empty() {
        Ok(format!(
            "ok: {} entities in {} partitions, all structural invariants hold\n\
             (arena, presence index, catalog refcounts, starters, segment accounting)",
            table.entity_count(),
            cindy.catalog().len(),
        ))
    } else {
        Err(CliError::Invariant(cinderella_core::validate::render(&violations)))
    }
}

/// `cind serve`: open (or create) a store directory and serve it over the
/// wire protocol until a client sends `Shutdown` (or the process is
/// signalled). Prints the `listening on 127.0.0.1:PORT` line *before*
/// blocking so harnesses can wait for readiness, then performs the
/// graceful drain — WAL flush, checkpoint snapshot, full validation — and
/// reports the outcome.
///
/// # Errors
/// Bind/storage failures, and [`CliError::Invariant`] if the post-drain
/// validation finds structural defects.
pub fn serve(store: &Path, cfg: &ServeConfig) -> Result<String, CliError> {
    use std::io::Write as _;
    let opts = cind_server::ShardedOptions::new(
        EngineOptions::from_serve(cfg),
        cfg.effective_shards(),
    );
    let engine = std::sync::Arc::new(cind_server::ShardedEngine::open(store, opts)?);
    let handle = Server::start(engine, cfg)?;
    println!("listening on 127.0.0.1:{}", handle.port());
    std::io::stdout().flush()?;
    let report = handle.join()?;
    if report.violations.is_empty() {
        Ok("shutdown clean: drained, WAL flushed, checkpoint written, \
            all structural invariants hold"
            .to_string())
    } else {
        Err(CliError::Invariant(report.violations.join("\n")))
    }
}

/// Knobs for `cind workload` (the remote load generator).
#[derive(Clone, Debug)]
pub struct WorkloadOptions {
    /// Concurrent connections.
    pub connections: usize,
    /// Total entities to insert across the connections.
    pub entities: usize,
    /// Distinct attributes in the generated data.
    pub attributes: usize,
    /// Every k-th operation is a query (`0` = inserts only).
    pub query_every: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Requests kept in flight per connection (`1` = closed loop).
    pub pipeline: usize,
    /// Inserts packed per wire-level batch frame (`1` = one per frame).
    pub batch: usize,
    /// Workload shape: `steady` (the classic DBpedia stream) or one of
    /// the drift scenarios (`drift`, `flash-crowd`, `churn`) that give a
    /// serving reorganizer something to chase.
    pub mode: cind_server::DriftMode,
    /// Send a graceful `Shutdown` to the server after the run.
    pub shutdown: bool,
}

impl Default for WorkloadOptions {
    fn default() -> Self {
        Self {
            connections: 4,
            entities: 2_000,
            attributes: 60,
            query_every: 10,
            seed: 0xC1DE,
            pipeline: 1,
            batch: 1,
            mode: cind_server::DriftMode::Steady,
            shutdown: false,
        }
    }
}

/// `cind workload --remote HOST:PORT`: drive the closed-loop load
/// generator against a running `cind serve` and report throughput,
/// admission-control sheds, and per-operation latency percentiles.
///
/// # Errors
/// Connection failures; remote errors during the run are counted in the
/// report, not raised.
pub fn workload(remote: &str, opts: &WorkloadOptions) -> Result<String, CliError> {
    let cfg = cind_server::LoadConfig {
        connections: opts.connections,
        entities: opts.entities,
        attributes: opts.attributes,
        query_every: opts.query_every,
        seed: opts.seed,
        pipeline: opts.pipeline,
        batch: opts.batch,
        mode: opts.mode,
    };
    let mut report = cind_server::run_load(remote, &cfg)?;
    let mut out = report.render();
    if opts.shutdown {
        cind_server::Client::connect(remote)?.shutdown()?;
        out.push_str("shutdown requested\n");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cind_cli_unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn load_query_stats_cycle() {
        let input = tmp("devices.csv");
        std::fs::write(
            &input,
            "id,name,resolution,rotation,formFactor\n\
             1,Canon S120,12.1,,\n\
             2,Sony A99,24,,\n\
             3,WD4000,,7200,\"3.5 inch\"\n\
             4,Seagate X,,5400,\"2.5 inch\"\n",
        )
        .unwrap();
        let snap = tmp("devices.cind");
        let report = load(
            &input,
            &snap,
            &LoadOptions { weight: 0.3, capacity: 100, ..LoadOptions::default() },
        )
        .unwrap();
        assert!(report.contains("loaded 4 entities"), "{report}");
        assert!(report.contains("partitions: 2"), "{report}");

        let out = query(&snap, &["rotation"], &QueryOptions::default()).unwrap();
        assert!(out.contains("2 rows"), "{out}");
        assert!(out.contains("(1 pruned)"), "{out}");
        assert!(out.contains("7200"), "{out}");

        // Indexed and unindexed planning agree row for row.
        let indexed = query(
            &snap,
            &["rotation"],
            &QueryOptions { index: IndexMode::On, ..QueryOptions::default() },
        )
        .unwrap();
        let unindexed = query(
            &snap,
            &["rotation"],
            &QueryOptions { index: IndexMode::Off, ..QueryOptions::default() },
        )
        .unwrap();
        let strip_timing = |s: &str| {
            s.lines()
                .map(|l| l.split("; ").take(2).collect::<Vec<_>>().join("; "))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip_timing(&indexed), strip_timing(&unindexed));

        let s = stats(&snap, 64).unwrap();
        assert!(s.contains("entities: 4"), "{s}");
        assert!(s.contains("partitions: 2"), "{s}");
        assert!(s.contains("formFactor"), "{s}");
    }

    #[test]
    fn mode_spec_parses() {
        assert_eq!("entity".parse::<ModeSpec>().unwrap(), ModeSpec::Entity);
        assert_eq!(
            "workload:a,b;c".parse::<ModeSpec>().unwrap(),
            ModeSpec::Workload(vec![
                vec!["a".to_owned(), "b".to_owned()],
                vec!["c".to_owned()]
            ])
        );
        assert!("workload:".parse::<ModeSpec>().is_err());
        assert!("Entity".parse::<ModeSpec>().is_err());
    }

    #[test]
    fn load_honours_mode_size_model_and_event_trace() {
        let input = tmp("modes.csv");
        std::fs::write(
            &input,
            "id,a,b,c\n1,1,2,\n2,3,4,\n3,,,5\n4,,,6\n",
        )
        .unwrap();
        let snap = tmp("modes.cind");
        let report = load(
            &input,
            &snap,
            &LoadOptions {
                weight: 0.3,
                capacity: 100,
                size_model: SizeModel::Bytes,
                mode: "workload:a,b;c".parse().unwrap(),
                record_events: true,
                ..LoadOptions::default()
            },
        )
        .unwrap();
        assert!(report.contains("loaded 4 entities"), "{report}");
        assert!(report.contains("events: 4 inserts recorded"), "{report}");

        // A workload query naming an unknown attribute is a usage error.
        let err = load(
            &input,
            &snap,
            &LoadOptions { mode: "workload:nope".parse().unwrap(), ..LoadOptions::default() },
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
    }

    #[test]
    fn check_command_validates_a_snapshot() {
        let input = tmp("check.csv");
        std::fs::write(&input, "id,a,b\n1,1,\n2,,2\n3,3,\n").unwrap();
        let snap = tmp("check.cind");
        load(&input, &snap, &LoadOptions::default()).unwrap();
        let report = check(&snap, 64).unwrap();
        assert!(report.contains("all structural invariants hold"), "{report}");
        assert!(report.contains("3 entities"), "{report}");
    }

    #[test]
    fn query_unknown_attribute_is_usage_error() {
        let input = tmp("small.csv");
        std::fs::write(&input, "id,a\n1,1\n").unwrap();
        let snap = tmp("small.cind");
        load(&input, &snap, &LoadOptions::default()).unwrap();
        assert!(matches!(
            query(&snap, &["nope"], &QueryOptions::default()),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            query(&snap, &[], &QueryOptions::default()),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn merge_command_rewrites_snapshot() {
        // Many same-shape tiny partitions via a tiny capacity, then merge
        // with a bigger default config at rebuild time? Rebuild uses the
        // default capacity (5000), so all the small partitions become
        // merge candidates.
        let input = tmp("frag.csv");
        let mut text = String::from("id,a,b\n");
        for i in 0..50 {
            text.push_str(&format!("{i},1,2\n"));
        }
        std::fs::write(&input, text).unwrap();
        let snap = tmp("frag.cind");
        load(
            &input,
            &snap,
            &LoadOptions { weight: 0.3, capacity: 5, ..LoadOptions::default() },
        )
        .unwrap();
        // B = 5 with identical entities fragments into many small
        // partitions (the exact count depends on the split asymmetry).
        let s = stats(&snap, 64).unwrap();
        assert!(!s.contains("partitions: 1\n"), "{s}");
        let report = merge(&snap, 1.0, 64).unwrap();
        assert!(report.contains("→ 1 partitions"), "{report}");
        let s = stats(&snap, 64).unwrap();
        assert!(s.contains("partitions: 1"), "{s}");
        // Data intact after the rewrite.
        let out = query(
            &snap,
            &["a"],
            &QueryOptions { limit: None, pool_pages: 64, threads: 2, ..QueryOptions::default() },
        )
        .unwrap();
        assert!(out.contains("50 rows"), "{out}");
    }
}
