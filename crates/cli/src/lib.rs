//! `cind` — a command-line universal-table manager built on Cinderella.
//!
//! The paper's prototype made Cinderella transparent behind SQL views; this
//! crate is the equivalent adoption path for the Rust library: point it at
//! a CSV file of irregular entities (empty cells = absent attributes), let
//! Cinderella partition it online, persist the table as a snapshot, and
//! run the paper's `… IS NOT NULL OR …` queries against it.
//!
//! ```text
//! cind load   --input products.csv --snapshot table.cind [--weight W] [--capacity B]
//! cind query  --snapshot table.cind --attrs rotation,formFactor [--limit N]
//! cind stats  --snapshot table.cind
//! cind merge  --snapshot table.cind --threshold 0.5
//! cind check  --snapshot table.cind
//! ```
//!
//! Everything is a library function ([`commands`]) so the whole surface is
//! integration-testable without spawning processes; [`main`](../cind) is a
//! thin argument parser.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod csv;

pub use commands::{
    check, load, merge, query, serve, stats, workload, CliError, LoadOptions, ModeSpec,
    QueryOptions, WorkloadOptions,
};
