//! `cind` binary: thin argument parsing over [`cind_cli::commands`].

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use cind_cli::{
    check, load, merge, query, serve, stats, workload, CliError, LoadOptions, QueryOptions,
    WorkloadOptions,
};

const USAGE: &str = "\
cind — universal-table manager with Cinderella online partitioning

USAGE:
  cind load  --input DATA.csv --snapshot TABLE.cind
             [--weight W] [--capacity B] [--size-model cells|bytes]
             [--mode entity|workload:a,b;c,d] [--record-events true|false]
             [--threads N] [--index auto|on|off] [--tier exact|tiered|auto]
  cind query --snapshot TABLE.cind --attrs a,b,c [--limit N] [--threads N]
             [--index auto|on|off] [--tier exact|tiered|auto]
  cind stats --snapshot TABLE.cind
  cind merge --snapshot TABLE.cind [--threshold T]
  cind check --snapshot TABLE.cind
  cind serve --store DIR [--port P] [--workers N] [--queue-depth K]
             [--pool-pages N] [--query-threads N] [--shards N]
             [--group-commit-window USEC] [--reorg off|auto]
             [--reorg-budget N] [--reorg-threshold T] [--reorg-epoch-ops N]
             [--tier exact|tiered|auto]
  cind workload --remote HOST:PORT [--connections N] [--entities N]
             [--attributes N] [--query-every K] [--seed S]
             [--pipeline K] [--batch N] [--shutdown true|false]
             [--mode steady|drift|flash-crowd|churn]
  cind sim   [--seeds N | --seed N] [--ops N] [--faults all|none]
             [--drift] [--check-every N] [--replay FILE]
             [--save-trace FILE] [--selftest N] [--sweep]

--size-model picks the SIZE() function of Definition 1: instantiated
cells (default) or serialized bytes.
--mode rates entities by their attribute set (entity, default) or by the
relevant queries of a workload given inline (queries split by `;`,
attribute names by `,`).
--record-events true traces every sequential insert (latency, split flag)
and summarises the trace in the load report.
--index routes the rating scan and query planning through the catalog's
attribute-presence bitmap index (auto = cost-gated, the default).
--tier picks the pruning-index representation behind that index: exact
(one presence bitmap per attribute, the default) or tiered (blocked
Bloom filter rows per 64-partition group plus a bounded exact hot tier —
memory stays bounded at million-partition catalogs, answers are
identical because the approximate tier never produces false negatives);
auto starts exact and ratchets to tiered once the catalog crosses the
partition-count threshold.
check restores the snapshot, rebuilds the partitioning, and runs the full
structural invariant validation (exit status 1 on violations).
serve opens (or creates) a store directory — snapshot + write-ahead log —
and serves it over a length-prefixed binary protocol on loopback until a
client sends Shutdown: --port 0 picks a free port (printed on startup),
--workers sizes the request worker pool, --queue-depth bounds the
admission-control queue (a full queue answers Busy instead of stalling),
--pool-pages sizes the buffer pool, and --query-threads fans each query's
UNION ALL scan over that many threads. --shards splits the store into N
independent shards (own writer lock, WAL, and snapshot under
shard-NNNN/); writes hash-route to one shard, queries fan out over all,
and the on-disk MANIFEST pins the count for the store's lifetime.
--group-commit-window lets each shard's fsync leader linger that many
microseconds collecting concurrent commits into one WAL append + fsync
(0, the default, syncs every commit individually; durability semantics
are identical either way).
--reorg auto turns on the workload-adaptive background reorganizer: each
shard tracks per-partition scan heat (decayed per epoch) and, between
foreground writes, enacts the single best cost-modeled action — re-split
a hot mixed partition, migrate an entity to the partition rating it
highest, or merge cold underfull partitions — each WAL-framed so a crash
mid-action recovers to a clean pre- or post-action state. --reorg-budget
caps entities moved per step, --reorg-threshold sets the hysteresis
fraction an action's predicted gain must clear, and --reorg-epoch-ops
sets the heat-decay epoch length in recorded operations (off, the
default, disables stepping entirely).
Sharded stores keep their snapshots at DIR/shard-NNNN/store.cind — point
check/stats/query at those files individually.
workload drives the load generator against a running server: N
connections inserting generated entities with a query every K ops,
reporting throughput, Busy sheds, and latency percentiles (end-to-end
and service time). --pipeline K keeps K requests in flight per
connection instead of the closed loop; --batch N packs N inserts per
wire-level batch frame. --mode switches the stream from the steady
DBpedia workload to a drift scenario: drift rotates the query focus
across attribute groups phase by phase, flash-crowd hammers one hot
attribute pair mid-run, churn mixes Zipf-skewed inserts with deletes —
shapes that give a server running --reorg auto something to chase.
sim runs the deterministic fault-injection simulator (seeded schedules
against an in-memory store with torn writes, crashes, and a model-based
oracle); see `cind sim --help` for the full flag set.

CSV format: header row names the attributes (optional leading `id`
column); empty cells mean the attribute is absent.";

struct Args {
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut flags = std::collections::HashMap::new();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(CliError::Usage(format!("unexpected argument {flag}")));
            };
            let value = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("missing value for --{name}")))?;
            flags.insert(name.to_owned(), value.clone());
        }
        Ok(Self { flags })
    }

    fn path(&self, name: &str) -> Result<PathBuf, CliError> {
        self.flags
            .get(name)
            .map(PathBuf::from)
            .ok_or_else(|| CliError::Usage(format!("--{name} is required")))
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::Usage(format!("bad value for --{name}: {raw}"))),
        }
    }
}

fn run() -> Result<String, CliError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        return Err(CliError::Usage(USAGE.into()));
    };
    if command == "sim" {
        // The simulator owns its flag grammar and exit codes.
        std::process::exit(cind_sim::cli::run_from_cind(&argv[1..]));
    }
    let args = Args::parse(&argv[1..])?;
    match command.as_str() {
        "load" => {
            let opts = LoadOptions {
                weight: args.get("weight", 0.2)?,
                capacity: args.get("capacity", 5_000)?,
                size_model: args.get("size-model", cind_model::SizeModel::Cells)?,
                mode: args.get("mode", cind_cli::ModeSpec::Entity)?,
                record_events: args.get("record-events", false)?,
                threads: args.get("threads", 1)?,
                pool_pages: args.get("pool", 1024)?,
                index: args.get("index", cinderella_core::IndexMode::default())?,
                tier: args.get("tier", cinderella_core::IndexTier::default())?,
            };
            load(&args.path("input")?, &args.path("snapshot")?, &opts)
        }
        "query" => {
            let attrs_raw = args
                .flags
                .get("attrs")
                .ok_or_else(|| CliError::Usage("--attrs a,b,… is required".into()))?
                .clone();
            let attrs: Vec<&str> =
                attrs_raw.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
            let opts = QueryOptions {
                limit: Some(args.get("limit", 20usize)?),
                pool_pages: args.get("pool", 1024)?,
                threads: args.get("threads", 1)?,
                index: args.get("index", cinderella_core::IndexMode::default())?,
                tier: args.get("tier", cinderella_core::IndexTier::default())?,
            };
            query(&args.path("snapshot")?, &attrs, &opts)
        }
        "stats" => stats(&args.path("snapshot")?, args.get("pool", 1024)?),
        "check" => check(&args.path("snapshot")?, args.get("pool", 1024)?),
        "merge" => merge(
            &args.path("snapshot")?,
            args.get("threshold", 0.5)?,
            args.get("pool", 1024)?,
        ),
        "serve" => {
            let reorg_defaults = cinderella_core::ReorgConfig::default();
            let cfg = cind_server::ServeConfig {
                port: args.get("port", 0u16)?,
                workers: args.get("workers", 4)?,
                queue_depth: args.get("queue-depth", 64)?,
                pool_pages: args.get("pool-pages", 1024)?,
                query_threads: args.get("query-threads", 2)?,
                shards: args.get("shards", 1)?,
                group_commit_window: args.get("group-commit-window", 0)?,
                reorg: args.get("reorg", cinderella_core::ReorgMode::Off)?,
                reorg_budget: args.get("reorg-budget", reorg_defaults.budget)?,
                reorg_threshold: args.get("reorg-threshold", reorg_defaults.threshold)?,
                reorg_epoch_ops: args.get("reorg-epoch-ops", reorg_defaults.epoch_ops)?,
                tier: args.get("tier", cinderella_core::IndexTier::default())?,
            };
            serve(&args.path("store")?, &cfg)
        }
        "workload" => {
            let remote = args
                .flags
                .get("remote")
                .ok_or_else(|| CliError::Usage("--remote HOST:PORT is required".into()))?
                .clone();
            let opts = WorkloadOptions {
                connections: args.get("connections", 4)?,
                entities: args.get("entities", 2_000)?,
                attributes: args.get("attributes", 60)?,
                query_every: args.get("query-every", 10)?,
                seed: args.get("seed", 0xC1DE)?,
                pipeline: args.get("pipeline", 1)?,
                batch: args.get("batch", 1)?,
                mode: args.get("mode", cind_server::DriftMode::Steady)?,
                shutdown: args.get("shutdown", false)?,
            };
            workload(&remote, &opts)
        }
        "help" | "--help" | "-h" => Ok(USAGE.into()),
        other => Err(CliError::Usage(format!("unknown command {other}\n\n{USAGE}"))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
