//! Minimal CSV reader for irregular entities.
//!
//! Dialect: RFC-4180-style — comma separator, `"`-quoted fields with `""`
//! escapes, LF or CRLF line ends. The header row names the attributes; an
//! optional leading `id` column carries the entity id (otherwise ids are
//! assigned by row number). **Empty cells mean "attribute absent"**, which
//! is what makes CSV a natural interchange format for sparse universal
//! tables.
//!
//! Values are typed by inference per cell: `true`/`false` → Bool, integer
//! literal → Int, float literal → Float, everything else → Text.

use cind_model::{AttrId, AttributeCatalog, Entity, EntityId, Value};

/// CSV parsing errors, with 1-based line numbers.
#[derive(Debug, PartialEq, Eq)]
pub enum CsvError {
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// Line where the field started.
        line: usize,
    },
    /// A row has more cells than the header.
    TooManyCells {
        /// Offending line.
        line: usize,
    },
    /// An `id` cell did not parse as an unsigned integer.
    BadId {
        /// Offending line.
        line: usize,
    },
    /// Two rows share an id.
    DuplicateId {
        /// Offending line.
        line: usize,
        /// The repeated id.
        id: u64,
    },
    /// The file has no header row.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
            CsvError::TooManyCells { line } => {
                write!(f, "line {line}: more cells than header columns")
            }
            CsvError::BadId { line } => write!(f, "line {line}: id is not an unsigned integer"),
            CsvError::DuplicateId { line, id } => {
                write!(f, "line {line}: duplicate entity id {id}")
            }
            CsvError::Empty => write!(f, "no header row"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Splits one logical CSV record starting at `lines[*idx]`, consuming
/// continuation lines when a quoted field spans newlines. Returns the
/// cells.
fn parse_record(
    lines: &[&str],
    idx: &mut usize,
    start_line: usize,
) -> Result<Vec<String>, CsvError> {
    let mut cells = Vec::new();
    let mut cell = String::new();
    let mut in_quotes = false;
    let mut line = lines[*idx];
    let mut chars = line.chars().peekable();
    loop {
        match chars.next() {
            Some('"') if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cell.push('"');
                } else {
                    in_quotes = false;
                }
            }
            Some('"') if cell.is_empty() && !in_quotes => in_quotes = true,
            Some(',') if !in_quotes => {
                cells.push(std::mem::take(&mut cell));
            }
            Some(c) => cell.push(c),
            None => {
                if in_quotes {
                    // Quoted field continues on the next physical line.
                    *idx += 1;
                    if *idx >= lines.len() {
                        return Err(CsvError::UnterminatedQuote { line: start_line });
                    }
                    cell.push('\n');
                    line = lines[*idx];
                    chars = line.chars().peekable();
                } else {
                    cells.push(cell);
                    return Ok(cells);
                }
            }
        }
    }
}

/// Infers a typed [`Value`] from a non-empty cell.
pub fn infer_value(cell: &str) -> Value {
    match cell {
        "true" => return Value::Bool(true),
        "false" => return Value::Bool(false),
        _ => {}
    }
    if let Ok(i) = cell.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(x) = cell.parse::<f64>() {
        if x.is_finite() {
            return Value::Float(x);
        }
    }
    Value::Text(cell.to_owned())
}

/// Parses a whole CSV document into entities, interning attribute names
/// into `catalog`.
///
/// # Errors
/// Structural errors with line numbers; see [`CsvError`].
pub fn parse_entities(
    text: &str,
    catalog: &mut AttributeCatalog,
) -> Result<Vec<Entity>, CsvError> {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() || lines.iter().all(|l| l.trim().is_empty()) {
        return Err(CsvError::Empty);
    }
    let mut idx = 0;
    let header = parse_record(&lines, &mut idx, 1)?;
    idx += 1;
    let has_id = header.first().is_some_and(|h| h.trim() == "id");
    let attr_start = usize::from(has_id);
    let attrs: Vec<AttrId> = header[attr_start..]
        .iter()
        .map(|name| catalog.intern(name.trim()))
        .collect();

    let mut entities = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut next_id = 0u64;
    while idx < lines.len() {
        let line_no = idx + 1;
        if lines[idx].trim().is_empty() {
            idx += 1;
            continue;
        }
        let cells = parse_record(&lines, &mut idx, line_no)?;
        idx += 1;
        if cells.len() > header.len() {
            return Err(CsvError::TooManyCells { line: line_no });
        }
        let id = if has_id {
            let raw = cells.first().map(String::as_str).unwrap_or("");
            raw.trim()
                .parse::<u64>()
                .map_err(|_| CsvError::BadId { line: line_no })?
        } else {
            let id = next_id;
            next_id += 1;
            id
        };
        if !seen.insert(id) {
            return Err(CsvError::DuplicateId { line: line_no, id });
        }
        let mut pairs = Vec::new();
        for (col, cell) in cells.iter().skip(attr_start).enumerate() {
            if cell.is_empty() {
                continue;
            }
            pairs.push((attrs[col], infer_value(cell)));
        }
        entities.push(
            Entity::new(EntityId(id), pairs).expect("header columns are distinct"),
        );
    }
    Ok(entities)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sparse_rows_with_types() {
        let text = "id,name,weight,wifi\n\
                    1,Canon S120,198,true\n\
                    2,WD4000,,\n\
                    7,,9800,false\n";
        let mut cat = AttributeCatalog::new();
        let entities = parse_entities(text, &mut cat).unwrap();
        assert_eq!(entities.len(), 3);
        assert_eq!(cat.len(), 3); // id column is not an attribute
        let name = cat.lookup("name").unwrap();
        let weight = cat.lookup("weight").unwrap();
        let wifi = cat.lookup("wifi").unwrap();

        let e1 = &entities[0];
        assert_eq!(e1.id(), EntityId(1));
        assert_eq!(e1.get(name), Some(&Value::Text("Canon S120".into())));
        assert_eq!(e1.get(weight), Some(&Value::Int(198)));
        assert_eq!(e1.get(wifi), Some(&Value::Bool(true)));

        let e2 = &entities[1];
        assert_eq!(e2.arity(), 1, "empty cells are absent attributes");
        let e3 = &entities[2];
        assert_eq!(e3.id(), EntityId(7));
        assert!(!e3.has(name));
        assert_eq!(e3.get(wifi), Some(&Value::Bool(false)));
    }

    #[test]
    fn rows_without_id_column_get_row_numbers() {
        let text = "a,b\n1,\n,2\n";
        let mut cat = AttributeCatalog::new();
        let entities = parse_entities(text, &mut cat).unwrap();
        assert_eq!(entities[0].id(), EntityId(0));
        assert_eq!(entities[1].id(), EntityId(1));
    }

    #[test]
    fn quotes_escapes_and_embedded_commas() {
        let text = "id,name,comment\n1,\"Dell, Inc.\",\"said \"\"hi\"\"\"\n";
        let mut cat = AttributeCatalog::new();
        let entities = parse_entities(text, &mut cat).unwrap();
        let name = cat.lookup("name").unwrap();
        let comment = cat.lookup("comment").unwrap();
        assert_eq!(entities[0].get(name), Some(&Value::Text("Dell, Inc.".into())));
        assert_eq!(
            entities[0].get(comment),
            Some(&Value::Text("said \"hi\"".into()))
        );
    }

    #[test]
    fn quoted_field_spanning_lines() {
        let text = "id,note\n1,\"two\nlines\"\n2,x\n";
        let mut cat = AttributeCatalog::new();
        let entities = parse_entities(text, &mut cat).unwrap();
        assert_eq!(entities.len(), 2);
        let note = cat.lookup("note").unwrap();
        assert_eq!(entities[0].get(note), Some(&Value::Text("two\nlines".into())));
    }

    #[test]
    fn short_rows_are_fine_long_rows_are_not() {
        let mut cat = AttributeCatalog::new();
        // Short row: trailing attributes absent.
        let entities = parse_entities("id,a,b\n1,5\n", &mut cat).unwrap();
        assert_eq!(entities[0].arity(), 1);
        // Long row: an error, not silent truncation.
        assert_eq!(
            parse_entities("id,a\n1,2,3\n", &mut AttributeCatalog::new()),
            Err(CsvError::TooManyCells { line: 2 })
        );
    }

    #[test]
    fn error_cases() {
        let mut cat = AttributeCatalog::new();
        assert_eq!(parse_entities("", &mut cat), Err(CsvError::Empty));
        assert_eq!(
            parse_entities("id,a\nx,1\n", &mut cat),
            Err(CsvError::BadId { line: 2 })
        );
        assert_eq!(
            parse_entities("id,a\n1,x\n1,y\n", &mut cat),
            Err(CsvError::DuplicateId { line: 3, id: 1 })
        );
        assert_eq!(
            parse_entities("id,a\n1,\"open\n", &mut cat),
            Err(CsvError::UnterminatedQuote { line: 2 })
        );
    }

    #[test]
    fn value_inference() {
        assert_eq!(infer_value("42"), Value::Int(42));
        assert_eq!(infer_value("-7"), Value::Int(-7));
        assert_eq!(infer_value("2.5"), Value::Float(2.5));
        assert_eq!(infer_value("true"), Value::Bool(true));
        assert_eq!(infer_value("True"), Value::Text("True".into()));
        assert_eq!(infer_value("4TB"), Value::Text("4TB".into()));
        assert_eq!(infer_value("NaN"), Value::Text("NaN".into()));
    }
}
