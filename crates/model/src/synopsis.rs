//! Attribute-set synopses and the paper's set operators.

use cind_bitset::{BitSetOps, FixedBitSet, FusedCounts};

use crate::AttrId;

/// The attribute-set summary of an entity, partition, or query.
///
/// §II of the paper catalogs each partition with a synopsis `p` "which lists
/// the attributes of the entities in the partition" and likewise builds an
/// entity synopsis `e` and a query synopsis `q`. All three are the same
/// structure; this type names the operators after the paper's notation so
/// the rating code in `cinderella-core` reads like §IV.
///
/// ```
/// use cind_model::Synopsis;
///
/// let e = Synopsis::from_bits(16, [0, 2, 8]); // entity attributes
/// let p = Synopsis::from_bits(16, [0, 3, 5, 8]); // partition attributes
/// assert_eq!(e.overlap(&p), 2);        // |e ∧ p|
/// assert_eq!(p.only_in_self(&e), 2);   // |¬e ∧ p|
/// assert_eq!(e.only_in_self(&p), 1);   // |e ∧ ¬p|
/// assert_eq!(e.union_count(&p), 5);    // |e ∨ p|
/// assert_eq!(e.diff(&p), 3);           // |e ⊕ p| (split-starter DIFF)
/// assert!(!e.is_disjoint(&p));         // would NOT be pruned
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Synopsis {
    bits: FixedBitSet,
}

impl Synopsis {
    /// Empty synopsis over a universe of `universe` attributes.
    pub fn empty(universe: usize) -> Self {
        Self { bits: FixedBitSet::new(universe) }
    }

    /// Synopsis from bit indices.
    pub fn from_bits(universe: usize, bits: impl IntoIterator<Item = u32>) -> Self {
        Self { bits: FixedBitSet::from_iter(universe, bits) }
    }

    /// Synopsis from attribute ids.
    pub fn from_attrs(universe: usize, attrs: impl IntoIterator<Item = AttrId>) -> Self {
        Self::from_bits(universe, attrs.into_iter().map(AttrId::index))
    }

    /// The underlying bitset.
    pub fn bits(&self) -> &FixedBitSet {
        &self.bits
    }

    /// Mutable access to the underlying bitset.
    pub fn bits_mut(&mut self) -> &mut FixedBitSet {
        &mut self.bits
    }

    /// Number of attributes in the synopsis, `|s|`.
    pub fn cardinality(&self) -> u32 {
        self.bits.count()
    }

    /// Whether the synopsis is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// `|self ∧ other|` — shared attributes. The homogeneity count `|e ∧ p|`
    /// and the pruning test's `|p ∧ q|`.
    pub fn overlap(&self, other: &Self) -> u32 {
        self.bits.and_count(&other.bits)
    }

    /// `|self ∧ ¬other|` — attributes this synopsis has that `other` lacks.
    ///
    /// With `self = e`, `other = p` this is `|e ∧ ¬p|` (partition
    /// heterogeneity count); swapped, it is `|¬e ∧ p|` (entity heterogeneity
    /// count).
    pub fn only_in_self(&self, other: &Self) -> u32 {
        self.bits.andnot_count(&other.bits)
    }

    /// `|self ∨ other|` — the union cardinality used to normalise the global
    /// rating.
    pub fn union_count(&self, other: &Self) -> u32 {
        self.bits.or_count(&other.bits)
    }

    /// All four rating cardinalities — `|self ∧ other|`, `|self ∨ other|`,
    /// `|self|`, `|other|` — from one fused word pass. A full §IV rating
    /// needs exactly these counts, so this is the one bitset call on the
    /// insert hot path.
    pub fn fused(&self, other: &Self) -> FusedCounts {
        self.bits.fused_counts(&other.bits)
    }

    /// `|self ⊕ other|` — the paper's `DIFF` for split-starter maintenance.
    pub fn diff(&self, other: &Self) -> u32 {
        self.bits.xor_count(&other.bits)
    }

    /// Whether `|self ∧ other| = 0` — a query prunes a partition when their
    /// synopses are disjoint.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.bits.is_disjoint(&other.bits)
    }

    /// Whether every attribute of `self` also appears in `other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.bits.is_subset(&other.bits)
    }

    /// Folds `other` into `self` (`self ∨= other`) — partition synopsis
    /// maintenance on insert.
    pub fn merge(&mut self, other: &Self) {
        self.bits.union_with(&other.bits);
    }

    /// Adds a single attribute.
    pub fn add(&mut self, attr: AttrId) -> bool {
        self.bits.insert(attr.index())
    }

    /// Whether the synopsis contains `attr`.
    pub fn contains(&self, attr: AttrId) -> bool {
        self.bits.contains(attr.index())
    }

    /// Iterates the attribute ids in the synopsis, ascending.
    pub fn iter(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.bits.iter_ones().map(AttrId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syn(bits: &[u32]) -> Synopsis {
        Synopsis::from_bits(64, bits.iter().copied())
    }

    #[test]
    fn operators_match_paper_notation() {
        // e = {name, screen, weight}; p = {name, weight, storage, tuner}
        let e = syn(&[0, 2, 8]);
        let p = syn(&[0, 8, 3, 5]);
        assert_eq!(e.overlap(&p), 2); // |e ∧ p|
        assert_eq!(e.only_in_self(&p), 1); // |e ∧ ¬p|
        assert_eq!(p.only_in_self(&e), 2); // |¬e ∧ p|
        assert_eq!(e.union_count(&p), 5); // |e ∨ p|
        assert_eq!(e.diff(&p), 3); // |e ⊕ p|
        assert!(!e.is_disjoint(&p));
        assert!(e.is_disjoint(&syn(&[1, 4])));
    }

    #[test]
    fn merge_is_union() {
        let mut p = syn(&[0, 1]);
        p.merge(&syn(&[1, 9]));
        let got: Vec<u32> = p.iter().map(|a| a.0).collect();
        assert_eq!(got, vec![0, 1, 9]);
        assert_eq!(p.cardinality(), 3);
    }

    #[test]
    fn add_contains_subset() {
        let mut s = Synopsis::empty(16);
        assert!(s.is_empty());
        assert!(s.add(AttrId(3)));
        assert!(!s.add(AttrId(3)));
        assert!(s.contains(AttrId(3)));
        assert!(s.is_subset(&syn(&[3, 4])));
        assert!(!syn(&[3, 4]).is_subset(&s));
    }

    #[test]
    fn fused_matches_the_separate_operators() {
        let e = syn(&[0, 2, 8]);
        let p = syn(&[0, 8, 3, 5]);
        let c = e.fused(&p);
        assert_eq!(c.and, e.overlap(&p));
        assert_eq!(c.or, e.union_count(&p));
        assert_eq!(c.left, e.cardinality());
        assert_eq!(c.right, p.cardinality());
    }

    #[test]
    fn from_attrs_equals_from_bits() {
        let a = Synopsis::from_attrs(16, [AttrId(1), AttrId(5)]);
        let b = Synopsis::from_bits(16, [1, 5]);
        assert_eq!(a, b);
    }
}
