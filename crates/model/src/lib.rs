//! Data model for irregularly structured universal tables.
//!
//! A *universal table* (paper §I–II) centralises a heterogeneous set of
//! entities under one very wide, very sparse schema. This crate defines the
//! vocabulary every other crate speaks:
//!
//! * [`AttrId`] / [`AttributeCatalog`] — the interned attribute dictionary of
//!   a table. Attribute names are interned once; everything downstream
//!   (synopses, records, queries) works with dense `u32` ids.
//! * [`Value`] — a dynamically typed attribute value.
//! * [`Entity`] — an entity: an id plus its instantiated `(AttrId, Value)`
//!   pairs. Absent attributes are simply not present (no NULL storage).
//! * [`Synopsis`] — the attribute-set summary of an entity or partition,
//!   exposing exactly the count operators the paper's rating needs.
//! * [`SizeModel`] — the pluggable `SIZE()` function of Definition 1:
//!   logical cells or serialized bytes.
//! * [`schema`] — descriptions of *regular* relational schemas, used by the
//!   TPC-H experiment (Table I) where Cinderella must rediscover the schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribute;
mod entity;
mod error;
pub mod schema;
mod size;
mod synopsis;
mod value;

pub use attribute::{AttrId, AttributeCatalog};
pub use entity::{Entity, EntityId};
pub use error::ModelError;
pub use size::SizeModel;
pub use synopsis::Synopsis;
pub use value::Value;
