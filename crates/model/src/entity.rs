//! Entities of a universal table.

use crate::{AttrId, ModelError, Synopsis, Value};

/// Unique identifier of an entity within one universal table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EntityId(pub u64);

impl std::fmt::Display for EntityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An entity: an id plus its instantiated attributes.
///
/// Attributes are kept sorted by [`AttrId`] and unique; absent attributes are
/// simply not stored (the sparse universal-table representation of Beckmann
/// et al. that the paper builds on). The paper's entity synopsis `s_e` is
/// derived from the attribute set via [`Entity::synopsis`].
#[derive(Clone, PartialEq, Debug)]
pub struct Entity {
    id: EntityId,
    attrs: Vec<(AttrId, Value)>,
}

impl Entity {
    /// Creates an entity from unsorted attribute/value pairs.
    ///
    /// # Errors
    /// Returns [`ModelError::DuplicateEntityAttribute`] if an attribute
    /// appears twice.
    pub fn new(
        id: EntityId,
        attrs: impl IntoIterator<Item = (AttrId, Value)>,
    ) -> Result<Self, ModelError> {
        let mut attrs: Vec<(AttrId, Value)> = attrs.into_iter().collect();
        attrs.sort_by_key(|(a, _)| *a);
        for w in attrs.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(ModelError::DuplicateEntityAttribute { entity: id, attr: w[0].0 });
            }
        }
        Ok(Self { id, attrs })
    }

    /// Creates an entity with no attributes.
    pub fn empty(id: EntityId) -> Self {
        Self { id, attrs: Vec::new() }
    }

    /// The entity id.
    pub fn id(&self) -> EntityId {
        self.id
    }

    /// The instantiated attributes, sorted by id.
    pub fn attrs(&self) -> &[(AttrId, Value)] {
        &self.attrs
    }

    /// Number of instantiated attributes — the entity's size in *cells*.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The value of `attr`, if instantiated.
    pub fn get(&self, attr: AttrId) -> Option<&Value> {
        self.attrs
            .binary_search_by_key(&attr, |(a, _)| *a)
            .ok()
            .map(|i| &self.attrs[i].1)
    }

    /// Whether `attr` is instantiated.
    pub fn has(&self, attr: AttrId) -> bool {
        self.get(attr).is_some()
    }

    /// Sets `attr` to `value`, replacing an existing value. Returns the old
    /// value if there was one.
    pub fn set(&mut self, attr: AttrId, value: Value) -> Option<Value> {
        match self.attrs.binary_search_by_key(&attr, |(a, _)| *a) {
            Ok(i) => Some(std::mem::replace(&mut self.attrs[i].1, value)),
            Err(i) => {
                self.attrs.insert(i, (attr, value));
                None
            }
        }
    }

    /// Removes `attr`, returning its value if it was instantiated.
    pub fn unset(&mut self, attr: AttrId) -> Option<Value> {
        match self.attrs.binary_search_by_key(&attr, |(a, _)| *a) {
            Ok(i) => Some(self.attrs.remove(i).1),
            Err(_) => None,
        }
    }

    /// Sum of serialized value payload lengths — the entity's size in bytes
    /// (modulo per-record framing, which storage accounts separately).
    pub fn payload_bytes(&self) -> usize {
        self.attrs.iter().map(|(_, v)| v.payload_len()).sum()
    }

    /// Builds the entity synopsis `s_e` over a universe of `universe`
    /// attributes.
    ///
    /// # Panics
    /// Panics if an attribute id is outside the universe (a catalog bug).
    pub fn synopsis(&self, universe: usize) -> Synopsis {
        Synopsis::from_bits(universe, self.attrs.iter().map(|(a, _)| a.index()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u64, attrs: &[(u32, i64)]) -> Entity {
        Entity::new(
            EntityId(id),
            attrs.iter().map(|&(a, v)| (AttrId(a), Value::Int(v))),
        )
        .unwrap()
    }

    #[test]
    fn new_sorts_attributes() {
        let ent = e(1, &[(5, 50), (1, 10), (3, 30)]);
        let ids: Vec<u32> = ent.attrs().iter().map(|(a, _)| a.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        assert_eq!(ent.arity(), 3);
    }

    #[test]
    fn new_rejects_duplicates() {
        let r = Entity::new(
            EntityId(1),
            [(AttrId(2), Value::Int(1)), (AttrId(2), Value::Int(2))],
        );
        assert!(matches!(
            r,
            Err(ModelError::DuplicateEntityAttribute { attr: AttrId(2), .. })
        ));
    }

    #[test]
    fn get_set_unset() {
        let mut ent = e(1, &[(1, 10), (3, 30)]);
        assert_eq!(ent.get(AttrId(1)), Some(&Value::Int(10)));
        assert_eq!(ent.get(AttrId(2)), None);
        assert!(ent.has(AttrId(3)));

        assert_eq!(ent.set(AttrId(1), Value::Int(11)), Some(Value::Int(10)));
        assert_eq!(ent.set(AttrId(2), Value::Int(20)), None);
        let ids: Vec<u32> = ent.attrs().iter().map(|(a, _)| a.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);

        assert_eq!(ent.unset(AttrId(2)), Some(Value::Int(20)));
        assert_eq!(ent.unset(AttrId(2)), None);
        assert_eq!(ent.arity(), 2);
    }

    #[test]
    fn payload_bytes_sums_values() {
        let ent = Entity::new(
            EntityId(9),
            [
                (AttrId(0), Value::Text("abcd".into())),
                (AttrId(1), Value::Int(1)),
                (AttrId(2), Value::Bool(true)),
            ],
        )
        .unwrap();
        assert_eq!(ent.payload_bytes(), 4 + 8 + 1);
    }

    #[test]
    fn synopsis_reflects_attr_set() {
        use cind_bitset::BitSetOps;
        let ent = e(1, &[(0, 1), (7, 2)]);
        let s = ent.synopsis(10);
        assert_eq!(s.cardinality(), 2);
        assert!(s.bits().contains(0));
        assert!(s.bits().contains(7));
        assert!(!s.bits().contains(1));
    }

    #[test]
    fn empty_entity() {
        let ent = Entity::empty(EntityId(4));
        assert_eq!(ent.arity(), 0);
        assert_eq!(ent.payload_bytes(), 0);
        assert_eq!(ent.synopsis(8).cardinality(), 0);
    }
}
