//! Descriptions of regular relational schemas.
//!
//! The Table I experiment loads perfectly *regular* data (TPC-H) into a
//! Cinderella-partitioned universal table and checks that the discovered
//! partitions coincide with the original relations. This module describes
//! such relations so the generator (`cind-datagen::tpch`) and the schema
//! recovery check (`tests/tpch_recovery.rs`) share one source of truth.

use crate::{AttrId, AttributeCatalog, Synopsis};

/// The value domain of a regular column, used by generators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ColumnKind {
    /// Synthetic integer key or quantity.
    Int,
    /// Synthetic decimal (price, discount, …), generated as a float.
    Float,
    /// Synthetic short text (names, comments, flags, dates-as-text).
    Text,
}

/// One column of a regular relation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Column {
    /// Column name, unique across the whole schema (TPC-H column names carry
    /// a relation prefix, e.g. `l_orderkey`).
    pub name: String,
    /// Value domain.
    pub kind: ColumnKind,
}

/// A regular relation: a name and an ordered column list.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelationSchema {
    /// Relation name (e.g. `lineitem`).
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
}

impl RelationSchema {
    /// Builds a relation schema from `(name, kind)` pairs.
    pub fn new<S: Into<String>>(
        name: impl Into<String>,
        columns: impl IntoIterator<Item = (S, ColumnKind)>,
    ) -> Self {
        Self {
            name: name.into(),
            columns: columns
                .into_iter()
                .map(|(n, kind)| Column { name: n.into(), kind })
                .collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Interns every column into `catalog` and returns the ids in column
    /// order.
    pub fn intern_into(&self, catalog: &mut AttributeCatalog) -> Vec<AttrId> {
        self.columns.iter().map(|c| catalog.intern(&c.name)).collect()
    }

    /// The synopsis an entity of this relation has, given a catalog that
    /// already knows all columns.
    ///
    /// # Panics
    /// Panics if a column is missing from the catalog.
    pub fn synopsis(&self, catalog: &AttributeCatalog) -> Synopsis {
        Synopsis::from_attrs(
            catalog.len(),
            self.columns.iter().map(|c| {
                catalog
                    .lookup(&c.name)
                    .unwrap_or_else(|| panic!("column {} not in catalog", c.name))
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> RelationSchema {
        RelationSchema::new(
            "nation",
            [
                ("n_nationkey", ColumnKind::Int),
                ("n_name", ColumnKind::Text),
                ("n_regionkey", ColumnKind::Int),
                ("n_comment", ColumnKind::Text),
            ],
        )
    }

    #[test]
    fn arity_and_columns() {
        let r = rel();
        assert_eq!(r.arity(), 4);
        assert_eq!(r.columns[1].name, "n_name");
        assert_eq!(r.columns[0].kind, ColumnKind::Int);
    }

    #[test]
    fn intern_and_synopsis() {
        let r = rel();
        let mut cat = AttributeCatalog::new();
        cat.intern("unrelated");
        let ids = r.intern_into(&mut cat);
        assert_eq!(ids.len(), 4);
        assert_eq!(cat.len(), 5);
        let s = r.synopsis(&cat);
        assert_eq!(s.cardinality(), 4);
        assert!(!s.contains(cat.lookup("unrelated").unwrap()));
        assert!(s.contains(cat.lookup("n_comment").unwrap()));
    }

    #[test]
    #[should_panic(expected = "not in catalog")]
    fn synopsis_panics_on_unknown_column() {
        let r = rel();
        let cat = AttributeCatalog::new();
        let _ = r.synopsis(&cat);
    }
}
