//! Dynamically typed attribute values.

/// A value instantiated for one attribute of one entity.
///
/// The universal table is schemaless per attribute: the same attribute may
/// hold text for one entity and a number for another (DBpedia does exactly
/// this). Values therefore carry their own type tag.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// Boolean flag.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
}

impl Value {
    /// Serialized payload size in bytes (type tag excluded). This feeds the
    /// byte-based [`SizeModel`](crate::SizeModel).
    pub fn payload_len(&self) -> usize {
        match self {
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Text(s) => s.len(),
        }
    }

    /// A short type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Text(_) => "text",
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_lengths() {
        assert_eq!(Value::Bool(true).payload_len(), 1);
        assert_eq!(Value::Int(5).payload_len(), 8);
        assert_eq!(Value::Float(1.5).payload_len(), 8);
        assert_eq!(Value::Text("abc".into()).payload_len(), 3);
        assert_eq!(Value::Text(String::new()).payload_len(), 0);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from("x"), Value::Text("x".into()));
        assert_eq!(Value::from(String::from("y")), Value::Text("y".into()));
    }

    #[test]
    fn display_and_type_name() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Text("hi".into()).to_string(), "hi");
        assert_eq!(Value::Float(1.5).type_name(), "float");
    }
}
