//! Attribute identifiers and the interning catalog.

use crate::ModelError;
use std::collections::HashMap;

/// A dense identifier for an attribute of a universal table.
///
/// Ids are handed out contiguously from 0 by [`AttributeCatalog`], so they
/// double as bit positions in synopsis bitsets and as column indices in
/// reports.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The id as a bitset index.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for AttrId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Bidirectional attribute-name dictionary of one universal table.
///
/// The catalog is append-only: attributes are never removed (an attribute
/// that no entity instantiates simply never matches a synopsis). This
/// mirrors the paper's setup where the universal table's attribute set only
/// grows as new kinds of entities appear.
#[derive(Clone, Default, Debug)]
pub struct AttributeCatalog {
    names: Vec<String>,
    by_name: HashMap<String, AttrId>,
}

impl AttributeCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a catalog pre-populated with `names`, in order.
    ///
    /// # Errors
    /// Returns [`ModelError::DuplicateAttribute`] on a repeated name.
    pub fn from_names<S: Into<String>>(
        names: impl IntoIterator<Item = S>,
    ) -> Result<Self, ModelError> {
        let mut c = Self::new();
        for n in names {
            let n = n.into();
            if c.lookup(&n).is_some() {
                return Err(ModelError::DuplicateAttribute(n));
            }
            c.intern(&n);
        }
        Ok(c)
    }

    /// Returns the id for `name`, interning it if unseen.
    pub fn intern(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = AttrId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Returns the id for `name` if already interned.
    pub fn lookup(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of `id`, or `None` for a foreign id.
    pub fn name(&self, id: AttrId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of attributes in the catalog — the synopsis universe size.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no attribute has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (AttrId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut c = AttributeCatalog::new();
        let a = c.intern("name");
        let b = c.intern("weight");
        assert_eq!(a, AttrId(0));
        assert_eq!(b, AttrId(1));
        assert_eq!(c.intern("name"), a);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lookup_and_name_roundtrip() {
        let mut c = AttributeCatalog::new();
        let id = c.intern("aperture");
        assert_eq!(c.lookup("aperture"), Some(id));
        assert_eq!(c.lookup("tuner"), None);
        assert_eq!(c.name(id), Some("aperture"));
        assert_eq!(c.name(AttrId(99)), None);
    }

    #[test]
    fn from_names_rejects_duplicates() {
        assert!(AttributeCatalog::from_names(["a", "b", "a"]).is_err());
        let c = AttributeCatalog::from_names(["a", "b"]).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup("b"), Some(AttrId(1)));
    }

    #[test]
    fn iter_in_id_order() {
        let c = AttributeCatalog::from_names(["x", "y", "z"]).unwrap();
        let v: Vec<_> = c.iter().map(|(id, n)| (id.0, n.to_owned())).collect();
        assert_eq!(
            v,
            vec![(0, "x".into()), (1, "y".into()), (2, "z".into())]
        );
    }

    #[test]
    fn display_attr_id() {
        assert_eq!(AttrId(7).to_string(), "a7");
    }
}
