//! The paper's `SIZE()` function.

use crate::Entity;

/// How `SIZE(e)` and `SIZE(p)` are measured (Definition 1).
///
/// The paper defines `SIZE()` as "how much has to be read to scan the entity
/// or all entities in a partition". Two natural instantiations:
///
/// * [`SizeModel::Cells`] — the number of instantiated attributes. This is
///   the logical reading cost in an interpreted sparse format and the model
///   used throughout the evaluation (partition size limits `B` are given in
///   *entities*, and the capacity check then degenerates to an entity count,
///   see `cinderella-core::Capacity`).
/// * [`SizeModel::Bytes`] — the serialized payload size, for byte-budgeted
///   partitions (e.g. when a partition is a NUMA-local memory region).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SizeModel {
    /// `SIZE(e)` = number of instantiated attributes (cells).
    #[default]
    Cells,
    /// `SIZE(e)` = serialized value payload in bytes.
    Bytes,
}

impl SizeModel {
    /// `SIZE(e)` for one entity under this model.
    pub fn entity_size(&self, e: &Entity) -> u64 {
        match self {
            SizeModel::Cells => e.arity() as u64,
            SizeModel::Bytes => e.payload_bytes() as u64,
        }
    }
}

impl std::str::FromStr for SizeModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cells" => Ok(Self::Cells),
            "bytes" => Ok(Self::Bytes),
            other => Err(format!("bad size model {other:?}; use cells|bytes")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrId, EntityId, Value};

    #[test]
    fn size_model_parses() {
        assert_eq!("cells".parse::<SizeModel>().unwrap(), SizeModel::Cells);
        assert_eq!("bytes".parse::<SizeModel>().unwrap(), SizeModel::Bytes);
        assert!("Cells".parse::<SizeModel>().is_err());
    }

    #[test]
    fn cells_counts_attributes() {
        let e = Entity::new(
            EntityId(1),
            [
                (AttrId(0), Value::Text("abcdef".into())),
                (AttrId(1), Value::Int(1)),
            ],
        )
        .unwrap();
        assert_eq!(SizeModel::Cells.entity_size(&e), 2);
        assert_eq!(SizeModel::Bytes.entity_size(&e), 6 + 8);
    }

    #[test]
    fn empty_entity_has_zero_size() {
        let e = Entity::empty(EntityId(1));
        assert_eq!(SizeModel::Cells.entity_size(&e), 0);
        assert_eq!(SizeModel::Bytes.entity_size(&e), 0);
    }
}
