//! Model-layer errors.

use crate::{AttrId, EntityId};

/// Errors produced when constructing model objects.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ModelError {
    /// An attribute name was registered twice in a catalog.
    DuplicateAttribute(String),
    /// An entity was built with the same attribute instantiated twice.
    DuplicateEntityAttribute {
        /// The offending entity.
        entity: EntityId,
        /// The attribute that appeared twice.
        attr: AttrId,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::DuplicateAttribute(name) => {
                write!(f, "attribute {name:?} registered twice in catalog")
            }
            ModelError::DuplicateEntityAttribute { entity, attr } => {
                write!(f, "entity {entity} instantiates attribute {attr} twice")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::DuplicateAttribute("name".into());
        assert!(e.to_string().contains("name"));
        let e = ModelError::DuplicateEntityAttribute { entity: EntityId(3), attr: AttrId(7) };
        assert!(e.to_string().contains("e3"));
        assert!(e.to_string().contains("a7"));
    }
}
