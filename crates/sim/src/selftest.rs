//! Harness self-test: prove the simulator can actually catch a defect.
//!
//! A checker that never fires is indistinguishable from a checker that
//! works. This module injects single-byte bit-rot into one shard's WAL of
//! a *sharded* store holding committed entries and classifies what
//! recovery does with it:
//!
//! * **loud** — recovery refuses the log (checksum or decode failure);
//! * **clean** — recovery succeeds and the store still equals the oracle
//!   (the flipped byte landed somewhere immaterial, e.g. inside the stored
//!   checksum of an entry whose body still decodes — only possible when
//!   verification is off — or the corruption was classified as a torn
//!   tail carrying no committed data);
//! * **silent** — recovery succeeds but the store *diverges* from the
//!   oracle: corruption slipped through.
//!
//! A correct build must never be silent: every flipped byte is either
//! rejected or provably immaterial. The `sim-defect` feature deliberately
//! disables WAL body checksum verification in `cind-storage`; under that
//! build this same sweep must find at least one silent corruption within a
//! bounded seed budget — demonstrating the oracle end of the harness does
//! the catching, not just the checksums. Running it against the sharded
//! layout also pins the layout itself: the corrupted WAL lives at
//! `shard-NNNN/wal.log`, and only that crash domain's entries are at risk.

use std::path::Path;
use std::sync::Arc;

use cind_model::Value;
use cind_server::{shard_dir_name, ShardRouter, ShardedEngine};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::clock::VirtualClock;
use crate::harness::{content_diff, shard_vfs_seed, sim_sharded_options, STORE_DIR};
use crate::oracle::Oracle;
use crate::vfs::{FaultPlan, SimVfs};

/// Entities loaded before corrupting the log.
const LOAD: u64 = 40;

/// Crash domains in the self-test store: enough to prove the sharded
/// layout while keeping each WAL well-populated.
const SHARDS: usize = 2;

/// Classification counts over a seed sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct SelfTestReport {
    /// Seeds where recovery rejected the corrupted log.
    pub loud: u64,
    /// Seeds where the flip was immaterial (store still equals oracle).
    pub clean: u64,
    /// Seeds where corruption slipped through undetected by recovery —
    /// caught only by the oracle comparison.
    pub silent: u64,
    /// First seed that produced a silent corruption, for reproduction.
    pub first_silent: Option<u64>,
}

/// End of the first WAL frame (`varint(len) + len + 8`-byte checksum) —
/// the epoch header, which corruption must skip: damaging it makes the
/// whole log stale/legacy rather than corrupt, a different (already
/// tested) path.
fn first_frame_end(bytes: &[u8]) -> Option<usize> {
    let mut len: usize = 0;
    let mut shift = 0;
    let mut pos = 0;
    loop {
        let b = *bytes.get(pos)?;
        pos += 1;
        len |= usize::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 28 {
            return None;
        }
    }
    let end = pos + len + 8;
    (end <= bytes.len()).then_some(end)
}

/// Runs the bit-rot sweep over `seeds` seeds.
///
/// # Errors
/// Setup failures (the store could not even be built) — not corruption
/// outcomes, which are counted in the report.
pub fn self_test(seeds: u64) -> Result<SelfTestReport, String> {
    let mut report = SelfTestReport::default();
    for seed in 0..seeds {
        match one_seed(seed)? {
            Outcome::Loud => report.loud += 1,
            Outcome::Clean => report.clean += 1,
            Outcome::Silent => {
                report.silent += 1;
                report.first_silent.get_or_insert(seed);
            }
        }
    }
    Ok(report)
}

enum Outcome {
    Loud,
    Clean,
    Silent,
}

fn one_seed(seed: u64) -> Result<Outcome, String> {
    let clock = Arc::new(VirtualClock::new());
    let vfss: Vec<Arc<SimVfs>> = (0..SHARDS)
        .map(|i| {
            Arc::new(SimVfs::new(shard_vfs_seed(seed, i), FaultPlan::none(), Arc::clone(&clock)))
        })
        .collect();
    let meta_vfs =
        Arc::new(SimVfs::new(seed ^ 0x4D45_5441_4D45_5441, FaultPlan::none(), Arc::clone(&clock)));
    let opts = || sim_sharded_options(&meta_vfs, &vfss, cinderella_core::IndexTier::Exact);
    let engine = ShardedEngine::open(Path::new(STORE_DIR), opts())
        .map_err(|e| format!("seed {seed}: initial open failed: {e}"))?;

    // Corrupt the busier shard's WAL so there are always committed entries
    // past the epoch header. Routing depends only on the (fixed) id range,
    // so the victim is the same for every seed.
    let router = ShardRouter::new(SHARDS);
    let mut per_shard = [0u64; SHARDS];
    for id in 1..=LOAD {
        per_shard[router.route(id)] += 1;
    }
    let victim = per_shard
        .iter()
        .enumerate()
        .max_by_key(|(_, &n)| n)
        .map_or(0, |(s, _)| s);
    let victim_total = per_shard[victim];
    let wal_path = Path::new(STORE_DIR).join(shard_dir_name(victim)).join("wal.log");

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E1F_7E57_5E1F_7E57);
    let mut oracle = Oracle::new();
    let mut mid_len = 0usize;
    let mut victim_seen = 0u64;
    for id in 1..=LOAD {
        let arity = rng.gen_range(1usize..=5);
        let group = rng.gen_range(0u32..4);
        let attrs: Vec<(String, Value)> = (0..arity)
            .map(|i| {
                (format!("g{group}_a{i}"), Value::Int(rng.gen_range(-1000i64..1000)))
            })
            .collect();
        engine
            .insert(&cind_server::WireEntity { id, attrs: attrs.clone() })
            .map_err(|e| format!("seed {seed}: load insert {id} failed: {e}"))?;
        oracle
            .insert(id, &attrs)
            .map_err(|e| format!("seed {seed}: oracle insert {id} failed: {e:?}"))?;
        if router.route(id) == victim {
            victim_seen += 1;
            if victim_seen == victim_total / 2 {
                mid_len = vfss[victim].file_len(&wal_path).unwrap_or(0);
            }
        }
    }
    // Kill without checkpoint: the entries live only in the per-shard WALs.
    drop(engine);

    let bytes = vfss[victim]
        .file_bytes(&wal_path)
        .ok_or_else(|| format!("seed {seed}: no WAL file for shard {victim}"))?;
    let lo = first_frame_end(&bytes)
        .ok_or_else(|| format!("seed {seed}: cannot frame the WAL head"))?;
    if mid_len <= lo {
        return Err(format!("seed {seed}: WAL too short to corrupt ({mid_len} <= {lo})"));
    }
    // Flip one byte strictly inside the committed region — entries follow
    // it, so this is never a torn tail.
    let offset = rng.gen_range(lo..mid_len);
    let mask = rng.gen_range(1u32..=255) as u8;
    if !vfss[victim].corrupt_byte(&wal_path, offset, mask) {
        return Err(format!("seed {seed}: corrupt_byte({offset}) out of range"));
    }

    match ShardedEngine::open(Path::new(STORE_DIR), opts()) {
        Err(_) => Ok(Outcome::Loud),
        Ok(engine) => match content_diff(&engine, &oracle) {
            Some(_) => Ok(Outcome::Silent),
            None => Ok(Outcome::Clean),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The build-appropriate assertion: a correct build never lets
    /// corruption through silently; the `sim-defect` build (checksum
    /// verification off) must produce at least one silent corruption the
    /// oracle catches — proving the harness detects what the checksums
    /// normally hide, even under the sharded on-disk layout.
    #[test]
    fn bit_rot_is_never_silent_unless_the_defect_is_compiled_in() {
        let budget = if cfg!(feature = "sim-defect") { 24 } else { 12 };
        let report = self_test(budget).expect("self-test setup");
        if cfg!(feature = "sim-defect") {
            assert!(
                report.silent >= 1,
                "sim-defect build: oracle caught no silent corruption in \
                 {budget} seeds ({report:?})"
            );
        } else {
            assert_eq!(
                report.silent, 0,
                "correct build let corruption through silently ({report:?})"
            );
        }
    }
}
