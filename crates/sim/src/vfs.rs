//! The deterministic fault-injecting filesystem backend.
//!
//! [`SimVfs`] implements [`cind_storage::Vfs`] over an in-memory file map,
//! driven by a seeded PRNG. It injects the fault classes a real disk can
//! produce — torn writes (a crash truncates the write at any byte, with
//! optional garbage after the cut), short reads, out-of-space failures,
//! failed fsyncs — plus virtual per-op latency, and supports *crash-points*:
//! arm a countdown and the k-th subsequent mutating operation (write,
//! create, rename, sync) dies mid-effect, after which every operation
//! fails until the harness "reboots" by clearing the crash and reopening
//! the engine. All randomness flows from one seed, so a failing schedule
//! replays byte-for-byte.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{Error, ErrorKind, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use cind_storage::vfs::{Vfs, VfsFile};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::clock::VirtualClock;

/// Which faults fire, and how often. Probabilities are per-mille per
/// opportunity (a write, a read-open, a sync).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Crashed writes may leave garbage bytes after the cut point
    /// (a "dirty" tear), not just a clean prefix.
    pub torn_write: bool,
    /// Per-mille chance a read delivers a prefix then fails (transient —
    /// the retry draws fresh randomness).
    pub short_read_permille: u32,
    /// Per-mille chance a write fails with `StorageFull`, writing nothing.
    pub enospc_permille: u32,
    /// Per-mille chance a sync fails (data already written is kept).
    pub fsync_fail_permille: u32,
    /// Charge random virtual nanoseconds per operation.
    pub latency: bool,
}

impl FaultPlan {
    /// No faults: the VFS behaves like a perfect disk (crash-points still
    /// work — they are armed explicitly, not drawn).
    #[must_use]
    pub fn none() -> Self {
        Self {
            torn_write: false,
            short_read_permille: 0,
            enospc_permille: 0,
            fsync_fail_permille: 0,
            latency: false,
        }
    }

    /// No random faults, but crashed writes tear dirty (prefix + garbage)
    /// — the crash-sweep's plan, where the armed crash is the experiment.
    #[must_use]
    pub fn crash_only() -> Self {
        Self { torn_write: true, ..Self::none() }
    }

    /// Every fault class enabled at its default rate.
    #[must_use]
    pub fn all() -> Self {
        Self {
            torn_write: true,
            short_read_permille: 15,
            enospc_permille: 5,
            fsync_fail_permille: 5,
            latency: true,
        }
    }
}

struct VfsState {
    files: BTreeMap<PathBuf, Vec<u8>>,
    dirs: BTreeSet<PathBuf>,
    rng: StdRng,
    plan: FaultPlan,
    /// While set, no random faults fire (crash recovery escape hatch —
    /// armed crash-points are unaffected).
    suppress: bool,
    /// Mutations remaining until the armed crash fires (`Some(0)` = the
    /// next mutation crashes).
    crash_in: Option<u64>,
    crashed: bool,
    mutations: u64,
}

fn crash_err() -> Error {
    Error::other("simulated crash")
}

impl VfsState {
    /// Gate every mutating operation: fail if already crashed, count the
    /// mutation, and report whether the armed crash fires *on this op*.
    fn begin_mutation(&mut self) -> std::io::Result<bool> {
        if self.crashed {
            return Err(crash_err());
        }
        self.mutations += 1;
        if let Some(k) = self.crash_in {
            if k == 0 {
                self.crash_in = None;
                self.crashed = true;
                return Ok(true);
            }
            self.crash_in = Some(k - 1);
        }
        Ok(false)
    }

    fn roll(&mut self, permille: u32) -> bool {
        !self.suppress && permille > 0 && self.rng.gen_range(0u32..1000) < permille
    }
}

/// The fault backend. The engine holds it as its `Arc<dyn Vfs>` while the
/// harness keeps a concrete handle for the control surface (`arm_crash`,
/// `crashed`, `corrupt_byte`, …); write handles share the same state.
pub struct SimVfs {
    state: Arc<Mutex<VfsState>>,
    clock: Arc<VirtualClock>,
}

impl SimVfs {
    /// A fresh empty filesystem with its own PRNG stream.
    #[must_use]
    pub fn new(seed: u64, plan: FaultPlan, clock: Arc<VirtualClock>) -> Self {
        Self {
            state: Arc::new(Mutex::new(VfsState {
                files: BTreeMap::new(),
                dirs: BTreeSet::new(),
                rng: StdRng::seed_from_u64(seed),
                plan,
                suppress: false,
                crash_in: None,
                crashed: false,
                mutations: 0,
            })),
            clock,
        }
    }

    fn st(&self) -> MutexGuard<'_, VfsState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn tick(&self, g: &mut VfsState) {
        if g.plan.latency && !g.suppress {
            let ns = g.rng.gen_range(500u64..20_000);
            self.clock.advance(ns);
        }
    }

    /// Replaces the fault plan.
    pub fn set_plan(&self, plan: FaultPlan) {
        self.st().plan = plan;
    }

    /// While `true`, random faults are suppressed (recovery escape hatch).
    pub fn set_suppress(&self, on: bool) {
        self.st().suppress = on;
    }

    /// Arms a crash-point: the `k`-th mutating operation from now
    /// (0 = the very next one) dies mid-effect.
    pub fn arm_crash(&self, k: u64) {
        self.st().crash_in = Some(k);
    }

    /// Whether the armed crash has fired (every operation now fails).
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.st().crashed
    }

    /// Whether a crash-point is armed but has not fired yet.
    #[must_use]
    pub fn crash_armed(&self) -> bool {
        self.st().crash_in.is_some()
    }

    /// "Reboots" the filesystem: clears the crashed flag and any armed
    /// countdown. File contents (including torn tails) are kept — that is
    /// the disk the restarted engine recovers from.
    pub fn clear_crash(&self) {
        let mut g = self.st();
        g.crashed = false;
        g.crash_in = None;
    }

    /// Total mutating operations performed so far (the crash-sweep uses
    /// this to enumerate every crash-point of a schedule).
    #[must_use]
    pub fn mutation_count(&self) -> u64 {
        self.st().mutations
    }

    /// Current size of `path`, if it exists.
    #[must_use]
    pub fn file_len(&self, path: &Path) -> Option<usize> {
        self.st().files.get(path).map(Vec::len)
    }

    /// A copy of `path`'s bytes, if it exists.
    #[must_use]
    pub fn file_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        self.st().files.get(path).cloned()
    }

    /// XORs `mask` into the byte at `offset` (the self-test's bit-rot
    /// injector). Returns `false` if the file or offset does not exist.
    pub fn corrupt_byte(&self, path: &Path, offset: usize, mask: u8) -> bool {
        let mut g = self.st();
        match g.files.get_mut(path).and_then(|f| f.get_mut(offset)) {
            Some(b) => {
                *b ^= mask;
                true
            }
            None => false,
        }
    }
}

impl Vfs for SimVfs {
    fn create(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
        let mut g = self.st();
        self.tick(&mut g);
        if g.begin_mutation()? {
            // Crash at the create boundary: the file may or may not have
            // come into (empty) existence.
            if g.rng.gen_bool(0.5) {
                g.files.insert(path.to_path_buf(), Vec::new());
            }
            return Err(crash_err());
        }
        g.files.insert(path.to_path_buf(), Vec::new());
        drop(g);
        Ok(Box::new(SimWriteFile {
            state: Arc::clone(&self.state),
            clock: Arc::clone(&self.clock),
            path: path.to_path_buf(),
        }))
    }

    fn open_read(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
        let mut g = self.st();
        self.tick(&mut g);
        if g.crashed {
            return Err(crash_err());
        }
        let Some(data) = g.files.get(path).cloned() else {
            return Err(Error::new(ErrorKind::NotFound, "no such file"));
        };
        let permille = g.plan.short_read_permille;
        let fail_at = if g.roll(permille) && !data.is_empty() {
            Some(g.rng.gen_range(0..data.len()))
        } else {
            None
        };
        drop(g);
        Ok(Box::new(SimReadFile { data, pos: 0, fail_at }))
    }

    fn exists(&self, path: &Path) -> bool {
        self.st().files.contains_key(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        let mut g = self.st();
        self.tick(&mut g);
        if g.begin_mutation()? {
            // Crash at the rename boundary: it either happened or it
            // didn't — never a half state (rename is atomic).
            if g.rng.gen_bool(0.5) {
                if let Some(data) = g.files.remove(from) {
                    g.files.insert(to.to_path_buf(), data);
                }
            }
            return Err(crash_err());
        }
        match g.files.remove(from) {
            Some(data) => {
                g.files.insert(to.to_path_buf(), data);
                Ok(())
            }
            None => Err(Error::new(ErrorKind::NotFound, "rename source missing")),
        }
    }

    fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
        let mut g = self.st();
        if g.crashed {
            return Err(crash_err());
        }
        g.dirs.insert(path.to_path_buf());
        Ok(())
    }
}

/// Read handle: a snapshot of the file at open time, optionally failing
/// after delivering a prefix (the short-read fault).
struct SimReadFile {
    data: Vec<u8>,
    pos: usize,
    fail_at: Option<usize>,
}

impl Read for SimReadFile {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let end = self.fail_at.unwrap_or(self.data.len());
        if self.pos >= end {
            if self.fail_at.is_some() {
                return Err(Error::other("simulated short read"));
            }
            return Ok(0);
        }
        let n = buf.len().min(end - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Write for SimReadFile {
    fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
        Err(Error::other("read-only handle"))
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl VfsFile for SimReadFile {
    fn sync(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Append-only write handle sharing the filesystem state. Every `write`
/// is one mutation for crash-countdown purposes; a crash mid-write tears
/// the buffer at a random byte (optionally followed by garbage), ENOSPC
/// writes nothing at all, and a failed sync keeps the data (our model
/// treats written bytes as durable — fsync only reports).
struct SimWriteFile {
    state: Arc<Mutex<VfsState>>,
    clock: Arc<VirtualClock>,
    path: PathBuf,
}

impl SimWriteFile {
    fn st(&self) -> MutexGuard<'_, VfsState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Read for SimWriteFile {
    fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
        Err(Error::other("write-only handle"))
    }
}

impl Write for SimWriteFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut g = self.st();
        if g.plan.latency && !g.suppress {
            let ns = g.rng.gen_range(500u64..20_000);
            self.clock.advance(ns);
        }
        if g.begin_mutation()? {
            // Torn write: a random prefix of the buffer lands, optionally
            // followed by garbage bytes that never belonged to any entry.
            let cut = g.rng.gen_range(0..=buf.len());
            let garbage: Vec<u8> = if g.plan.torn_write && g.rng.gen_bool(0.5) {
                let n = g.rng.gen_range(1usize..=8);
                (0..n).map(|_| g.rng.gen::<u8>()).collect()
            } else {
                Vec::new()
            };
            if let Some(f) = g.files.get_mut(&self.path) {
                f.extend_from_slice(&buf[..cut]);
                f.extend_from_slice(&garbage);
            }
            return Err(crash_err());
        }
        let enospc = g.plan.enospc_permille;
        if g.roll(enospc) {
            return Err(Error::new(ErrorKind::StorageFull, "simulated ENOSPC"));
        }
        match g.files.get_mut(&self.path) {
            Some(f) => {
                f.extend_from_slice(buf);
                Ok(buf.len())
            }
            None => Err(Error::new(ErrorKind::NotFound, "file vanished")),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.st().crashed {
            return Err(crash_err());
        }
        Ok(())
    }
}

impl VfsFile for SimWriteFile {
    fn sync(&mut self) -> std::io::Result<()> {
        let mut g = self.st();
        if g.begin_mutation()? {
            // Crash at the fsync boundary: written bytes stay (already
            // applied to the in-memory image), the caller sees the crash.
            return Err(crash_err());
        }
        let fsync_fail = g.plan.fsync_fail_permille;
        if g.roll(fsync_fail) {
            return Err(Error::other("simulated fsync failure"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vfs(seed: u64, plan: FaultPlan) -> SimVfs {
        SimVfs::new(seed, plan, Arc::new(VirtualClock::new()))
    }

    #[test]
    fn write_read_rename_roundtrip() {
        let v = vfs(1, FaultPlan::none());
        let p = Path::new("/d/a");
        let q = Path::new("/d/b");
        let mut f = v.create(p).expect("create");
        f.write_all(b"hello").expect("write");
        f.sync().expect("sync");
        drop(f);
        v.rename(p, q).expect("rename");
        assert!(!v.exists(p));
        let mut r = v.open_read(q).expect("open");
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).expect("read");
        assert_eq!(buf, b"hello");
    }

    #[test]
    fn armed_crash_tears_a_write_then_fails_everything() {
        let v = vfs(7, FaultPlan::all());
        let p = Path::new("/d/wal");
        let mut f = v.create(p).expect("create"); // mutation 0
        v.arm_crash(0); // next mutation (the write) crashes
        let err = f.write_all(&[0xAB; 64]).expect_err("must crash");
        assert_eq!(err.to_string(), "simulated crash");
        assert!(v.crashed());
        // The torn image is a strict prefix of the buffer (possibly with
        // garbage), never the full durable write plus success.
        assert!(v.open_read(p).is_err(), "post-crash ops fail");
        v.clear_crash();
        let len = v.file_len(p).expect("file exists");
        assert!(len <= 64 + 8, "prefix + bounded garbage, got {len}");
        assert!(v.open_read(p).is_ok(), "reboot restores service");
    }

    #[test]
    fn enospc_write_leaves_no_partial_bytes() {
        let plan = FaultPlan { enospc_permille: 1000, ..FaultPlan::none() };
        let v = vfs(3, plan);
        let p = Path::new("/d/x");
        let mut f = v.create(p).expect("create");
        let err = f.write_all(b"doomed").expect_err("always ENOSPC");
        assert_eq!(err.kind(), ErrorKind::StorageFull);
        assert_eq!(v.file_len(p), Some(0));
    }

    #[test]
    fn short_read_fails_after_a_prefix_and_suppress_disables_it() {
        let plan = FaultPlan { short_read_permille: 1000, ..FaultPlan::none() };
        let v = vfs(11, plan);
        let p = Path::new("/d/y");
        let mut f = v.create(p).expect("create");
        f.write_all(&[9u8; 100]).expect("write");
        drop(f);
        let mut r = v.open_read(p).expect("open");
        let mut buf = Vec::new();
        assert!(r.read_to_end(&mut buf).is_err(), "short read must error");
        assert!(buf.len() < 100, "must deliver a strict prefix");
        v.set_suppress(true);
        let mut r = v.open_read(p).expect("open");
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).expect("suppressed read succeeds");
        assert_eq!(buf.len(), 100);
    }

    #[test]
    fn same_seed_same_fault_stream() {
        for seed in [0u64, 5, 99] {
            let run = |_: ()| {
                let v = vfs(seed, FaultPlan::all());
                let p = Path::new("/d/z");
                let mut log = Vec::new();
                let mut f = v.create(p).expect("create");
                for i in 0..200u32 {
                    log.push(f.write_all(&i.to_le_bytes()).is_ok());
                    log.push(f.sync().is_ok());
                }
                (log, v.file_bytes(p))
            };
            assert_eq!(run(()), run(()), "seed {seed} diverged");
        }
    }
}
