//! Flag parsing and run orchestration for `cind-sim` / `cind sim`.

use cinderella_core::IndexTier;

use crate::harness::{crash_sweep_with_tier, run_ops, RunSpec, SimConfig, SimFailure};
use crate::schedule::{generate, generate_drift, Op};
use crate::trace::{shrink_ops, Trace};
use crate::vfs::FaultPlan;

/// Usage text shown for `--help` or flag errors.
pub const USAGE: &str = "\
cind-sim — deterministic simulation of the Cinderella store/server stack

USAGE:
    cind-sim [FLAGS]

FLAGS:
    --seeds N          run seeds 0..N (default 8)
    --seed N           run exactly seed N
    --ops N            schedule length per seed (default 2000)
    --faults MODE      all | none (default all)
    --drift            generate drifting schedules: inserts and queries
                       concentrate on a hot attribute group that rotates
                       per quarter, so crashes land mid-reorganization
    --shards N         independent crash domains: each shard gets its own
                       fault-injecting disk (default 1)
    --check-every N    full oracle check every N steps (default 1)
    --replay FILE      replay a trace file instead of generating (the
                       trace's recorded shard count wins)
    --save-trace FILE  where to write the failing trace (default
                       sim-failure-seed-N.json)
    --selftest N       run the bit-rot self-test over N seeds
    --sweep            kill-at-every-crash-point sweep, per shard
                       (uses --seed, --ops, --shards, --tier)
    --tier MODE        initial pruning-index tier: exact | tiered | auto
                       (default exact); the harness flips exact <-> tiered
                       at every successful checkpoint, and recoveries
                       reapply the current tier before re-checking
    --help             this text

Exit code 0 = every run passed; 1 = a divergence (trace saved); 2 = bad
usage.";

struct Args {
    seeds: Vec<u64>,
    ops: usize,
    faults: bool,
    drift: bool,
    shards: usize,
    check_every: usize,
    replay: Option<String>,
    save_trace: Option<String>,
    selftest: Option<u64>,
    sweep: bool,
    tier: IndexTier,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        seeds: Vec::new(),
        ops: 2000,
        faults: true,
        drift: false,
        shards: 1,
        check_every: 1,
        replay: None,
        save_trace: None,
        selftest: None,
        sweep: false,
        tier: IndexTier::Exact,
    };
    let mut seed_count: Option<u64> = None;
    let mut single_seed: Option<u64> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => {
                seed_count = Some(
                    value("--seeds")?.parse().map_err(|e| format!("--seeds: {e}"))?,
                );
            }
            "--seed" => {
                single_seed =
                    Some(value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?);
            }
            "--ops" => {
                args.ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?;
            }
            "--faults" => {
                args.faults = match value("--faults")?.as_str() {
                    "all" => true,
                    "none" => false,
                    other => return Err(format!("--faults: {other:?} (use all|none)")),
                };
            }
            "--drift" => args.drift = true,
            "--shards" => {
                args.shards =
                    value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?;
                if args.shards == 0 {
                    return Err("--shards: must be at least 1".to_string());
                }
            }
            "--check-every" => {
                args.check_every = value("--check-every")?
                    .parse()
                    .map_err(|e| format!("--check-every: {e}"))?;
            }
            "--replay" => args.replay = Some(value("--replay")?.clone()),
            "--save-trace" => args.save_trace = Some(value("--save-trace")?.clone()),
            "--selftest" => {
                args.selftest = Some(
                    value("--selftest")?.parse().map_err(|e| format!("--selftest: {e}"))?,
                );
            }
            "--sweep" => args.sweep = true,
            "--tier" => {
                args.tier =
                    value("--tier")?.parse().map_err(|e: String| format!("--tier: {e}"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    args.seeds = match (single_seed, seed_count) {
        (Some(s), _) => vec![s],
        (None, Some(n)) => (0..n).collect(),
        (None, None) => (0..8).collect(),
    };
    Ok(args)
}

/// Runs the CLI; returns the process exit code.
#[must_use]
pub fn main_with_args(argv: &[String]) -> i32 {
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return 0;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return 2;
        }
    };

    if let Some(seeds) = args.selftest {
        return run_selftest(seeds);
    }
    if let Some(path) = &args.replay {
        return run_replay(path, args.check_every);
    }
    if args.sweep {
        let seed = args.seeds.first().copied().unwrap_or(0);
        return run_sweep(seed, args.ops, args.shards, args.tier);
    }
    run_seed_matrix(&args)
}

fn run_selftest(seeds: u64) -> i32 {
    match crate::selftest::self_test(seeds) {
        Ok(report) => {
            println!(
                "selftest: {seeds} seeds — loud {}, clean {}, silent {}{}",
                report.loud,
                report.clean,
                report.silent,
                report
                    .first_silent
                    .map(|s| format!(" (first silent seed {s})"))
                    .unwrap_or_default()
            );
            let defect = cfg!(feature = "sim-defect");
            let pass = if defect { report.silent >= 1 } else { report.silent == 0 };
            if pass {
                println!(
                    "selftest PASS ({} build)",
                    if defect { "sim-defect" } else { "correct" }
                );
                0
            } else if defect {
                eprintln!(
                    "selftest FAIL: the deliberate checksum defect went undetected \
                     in {seeds} seeds"
                );
                1
            } else {
                eprintln!("selftest FAIL: corruption slipped through on a correct build");
                1
            }
        }
        Err(e) => {
            eprintln!("selftest setup failed: {e}");
            1
        }
    }
}

fn run_replay(path: &str, check_every: usize) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("replay: cannot read {path}: {e}");
            return 2;
        }
    };
    let trace = match Trace::parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("replay: cannot parse {path}: {e}");
            return 2;
        }
    };
    let recorded = Trace::parse_recorded_hash(&text).ok().flatten();
    let plan = if trace.faults { FaultPlan::all() } else { FaultPlan::none() };
    let spec = RunSpec {
        seed: trace.seed,
        faults: trace.faults,
        shards: trace.shards,
        plan,
        ops: &trace.ops,
        check_every,
        arm_crash: None,
        // Recorded traces predate (or ignore) the tier knob: replay with
        // the exact index, the representation they were minted under.
        tier: IndexTier::Exact,
    };
    match run_ops(&spec) {
        Ok(report) => {
            let hash = report.trace.hash();
            println!(
                "replay {path}: seed {} shards {} ops {} — PASS (hash {hash:016x})",
                trace.seed,
                trace.shards,
                trace.ops.len()
            );
            if report.trace.steps.len() == trace.ops.len() {
                if let Some(expect) = recorded {
                    if expect != hash {
                        eprintln!(
                            "replay {path}: hash mismatch — recorded {expect:016x}, \
                             got {hash:016x} (non-deterministic replay)"
                        );
                        return 1;
                    }
                }
            }
            0
        }
        Err(f) => {
            eprintln!("replay {path}: FAIL at {f}");
            1
        }
    }
}

fn run_sweep(seed: u64, ops: usize, shards: usize, tier: IndexTier) -> i32 {
    match crash_sweep_with_tier(seed, ops, shards, tier) {
        Ok(points) => {
            println!(
                "sweep: seed {seed}, {ops} ops, {shards} shard(s), {tier} tier — \
                 {points} crash-points, every recovery oracle-equivalent"
            );
            0
        }
        Err(f) => {
            eprintln!("sweep: seed {seed} FAIL — {f}");
            1
        }
    }
}

fn run_seed_matrix(args: &Args) -> i32 {
    let plan = if args.faults { FaultPlan::all() } else { FaultPlan::none() };
    for &seed in &args.seeds {
        let cfg = SimConfig {
            seed,
            ops: args.ops,
            faults: args.faults,
            shards: args.shards,
            check_every: args.check_every,
            tier: args.tier,
        };
        let ops = if args.drift {
            generate_drift(cfg.seed, cfg.ops, cfg.faults, cfg.shards)
        } else {
            generate(cfg.seed, cfg.ops, cfg.faults, cfg.shards)
        };
        let spec = RunSpec {
            seed,
            faults: args.faults,
            shards: args.shards,
            plan,
            ops: &ops,
            check_every: args.check_every,
            arm_crash: None,
            tier: args.tier,
        };
        let first = run_ops(&spec);
        match first {
            Ok(report) => {
                let hash = report.trace.hash();
                // Determinism witness: the same seed must reproduce the
                // exact same trace, byte for byte.
                match run_ops(&spec) {
                    Ok(second) if second.trace.hash() == hash => {
                        println!(
                            "seed {seed}: PASS — {} ops, {} shard(s), {} restarts, \
                             {} entities, hash {hash:016x}",
                            cfg.ops, cfg.shards, report.restarts, report.final_entities
                        );
                        // A requested trace of a passing single-seed run:
                        // how regression traces get minted.
                        if let (Some(path), true) =
                            (&args.save_trace, args.seeds.len() == 1)
                        {
                            match std::fs::write(path, report.trace.to_json_string()) {
                                Ok(()) => println!("seed {seed}: trace saved to {path}"),
                                Err(e) => {
                                    eprintln!("seed {seed}: cannot save trace: {e}");
                                    return 1;
                                }
                            }
                        }
                    }
                    Ok(second) => {
                        eprintln!(
                            "seed {seed}: NON-DETERMINISTIC — hashes {hash:016x} vs \
                             {:016x}",
                            second.trace.hash()
                        );
                        return 1;
                    }
                    Err(f) => {
                        eprintln!("seed {seed}: NON-DETERMINISTIC — rerun failed: {f}");
                        return 1;
                    }
                }
            }
            Err(failure) => {
                return report_failure(args, seed, plan, &ops, &failure);
            }
        }
    }
    0
}

fn spec_for<'a>(args: &Args, seed: u64, plan: FaultPlan, ops: &'a [Op]) -> RunSpec<'a> {
    RunSpec {
        seed,
        faults: args.faults,
        shards: args.shards,
        plan,
        ops,
        check_every: args.check_every,
        arm_crash: None,
        tier: args.tier,
    }
}

/// A failing seed: shrink the schedule while it keeps failing the same
/// way, save the minimal trace as a regression file, and report.
fn report_failure(
    args: &Args,
    seed: u64,
    plan: FaultPlan,
    ops: &[Op],
    failure: &SimFailure,
) -> i32 {
    eprintln!("seed {seed}: FAIL — {failure}");
    let kind = failure_kind(&failure.reason);
    let shrunk = shrink_ops(ops, 200, |candidate| {
        matches!(
            run_ops(&spec_for(args, seed, plan, candidate)),
            Err(f) if failure_kind(&f.reason) == kind
        )
    });
    let final_failure = run_ops(&spec_for(args, seed, plan, &shrunk))
        .err()
        .map_or_else(|| failure.to_string(), |f| f.to_string());
    let trace = Trace::new(seed, args.faults, args.shards, shrunk.to_vec());
    let path = args
        .save_trace
        .clone()
        .unwrap_or_else(|| format!("sim-failure-seed-{seed}.json"));
    match std::fs::write(&path, trace.to_json_string()) {
        Ok(()) => eprintln!(
            "seed {seed}: shrunk {} → {} ops ({final_failure}); trace saved to {path} \
             — replay with `cind-sim --replay {path}`",
            ops.len(),
            shrunk.len()
        ),
        Err(e) => eprintln!("seed {seed}: could not save trace to {path}: {e}"),
    }
    1
}

/// Failure class for shrink preservation: the reason up to the first ':'
/// (e.g. "content divergence", "query [...]"), so shrinking cannot swap
/// one bug for a different one.
fn failure_kind(reason: &str) -> String {
    let head = reason.split(':').next().unwrap_or(reason);
    // Strip volatile details (ids, indices) by keeping the first two words.
    head.split_whitespace().take(2).collect::<Vec<_>>().join(" ")
}

/// Wrapper used by the `cind` CLI's `sim` subcommand.
#[must_use]
pub fn run_from_cind(argv: &[String]) -> i32 {
    main_with_args(argv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_flag_set() {
        let argv: Vec<String> = [
            "--seed", "5", "--ops", "100", "--faults", "none", "--shards", "4",
            "--check-every", "4", "--drift",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let args = parse_args(&argv).expect("parse");
        assert_eq!(args.seeds, vec![5]);
        assert_eq!(args.ops, 100);
        assert!(!args.faults);
        assert!(args.drift);
        assert_eq!(args.shards, 4);
        assert_eq!(args.check_every, 4);
    }

    #[test]
    fn rejects_zero_shards() {
        let argv: Vec<String> =
            ["--shards", "0"].iter().map(ToString::to_string).collect();
        assert!(parse_args(&argv).is_err());
    }

    #[test]
    fn rejects_unknown_flags() {
        let argv = vec!["--frobnicate".to_string()];
        assert!(parse_args(&argv).is_err());
    }

    #[test]
    fn failure_kind_is_stable_across_details() {
        assert_eq!(
            failure_kind("content divergence: entity 7 diverges"),
            failure_kind("content divergence: entity 913 diverges")
        );
    }
}
