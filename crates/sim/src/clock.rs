//! Virtual time for the simulation (rule A005: no wall clocks in
//! deterministic paths).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically advancing virtual clock in nanoseconds. Shared by the
/// fault-injecting VFS (per-op latency) and the harness (step timestamps
/// recorded into traces), so two runs with the same seed read identical
/// times at identical points.
#[derive(Debug, Default)]
pub struct VirtualClock(AtomicU64);

impl VirtualClock {
    /// A clock at t = 0.
    #[must_use]
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Current virtual time in nanoseconds.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Advances the clock by `ns`, returning the new time.
    pub fn advance(&self, ns: u64) -> u64 {
        self.0.fetch_add(ns, Ordering::Relaxed).wrapping_add(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.advance(5), 5);
        assert_eq!(c.advance(10), 15);
        assert_eq!(c.now_ns(), 15);
    }
}
