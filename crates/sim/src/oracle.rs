//! The model-based oracle: a naive in-memory reference table.
//!
//! The oracle stores every live entity as a plain `BTreeMap` and answers
//! every operation partition-free — no synopses, no pruning, no WAL, no
//! buffer pool. Anything the real stack gets wrong (a partition synopsis
//! that prunes a matching segment, a lost WAL entry, a replayed duplicate)
//! shows up as a divergence between the two answers.

use std::collections::BTreeMap;

use cind_model::Value;

/// Why a reference operation was rejected — mirrors the logical (non-I/O)
/// failures the engine can report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleErr {
    /// Insert of an id that is already live.
    Duplicate,
    /// Update/delete of an id that is not live.
    Unknown,
}

/// The reference table: id → (attribute name → value).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Oracle {
    rows: BTreeMap<u64, BTreeMap<String, Value>>,
}

impl Oracle {
    /// An empty reference table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entities.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Whether `id` is live.
    #[must_use]
    pub fn contains(&self, id: u64) -> bool {
        self.rows.contains_key(&id)
    }

    /// Iterates live entities in id order.
    pub fn entities(&self) -> impl Iterator<Item = (u64, &BTreeMap<String, Value>)> {
        self.rows.iter().map(|(id, attrs)| (*id, attrs))
    }

    /// Reference insert.
    ///
    /// # Errors
    /// [`OracleErr::Duplicate`] when `id` is already live.
    pub fn insert(&mut self, id: u64, attrs: &[(String, Value)]) -> Result<(), OracleErr> {
        if self.rows.contains_key(&id) {
            return Err(OracleErr::Duplicate);
        }
        self.rows.insert(id, attrs.iter().cloned().collect());
        Ok(())
    }

    /// Reference update (full replacement, like the engine's).
    ///
    /// # Errors
    /// [`OracleErr::Unknown`] when `id` is not live.
    pub fn update(&mut self, id: u64, attrs: &[(String, Value)]) -> Result<(), OracleErr> {
        if !self.rows.contains_key(&id) {
            return Err(OracleErr::Unknown);
        }
        self.rows.insert(id, attrs.iter().cloned().collect());
        Ok(())
    }

    /// Reference delete.
    ///
    /// # Errors
    /// [`OracleErr::Unknown`] when `id` is not live.
    pub fn delete(&mut self, id: u64) -> Result<(), OracleErr> {
        match self.rows.remove(&id) {
            Some(_) => Ok(()),
            None => Err(OracleErr::Unknown),
        }
    }

    /// Reference `SELECT attrs`: one row per live entity instantiating at
    /// least one requested attribute, projected in request order (absent
    /// attributes are `None`) — the same row shape the engine returns.
    #[must_use]
    pub fn query(&self, attrs: &[String]) -> Vec<Vec<Option<Value>>> {
        self.rows
            .values()
            .filter(|row| attrs.iter().any(|a| row.contains_key(a)))
            .map(|row| attrs.iter().map(|a| row.get(a).cloned()).collect())
            .collect()
    }
}

/// Order-independent canonical form for a set of rows: rendered and
/// sorted, so engine and oracle answers compare regardless of partition
/// enumeration order.
#[must_use]
pub fn canonical_rows(rows: &[Vec<Option<Value>>]) -> Vec<String> {
    let mut out: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(pairs: &[(&str, i64)]) -> Vec<(String, Value)> {
        pairs.iter().map(|(n, v)| ((*n).to_string(), Value::Int(*v))).collect()
    }

    #[test]
    fn crud_and_logical_errors() {
        let mut o = Oracle::new();
        o.insert(1, &attrs(&[("a", 1), ("b", 2)])).expect("insert");
        assert_eq!(o.insert(1, &attrs(&[("a", 9)])), Err(OracleErr::Duplicate));
        assert_eq!(o.update(2, &attrs(&[("a", 9)])), Err(OracleErr::Unknown));
        o.update(1, &attrs(&[("c", 3)])).expect("update replaces");
        assert_eq!(o.delete(9), Err(OracleErr::Unknown));
        o.delete(1).expect("delete");
        assert!(o.is_empty());
    }

    #[test]
    fn query_projects_in_request_order_with_holes() {
        let mut o = Oracle::new();
        o.insert(1, &attrs(&[("a", 1)])).expect("insert");
        o.insert(2, &attrs(&[("a", 2), ("b", 20)])).expect("insert");
        o.insert(3, &attrs(&[("c", 30)])).expect("insert");
        let rows = o.query(&["b".to_string(), "a".to_string()]);
        assert_eq!(
            canonical_rows(&rows),
            canonical_rows(&[
                vec![None, Some(Value::Int(1))],
                vec![Some(Value::Int(20)), Some(Value::Int(2))],
            ])
        );
        assert!(o.query(&["zzz".to_string()]).is_empty());
    }
}
