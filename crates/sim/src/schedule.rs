//! Seeded schedule generation: the operation stream a simulation run
//! drives against the engine.
//!
//! The generator produces mostly-valid operations (it tracks which ids it
//! believes are live) with a deliberate minority of invalid ones —
//! duplicate inserts, deletes of unknown ids, queries naming attributes
//! nothing ever defined — because error paths are where recovery bugs
//! hide. Entities draw from a small set of attribute *groups* (plus a
//! couple of attributes shared by every group) so Algorithm 1 has real
//! shape structure to find, splits trigger at the configured capacity, and
//! merges have candidates after deletes hollow partitions out.

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::json::Json;

/// Attribute groups: entities of group `g` draw from `g0..g5` of their
/// group plus the shared attributes.
const GROUPS: usize = 4;
const ATTRS_PER_GROUP: usize = 6;
const SHARED: [&str; 2] = ["id_kind", "stamp"];

/// One step of a simulation schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Insert entity `id` with the given attribute/value pairs.
    Insert {
        /// Entity id.
        id: u64,
        /// Attribute name → integer value pairs.
        attrs: Vec<(String, i64)>,
    },
    /// Replace entity `id`'s attributes wholesale.
    Update {
        /// Entity id.
        id: u64,
        /// Replacement attribute/value pairs.
        attrs: Vec<(String, i64)>,
    },
    /// Delete entity `id`.
    Delete {
        /// Entity id.
        id: u64,
    },
    /// `SELECT attrs` and compare against the oracle.
    Query {
        /// Requested attribute names.
        attrs: Vec<String>,
    },
    /// Run one partition merge pass.
    Merge,
    /// Run one background reorganization step on every shard (heat-driven
    /// re-split / migrate / cold-merge, each WAL-framed as a transaction).
    Reorg,
    /// Checkpoint: fold the WAL into a fresh snapshot.
    Checkpoint,
    /// Kill the whole engine without warning and recover from disk.
    CrashRestart,
    /// Arm the VFS to crash mid-I/O `countdown` mutations from now
    /// (single-shard form: the crash lands on shard 0's backend).
    CrashDuringNext {
        /// Mutating VFS operations until the crash fires.
        countdown: u64,
    },
    /// Arm *one shard's* VFS to crash mid-I/O `countdown` of that shard's
    /// mutations from now. The other shards keep serving: the harness must
    /// prove they stay byte-exact while the victim recovers alone.
    CrashShardDuringNext {
        /// The victim crash domain.
        shard: usize,
        /// Mutating VFS operations on that shard until the crash fires.
        countdown: u64,
    },
}

impl Op {
    /// Compact one-line rendering for traces and failure reports.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Op::Insert { id, attrs } => format!("insert {id} ({} attrs)", attrs.len()),
            Op::Update { id, attrs } => format!("update {id} ({} attrs)", attrs.len()),
            Op::Delete { id } => format!("delete {id}"),
            Op::Query { attrs } => format!("query {attrs:?}"),
            Op::Merge => "merge".to_string(),
            Op::Reorg => "reorg".to_string(),
            Op::Checkpoint => "checkpoint".to_string(),
            Op::CrashRestart => "crash-restart".to_string(),
            Op::CrashDuringNext { countdown } => {
                format!("crash-during-next (countdown {countdown})")
            }
            Op::CrashShardDuringNext { shard, countdown } => {
                format!("crash-shard-during-next (shard {shard}, countdown {countdown})")
            }
        }
    }

    /// Serializes to the trace-file JSON shape.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let pairs = |attrs: &[(String, i64)]| {
            Json::Arr(
                attrs
                    .iter()
                    .map(|(n, v)| {
                        Json::Arr(vec![Json::Str(n.clone()), Json::Num(*v)])
                    })
                    .collect(),
            )
        };
        match self {
            Op::Insert { id, attrs } => Json::Obj(vec![
                ("op".into(), Json::Str("insert".into())),
                ("id".into(), Json::Num(*id as i64)),
                ("attrs".into(), pairs(attrs)),
            ]),
            Op::Update { id, attrs } => Json::Obj(vec![
                ("op".into(), Json::Str("update".into())),
                ("id".into(), Json::Num(*id as i64)),
                ("attrs".into(), pairs(attrs)),
            ]),
            Op::Delete { id } => Json::Obj(vec![
                ("op".into(), Json::Str("delete".into())),
                ("id".into(), Json::Num(*id as i64)),
            ]),
            Op::Query { attrs } => Json::Obj(vec![
                ("op".into(), Json::Str("query".into())),
                (
                    "attrs".into(),
                    Json::Arr(attrs.iter().map(|a| Json::Str(a.clone())).collect()),
                ),
            ]),
            Op::Merge => Json::Obj(vec![("op".into(), Json::Str("merge".into()))]),
            Op::Reorg => Json::Obj(vec![("op".into(), Json::Str("reorg".into()))]),
            Op::Checkpoint => {
                Json::Obj(vec![("op".into(), Json::Str("checkpoint".into()))])
            }
            Op::CrashRestart => {
                Json::Obj(vec![("op".into(), Json::Str("crash-restart".into()))])
            }
            Op::CrashDuringNext { countdown } => Json::Obj(vec![
                ("op".into(), Json::Str("crash-during-next".into())),
                ("countdown".into(), Json::Num(*countdown as i64)),
            ]),
            Op::CrashShardDuringNext { shard, countdown } => Json::Obj(vec![
                ("op".into(), Json::Str("crash-shard-during-next".into())),
                ("shard".into(), Json::Num(*shard as i64)),
                ("countdown".into(), Json::Num(*countdown as i64)),
            ]),
        }
    }

    /// Parses the trace-file JSON shape back into an [`Op`].
    ///
    /// # Errors
    /// A static description of the first structural problem.
    pub fn from_json(json: &Json) -> Result<Op, &'static str> {
        let kind = json.get("op").and_then(Json::as_str).ok_or("op missing 'op' tag")?;
        let id = || json.get("id").and_then(Json::as_u64).ok_or("op missing 'id'");
        let attr_pairs = || -> Result<Vec<(String, i64)>, &'static str> {
            json.get("attrs")
                .and_then(Json::as_arr)
                .ok_or("op missing 'attrs'")?
                .iter()
                .map(|pair| {
                    let items = pair.as_arr().ok_or("attr pair not an array")?;
                    match items {
                        [Json::Str(name), Json::Num(value)] => {
                            Ok((name.clone(), *value))
                        }
                        _ => Err("attr pair shape"),
                    }
                })
                .collect()
        };
        match kind {
            "insert" => Ok(Op::Insert { id: id()?, attrs: attr_pairs()? }),
            "update" => Ok(Op::Update { id: id()?, attrs: attr_pairs()? }),
            "delete" => Ok(Op::Delete { id: id()? }),
            "query" => {
                let attrs = json
                    .get("attrs")
                    .and_then(Json::as_arr)
                    .ok_or("query missing 'attrs'")?
                    .iter()
                    .map(|a| a.as_str().map(str::to_string).ok_or("query attr not a string"))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Op::Query { attrs })
            }
            "merge" => Ok(Op::Merge),
            "reorg" => Ok(Op::Reorg),
            "checkpoint" => Ok(Op::Checkpoint),
            "crash-restart" => Ok(Op::CrashRestart),
            "crash-during-next" => Ok(Op::CrashDuringNext {
                countdown: json
                    .get("countdown")
                    .and_then(Json::as_u64)
                    .ok_or("crash-during-next missing 'countdown'")?,
            }),
            "crash-shard-during-next" => Ok(Op::CrashShardDuringNext {
                shard: json
                    .get("shard")
                    .and_then(Json::as_u64)
                    .ok_or("crash-shard-during-next missing 'shard'")?
                    as usize,
                countdown: json
                    .get("countdown")
                    .and_then(Json::as_u64)
                    .ok_or("crash-shard-during-next missing 'countdown'")?,
            }),
            _ => Err("unknown op tag"),
        }
    }
}

fn group_attr(group: usize, idx: usize) -> String {
    format!("g{group}_a{idx}")
}

/// Generates a seeded schedule of `n` operations. With `faults` off, no
/// crash operations are emitted (the random-fault knobs live in the VFS
/// plan, not here — this flag only gates the *scheduled* crash ops so a
/// fault-free run is a pure functional test). With `shards > 1` the
/// mid-I/O crash ops pick a victim shard, so a schedule exercises
/// single-domain failures while the other domains keep serving.
#[must_use]
pub fn generate(seed: u64, n: usize, faults: bool, shards: usize) -> Vec<Op> {
    generate_with(seed, n, faults, shards, false)
}

/// Drift variant of [`generate`]: the same op mix, but inserts and
/// queries concentrate on a *hot* attribute group that rotates per
/// quarter of the schedule — the workload shape the reorganizer chases.
/// Crash points therefore land while heat is skewed and the driver is
/// mid-adaptation, which uniform schedules rarely reach.
#[must_use]
pub fn generate_drift(seed: u64, n: usize, faults: bool, shards: usize) -> Vec<Op> {
    generate_with(seed, n, faults, shards, true)
}

/// How concentrated a drifting schedule is on its hot group.
const DRIFT_QUERY_FOCUS: f64 = 0.9;
const DRIFT_INSERT_FOCUS: f64 = 0.7;

fn generate_with(seed: u64, n: usize, faults: bool, shards: usize, drift: bool) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC14D_E13A_5C4E_D41E);
    let mut ops = Vec::with_capacity(n);
    let mut next_id: u64 = 1;
    // Ids the generator believes are live — approximate on purpose (an op
    // may fail on the engine); only used to bias toward valid targets.
    let mut live: Vec<u64> = Vec::new();

    for i in 0..n {
        // The hot group rotates each quarter of a drifting schedule.
        let hot = drift.then(|| (i * 4) / n.max(1) % GROUPS);
        let invalid = rng.gen_range(0u32..100) < 12;
        let roll = if faults {
            rng.gen_range(0u32..100)
        } else {
            // Without scheduled crashes, fold their weight into writes.
            rng.gen_range(0u32..91)
        };
        let op = match roll {
            // 48%: insert
            0..=47 => {
                let id = if invalid && !live.is_empty() {
                    // Duplicate insert.
                    live[rng.gen_range(0..live.len())]
                } else {
                    let id = next_id;
                    next_id += 1;
                    live.push(id);
                    id
                };
                Op::Insert { id, attrs: random_attrs(&mut rng, hot) }
            }
            // 12%: update
            48..=59 => {
                let id = pick_id(&mut rng, &live, invalid, &mut next_id);
                Op::Update { id, attrs: random_attrs(&mut rng, hot) }
            }
            // 10%: delete
            60..=69 => {
                let id = pick_id(&mut rng, &live, invalid, &mut next_id);
                live.retain(|&l| l != id);
                Op::Delete { id }
            }
            // 14%: query
            70..=83 => Op::Query { attrs: random_query(&mut rng, invalid, hot) },
            // 2%: merge
            84..=85 => Op::Merge,
            // 2%: explicit reorg step (foreground writes also trigger steps
            // on the driver's own cadence; this op hits the path directly
            // so crash sweeps land inside reorg actions)
            86..=87 => Op::Reorg,
            // 3%: checkpoint
            88..=90 => Op::Checkpoint,
            // 3%: clean-kill restart (the whole engine, every shard)
            91..=93 => Op::CrashRestart,
            // 6%: crash mid-I/O a few mutations from now — on one shard's
            // backend when sharded, so the blast radius is one crash domain
            _ => {
                let countdown = rng.gen_range(1u64..=8);
                if shards > 1 {
                    Op::CrashShardDuringNext { shard: rng.gen_range(0..shards), countdown }
                } else {
                    Op::CrashDuringNext { countdown }
                }
            }
        };
        ops.push(op);
    }
    ops
}

fn pick_id(rng: &mut StdRng, live: &[u64], invalid: bool, next_id: &mut u64) -> u64 {
    if invalid || live.is_empty() {
        // An id nothing ever inserted.
        let id = 1_000_000 + *next_id;
        *next_id += 1;
        id
    } else {
        live[rng.gen_range(0..live.len())]
    }
}

/// Picks the attribute group: the hot one with the given focus when the
/// schedule drifts, uniform otherwise.
fn pick_group(rng: &mut StdRng, hot: Option<usize>, focus: f64) -> usize {
    match hot {
        Some(h) if rng.gen::<f64>() < focus => h,
        _ => rng.gen_range(0..GROUPS),
    }
}

fn random_attrs(rng: &mut StdRng, hot: Option<usize>) -> Vec<(String, i64)> {
    let group = pick_group(rng, hot, DRIFT_INSERT_FOCUS);
    let arity = rng.gen_range(1..=ATTRS_PER_GROUP);
    let mut attrs: Vec<(String, i64)> = (0..arity)
        .map(|i| (group_attr(group, i), rng.gen_range(-1000i64..1000)))
        .collect();
    for shared in SHARED {
        if rng.gen_bool(0.5) {
            attrs.push((shared.to_string(), rng.gen_range(0i64..100)));
        }
    }
    attrs
}

fn random_query(rng: &mut StdRng, invalid: bool, hot: Option<usize>) -> Vec<String> {
    if invalid {
        return vec![format!("ghost_{}", rng.gen_range(0u32..100))];
    }
    let group = pick_group(rng, hot, DRIFT_QUERY_FOCUS);
    let width = rng.gen_range(1..=3usize);
    let mut attrs: Vec<String> =
        (0..width).map(|_| group_attr(group, rng.gen_range(0..ATTRS_PER_GROUP))).collect();
    attrs.dedup();
    if rng.gen_bool(0.2) {
        attrs.push(SHARED[rng.gen_range(0..SHARED.len())].to_string());
    }
    attrs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(9, 500, true, 1), generate(9, 500, true, 1));
        assert_ne!(generate(9, 500, true, 1), generate(10, 500, true, 1));
        assert_eq!(generate(9, 500, true, 4), generate(9, 500, true, 4));
    }

    #[test]
    fn drift_schedules_concentrate_queries_on_the_rotating_hot_group() {
        let n = 2000;
        let ops = generate_drift(7, n, false, 1);
        assert_eq!(ops, generate_drift(7, n, false, 1), "drift generation must be seeded");
        assert_ne!(ops, generate(7, n, false, 1), "drift must actually reshape the stream");
        for quarter in 0..4usize {
            let hot = quarter % GROUPS;
            let mut per_group = [0usize; GROUPS];
            for op in &ops[quarter * n / 4..(quarter + 1) * n / 4] {
                let Op::Query { attrs } = op else { continue };
                // Attribute names are `g{group}_a{idx}`; ghost queries
                // (the invalid minority) fail the parse and are skipped.
                let group = attrs
                    .first()
                    .and_then(|a| a.strip_prefix('g'))
                    .and_then(|rest| rest.split('_').next())
                    .and_then(|digits| digits.parse::<usize>().ok());
                if let Some(g) = group.filter(|g| *g < GROUPS) {
                    per_group[g] += 1;
                }
            }
            let total: usize = per_group.iter().sum();
            assert!(
                per_group[hot] * 2 > total,
                "quarter {quarter}: hot group {hot} not dominant in {per_group:?}"
            );
        }
    }

    #[test]
    fn faultless_schedules_have_no_crash_ops() {
        for op in generate(3, 2000, false, 3) {
            assert!(
                !matches!(
                    op,
                    Op::CrashRestart
                        | Op::CrashDuringNext { .. }
                        | Op::CrashShardDuringNext { .. }
                ),
                "faults-off schedule contains {op:?}"
            );
        }
    }

    #[test]
    fn sharded_schedules_target_in_range_victims() {
        let shards = 4;
        let mut targeted = 0usize;
        for op in generate(21, 2000, true, shards) {
            assert!(
                !matches!(op, Op::CrashDuringNext { .. }),
                "sharded schedule emitted the single-shard crash form"
            );
            if let Op::CrashShardDuringNext { shard, countdown } = op {
                assert!(shard < shards, "victim {shard} out of range");
                assert!((1..=8).contains(&countdown));
                targeted += 1;
            }
        }
        assert!(targeted > 0, "no shard-targeted crashes in 2000 ops");
    }

    #[test]
    fn ops_roundtrip_through_json() {
        for shards in [1usize, 3] {
            for op in generate(17, 300, true, shards) {
                let json = op.to_json();
                let back = Op::from_json(&json).expect("roundtrip");
                assert_eq!(back, op, "json {json}");
            }
        }
    }
}
