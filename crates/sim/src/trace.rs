//! Trace capture, hashing, persistence and greedy shrinking.
//!
//! Every simulation run produces a [`Trace`]: the seed, the full operation
//! schedule, one record per executed step, and an FNV-1a hash over the
//! canonical rendering of those records. The hash is the determinism
//! witness — two runs of the same seed must produce byte-identical traces,
//! so CI compares hashes, and a committed trace file replays the exact
//! schedule (no generator involved) as a regression test.

use crate::json::Json;
use crate::schedule::Op;

/// One executed step: which op ran and what the world looked like after.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepRecord {
    /// Index into the schedule.
    pub index: usize,
    /// `Op::describe()` of the step.
    pub op: String,
    /// Outcome tag: `ok`, `err-logical`, `fault-restart`, …
    pub outcome: String,
    /// Live entities after the step (engine view).
    pub entities: u64,
    /// Partitions after the step (engine view).
    pub partitions: u64,
    /// Virtual clock after the step, in nanoseconds.
    pub clock_ns: u64,
}

impl StepRecord {
    fn render(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}",
            self.index, self.op, self.outcome, self.entities, self.partitions, self.clock_ns
        )
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("index".into(), Json::Num(self.index as i64)),
            ("op".into(), Json::Str(self.op.clone())),
            ("outcome".into(), Json::Str(self.outcome.clone())),
            ("entities".into(), Json::Num(self.entities as i64)),
            ("partitions".into(), Json::Num(self.partitions as i64)),
            ("clock_ns".into(), Json::Num(self.clock_ns as i64)),
        ])
    }
}

/// A complete run record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// The seed the run (and its VFS fault streams) derives from.
    pub seed: u64,
    /// Whether random faults were enabled.
    pub faults: bool,
    /// Shard count the run was driven against (each shard gets its own
    /// fault-injecting VFS; routing depends on this, so a replay must use
    /// the recorded value).
    pub shards: usize,
    /// The executed schedule.
    pub ops: Vec<Op>,
    /// One record per executed step.
    pub steps: Vec<StepRecord>,
}

/// FNV-1a over a byte string (same constants as the storage layer's
/// checksums, reimplemented here so the trace hash does not depend on
/// storage internals).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl Trace {
    /// A trace with a schedule but no executed steps yet.
    #[must_use]
    pub fn new(seed: u64, faults: bool, shards: usize, ops: Vec<Op>) -> Self {
        Self { seed, faults, shards: shards.max(1), ops, steps: Vec::new() }
    }

    /// The determinism witness: FNV-1a over every step's canonical
    /// rendering. Identical seeds must yield identical hashes.
    #[must_use]
    pub fn hash(&self) -> u64 {
        let mut bytes = Vec::new();
        for step in &self.steps {
            bytes.extend_from_slice(step.render().as_bytes());
            bytes.push(b'\n');
        }
        fnv1a(&bytes)
    }

    /// Serializes the whole trace (schedule + steps + hash) to JSON text.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        Json::Obj(vec![
            ("seed".into(), Json::Num(self.seed as i64)),
            ("faults".into(), Json::Bool(self.faults)),
            ("shards".into(), Json::Num(self.shards as i64)),
            ("hash".into(), Json::Str(format!("{:016x}", self.hash()))),
            ("ops".into(), Json::Arr(self.ops.iter().map(Op::to_json).collect())),
            (
                "steps".into(),
                Json::Arr(self.steps.iter().map(StepRecord::to_json).collect()),
            ),
        ])
        .to_string()
    }

    /// Parses a trace file produced by [`Trace::to_json_string`]. Steps
    /// are not loaded — a replay re-executes the schedule and regenerates
    /// them; only the seed, fault flag and ops matter.
    ///
    /// # Errors
    /// A static description of the first structural problem.
    pub fn parse(text: &str) -> Result<Self, &'static str> {
        let doc = Json::parse(text)?;
        let seed = doc.get("seed").and_then(Json::as_u64).ok_or("trace missing 'seed'")?;
        let faults = match doc.get("faults") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("trace missing 'faults'"),
        };
        // Pre-sharding trace files carry no 'shards' field: they ran
        // against a single-shard world.
        let shards = doc.get("shards").and_then(Json::as_u64).unwrap_or(1) as usize;
        let ops = doc
            .get("ops")
            .and_then(Json::as_arr)
            .ok_or("trace missing 'ops'")?
            .iter()
            .map(Op::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::new(seed, faults, shards, ops))
    }

    /// The recorded hash field of a trace file, if present (used by replay
    /// to verify byte-exactness against the original run).
    ///
    /// # Errors
    /// A static description of the first structural problem.
    pub fn parse_recorded_hash(text: &str) -> Result<Option<u64>, &'static str> {
        let doc = Json::parse(text)?;
        match doc.get("hash").and_then(Json::as_str) {
            Some(h) => u64::from_str_radix(h, 16)
                .map(Some)
                .map_err(|_| "trace 'hash' not hex"),
            None => Ok(None),
        }
    }
}

/// Greedy ddmin-style shrink: repeatedly tries to delete chunks of the
/// schedule (halving chunk size down to single ops) while `still_fails`
/// keeps returning `true` for the shrunk candidate. Capped at
/// `max_attempts` executions so pathological schedules cannot spin the
/// harness forever.
pub fn shrink_ops(
    ops: &[Op],
    max_attempts: usize,
    mut still_fails: impl FnMut(&[Op]) -> bool,
) -> Vec<Op> {
    let mut current: Vec<Op> = ops.to_vec();
    let mut attempts = 0;
    let mut chunk = (current.len() / 2).max(1);
    while chunk >= 1 && attempts < max_attempts {
        let mut start = 0;
        let mut removed_any = false;
        while start < current.len() && attempts < max_attempts {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            attempts += 1;
            if !candidate.is_empty() && still_fails(&candidate) {
                current = candidate;
                removed_any = true;
                // Same start now points at fresh ops.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if !removed_any {
            chunk /= 2;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::generate;

    #[test]
    fn trace_roundtrips_and_hash_is_stable() {
        let mut t = Trace::new(5, true, 3, generate(5, 40, true, 3));
        t.steps.push(StepRecord {
            index: 0,
            op: "insert 1 (2 attrs)".into(),
            outcome: "ok".into(),
            entities: 1,
            partitions: 1,
            clock_ns: 123,
        });
        let h = t.hash();
        assert_eq!(t.hash(), h, "hash is a pure function");
        let text = t.to_json_string();
        let back = Trace::parse(&text).expect("parse");
        assert_eq!(back.seed, 5);
        assert!(back.faults);
        assert_eq!(back.shards, 3);
        assert_eq!(back.ops, t.ops);
        assert_eq!(
            Trace::parse_recorded_hash(&text).expect("hash field"),
            Some(h)
        );
    }

    #[test]
    fn traces_without_a_shards_field_default_to_one() {
        let t = Trace::new(2, false, 1, generate(2, 10, false, 1));
        // Strip the shards field the way a pre-sharding file would lack it.
        let text = t.to_json_string().replace("\"shards\":1,", "");
        assert!(!text.contains("shards"), "field not stripped: {text}");
        let back = Trace::parse(&text).expect("legacy trace parses");
        assert_eq!(back.shards, 1);
    }

    #[test]
    fn shrink_finds_a_single_guilty_op() {
        // Failure iff the schedule contains the merge op.
        let ops = generate(11, 60, false, 1);
        let guilty = ops.iter().position(|o| matches!(o, Op::Merge));
        let Some(_) = guilty else {
            // Seed chosen to contain a merge; if not, the test is vacuous.
            panic!("seed 11 schedule has no merge; pick another seed");
        };
        let shrunk = shrink_ops(&ops, 500, |c| {
            c.iter().any(|o| matches!(o, Op::Merge))
        });
        assert!(shrunk.iter().any(|o| matches!(o, Op::Merge)));
        assert!(shrunk.len() <= 2, "shrunk to {} ops", shrunk.len());
    }
}
