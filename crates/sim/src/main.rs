//! `cind-sim` — deterministic simulation of the Cinderella store/server
//! stack. See `cind-sim --help`.

#![forbid(unsafe_code)]

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(cind_sim::cli::main_with_args(&argv));
}
