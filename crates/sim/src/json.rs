//! A minimal JSON value, writer and parser for trace files.
//!
//! Traces must round-trip byte-exactly between runs of the harness, and
//! the build environment has no serde — so this is a deliberately small,
//! fully deterministic codec: objects preserve insertion order, numbers
//! are `i64` only (everything the trace stores is integral), and the
//! parser enforces a recursion-depth cap instead of trusting its input.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: u32 = 64;

/// One JSON value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the trace format never needs floats).
    Num(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved so output is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer inside, if this is a number.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The unsigned integer inside, if this is a non-negative number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn render(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// content rejected).
    ///
    /// # Errors
    /// A static description of the first syntax problem.
    pub fn parse(input: &str) -> Result<Json, &'static str> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err("trailing content after document");
        }
        Ok(value)
    }
}

/// Renders compact JSON (no whitespace — trace hashes cover the rendered
/// bytes, so the rendering must be canonical).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.render(&mut out);
        f.write_str(&out)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Json, &'static str> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep");
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input"),
        Some(b'n') => parse_lit(bytes, pos, b"null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err("expected ',' or ']' in array"),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err("expected ':' after object key");
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err("expected ',' or '}' in object"),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => Err("unexpected character"),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &[u8],
    value: Json,
) -> Result<Json, &'static str> {
    if bytes.len() - *pos >= lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(value)
    } else {
        Err("bad literal")
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, &'static str> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == start || (*pos == start + 1 && bytes[start] == b'-') {
        return Err("bad number");
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number")?;
    text.parse::<i64>().map(Json::Num).map_err(|_| "number out of i64 range")
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, &'static str> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err("expected string");
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape"),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = &bytes[*pos..];
                let text = std::str::from_utf8(rest).map_err(|_| "bad utf-8")?;
                let Some(c) = text.chars().next() else {
                    return Err("unterminated string");
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("seed".into(), Json::Num(42)),
            (
                "ops".into(),
                Json::Arr(vec![
                    Json::Str("insert \"x\"\n".into()),
                    Json::Num(-7),
                    Json::Null,
                    Json::Bool(true),
                ]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).expect("parse"), doc);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "\"open", "{\"a\" 1}", "12x", "nul", "[1] extra"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err(), "depth cap");
    }

    #[test]
    fn output_is_canonical() {
        let doc = Json::Arr(vec![Json::Str("a\"b\\c".into()), Json::Num(0)]);
        assert_eq!(doc.to_string(), "[\"a\\\"b\\\\c\",0]");
    }
}
