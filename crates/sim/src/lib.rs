//! Deterministic simulation harness for the full Cinderella store/server
//! stack.
//!
//! The paper's partitioner is an *online* algorithm: its correctness
//! claims (structural invariants, Definition-1 efficiency accounting,
//! query equivalence) must hold not just on clean runs but across crashes,
//! torn writes and failed I/O. This crate closes that loop with a
//! FoundationDB-style simulation:
//!
//! * [`vfs::SimVfs`] — an in-memory filesystem implementing the storage
//!   crate's [`cind_storage::Vfs`] seam, injecting seeded faults: torn
//!   writes (truncate mid-buffer, optionally followed by garbage), short
//!   reads, `ENOSPC`, failed fsyncs, virtual latency, and armed
//!   crash-points that kill the k-th mutating operation. A sharded run
//!   gives every shard its *own* `SimVfs` — N independent crash domains —
//!   so an armed crash kills exactly one shard while the harness proves
//!   the survivors stay byte-exact and the victim recovers in place.
//! * [`schedule`] — a seeded generator of insert/update/delete/query/
//!   merge/checkpoint/crash operation streams, mostly valid with a
//!   deliberate minority of invalid ops.
//! * [`oracle::Oracle`] — a naive partition-free reference table every
//!   answer is checked against, plus full structural validation and an
//!   independent EFFICIENCY(P) recomputation after every step and every
//!   recovery.
//! * [`trace`] — run capture with a canonical hash (the determinism
//!   witness: same seed ⇒ byte-identical trace), JSON persistence, replay
//!   and greedy shrinking, so any failing seed becomes a committed
//!   regression file.
//! * [`selftest`] — proof the harness detects defects: a deliberate
//!   checksum-skipping bug (`sim-defect` feature in `cind-storage`) must
//!   be caught by the oracle within a bounded seed budget.
//!
//! Everything runs on a virtual clock ([`clock::VirtualClock`]); no wall
//! time enters any decision, so runs are exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod harness;
pub mod json;
pub mod oracle;
pub mod schedule;
pub mod selftest;
pub mod trace;
pub mod vfs;

pub use harness::{
    content_diff, crash_sweep, crash_sweep_with_tier, run, run_ops, shard_vfs_seed,
    sim_sharded_options, RunReport, RunSpec, SimConfig, SimFailure,
};
pub use schedule::{generate, generate_drift, Op};
pub use selftest::{self_test, SelfTestReport};
pub use trace::{shrink_ops, Trace};
pub use vfs::{FaultPlan, SimVfs};

/// Entry point shared by the `cind-sim` binary and the `cind sim`
/// subcommand: parses flags, runs the requested mode, prints a summary,
/// and returns the process exit code (0 = pass).
pub mod cli;
