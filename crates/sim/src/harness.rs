//! The simulation harness: drives a seeded schedule against a real
//! [`cind_server::ShardedEngine`] — N independent engine shards, each on
//! its *own* fault-injecting VFS — checks every answer against the
//! model-based [`Oracle`], and turns crashes into recovery exercises.
//!
//! ## The step protocol
//!
//! Every write op is resolved three ways:
//!
//! * **Engine Ok** — the oracle must accept it too; divergence is a bug.
//! * **Engine logical error** (duplicate id, unknown id, unknown
//!   attribute) — the oracle must reject it for the same reason.
//! * **Engine fault error** (WAL append failure, persistence failure, a
//!   fired crash-point) — durability is now ambiguous: the mutation may or
//!   may not have reached disk before the fault. A routed write faults on
//!   exactly one shard, so the harness first proves every *surviving*
//!   shard is still byte-exact against the oracle restricted to its ids
//!   (the crash-domain claim: one domain down, the others unharmed), then
//!   recovers the victim shard alone via
//!   [`cind_server::ShardedEngine::reopen_shard`] and accepts the outcome
//!   iff the recovered store equals *either* the pre-op or the post-op
//!   oracle — anything else (a half-applied group, a resurrected delete, a
//!   lost earlier commit) fails the run. Maintenance ops (merge,
//!   checkpoint) touch every shard, so a fault there reboots the whole
//!   engine instead.
//!
//! After every step (configurable) and after every recovery the harness
//! runs the full check: structural validation on every shard, per-shard
//! byte-level content equivalence against the routed slice of the oracle
//! (which doubles as a no-cross-shard-leakage check), and a Definition-1
//! EFFICIENCY(P) recomputation from raw segment scans compared against the
//! core implementation — per shard on exact counters, and globally as
//! Σrelevant / Σread over the summed counters (never an average of
//! per-shard ratios).

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use cind_model::{EntityId, Synopsis, Value};
use cind_server::{
    Engine, EngineOptions, ServerError, ShardedEngine, ShardedOptions, WireEntity,
};
use cind_storage::{StorageError, Vfs};
use cind_storage::UniversalTable;
use cinderella_core::{
    efficiency_counters_for, Capacity, Config, CoreError, IndexTier, ReorgConfig, ReorgMode,
};

use crate::clock::VirtualClock;
use crate::oracle::{canonical_rows, Oracle, OracleErr};
use crate::schedule::{generate, Op};
use crate::trace::{StepRecord, Trace};
use crate::vfs::{FaultPlan, SimVfs};

/// Virtual store directory inside the simulated filesystem.
pub const STORE_DIR: &str = "/sim/store";

/// Open retries before a recovery attempt counts as stuck; attempts past
/// [`SUPPRESS_AFTER`] run with random faults suppressed so a run cannot
/// starve on back-to-back injected read failures.
const OPEN_RETRIES: usize = 8;
const SUPPRESS_AFTER: usize = 3;

/// Distinct query shapes remembered for the efficiency cross-check.
const WORKLOAD_CAP: usize = 16;

/// One simulation run's knobs.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Master seed: schedule and every shard's fault stream derive from it.
    pub seed: u64,
    /// Schedule length.
    pub ops: usize,
    /// Random faults (torn writes, ENOSPC, short reads, failed fsyncs,
    /// latency) plus scheduled crash ops.
    pub faults: bool,
    /// Independent crash domains: each shard runs on its own seeded VFS.
    pub shards: usize,
    /// Run the full oracle/validation/efficiency check every N steps
    /// (1 = every step; recovery always checks regardless).
    pub check_every: usize,
    /// Initial pruning-index tier. A `tiered` run *flips* `exact ↔
    /// tiered` at every successful checkpoint, so it also exercises the
    /// runtime switch both ways; recoveries reapply the current tier
    /// (the tier is in-memory index state, rebuilt from the recovered
    /// catalog). `exact` runs never flip — they are the determinism
    /// baseline the committed replay traces were recorded against.
    pub tier: IndexTier,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            ops: 2000,
            faults: true,
            shards: 1,
            check_every: 1,
            tier: IndexTier::Exact,
        }
    }
}

/// An explicit schedule to run — the argument of [`run_ops`], used by
/// replay (`ops` from a trace file) and the crash sweep (`arm_crash`
/// kills one shard's k-th VFS mutation).
#[derive(Clone, Copy, Debug)]
pub struct RunSpec<'a> {
    /// Seed for every per-shard VFS fault stream.
    pub seed: u64,
    /// Recorded in the trace (the schedule itself already reflects it).
    pub faults: bool,
    /// Shard count: the world routes exactly like a real sharded store.
    pub shards: usize,
    /// Random-fault plan installed on every shard's VFS.
    pub plan: FaultPlan,
    /// The schedule to execute.
    pub ops: &'a [Op],
    /// Full check every N steps (0 = only the final check).
    pub check_every: usize,
    /// Arm shard `.0`'s VFS to crash on its `.1`-th mutating operation.
    pub arm_crash: Option<(usize, u64)>,
    /// Initial pruning-index tier (a `tiered` run flips at checkpoint
    /// boundaries; see [`SimConfig::tier`]).
    pub tier: IndexTier,
}

/// Why a run failed: the step index (if the failure is attributable to
/// one) and a human-readable reason.
#[derive(Clone, Debug)]
pub struct SimFailure {
    /// Index into the schedule, when the failure happened inside a step.
    pub step: Option<usize>,
    /// What diverged.
    pub reason: String,
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.step {
            Some(i) => write!(f, "step {i}: {}", self.reason),
            None => write!(f, "{}", self.reason),
        }
    }
}

/// A successful run's summary.
#[derive(Debug)]
pub struct RunReport {
    /// The captured trace (hash it for the determinism witness).
    pub trace: Trace,
    /// Fault-induced recoveries (single-shard reopens and full reboots).
    pub restarts: u64,
    /// Live entities at the end of the run.
    pub final_entities: u64,
    /// Total mutating VFS operations across every shard.
    pub vfs_mutations: u64,
    /// Mutating VFS operations per shard (the crash-sweep's point space:
    /// each shard's disk is an independently killable crash domain).
    pub vfs_mutations_per_shard: Vec<u64>,
}

struct World {
    /// The pruning-index tier currently applied to every shard. A run
    /// that *starts* tiered flips `exact ↔ tiered` at successful
    /// checkpoints; the tier is reapplied after every recovery (a
    /// reopened shard rebuilds with the spec's initial tier, not the
    /// flipped one).
    tier: IndexTier,
    /// Whether checkpoints flip the tier. True only when the spec asked
    /// for `tiered`: exact runs stay exact end to end so the committed
    /// replay traces (minted before the tier knob existed) keep their
    /// recorded hashes, and auto keeps its own ratchet under test.
    flip_tier: bool,
    /// One fault-injecting backend per shard — independent crash domains.
    vfss: Vec<Arc<SimVfs>>,
    /// Fault-free backend for the shard manifest: the manifest is written
    /// once at store creation and belongs to no crash domain; injecting
    /// faults there would test [`cind_storage::Manifest`], not recovery.
    meta_vfs: Arc<SimVfs>,
    clock: Arc<VirtualClock>,
    engine: ShardedEngine,
    oracle: Oracle,
    workload: Vec<Vec<String>>,
    restarts: u64,
}

pub(crate) fn sim_engine_options(vfs: Arc<SimVfs>, tier: IndexTier) -> EngineOptions {
    EngineOptions {
        config: Config {
            weight: 0.3,
            tier,
            // Small capacity so the schedule actually exercises splits.
            capacity: Capacity::MaxEntities(8),
            // Reorganizer on with a short op-count epoch so both trigger
            // paths — write-cadence steps and explicit `Op::Reorg` — fire
            // often enough that the crash sweep lands inside reorg actions.
            reorg: ReorgConfig {
                mode: ReorgMode::Auto,
                budget: 8,
                threshold: 0.02,
                epoch_ops: 16,
            },
            ..Config::default()
        },
        pool_pages: 64,
        query_threads: 1,
        // Window zero keeps the schedule single-writer deterministic: the
        // submitting thread is always its own fsync leader, so no timing
        // dependence sneaks into the trace hash. Group-commit *timing* is
        // exercised by the dedicated multi-writer crash tests instead.
        group_commit_window: std::time::Duration::ZERO,
        vfs: vfs as Arc<dyn Vfs>,
    }
}

/// Seed for shard `i`'s VFS fault stream (shard 0 keeps the historical
/// derivation so single-shard runs stay comparable across versions).
pub fn shard_vfs_seed(seed: u64, i: usize) -> u64 {
    (seed ^ 0xD6E8_FEB8_6659_FD93) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The sharded options a simulation world opens the store with: the
/// fault-free meta VFS as the default (manifest I/O) and one fault
/// backend per shard.
pub fn sim_sharded_options(
    meta_vfs: &Arc<SimVfs>,
    vfss: &[Arc<SimVfs>],
    tier: IndexTier,
) -> ShardedOptions {
    let mut opts =
        ShardedOptions::new(sim_engine_options(Arc::clone(meta_vfs), tier), vfss.len());
    opts.shard_vfs = vfss.iter().map(|v| Arc::clone(v) as Arc<dyn Vfs>).collect();
    opts
}

/// Opens (or recovers) the whole sharded engine, retrying through injected
/// faults. The first [`SUPPRESS_AFTER`] attempts keep random faults live —
/// recovery itself must survive short reads — later attempts suppress them
/// so a hostile fault plan cannot wedge the run. An armed-but-unfired
/// crash-point may fire *during* recovery; it is treated like any other
/// crash: cleared, then recovery is retried against the surviving bytes.
fn open_sharded(
    meta_vfs: &Arc<SimVfs>,
    vfss: &[Arc<SimVfs>],
    tier: IndexTier,
) -> Result<ShardedEngine, String> {
    let mut last = String::new();
    for attempt in 0..OPEN_RETRIES {
        if attempt >= SUPPRESS_AFTER {
            for vfs in vfss {
                vfs.set_suppress(true);
            }
        }
        match ShardedEngine::open(
            Path::new(STORE_DIR),
            sim_sharded_options(meta_vfs, vfss, tier),
        ) {
            Ok(engine) => {
                for vfs in vfss {
                    vfs.set_suppress(false);
                }
                return Ok(engine);
            }
            Err(e) => {
                last = e.to_string();
                for vfs in vfss {
                    if vfs.crashed() {
                        vfs.clear_crash();
                    }
                }
            }
        }
    }
    for vfs in vfss {
        vfs.set_suppress(false);
    }
    Err(format!("recovery failed after {OPEN_RETRIES} attempts: {last}"))
}

/// Fault vs. logical classification of an engine error. Fault errors mean
/// durability is in doubt and force a recovery; logical errors must match
/// the oracle's own rejection.
fn is_fault(e: &ServerError) -> bool {
    fn storage_fault(s: &StorageError) -> bool {
        matches!(s, StorageError::WalAppend(_))
    }
    match e {
        ServerError::Io(_) | ServerError::Persist(_) => true,
        ServerError::Storage(s) => storage_fault(s),
        ServerError::Core(CoreError::Storage(s)) => storage_fault(s),
        _ => false,
    }
}

fn wire(id: u64, attrs: &[(String, i64)]) -> WireEntity {
    WireEntity {
        id,
        attrs: attrs.iter().map(|(n, v)| (n.clone(), Value::Int(*v))).collect(),
    }
}

fn oracle_attrs(attrs: &[(String, i64)]) -> Vec<(String, Value)> {
    attrs.iter().map(|(n, v)| (n.clone(), Value::Int(*v))).collect()
}

/// Runs a generated schedule (see [`SimConfig`]).
///
/// # Errors
/// The first divergence, recovery failure or invariant violation.
pub fn run(cfg: &SimConfig) -> Result<RunReport, SimFailure> {
    let shards = cfg.shards.max(1);
    let ops = generate(cfg.seed, cfg.ops, cfg.faults, shards);
    let plan = if cfg.faults { FaultPlan::all() } else { FaultPlan::none() };
    run_ops(&RunSpec {
        seed: cfg.seed,
        faults: cfg.faults,
        shards,
        plan,
        ops: &ops,
        check_every: cfg.check_every,
        arm_crash: None,
        tier: cfg.tier,
    })
}

/// Runs an explicit schedule against a fresh world.
///
/// # Errors
/// The first divergence, recovery failure or invariant violation.
pub fn run_ops(spec: &RunSpec<'_>) -> Result<RunReport, SimFailure> {
    let shards = spec.shards.max(1);
    let clock = Arc::new(VirtualClock::new());
    let vfss: Vec<Arc<SimVfs>> = (0..shards)
        .map(|i| {
            Arc::new(SimVfs::new(
                shard_vfs_seed(spec.seed, i),
                spec.plan,
                Arc::clone(&clock),
            ))
        })
        .collect();
    let meta_vfs = Arc::new(SimVfs::new(
        spec.seed ^ 0x4D45_5441_4D45_5441,
        FaultPlan::none(),
        Arc::clone(&clock),
    ));
    if let Some((shard, k)) = spec.arm_crash {
        let Some(vfs) = vfss.get(shard) else {
            return Err(SimFailure {
                step: None,
                reason: format!("arm_crash targets shard {shard} of a {shards}-shard run"),
            });
        };
        vfs.arm_crash(k);
    }
    let engine = open_sharded(&meta_vfs, &vfss, spec.tier)
        .map_err(|reason| SimFailure { step: None, reason })?;
    let mut world = World {
        tier: spec.tier,
        flip_tier: spec.tier == IndexTier::Tiered,
        vfss,
        meta_vfs,
        clock,
        engine,
        oracle: Oracle::new(),
        workload: Vec::new(),
        restarts: 0,
    };
    let mut trace = Trace::new(spec.seed, spec.faults, shards, spec.ops.to_vec());

    for (index, op) in spec.ops.iter().enumerate() {
        let outcome =
            step(&mut world, op).map_err(|reason| SimFailure { step: Some(index), reason })?;
        let stats = world.engine.stats();
        trace.steps.push(StepRecord {
            index,
            op: op.describe(),
            outcome,
            entities: stats.entities,
            partitions: stats.partitions,
            clock_ns: world.clock.now_ns(),
        });
        if spec.check_every > 0 && (index + 1) % spec.check_every == 0 {
            full_check(&world.engine, &world.oracle, &world.workload)
                .map_err(|reason| SimFailure { step: Some(index), reason })?;
        }
    }
    full_check(&world.engine, &world.oracle, &world.workload)
        .map_err(|reason| SimFailure { step: None, reason: format!("final check: {reason}") })?;

    let per_shard: Vec<u64> = world.vfss.iter().map(|v| v.mutation_count()).collect();
    Ok(RunReport {
        restarts: world.restarts,
        final_entities: world.oracle.len() as u64,
        vfs_mutations: per_shard.iter().sum(),
        vfs_mutations_per_shard: per_shard,
        trace,
    })
}

/// Executes one op against both sides; returns the outcome tag or the
/// failure reason.
fn step(world: &mut World, op: &Op) -> Result<String, String> {
    match op {
        Op::Insert { id, attrs } => {
            let engine_result = world.engine.insert(&wire(*id, attrs)).map(|_| ());
            let mut after = world.oracle.clone();
            let oracle_result = after.insert(*id, &oracle_attrs(attrs));
            resolve_write(world, op, *id, engine_result, oracle_result, after)
        }
        Op::Update { id, attrs } => {
            let engine_result = world.engine.update(&wire(*id, attrs)).map(|_| ());
            let mut after = world.oracle.clone();
            let oracle_result = after.update(*id, &oracle_attrs(attrs));
            resolve_write(world, op, *id, engine_result, oracle_result, after)
        }
        Op::Delete { id } => {
            let engine_result = world.engine.delete(*id);
            let mut after = world.oracle.clone();
            let oracle_result = after.delete(*id);
            resolve_write(world, op, *id, engine_result, oracle_result, after)
        }
        Op::Query { attrs } => step_query(world, attrs),
        Op::Merge => {
            let result = world.engine.merge_pass(0.6).map(|_| ());
            resolve_maintenance(world, op, result)
        }
        Op::Reorg => {
            // Content-neutral like merge: entities move between partitions
            // but the logical store is unchanged, so the unchanged oracle
            // judges the recovery after a mid-action fault.
            let result = world.engine.reorg_step().map(|_| ());
            resolve_maintenance(world, op, result)
        }
        Op::Checkpoint => {
            let result = world.engine.checkpoint();
            let outcome = resolve_maintenance(world, op, result)?;
            // Checkpoint boundaries flip the pruning-index tier of a run
            // that started tiered: it alternates exact ↔ tiered
            // mid-schedule, exercising both runtime switches under the
            // oracle. Exact runs stay exact (the determinism baseline the
            // committed traces were recorded against); auto stays auto
            // (its ratchet is the thing under test). A fault-restart
            // already reapplied the current tier.
            if outcome == "ok" && world.flip_tier {
                world.tier = match world.tier {
                    IndexTier::Exact => IndexTier::Tiered,
                    IndexTier::Tiered => IndexTier::Exact,
                    IndexTier::Auto => IndexTier::Auto,
                };
                world.engine.set_index_tier(world.tier);
            }
            Ok(outcome)
        }
        Op::CrashRestart => {
            // Kill without warning: drop the whole engine mid-flight (no
            // checkpoint, no flush beyond what each op already forced) and
            // recover every shard from whatever its virtual disk holds.
            restart_all(world)?;
            match content_diff(&world.engine, &world.oracle) {
                None => Ok("restart".to_string()),
                Some(d) => Err(format!("state lost across clean kill: {d}")),
            }
        }
        Op::CrashDuringNext { countdown } => {
            // Single-shard form (legacy traces): the crash lands on shard 0.
            world.vfss[0].arm_crash(*countdown);
            Ok("armed".to_string())
        }
        Op::CrashShardDuringNext { shard, countdown } => match world.vfss.get(*shard) {
            Some(vfs) => {
                vfs.arm_crash(*countdown);
                Ok(format!("armed shard {shard}"))
            }
            None => Err(format!(
                "schedule targets shard {shard} but the run has {} shards",
                world.vfss.len()
            )),
        },
    }
}

/// Write-op resolution per the three-way protocol in the module docs. A
/// routed write touches exactly one shard — `world.engine.shard_of(id)` —
/// so a fault there is a *single-domain* failure: the survivors must stay
/// exact while the victim recovers in place.
fn resolve_write(
    world: &mut World,
    op: &Op,
    id: u64,
    engine_result: Result<(), ServerError>,
    oracle_result: Result<(), OracleErr>,
    after: Oracle,
) -> Result<String, String> {
    match engine_result {
        Ok(()) => match oracle_result {
            Ok(()) => {
                world.oracle = after;
                Ok("ok".to_string())
            }
            Err(oe) => Err(format!(
                "engine accepted `{}` but the oracle rejects it with {oe:?}",
                op.describe()
            )),
        },
        Err(e) if !is_fault(&e) => match oracle_result {
            Err(_) => Ok("err-logical".to_string()),
            Ok(()) => Err(format!(
                "engine rejected valid `{}`: {e}",
                op.describe()
            )),
        },
        Err(e) => {
            let victim = world.engine.shard_of(id);
            // The crash-domain claim, machine-checked: with the victim
            // down (not yet recovered), every surviving shard still equals
            // the oracle restricted to the ids it owns. The faulted op's
            // id routes to the victim, so pre- and post-op oracles agree
            // on every survivor.
            surviving_shards_check(world, victim, &world.oracle)?;
            reopen_victim(world, victim)?;
            // Durability on the victim is ambiguous: accept whichever
            // oracle state (pre- or post-op) its disk actually held; for
            // an op the oracle itself rejects, only the pre-state is legal.
            let candidates: Vec<&Oracle> = if oracle_result.is_ok() {
                vec![&world.oracle, &after]
            } else {
                vec![&world.oracle]
            };
            let mut diffs = Vec::new();
            let mut matched: Option<usize> = None;
            for (i, cand) in candidates.iter().enumerate() {
                match content_diff(&world.engine, cand) {
                    None => {
                        matched = Some(i);
                        break;
                    }
                    Some(d) => diffs.push(d),
                }
            }
            match matched {
                Some(1) => {
                    world.oracle = after;
                    Ok(format!("fault-restart-applied ({e})"))
                }
                Some(_) => Ok(format!("fault-restart-dropped ({e})")),
                None => Err(format!(
                    "after fault `{e}` on `{}` (shard {victim}), recovered store \
                     matches neither pre- nor post-op oracle: {}",
                    op.describe(),
                    diffs.join("; ")
                )),
            }
        }
    }
}

/// Maintenance ops (merge, checkpoint) never change logical content, but
/// they fan out over *every* shard, so a fault mid-pass is not a
/// single-domain failure: reboot the whole engine, after which the store
/// must equal the unchanged oracle.
fn resolve_maintenance(
    world: &mut World,
    op: &Op,
    result: Result<(), ServerError>,
) -> Result<String, String> {
    match result {
        Ok(()) => Ok("ok".to_string()),
        Err(e) if !is_fault(&e) => {
            Err(format!("`{}` failed non-fault: {e}", op.describe()))
        }
        Err(e) => {
            restart_all(world)?;
            match content_diff(&world.engine, &world.oracle) {
                None => Ok(format!("fault-restart ({e})")),
                Some(d) => Err(format!(
                    "after fault `{e}` during `{}`, recovered store diverges: {d}",
                    op.describe()
                )),
            }
        }
    }
}

fn step_query(world: &mut World, attrs: &[String]) -> Result<String, String> {
    // Known = interned on at least one shard (the sharded engine projects
    // NULL on shards that have never seen the name; only a name unknown
    // *everywhere* is a typed error, matching the unsharded catalog).
    let known = attrs.iter().all(|a| {
        (0..world.engine.shard_count()).any(|s| {
            world
                .engine
                .shard_engine(s)
                .with_parts(|table, _| table.catalog().lookup(a).is_some())
        })
    });
    let result = world.engine.query(attrs);
    if !known {
        return match result {
            Err(ServerError::UnknownAttribute(_)) => Ok("err-logical".to_string()),
            Ok((rows, _)) => Err(format!(
                "query for unknown attribute(s) {attrs:?} returned {} rows \
                 instead of a typed error",
                rows.len()
            )),
            Err(e) => Err(format!("query {attrs:?} failed unexpectedly: {e}")),
        };
    }
    match result {
        Ok((rows, _)) => {
            let expect = canonical_rows(&world.oracle.query(attrs));
            let got = canonical_rows(&rows);
            if got != expect {
                return Err(format!(
                    "query {attrs:?}: engine returned {} rows, oracle {} \
                     (first diff: engine {:?} vs oracle {:?})",
                    got.len(),
                    expect.len(),
                    got.iter().find(|r| !expect.contains(r)),
                    expect.iter().find(|r| !got.contains(r)),
                ));
            }
            if !world.workload.contains(&attrs.to_vec()) && world.workload.len() < WORKLOAD_CAP
            {
                world.workload.push(attrs.to_vec());
            }
            Ok("ok".to_string())
        }
        Err(e) => Err(format!("query {attrs:?} on known attributes failed: {e}")),
    }
}

/// While the victim shard is down, every other shard must hold *exactly*
/// the oracle entities that route to it — byte-identical attributes, no
/// losses, no strays. This runs before the victim is touched, so it is the
/// literal "surviving shards keep serving, unharmed" property.
fn surviving_shards_check(
    world: &World,
    victim: usize,
    oracle: &Oracle,
) -> Result<(), String> {
    for s in 0..world.engine.shard_count() {
        if s == victim {
            continue;
        }
        let engine = world.engine.shard_engine(s);
        if let Some(d) = shard_content_diff(&engine, oracle, |id| world.engine.shard_of(id) == s)
        {
            return Err(format!(
                "surviving shard {s} diverged while shard {victim} was down: {d}"
            ));
        }
    }
    Ok(())
}

/// Recovers one crashed shard in place ([`ShardedEngine::reopen_shard`]):
/// clear its crash flag and retry through injected faults, suppressing
/// them after [`SUPPRESS_AFTER`] attempts, exactly like a full open. The
/// other shards are never touched.
fn reopen_victim(world: &mut World, victim: usize) -> Result<(), String> {
    let vfs = Arc::clone(&world.vfss[victim]);
    vfs.clear_crash();
    let mut last = String::new();
    let mut recovered = false;
    for attempt in 0..OPEN_RETRIES {
        if attempt >= SUPPRESS_AFTER {
            vfs.set_suppress(true);
        }
        match world.engine.reopen_shard(victim) {
            Ok(()) => {
                recovered = true;
                break;
            }
            Err(e) => {
                last = e.to_string();
                if vfs.crashed() {
                    vfs.clear_crash();
                }
            }
        }
    }
    vfs.set_suppress(false);
    if !recovered {
        return Err(format!(
            "shard {victim} recovery failed after {OPEN_RETRIES} attempts: {last}"
        ));
    }
    world.restarts += 1;
    // The victim rebuilt with the spec's initial tier; reapply the current
    // (possibly checkpoint-flipped) one before checking.
    world.engine.shard_engine(victim).set_index_tier(world.tier);
    // Recovery must restore a structurally valid store; the content
    // comparison is the caller's job (candidates differ per op class).
    structural_check(&world.engine)?;
    efficiency_check(&world.engine, &world.workload)
}

/// Full reboot: clear every shard's crash flag and recover the whole
/// engine from the surviving bytes.
fn restart_all(world: &mut World) -> Result<(), String> {
    for vfs in &world.vfss {
        vfs.clear_crash();
    }
    let engine = open_sharded(&world.meta_vfs, &world.vfss, world.tier)?;
    world.engine = engine;
    world.restarts += 1;
    structural_check(&world.engine)?;
    efficiency_check(&world.engine, &world.workload)
}

/// Structural validation + full content equivalence + efficiency
/// cross-check.
fn full_check(
    engine: &ShardedEngine,
    oracle: &Oracle,
    workload: &[Vec<String>],
) -> Result<(), String> {
    structural_check(engine)?;
    if let Some(d) = content_diff(engine, oracle) {
        return Err(format!("content divergence: {d}"));
    }
    efficiency_check(engine, workload)
}

fn structural_check(engine: &ShardedEngine) -> Result<(), String> {
    match engine.validate() {
        Ok(v) if v.is_empty() => Ok(()),
        Ok(v) => Err(format!("structural validation failed: {}", v.join("; "))),
        Err(e) => Err(format!("validation errored: {e}")),
    }
}

/// Byte-level content comparison across every shard: each shard must hold
/// exactly the oracle entities that hash-route to it, with identical
/// attribute/value maps. Because the per-shard comparison also matches
/// counts, an entity that leaked onto the wrong shard shows up twice: as a
/// stray on the wrong shard and as missing from the right one. Returns the
/// first difference.
pub fn content_diff(engine: &ShardedEngine, oracle: &Oracle) -> Option<String> {
    for s in 0..engine.shard_count() {
        let shard = engine.shard_engine(s);
        if let Some(d) = shard_content_diff(&shard, oracle, |id| engine.shard_of(id) == s) {
            return Some(format!("[shard {s}] {d}"));
        }
    }
    None
}

/// One shard against the slice of the oracle it owns (`owns` is the
/// routing predicate): every owned oracle entity must exist with exactly
/// the same attribute/value map, and counts must match (so the shard holds
/// nothing extra — in particular nothing routed elsewhere).
fn shard_content_diff(
    engine: &Engine,
    oracle: &Oracle,
    owns: impl Fn(u64) -> bool,
) -> Option<String> {
    let owned: Vec<(u64, &BTreeMap<String, Value>)> =
        oracle.entities().filter(|(id, _)| owns(*id)).collect();
    engine.with_parts(|table, _| {
        if table.entity_count() != owned.len() {
            return Some(format!(
                "shard holds {} entities, oracle routes it {}",
                table.entity_count(),
                owned.len()
            ));
        }
        for (id, attrs) in &owned {
            let entity = match table.get(EntityId(*id)) {
                Ok(e) => e,
                Err(e) => return Some(format!("oracle entity {id} unreadable: {e}")),
            };
            let mut got: BTreeMap<String, Value> = BTreeMap::new();
            for (aid, value) in entity.attrs() {
                match table.catalog().name(*aid) {
                    Some(name) => {
                        got.insert(name.to_string(), value.clone());
                    }
                    None => {
                        return Some(format!(
                            "entity {id} has attribute id {aid:?} missing from catalog"
                        ))
                    }
                }
            }
            if &got != *attrs {
                return Some(format!(
                    "entity {id} diverges: store {got:?}, oracle {attrs:?}"
                ));
            }
        }
        None
    })
}

/// Recomputes Definition-1 EFFICIENCY(P) from nothing but raw segment
/// scans (per-entity synopses, partition synopsis = union of members,
/// partition size = sum of members) and compares it against the core
/// implementation, which uses the partitioner's *maintained* synopses —
/// so a drifted synopsis or size counter shows up here even when pruning
/// happens to stay correct. Per shard the comparison is on exact integer
/// counters; globally the check asserts the aggregation contract —
/// EFFICIENCY over the whole store is Σrelevant / Σread of the raw summed
/// counters, never an average of per-shard ratios.
fn efficiency_check(engine: &ShardedEngine, workload: &[Vec<String>]) -> Result<(), String> {
    let mut core_total = (0u64, 0u64);
    let mut independent_total = (0u64, 0u64);
    for s in 0..engine.shard_count() {
        let shard = engine.shard_engine(s);
        let (core, independent) = shard.with_parts(|table, cindy| {
            // Each shard interns names independently: rebuild the query
            // synopses against this shard's own catalog.
            let queries = workload_synopses(table, workload);
            let core = efficiency_counters_for(table, cindy, &queries);
            independent_counters(table, &queries).map(|ind| (core, ind))
        })?;
        if core != independent {
            return Err(format!(
                "shard {s} EFFICIENCY(P) counters mismatch: core {core:?} vs \
                 independent recompute {independent:?} over {} query shapes",
                workload.len()
            ));
        }
        core_total = (core_total.0 + core.0, core_total.1 + core.1);
        independent_total =
            (independent_total.0 + independent.0, independent_total.1 + independent.1);
    }
    let ratio = |(rel, read): (u64, u64)| {
        if read == 0 { 1.0 } else { rel as f64 / read as f64 }
    };
    let global_core = ratio(core_total);
    let global_independent = ratio(independent_total);
    if (global_core - global_independent).abs() > 1e-12 {
        return Err(format!(
            "global EFFICIENCY(P) mismatch: {global_core} from core counters vs \
             {global_independent} from raw recompute"
        ));
    }
    Ok(())
}

fn workload_synopses(table: &UniversalTable, workload: &[Vec<String>]) -> Vec<Synopsis> {
    let universe = table.universe();
    workload
        .iter()
        .filter_map(|attrs| {
            attrs
                .iter()
                .map(|a| table.catalog().lookup(a))
                .collect::<Option<Vec<_>>>()
                .map(|ids| Synopsis::from_attrs(universe, ids))
        })
        .collect()
}

fn independent_counters(
    table: &UniversalTable,
    queries: &[Synopsis],
) -> Result<(u64, u64), String> {
    let universe = table.universe();
    let mut relevant: u64 = 0;
    let mut read: u64 = 0;
    for seg in table.segment_ids().collect::<Vec<_>>() {
        let entities = table
            .scan_collect(seg)
            .map_err(|e| format!("scan of segment {seg} failed: {e}"))?;
        let mut bits: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        let mut partition_size: u64 = 0;
        for entity in &entities {
            let entity_bits: Vec<u32> =
                entity.attrs().iter().map(|(a, _)| a.index()).collect();
            let synopsis = Synopsis::from_bits(universe, entity_bits.iter().copied());
            // SIZE(e) under the Cells model = arity.
            let size = entity.attrs().len() as u64;
            let hits = queries.iter().filter(|q| !q.is_disjoint(&synopsis)).count() as u64;
            relevant += hits * size;
            bits.extend(entity_bits);
            partition_size += size;
        }
        if entities.is_empty() {
            continue;
        }
        let partition_synopsis = Synopsis::from_bits(universe, bits);
        let hits =
            queries.iter().filter(|q| !q.is_disjoint(&partition_synopsis)).count() as u64;
        read += hits * partition_size;
    }
    Ok((relevant, read))
}

/// Crash-schedule exploration, per crash domain: runs the schedule once
/// fault-free to count each shard's VFS mutation space, then re-runs it
/// once per (shard, mutation-index) pair with a crash armed exactly there,
/// requiring full recovery and oracle equivalence every time — the
/// machine-checked form of "N independent crash domains". Returns the
/// number of crash-points exercised across all shards.
///
/// # Errors
/// The first crash-point whose recovery diverges.
pub fn crash_sweep(seed: u64, ops_count: usize, shards: usize) -> Result<u64, SimFailure> {
    crash_sweep_with_tier(seed, ops_count, shards, IndexTier::Exact)
}

/// [`crash_sweep`] with an explicit initial pruning-index tier: the
/// `tiered` sweep proves a crash anywhere in the mutation space recovers
/// to an oracle-equivalent store *and* rebuilds the approximate tier
/// (recovery reapplies the current tier before the structural check, whose
/// tier invariants include the no-false-negative implication).
///
/// # Errors
/// The first crash-point whose recovery diverges.
pub fn crash_sweep_with_tier(
    seed: u64,
    ops_count: usize,
    shards: usize,
    tier: IndexTier,
) -> Result<u64, SimFailure> {
    let shards = shards.max(1);
    let ops = generate(seed, ops_count, false, shards);
    let base = run_ops(&RunSpec {
        seed,
        faults: false,
        shards,
        plan: FaultPlan::none(),
        ops: &ops,
        check_every: 0,
        arm_crash: None,
        tier,
    })?;
    let mut points = 0u64;
    for (shard, &count) in base.vfs_mutations_per_shard.iter().enumerate() {
        for k in 0..count {
            // Dirty tears on, random faults off: the crash is the experiment.
            run_ops(&RunSpec {
                seed,
                faults: false,
                shards,
                plan: FaultPlan::crash_only(),
                ops: &ops,
                check_every: 0,
                arm_crash: Some((shard, k)),
                tier,
            })
            .map_err(|f| SimFailure {
                step: f.step,
                reason: format!(
                    "crash-point {k}/{count} on shard {shard}: {}",
                    f.reason
                ),
            })?;
            points += 1;
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faultless_run_passes_every_check() {
        let cfg = SimConfig {
            seed: 1,
            ops: 300,
            faults: false,
            shards: 1,
            check_every: 1,
            ..SimConfig::default()
        };
        let report = run(&cfg).expect("faultless run");
        assert_eq!(report.restarts, 0);
        assert!(report.final_entities > 0);
        // Determinism: same seed, same trace hash.
        let again = run(&cfg).expect("rerun");
        assert_eq!(report.trace.hash(), again.trace.hash());
    }

    #[test]
    fn faultless_tiered_run_flips_at_checkpoints_and_passes() {
        // Same schedule class as the exact run, but starting tiered: every
        // checkpoint flips the tier, so the oracle, structural validation
        // (tier invariants included), and efficiency checks all run under
        // both representations and across both switch directions.
        let cfg = SimConfig {
            seed: 1,
            ops: 300,
            faults: false,
            shards: 1,
            check_every: 1,
            tier: IndexTier::Tiered,
        };
        let report = run(&cfg).expect("faultless tiered run");
        assert_eq!(report.restarts, 0);
        assert!(report.final_entities > 0);
        let again = run(&cfg).expect("tiered rerun");
        assert_eq!(report.trace.hash(), again.trace.hash());
    }

    #[test]
    fn faulty_tiered_run_recovers_and_stays_deterministic() {
        let cfg = SimConfig {
            seed: 7,
            ops: 400,
            faults: true,
            shards: 2,
            check_every: 4,
            tier: IndexTier::Tiered,
        };
        let a = run(&cfg).expect("faulty tiered run");
        let b = run(&cfg).expect("faulty tiered rerun");
        assert_eq!(a.trace.hash(), b.trace.hash());
    }

    #[test]
    fn small_tiered_crash_sweep_recovers_everywhere() {
        let points =
            crash_sweep_with_tier(3, 25, 1, IndexTier::Tiered).expect("tiered sweep");
        assert!(points > 0, "schedule produced no crash-points");
    }

    #[test]
    fn faulty_run_recovers_and_stays_deterministic() {
        let cfg = SimConfig {
            seed: 7,
            ops: 400,
            faults: true,
            shards: 1,
            check_every: 4,
            ..SimConfig::default()
        };
        let a = run(&cfg).expect("faulty run");
        let b = run(&cfg).expect("faulty rerun");
        assert_eq!(a.trace.hash(), b.trace.hash(), "fault stream must be deterministic");
    }

    #[test]
    fn sharded_faulty_run_recovers_and_stays_deterministic() {
        let cfg = SimConfig {
            seed: 13,
            ops: 400,
            faults: true,
            shards: 3,
            check_every: 4,
            ..SimConfig::default()
        };
        let a = run(&cfg).expect("sharded faulty run");
        let b = run(&cfg).expect("sharded faulty rerun");
        assert_eq!(a.trace.hash(), b.trace.hash(), "sharded runs must be deterministic");
        assert_eq!(a.vfs_mutations_per_shard.len(), 3);
        // Routing spreads the workload: every crash domain saw real I/O.
        for (s, &m) in a.vfs_mutations_per_shard.iter().enumerate() {
            assert!(m > 0, "shard {s} performed no VFS mutations");
        }
    }

    #[test]
    fn small_crash_sweep_recovers_everywhere() {
        let points = crash_sweep(3, 25, 1).expect("sweep");
        assert!(points > 0, "schedule produced no crash-points");
    }

    #[test]
    fn sharded_crash_sweep_kills_each_domain_separately() {
        let points = crash_sweep(5, 20, 2).expect("sharded sweep");
        assert!(points > 0, "sharded schedule produced no crash-points");
    }
}
