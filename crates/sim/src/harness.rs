//! The simulation harness: drives a seeded schedule against a real
//! [`cind_server::Engine`] running on the fault-injecting VFS, checks every
//! answer against the model-based [`Oracle`], and turns crashes into
//! recovery exercises.
//!
//! ## The step protocol
//!
//! Every write op is resolved three ways:
//!
//! * **Engine Ok** — the oracle must accept it too; divergence is a bug.
//! * **Engine logical error** (duplicate id, unknown id, unknown
//!   attribute) — the oracle must reject it for the same reason.
//! * **Engine fault error** (WAL append failure, persistence failure, a
//!   fired crash-point) — durability is now ambiguous: the mutation may or
//!   may not have reached disk before the fault. The harness restarts the
//!   engine (recovering from the surviving bytes) and accepts the outcome
//!   iff the recovered store equals *either* the pre-op or the post-op
//!   oracle — anything else (a half-applied group, a resurrected delete, a
//!   lost earlier commit) fails the run.
//!
//! After every step (configurable) and after every recovery the harness
//! runs the full check: structural validation, byte-level content
//! equivalence against the oracle, and a Definition-1 EFFICIENCY(P)
//! recomputation from raw segment scans compared against the core
//! implementation.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use cind_model::{EntityId, Synopsis, Value};
use cind_server::{Engine, EngineOptions, ServerError, WireEntity};
use cind_storage::{StorageError, Vfs};
use cind_storage::UniversalTable;
use cinderella_core::{efficiency, Capacity, Config, CoreError};

use crate::clock::VirtualClock;
use crate::oracle::{canonical_rows, Oracle, OracleErr};
use crate::schedule::{generate, Op};
use crate::trace::{StepRecord, Trace};
use crate::vfs::{FaultPlan, SimVfs};

/// Virtual store directory inside the simulated filesystem.
pub const STORE_DIR: &str = "/sim/store";

/// Open retries before a recovery attempt counts as stuck; attempts past
/// [`SUPPRESS_AFTER`] run with random faults suppressed so a run cannot
/// starve on back-to-back injected read failures.
const OPEN_RETRIES: usize = 8;
const SUPPRESS_AFTER: usize = 3;

/// Distinct query shapes remembered for the efficiency cross-check.
const WORKLOAD_CAP: usize = 16;

/// One simulation run's knobs.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Master seed: schedule and fault stream both derive from it.
    pub seed: u64,
    /// Schedule length.
    pub ops: usize,
    /// Random faults (torn writes, ENOSPC, short reads, failed fsyncs,
    /// latency) plus scheduled crash ops.
    pub faults: bool,
    /// Run the full oracle/validation/efficiency check every N steps
    /// (1 = every step; recovery always checks regardless).
    pub check_every: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self { seed: 0, ops: 2000, faults: true, check_every: 1 }
    }
}

/// Why a run failed: the step index (if the failure is attributable to
/// one) and a human-readable reason.
#[derive(Clone, Debug)]
pub struct SimFailure {
    /// Index into the schedule, when the failure happened inside a step.
    pub step: Option<usize>,
    /// What diverged.
    pub reason: String,
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.step {
            Some(i) => write!(f, "step {i}: {}", self.reason),
            None => write!(f, "{}", self.reason),
        }
    }
}

/// A successful run's summary.
#[derive(Debug)]
pub struct RunReport {
    /// The captured trace (hash it for the determinism witness).
    pub trace: Trace,
    /// Fault-induced engine restarts that recovered successfully.
    pub restarts: u64,
    /// Live entities at the end of the run.
    pub final_entities: u64,
    /// Total mutating VFS operations (the crash-sweep's point space).
    pub vfs_mutations: u64,
}

struct World {
    vfs: Arc<SimVfs>,
    clock: Arc<VirtualClock>,
    engine: Engine,
    oracle: Oracle,
    workload: Vec<Vec<String>>,
    restarts: u64,
}

pub(crate) fn sim_engine_options(vfs: Arc<SimVfs>) -> EngineOptions {
    EngineOptions {
        config: Config {
            weight: 0.3,
            // Small capacity so the schedule actually exercises splits.
            capacity: Capacity::MaxEntities(8),
            ..Config::default()
        },
        pool_pages: 64,
        query_threads: 1,
        vfs: vfs as Arc<dyn Vfs>,
    }
}

/// Opens (or recovers) the engine, retrying through injected faults. The
/// first [`SUPPRESS_AFTER`] attempts keep random faults live — recovery
/// itself must survive short reads — later attempts suppress them so a
/// hostile fault plan cannot wedge the run. An armed-but-unfired
/// crash-point may fire *during* recovery; it is treated like any other
/// crash: cleared, then recovery is retried against the surviving bytes.
fn open_engine(vfs: &Arc<SimVfs>) -> Result<Engine, String> {
    let mut last = String::new();
    for attempt in 0..OPEN_RETRIES {
        if attempt >= SUPPRESS_AFTER {
            vfs.set_suppress(true);
        }
        match Engine::open(Path::new(STORE_DIR), sim_engine_options(Arc::clone(vfs))) {
            Ok(engine) => {
                vfs.set_suppress(false);
                return Ok(engine);
            }
            Err(e) => {
                last = e.to_string();
                if vfs.crashed() {
                    vfs.clear_crash();
                }
            }
        }
    }
    vfs.set_suppress(false);
    Err(format!("recovery failed after {OPEN_RETRIES} attempts: {last}"))
}

/// Fault vs. logical classification of an engine error. Fault errors mean
/// durability is in doubt and force a restart; logical errors must match
/// the oracle's own rejection.
fn is_fault(e: &ServerError) -> bool {
    fn storage_fault(s: &StorageError) -> bool {
        matches!(s, StorageError::WalAppend(_))
    }
    match e {
        ServerError::Io(_) | ServerError::Persist(_) => true,
        ServerError::Storage(s) => storage_fault(s),
        ServerError::Core(CoreError::Storage(s)) => storage_fault(s),
        _ => false,
    }
}

fn wire(id: u64, attrs: &[(String, i64)]) -> WireEntity {
    WireEntity {
        id,
        attrs: attrs.iter().map(|(n, v)| (n.clone(), Value::Int(*v))).collect(),
    }
}

fn oracle_attrs(attrs: &[(String, i64)]) -> Vec<(String, Value)> {
    attrs.iter().map(|(n, v)| (n.clone(), Value::Int(*v))).collect()
}

/// Runs a generated schedule (see [`SimConfig`]).
///
/// # Errors
/// The first divergence, recovery failure or invariant violation.
pub fn run(cfg: &SimConfig) -> Result<RunReport, SimFailure> {
    let ops = generate(cfg.seed, cfg.ops, cfg.faults);
    let plan = if cfg.faults { FaultPlan::all() } else { FaultPlan::none() };
    run_ops(cfg.seed, cfg.faults, plan, &ops, cfg.check_every, None)
}

/// Runs an explicit schedule against a fresh world — the entry point for
/// replay (`ops` from a trace file) and the crash sweep (`arm_crash`
/// kills the k-th VFS mutation).
///
/// # Errors
/// The first divergence, recovery failure or invariant violation.
pub fn run_ops(
    seed: u64,
    faults: bool,
    plan: FaultPlan,
    ops: &[Op],
    check_every: usize,
    arm_crash: Option<u64>,
) -> Result<RunReport, SimFailure> {
    let clock = Arc::new(VirtualClock::new());
    let vfs = Arc::new(SimVfs::new(
        seed ^ 0xD6E8_FEB8_6659_FD93,
        plan,
        Arc::clone(&clock),
    ));
    if let Some(k) = arm_crash {
        vfs.arm_crash(k);
    }
    let engine = open_engine(&vfs).map_err(|reason| SimFailure { step: None, reason })?;
    let mut world = World {
        vfs,
        clock,
        engine,
        oracle: Oracle::new(),
        workload: Vec::new(),
        restarts: 0,
    };
    let mut trace = Trace::new(seed, faults, ops.to_vec());

    for (index, op) in ops.iter().enumerate() {
        let outcome =
            step(&mut world, op).map_err(|reason| SimFailure { step: Some(index), reason })?;
        let stats = world.engine.stats();
        trace.steps.push(StepRecord {
            index,
            op: op.describe(),
            outcome,
            entities: stats.entities,
            partitions: stats.partitions,
            clock_ns: world.clock.now_ns(),
        });
        if check_every > 0 && (index + 1) % check_every == 0 {
            full_check(&world.engine, &world.oracle, &world.workload)
                .map_err(|reason| SimFailure { step: Some(index), reason })?;
        }
    }
    full_check(&world.engine, &world.oracle, &world.workload)
        .map_err(|reason| SimFailure { step: None, reason: format!("final check: {reason}") })?;

    Ok(RunReport {
        restarts: world.restarts,
        final_entities: world.oracle.len() as u64,
        vfs_mutations: world.vfs.mutation_count(),
        trace,
    })
}

/// Executes one op against both sides; returns the outcome tag or the
/// failure reason.
fn step(world: &mut World, op: &Op) -> Result<String, String> {
    match op {
        Op::Insert { id, attrs } => {
            let engine_result = world.engine.insert(&wire(*id, attrs)).map(|_| ());
            let mut after = world.oracle.clone();
            let oracle_result = after.insert(*id, &oracle_attrs(attrs));
            resolve_write(world, op, engine_result, oracle_result, after)
        }
        Op::Update { id, attrs } => {
            let engine_result = world.engine.update(&wire(*id, attrs)).map(|_| ());
            let mut after = world.oracle.clone();
            let oracle_result = after.update(*id, &oracle_attrs(attrs));
            resolve_write(world, op, engine_result, oracle_result, after)
        }
        Op::Delete { id } => {
            let engine_result = world.engine.delete(*id);
            let mut after = world.oracle.clone();
            let oracle_result = after.delete(*id);
            resolve_write(world, op, engine_result, oracle_result, after)
        }
        Op::Query { attrs } => step_query(world, attrs),
        Op::Merge => {
            let result = world.engine.merge_pass(0.6).map(|_| ());
            resolve_maintenance(world, op, result)
        }
        Op::Checkpoint => {
            let result = world.engine.checkpoint();
            resolve_maintenance(world, op, result)
        }
        Op::CrashRestart => {
            // Kill without warning: drop the engine mid-flight (no
            // checkpoint, no flush beyond what each op already forced) and
            // recover from whatever the virtual disk holds.
            restart(world)?;
            let diff = content_diff(&world.engine, &world.oracle);
            match diff {
                None => Ok("restart".to_string()),
                Some(d) => Err(format!("state lost across clean kill: {d}")),
            }
        }
        Op::CrashDuringNext { countdown } => {
            world.vfs.arm_crash(*countdown);
            Ok("armed".to_string())
        }
    }
}

/// Write-op resolution per the three-way protocol in the module docs.
fn resolve_write(
    world: &mut World,
    op: &Op,
    engine_result: Result<(), ServerError>,
    oracle_result: Result<(), OracleErr>,
    after: Oracle,
) -> Result<String, String> {
    match engine_result {
        Ok(()) => match oracle_result {
            Ok(()) => {
                world.oracle = after;
                Ok("ok".to_string())
            }
            Err(oe) => Err(format!(
                "engine accepted `{}` but the oracle rejects it with {oe:?}",
                op.describe()
            )),
        },
        Err(e) if !is_fault(&e) => match oracle_result {
            Err(_) => Ok("err-logical".to_string()),
            Ok(()) => Err(format!(
                "engine rejected valid `{}`: {e}",
                op.describe()
            )),
        },
        Err(e) => {
            // Fault: durability ambiguous. Restart and accept whichever
            // oracle state (pre- or post-op) the disk actually holds; for
            // an op the oracle itself rejects, only the pre-state is legal.
            restart(world)?;
            let candidates: Vec<(&Oracle, &str)> = if oracle_result.is_ok() {
                vec![(&world.oracle, "pre-op"), (&after, "post-op")]
            } else {
                vec![(&world.oracle, "pre-op")]
            };
            let mut diffs = Vec::new();
            let mut matched: Option<usize> = None;
            for (i, (cand, _)) in candidates.iter().enumerate() {
                match content_diff(&world.engine, cand) {
                    None => {
                        matched = Some(i);
                        break;
                    }
                    Some(d) => diffs.push(d),
                }
            }
            match matched {
                Some(1) => {
                    world.oracle = after;
                    Ok(format!("fault-restart-applied ({e})"))
                }
                Some(_) => Ok(format!("fault-restart-dropped ({e})")),
                None => Err(format!(
                    "after fault `{e}` on `{}`, recovered store matches neither \
                     pre- nor post-op oracle: {}",
                    op.describe(),
                    diffs.join("; ")
                )),
            }
        }
    }
}

/// Maintenance ops (merge, checkpoint) never change logical content: on a
/// fault the recovered store must equal the unchanged oracle.
fn resolve_maintenance(
    world: &mut World,
    op: &Op,
    result: Result<(), ServerError>,
) -> Result<String, String> {
    match result {
        Ok(()) => Ok("ok".to_string()),
        Err(e) if !is_fault(&e) => {
            Err(format!("`{}` failed non-fault: {e}", op.describe()))
        }
        Err(e) => {
            restart(world)?;
            match content_diff(&world.engine, &world.oracle) {
                None => Ok(format!("fault-restart ({e})")),
                Some(d) => Err(format!(
                    "after fault `{e}` during `{}`, recovered store diverges: {d}",
                    op.describe()
                )),
            }
        }
    }
}

fn step_query(world: &mut World, attrs: &[String]) -> Result<String, String> {
    let known = world
        .engine
        .with_parts(|table, _| attrs.iter().all(|a| table.catalog().lookup(a).is_some()));
    let result = world.engine.query(attrs);
    if !known {
        return match result {
            Err(ServerError::UnknownAttribute(_)) => Ok("err-logical".to_string()),
            Ok((rows, _)) => Err(format!(
                "query for unknown attribute(s) {attrs:?} returned {} rows \
                 instead of a typed error",
                rows.len()
            )),
            Err(e) => Err(format!("query {attrs:?} failed unexpectedly: {e}")),
        };
    }
    match result {
        Ok((rows, _)) => {
            let expect = canonical_rows(&world.oracle.query(attrs));
            let got = canonical_rows(&rows);
            if got != expect {
                return Err(format!(
                    "query {attrs:?}: engine returned {} rows, oracle {} \
                     (first diff: engine {:?} vs oracle {:?})",
                    got.len(),
                    expect.len(),
                    got.iter().find(|r| !expect.contains(r)),
                    expect.iter().find(|r| !got.contains(r)),
                ));
            }
            if !world.workload.contains(&attrs.to_vec()) && world.workload.len() < WORKLOAD_CAP
            {
                world.workload.push(attrs.to_vec());
            }
            Ok("ok".to_string())
        }
        Err(e) => Err(format!("query {attrs:?} on known attributes failed: {e}")),
    }
}

/// Reboot: clear the crash flag and recover from the surviving bytes.
fn restart(world: &mut World) -> Result<(), String> {
    world.vfs.clear_crash();
    let engine = open_engine(&world.vfs)?;
    world.engine = engine;
    world.restarts += 1;
    // Recovery must restore a structurally valid store; the content
    // comparison is the caller's job (candidates differ per op class).
    structural_check(&world.engine)?;
    efficiency_check(&world.engine, &world.workload)
}

/// Structural validation + full content equivalence + efficiency
/// cross-check.
fn full_check(engine: &Engine, oracle: &Oracle, workload: &[Vec<String>]) -> Result<(), String> {
    structural_check(engine)?;
    if let Some(d) = content_diff(engine, oracle) {
        return Err(format!("content divergence: {d}"));
    }
    efficiency_check(engine, workload)
}

fn structural_check(engine: &Engine) -> Result<(), String> {
    match engine.validate() {
        Ok(v) if v.is_empty() => Ok(()),
        Ok(v) => Err(format!("structural validation failed: {}", v.join("; "))),
        Err(e) => Err(format!("validation errored: {e}")),
    }
}

/// Byte-level content comparison: every oracle entity must exist in the
/// store with exactly the same attribute/value map, and counts must match
/// (so the store holds nothing extra). Returns the first difference.
pub(crate) fn content_diff(engine: &Engine, oracle: &Oracle) -> Option<String> {
    engine.with_parts(|table, _| {
        if table.entity_count() != oracle.len() {
            return Some(format!(
                "store holds {} entities, oracle {}",
                table.entity_count(),
                oracle.len()
            ));
        }
        for (id, attrs) in oracle.entities() {
            let entity = match table.get(EntityId(id)) {
                Ok(e) => e,
                Err(e) => return Some(format!("oracle entity {id} unreadable: {e}")),
            };
            let mut got: BTreeMap<String, Value> = BTreeMap::new();
            for (aid, value) in entity.attrs() {
                match table.catalog().name(*aid) {
                    Some(name) => {
                        got.insert(name.to_string(), value.clone());
                    }
                    None => {
                        return Some(format!(
                            "entity {id} has attribute id {aid:?} missing from catalog"
                        ))
                    }
                }
            }
            if &got != attrs {
                return Some(format!(
                    "entity {id} diverges: store {got:?}, oracle {attrs:?}"
                ));
            }
        }
        None
    })
}

/// Recomputes Definition-1 EFFICIENCY(P) from nothing but raw segment
/// scans (per-entity synopses, partition synopsis = union of members,
/// partition size = sum of members) and compares it against the core
/// implementation, which uses the partitioner's *maintained* synopses —
/// so a drifted synopsis or size counter shows up here even when pruning
/// happens to stay correct.
fn efficiency_check(engine: &Engine, workload: &[Vec<String>]) -> Result<(), String> {
    engine.with_parts(|table, cindy| {
        let queries = workload_synopses(table, workload);
        let core_eff = efficiency(table, cindy, &queries);
        let independent = independent_efficiency(table, &queries)?;
        if (core_eff - independent).abs() > 1e-9 {
            return Err(format!(
                "EFFICIENCY(P) mismatch: core {core_eff} vs independent recompute \
                 {independent} over {} queries",
                queries.len()
            ));
        }
        Ok(())
    })
}

fn workload_synopses(table: &UniversalTable, workload: &[Vec<String>]) -> Vec<Synopsis> {
    let universe = table.universe();
    workload
        .iter()
        .filter_map(|attrs| {
            attrs
                .iter()
                .map(|a| table.catalog().lookup(a))
                .collect::<Option<Vec<_>>>()
                .map(|ids| Synopsis::from_attrs(universe, ids))
        })
        .collect()
}

fn independent_efficiency(
    table: &UniversalTable,
    queries: &[Synopsis],
) -> Result<f64, String> {
    let universe = table.universe();
    let mut relevant: u64 = 0;
    let mut read: u64 = 0;
    for seg in table.segment_ids().collect::<Vec<_>>() {
        let entities = table
            .scan_collect(seg)
            .map_err(|e| format!("scan of segment {seg} failed: {e}"))?;
        let mut bits: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        let mut partition_size: u64 = 0;
        for entity in &entities {
            let entity_bits: Vec<u32> =
                entity.attrs().iter().map(|(a, _)| a.index()).collect();
            let synopsis = Synopsis::from_bits(universe, entity_bits.iter().copied());
            // SIZE(e) under the Cells model = arity.
            let size = entity.attrs().len() as u64;
            let hits = queries.iter().filter(|q| !q.is_disjoint(&synopsis)).count() as u64;
            relevant += hits * size;
            bits.extend(entity_bits);
            partition_size += size;
        }
        if entities.is_empty() {
            continue;
        }
        let partition_synopsis = Synopsis::from_bits(universe, bits);
        let hits =
            queries.iter().filter(|q| !q.is_disjoint(&partition_synopsis)).count() as u64;
        read += hits * partition_size;
    }
    // Definition 1's denominator-zero case: a workload that reads nothing
    // is vacuously efficient (see DESIGN.md).
    Ok(if read == 0 { 1.0 } else { relevant as f64 / read as f64 })
}

/// Crash-schedule exploration: runs the schedule once fault-free to count
/// the VFS mutation space, then re-runs it once per mutation index with a
/// crash armed exactly there, requiring full recovery and oracle
/// equivalence every time. Returns the number of crash-points exercised.
///
/// # Errors
/// The first crash-point whose recovery diverges.
pub fn crash_sweep(seed: u64, ops_count: usize) -> Result<u64, SimFailure> {
    let ops = generate(seed, ops_count, false);
    let base = run_ops(seed, false, FaultPlan::none(), &ops, 0, None)?;
    let points = base.vfs_mutations;
    for k in 0..points {
        // Dirty tears on, random faults off: the crash is the experiment.
        run_ops(seed, false, FaultPlan::crash_only(), &ops, 0, Some(k)).map_err(|f| {
            SimFailure {
                step: f.step,
                reason: format!("crash-point {k}/{points}: {}", f.reason),
            }
        })?;
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faultless_run_passes_every_check() {
        let report = run(&SimConfig { seed: 1, ops: 300, faults: false, check_every: 1 })
            .expect("faultless run");
        assert_eq!(report.restarts, 0);
        assert!(report.final_entities > 0);
        // Determinism: same seed, same trace hash.
        let again = run(&SimConfig { seed: 1, ops: 300, faults: false, check_every: 1 })
            .expect("rerun");
        assert_eq!(report.trace.hash(), again.trace.hash());
    }

    #[test]
    fn faulty_run_recovers_and_stays_deterministic() {
        let cfg = SimConfig { seed: 7, ops: 400, faults: true, check_every: 4 };
        let a = run(&cfg).expect("faulty run");
        let b = run(&cfg).expect("faulty rerun");
        assert_eq!(a.trace.hash(), b.trace.hash(), "fault stream must be deterministic");
    }

    #[test]
    fn small_crash_sweep_recovers_everywhere() {
        let points = crash_sweep(3, 25).expect("sweep");
        assert!(points > 0, "schedule produced no crash-points");
    }
}
