//! Crash-consistency tests for the WAL group-commit coordinator, driven
//! through the simulator's fault-injection VFS.
//!
//! The coordinator introduces two crash surfaces the per-op WAL never
//! had:
//!
//! * **after the leader's append, before fsync returns** — several
//!   writers' transaction frames are on the (virtual) disk but *none* of
//!   them has been acknowledged; the armed crash fires on the `sync`
//!   mutation, which in [`SimVfs`] keeps the written bytes and merely
//!   reports the failure — exactly a power cut between `write` and
//!   `fsync` completion;
//! * **mid-group torn write** — the crash fires on the coalesced
//!   multi-transaction `write` itself, tearing the group buffer at an
//!   arbitrary byte (optionally followed by garbage).
//!
//! Both must preserve the contract the robustness suite pins down for
//! the per-op path: an acknowledged commit is always replayable, and an
//! unacknowledged one either vanishes cleanly or replays *whole* —
//! never a partial entity. The sweep below arms a crash at a range of
//! mutation countdowns while concurrent writers hammer one engine, so
//! over the sweep the crash lands on both `write` and `sync` mutations
//! of multi-writer groups; two deterministic single-writer tests then
//! target each surface exactly.

use std::collections::BTreeSet;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cind_model::{EntityId, Value};
use cind_server::{Engine, EngineOptions, WireEntity};
use cind_sim::clock::VirtualClock;
use cind_sim::{FaultPlan, SimVfs};
use cind_storage::Vfs;
use cinderella_core::{Capacity, Config};

const STORE: &str = "/gc/store";

fn sim_vfs(seed: u64) -> Arc<SimVfs> {
    Arc::new(SimVfs::new(seed, FaultPlan::crash_only(), Arc::new(VirtualClock::new())))
}

fn opts(vfs: &Arc<SimVfs>, window: Duration) -> EngineOptions {
    EngineOptions {
        config: Config {
            weight: 0.3,
            capacity: Capacity::MaxEntities(8),
            ..Config::default()
        },
        pool_pages: 64,
        query_threads: 1,
        group_commit_window: window,
        vfs: Arc::clone(vfs) as Arc<dyn Vfs>,
    }
}

fn entity(id: u64) -> WireEntity {
    // Two attributes per entity: replaying half an entity would be
    // visible as a missing attribute, so full-or-nothing is checkable.
    WireEntity {
        id,
        attrs: vec![
            (format!("a{}", id % 7), Value::Int(id as i64)),
            ("tag".to_string(), Value::Text(format!("e{id}"))),
        ],
    }
}

/// Asserts `id` is present with its *complete* attribute set.
fn assert_whole(engine: &Engine, id: u64) {
    engine.with_parts(|table, _| {
        let stored = table.get(EntityId(id)).unwrap_or_else(|e| {
            panic!("entity {id} unreadable after recovery: {e}");
        });
        assert_eq!(stored.attrs().len(), 2, "entity {id} replayed partially");
    });
}

/// Reopens the store after a crash and checks every invariant the
/// coordinator must preserve: acked entities present and whole, any
/// surviving unacked entity whole, structural validation clean.
fn check_recovery(vfs: &Arc<SimVfs>, acked: &BTreeSet<u64>, all_ids: &[u64]) {
    vfs.clear_crash();
    let engine = Engine::open(Path::new(STORE), opts(vfs, Duration::ZERO))
        .expect("recovery after group-commit crash");
    for &id in acked {
        assert_whole(&engine, id);
    }
    for &id in all_ids {
        let present = engine.with_parts(|table, _| table.get(EntityId(id)).is_ok());
        if present {
            assert_whole(&engine, id);
        } else {
            assert!(
                !acked.contains(&id),
                "acked entity {id} vanished across the crash"
            );
        }
    }
    let violations = engine.validate().expect("validation runs");
    assert!(violations.is_empty(), "post-crash store invalid: {violations:?}");
}

/// Multi-writer sweep: arm a crash `countdown` mutations into a phase
/// where 4 threads insert through one windowed coordinator. Across the
/// sweep the crash lands on coalesced-group `write`s and on group
/// `sync`s; every landing must satisfy [`check_recovery`].
#[test]
fn acked_commits_survive_crashes_across_the_group_commit_sweep() {
    for (round, countdown) in [2u64, 3, 5, 8, 13, 21, 34].into_iter().enumerate() {
        let vfs = sim_vfs(0xC0FFEE ^ round as u64);
        let engine = Arc::new(
            Engine::open(Path::new(STORE), opts(&vfs, Duration::from_micros(1500)))
                .expect("fresh store opens"),
        );
        let acked = Arc::new(Mutex::new(BTreeSet::new()));
        vfs.arm_crash(countdown);

        let all_ids: Vec<u64> = (0..100).collect();
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let engine = Arc::clone(&engine);
                let acked = Arc::clone(&acked);
                s.spawn(move || {
                    for i in 0..25u64 {
                        let id = w * 25 + i;
                        if engine.insert(&entity(id)).is_ok() {
                            acked.lock().unwrap().insert(id);
                        }
                    }
                });
            }
        });

        assert!(
            vfs.crashed(),
            "countdown {countdown} never fired — sweep lost its crash coverage"
        );
        drop(engine);
        let acked = Arc::try_unwrap(acked)
            .map(Mutex::into_inner)
            .expect("writers joined")
            .expect("acked set unpoisoned");
        check_recovery(&vfs, &acked, &all_ids);
    }
}

/// Deterministic single-writer hit on the group `write` mutation: the
/// append itself tears. The insert must fail, and recovery must come
/// back clean with the torn transaction dropped (or, if the tear spared
/// the full frame, replayed whole).
#[test]
fn torn_group_write_recovers_clean()  {
    let vfs = sim_vfs(7);
    let engine = Engine::open(Path::new(STORE), opts(&vfs, Duration::ZERO))
        .expect("fresh store opens");
    let mut acked = BTreeSet::new();
    if engine.insert(&entity(1)).is_ok() {
        acked.insert(1);
    }
    // Window 0, single writer: each insert is exactly one WAL `write`
    // then one `sync`. Countdown 0 = the very next mutation, the append.
    vfs.arm_crash(0);
    assert!(engine.insert(&entity(2)).is_err(), "torn append must not ack");
    assert!(vfs.crashed());
    drop(engine);
    check_recovery(&vfs, &acked, &[1, 2]);
}

/// Deterministic single-writer hit on the group `sync` mutation: bytes
/// written, fsync reports failure — the "after leader append, before
/// fsync returns to followers" point. The insert must not ack even
/// though its bytes reached the virtual disk; on recovery the entity may
/// legitimately replay (whole) or vanish.
#[test]
fn crash_between_group_append_and_fsync_never_acks() {
    let vfs = sim_vfs(11);
    let engine = Engine::open(Path::new(STORE), opts(&vfs, Duration::ZERO))
        .expect("fresh store opens");
    let mut acked = BTreeSet::new();
    if engine.insert(&entity(1)).is_ok() {
        acked.insert(1);
    }
    // Countdown 1 skips the append and lands on its fsync.
    vfs.arm_crash(1);
    assert!(
        engine.insert(&entity(2)).is_err(),
        "commit whose fsync crashed must not ack"
    );
    assert!(vfs.crashed());
    drop(engine);
    check_recovery(&vfs, &acked, &[1, 2]);
}

/// Sanity for the sweep's premise: with a window and concurrent writers,
/// the coordinator really does coalesce (fewer fsyncs than commits), and
/// a crash-free windowed run loses nothing.
#[test]
fn windowed_commits_coalesce_and_lose_nothing_without_a_crash() {
    let vfs = sim_vfs(23);
    let engine = Arc::new(
        Engine::open(Path::new(STORE), opts(&vfs, Duration::from_millis(2)))
            .expect("fresh store opens"),
    );
    std::thread::scope(|s| {
        for w in 0..4u64 {
            let engine = Arc::clone(&engine);
            s.spawn(move || {
                for i in 0..50u64 {
                    engine.insert(&entity(w * 50 + i)).expect("crash-free insert");
                }
            });
        }
    });
    let io = engine.io_counters();
    // 200 inserts plus the epoch mark written at open.
    assert!(io.wal_ops >= 200, "commits bypassed the coordinator: {}", io.wal_ops);
    assert!(
        io.wal_syncs < io.wal_ops,
        "no coalescing happened: {} syncs for {} ops",
        io.wal_syncs,
        io.wal_ops
    );
    drop(engine);
    let reopened = Engine::open(Path::new(STORE), opts(&vfs, Duration::ZERO))
        .expect("clean reopen");
    reopened.with_parts(|table, _| assert_eq!(table.entity_count(), 200));
    let violations = reopened.validate().expect("validation runs");
    assert!(violations.is_empty(), "{violations:?}");
}
