//! Committed-trace replay: every JSON file under `traces/` re-runs
//! byte-for-byte. Each file pins three things at once:
//!
//! * the schedule still *passes* (recovery + oracle equivalence),
//! * the run is still *deterministic* (the recomputed trace hash equals
//!   the hash recorded when the file was minted), and
//! * the trace format still *parses* (a codec change that orphans old
//!   traces fails here, not in an incident).
//!
//! Mint new traces with
//! `cargo run -p cind-sim -- --seed N --ops K [--shards S] --save-trace
//! traces/<name>.json` (a failing run saves its shrunk schedule
//! automatically; the shard count is recorded in the file and wins on
//! replay).

use std::path::PathBuf;

use cind_sim::{run_ops, FaultPlan, RunSpec, Trace};

fn traces_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("traces")
}

#[test]
fn every_committed_trace_replays_to_its_recorded_hash() {
    let dir = traces_dir();
    let entries = std::fs::read_dir(&dir).expect("traces/ must be committed");
    let mut seen = 0usize;
    for entry in entries {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        seen += 1;
        let name = path.display();
        let text = std::fs::read_to_string(&path).expect("trace readable");
        let trace = Trace::parse(&text).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
        let recorded = Trace::parse_recorded_hash(&text)
            .unwrap_or_else(|e| panic!("{name}: hash field: {e}"))
            .unwrap_or_else(|| panic!("{name}: no recorded hash"));

        let plan = if trace.faults { FaultPlan::all() } else { FaultPlan::none() };
        let report = run_ops(&RunSpec {
            seed: trace.seed,
            faults: trace.faults,
            shards: trace.shards,
            plan,
            ops: &trace.ops,
            check_every: 1,
            arm_crash: None,
            // Recorded traces predate the tier knob; replay with the exact
            // tier so their hashes stay meaningful.
            tier: cinderella_core::IndexTier::Exact,
        })
        .unwrap_or_else(|f| panic!("{name}: replay failed: {f}"));
        assert_eq!(
            report.trace.steps.len(),
            trace.ops.len(),
            "{name}: replay ended early"
        );
        assert_eq!(
            report.trace.hash(),
            recorded,
            "{name}: trace hash drifted — the simulation is no longer \
             deterministic for this schedule"
        );
    }
    assert!(seen >= 3, "expected at least 3 committed traces, found {seen}");
}
