//! Property test (ISSUE 6, satellite 3): a crash injected between any two
//! *per-shard* checkpoints recovers to the oracle.
//!
//! The generator picks a victim shard and an arbitrary crash point
//! (counted in that shard's own mutating VFS operations), drives a
//! workload that checkpoints shards one at a time round-robin — so the
//! crash lands between two shard checkpoints, never at a tidy global
//! barrier — and then proves three things:
//!
//! 1. only the victim's crash domain fails (writes routed elsewhere keep
//!    succeeding, and the fault always surfaces on an operation that
//!    touched the victim);
//! 2. `reopen_shard` recovers the victim in place, with the one in-flight
//!    operation resolving to either fully-applied or fully-absent;
//! 3. after the run — and again after a full close/reopen of the whole
//!    store — every shard equals the oracle slice routed to it.
//!
//! Cases where the countdown outlives the workload (the crash never
//! fires) are kept: they pin the fault-free path under the same schedule.

use std::path::Path;
use std::sync::Arc;

use cind_model::{EntityId, Value};
use cind_server::{ShardedEngine, WireEntity};
use cind_sim::clock::VirtualClock;
use cind_sim::harness::STORE_DIR;
use cind_sim::oracle::Oracle;
use cind_sim::{content_diff, shard_vfs_seed, sim_sharded_options, FaultPlan, SimVfs};
use proptest::prelude::*;

/// Entities inserted before the first round of shard checkpoints.
const WARMUP: u64 = 24;
/// Entities inserted while the crash is armed.
const LIVE: u64 = 36;
/// A shard checkpoint is taken every this-many live inserts.
const CHECKPOINT_EVERY: u64 = 7;

struct SimWorld {
    vfss: Vec<Arc<SimVfs>>,
    meta_vfs: Arc<SimVfs>,
}

impl SimWorld {
    fn new(seed: u64, shards: usize) -> Self {
        let clock = Arc::new(VirtualClock::new());
        let vfss = (0..shards)
            .map(|i| {
                Arc::new(SimVfs::new(
                    shard_vfs_seed(seed, i),
                    FaultPlan::crash_only(),
                    Arc::clone(&clock),
                ))
            })
            .collect();
        let meta_vfs = Arc::new(SimVfs::new(
            seed ^ 0x4D45_5441_4D45_5441,
            FaultPlan::none(),
            Arc::clone(&clock),
        ));
        Self { vfss, meta_vfs }
    }

    fn open(&self) -> Result<ShardedEngine, TestCaseError> {
        ShardedEngine::open(
            Path::new(STORE_DIR),
            sim_sharded_options(&self.meta_vfs, &self.vfss, cinderella_core::IndexTier::Exact),
        )
        .map_err(|e| TestCaseError::fail(format!("open failed: {e}")))
    }
}

fn wire(id: u64) -> WireEntity {
    WireEntity {
        id,
        attrs: vec![
            (format!("g{}_x", id % 4), Value::Int(id as i64)),
            (format!("g{}_y", id % 4), Value::Text(format!("p{id}"))),
        ],
    }
}

fn record(oracle: &mut Oracle, e: &WireEntity) -> Result<(), TestCaseError> {
    oracle
        .insert(e.id, &e.attrs)
        .map_err(|err| TestCaseError::fail(format!("oracle insert {}: {err:?}", e.id)))
}

/// Clears the victim's crash flag and recovers it in place. With a
/// crash-only fault plan there is no random-fault noise, so a single
/// `reopen_shard` must succeed.
fn recover_victim(
    world: &SimWorld,
    engine: &ShardedEngine,
    victim: usize,
) -> Result<(), TestCaseError> {
    world.vfss[victim].clear_crash();
    engine
        .reopen_shard(victim)
        .map_err(|e| TestCaseError::fail(format!("reopen_shard({victim}) failed: {e}")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn a_crash_between_any_two_shard_checkpoints_recovers_to_the_oracle(
        seed in 0u64..10_000,
        shards in 2usize..=4,
        victim_pick in 0usize..64,
        countdown in 1u64..120,
    ) {
        let victim = victim_pick % shards;
        let world = SimWorld::new(seed, shards);
        let engine = world.open()?;
        let mut oracle = Oracle::new();

        // Warm-up: committed baseline, then one checkpoint per shard so
        // every crash domain owns durable state before the fault is armed.
        for id in 1..=WARMUP {
            let e = wire(id);
            engine.insert(&e).map_err(|err| {
                TestCaseError::fail(format!("warm-up insert {id} failed: {err}"))
            })?;
            record(&mut oracle, &e)?;
        }
        for s in 0..shards {
            engine
                .checkpoint_shard(s)
                .map_err(|e| TestCaseError::fail(format!("warm-up checkpoint {s}: {e}")))?;
        }

        // Arm the crash on the victim's own VFS: it fires on that shard's
        // `countdown`-th mutating operation from here, wherever that falls
        // in the interleaved insert/checkpoint stream.
        world.vfss[victim].arm_crash(countdown);

        let mut fired = false;
        let mut next_checkpoint = 0usize;
        for id in (WARMUP + 1)..=(WARMUP + LIVE) {
            let e = wire(id);
            let home = engine.shard_of(id);
            match engine.insert(&e) {
                Ok(_) => record(&mut oracle, &e)?,
                Err(_) => {
                    // Only the victim's domain can fail, and only once.
                    prop_assert!(!fired, "second fault after recovery");
                    prop_assert_eq!(home, victim, "fault surfaced off the victim shard");
                    prop_assert!(world.vfss[victim].crashed(), "insert failed without a crash");
                    fired = true;
                    recover_victim(&world, &engine, victim)?;
                    // The in-flight insert is pre-or-post: keep the oracle
                    // on whichever state the recovered shard exposes.
                    let present = engine
                        .shard_engine(victim)
                        .with_parts(|table, _| table.get(EntityId(id)).is_ok());
                    if present {
                        record(&mut oracle, &e)?;
                    }
                }
            }
            if (id - WARMUP).is_multiple_of(CHECKPOINT_EVERY) {
                let s = next_checkpoint % shards;
                next_checkpoint += 1;
                match engine.checkpoint_shard(s) {
                    Ok(()) => {}
                    Err(_) => {
                        prop_assert!(!fired, "second fault after recovery");
                        prop_assert_eq!(s, victim, "checkpoint fault off the victim shard");
                        prop_assert!(world.vfss[victim].crashed());
                        fired = true;
                        // A checkpoint never changes logical content: no
                        // oracle ambiguity to resolve.
                        recover_victim(&world, &engine, victim)?;
                    }
                }
            }
        }

        // Live-engine equivalence: every shard equals its oracle slice.
        if let Some(diff) = content_diff(&engine, &oracle) {
            return Err(TestCaseError::fail(format!(
                "post-recovery divergence (fired={fired}): {diff}"
            )));
        }
        let issues = engine
            .validate()
            .map_err(|e| TestCaseError::fail(format!("validate errored: {e}")))?;
        prop_assert!(issues.is_empty(), "structural issues: {}", issues.join("; "));

        // Cold-restart equivalence: close everything and reopen from the
        // surviving bytes alone. A countdown that outlived the live phase
        // is still armed here and may fire during shutdown flush or
        // recovery itself — that is one more legitimate crash point:
        // reboot the victim's filesystem and recover again.
        drop(engine);
        let reopened = match world.open() {
            Ok(e) => e,
            Err(_) => {
                prop_assert!(
                    world.vfss[victim].crashed(),
                    "cold reopen failed without the victim having crashed"
                );
                world.vfss[victim].clear_crash();
                world.open()?
            }
        };
        if let Some(diff) = content_diff(&reopened, &oracle) {
            return Err(TestCaseError::fail(format!(
                "post-restart divergence (fired={fired}): {diff}"
            )));
        }
    }
}
