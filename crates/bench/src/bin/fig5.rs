//! Fig. 5 — average query execution time vs selectivity for different
//! partition size limits B.
//!
//! The paper loads the DBpedia person set into Cinderella-partitioned
//! universal tables with B ∈ {500, 5000, 50000} at w = 0.5, plus the
//! unpartitioned universal table, and measures representative queries of
//! varied selectivity. Expected shape: Cinderella wins clearly below
//! selectivity ≈ 0.2 (early pruning), the universal table is flat, small B
//! helps very selective queries but adds union overhead for broad ones.

#![forbid(unsafe_code)]

use cind_baselines::{Partitioner, Unpartitioned};
use cind_bench::{
    cinderella, dbpedia_dataset, load, measure_queries_with, ms, representative_queries,
    ExperimentEnv, QueryPoint,
};
use cind_metrics::Table;
use cind_storage::UniversalTable;

fn main() {
    let env = ExperimentEnv::from_args();
    const WEIGHT: f64 = 0.5;
    let limits: [u64; 3] = [500, 5000, 50_000];

    // Build one table per scenario over the same generated data.
    let mut scenarios: Vec<(String, UniversalTable, Box<dyn Partitioner>)> = Vec::new();
    {
        let mut table = UniversalTable::new(env.pool_pages);
        let entities = dbpedia_dataset(&env, &mut table);
        let mut policy = Unpartitioned::new();
        let t = load(&mut policy, &mut table, entities);
        eprintln!("loaded universal table in {}ms", ms(t).as_str());
        scenarios.push(("universal".into(), table, Box::new(policy)));
    }
    for b in limits {
        let mut table = UniversalTable::new(env.pool_pages);
        let entities = dbpedia_dataset(&env, &mut table);
        let mut policy = cinderella(b, WEIGHT);
        let t = load(&mut policy, &mut table, entities);
        eprintln!(
            "loaded B={b} in {}ms ({} partitions, {} splits)",
            ms(t),
            policy.catalog().len(),
            policy.stats().splits
        );
        scenarios.push((format!("B={b}"), table, Box::new(policy)));
    }

    // The workload is derived from the data, identical across scenarios.
    let specs = {
        let (_, table, _) = &scenarios[0];
        let mut probe = UniversalTable::new(env.pool_pages);
        let entities = dbpedia_dataset(&env, &mut probe);
        representative_queries(table.universe(), &entities)
    };
    eprintln!("{} representative queries", specs.len());

    let series: Vec<(String, Vec<QueryPoint>)> = scenarios
        .iter()
        .map(|(name, table, policy)| {
            let pts = measure_queries_with(
                table,
                policy.as_ref(),
                &specs,
                env.runs,
                env.parallelism(),
            );
            (name.clone(), pts)
        })
        .collect();

    // Answers must agree across scenarios.
    for (name, points) in &series[1..] {
        for (p, u) in points.iter().zip(&series[0].1) {
            assert_eq!(p.rows, u.rows, "{name} changed query answers");
        }
    }

    println!(
        "Fig. 5 — avg query execution time [ms] vs selectivity (w = {WEIGHT}, {} thread{})",
        env.threads.max(1),
        if env.threads > 1 { "s" } else { "" }
    );
    let mut headers = vec!["selectivity".to_owned(), "rows".to_owned()];
    headers.extend(series.iter().map(|(n, _)| format!("{n} [ms]")));
    headers.extend(series.iter().map(|(n, _)| format!("{n} [pages]")));
    let mut t = Table::new(headers);
    for qi in 0..specs.len() {
        let mut row = vec![
            format!("{:.4}", specs[qi].selectivity),
            series[0].1[qi].rows.to_string(),
        ];
        row.extend(series.iter().map(|(_, pts)| ms(pts[qi].time)));
        row.extend(series.iter().map(|(_, pts)| format!("{:.0}", pts[qi].pages)));
        t.row(row);
    }
    println!("{}", t.render());
    env.maybe_csv("fig5", &t);

    // Aggregate the paper's headline: speedup for selectivity < 0.2.
    println!("\nspeedup vs universal (geometric mean of per-query page ratios):");
    let mut t = Table::new(["series", "selective (<0.2)", "broad (≥0.3)"]);
    for (name, pts) in &series[1..] {
        let ratio = |pred: &dyn Fn(f64) -> bool| {
            let logs: Vec<f64> = pts
                .iter()
                .zip(&series[0].1)
                .filter(|(p, _)| pred(p.selectivity))
                .map(|(p, u)| (u.pages.max(1.0) / p.pages.max(1.0)).ln())
                .collect();
            if logs.is_empty() {
                f64::NAN
            } else {
                (logs.iter().sum::<f64>() / logs.len() as f64).exp()
            }
        };
        t.row([
            name.clone(),
            format!("{:.2}x", ratio(&|s| s < 0.2)),
            format!("{:.2}x", ratio(&|s| s >= 0.3)),
        ]);
    }
    println!("{}", t.render());
    env.maybe_csv("fig5_speedup", &t);
}
