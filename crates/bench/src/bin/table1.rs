//! Table I — query execution time on regularly structured data (TPC-H).
//!
//! Loads TPC-H-shaped data (§V-C) into (1) the native schema — one
//! partition per relation, the "Standard TPC-H" baseline — and (2)
//! Cinderella-partitioned universal tables with B ∈ {500, 2000, 10000}.
//! Verifies that Cinderella rediscovers exactly the TPC-H relations
//! (no partition mixes columns of two relations) and reports the total
//! execution time of the 22 queries per scenario, as the paper's Table I
//! does. Expected shape: overhead within a few percent, shrinking as B
//! grows (fewer partitions to union).

#![forbid(unsafe_code)]

use cind_baselines::Partitioner;
use cind_bench::{cinderella, ms, ExperimentEnv};
use cind_datagen::{tpch_query_columns, TpchConfig, TpchGenerator};
use cind_metrics::Table;
use cind_model::Synopsis;
use cind_query::{execute, plan_with, Query};
use cind_storage::{SegmentId, UniversalTable};
use std::time::Duration;

/// Total rows of TPC-H at scale factor 1.0.
const SF1_ROWS: f64 = 8_660_030.0;

struct Scenario {
    name: String,
    table: UniversalTable,
    view: Vec<(SegmentId, Synopsis, u64)>,
    partitions: usize,
    recovered: bool,
}

fn main() {
    let env = ExperimentEnv::from_args();
    let scale = env.entities as f64 / SF1_ROWS;
    let gen = TpchGenerator::new(TpchConfig { scale, seed: env.seed });
    eprintln!(
        "TPC-H scale {scale:.4} → {} rows",
        gen.row_counts().iter().sum::<u64>()
    );

    let mut scenarios: Vec<Scenario> = Vec::new();

    // Standard TPC-H: native schema, one segment per relation.
    {
        let mut table = UniversalTable::new(env.pool_pages);
        let (entities, origin) = gen.generate(table.catalog_mut());
        let segs: Vec<SegmentId> = gen.schema().iter().map(|_| table.create_segment()).collect();
        for (e, rel) in entities.iter().zip(&origin) {
            table.insert(segs[*rel], e).expect("native load");
        }
        let view: Vec<(SegmentId, Synopsis, u64)> = gen
            .schema()
            .iter()
            .zip(&segs)
            .zip(gen.row_counts())
            .map(|((rel, seg), rows)| {
                (*seg, rel.synopsis(table.catalog()), rows * rel.arity() as u64)
            })
            .collect();
        scenarios.push(Scenario {
            name: "Standard TPC-H".into(),
            partitions: view.len(),
            recovered: true,
            table,
            view,
        });
    }

    // Cinderella I–III.
    for (label, b) in [("Cinderella I", 500u64), ("Cinderella II", 2000), ("Cinderella III", 10_000)] {
        let mut table = UniversalTable::new(env.pool_pages);
        let (entities, _) = gen.generate(table.catalog_mut());
        let mut policy = cinderella(b, 0.5);
        let t = cind_bench::load(&mut policy, &mut table, entities);
        eprintln!(
            "{label}: loaded in {}ms, {} partitions, {} splits",
            ms(t),
            policy.catalog().len(),
            policy.stats().splits
        );

        // Schema recovery: every partition's synopsis must equal one
        // relation's column set exactly — Cinderella found the TPC-H schema.
        let relation_synopses: Vec<Synopsis> = gen
            .schema()
            .iter()
            .map(|r| r.synopsis(table.catalog()))
            .collect();
        let recovered = policy
            .catalog()
            .iter()
            .all(|m| relation_synopses.contains(&m.attr_synopsis));

        scenarios.push(Scenario {
            name: label.into(),
            partitions: policy.catalog().len(),
            recovered,
            view: Partitioner::pruning_view(&policy),
            table,
        });
    }

    // The 22 queries, over each scenario.
    let queries: Vec<(String, Query)> = {
        let catalog = scenarios[0].table.catalog();
        tpch_query_columns()
            .into_iter()
            .map(|(name, cols)| {
                let q = Query::from_names(catalog, cols.iter().copied())
                    .expect("TPC-H columns interned");
                (name.to_owned(), q)
            })
            .collect()
    };

    let mut per_query = Table::new({
        let mut h = vec!["query".to_owned()];
        h.extend(scenarios.iter().map(|s| format!("{} [ms]", s.name)));
        h
    });
    let mut totals = vec![Duration::ZERO; scenarios.len()];
    let mut baseline_rows: Vec<u64> = Vec::new();
    for (qname, query) in &queries {
        let mut row = vec![qname.clone()];
        for (si, s) in scenarios.iter().enumerate() {
            let p = plan_with(
                query,
                s.view.iter().map(|(seg, syn, _)| (*seg, syn)),
                env.parallelism(),
            );
            let mut best = Duration::MAX;
            let mut rows = 0;
            for run in 0..=env.runs {
                let r = execute(&s.table, query, &p).expect("live segments");
                rows = r.rows;
                if run > 0 {
                    best = best.min(r.duration);
                }
            }
            if si == 0 {
                baseline_rows.push(rows);
            } else {
                assert_eq!(
                    rows,
                    baseline_rows[baseline_rows.len() - 1],
                    "{qname}: answers must agree"
                );
            }
            totals[si] += best;
            row.push(ms(best));
        }
        per_query.row(row);
    }

    println!(
        "Table I — query execution time on regular data (TPC-H), {} thread{}\n",
        env.threads.max(1),
        if env.threads > 1 { "s" } else { "" }
    );
    println!("{}", per_query.render());
    env.maybe_csv("table1_per_query", &per_query);

    let mut t = Table::new([
        "Scenario",
        "Partition size limit",
        "Partitions",
        "Schema recovered",
        "Total query time",
        "Relative",
    ]);
    let base = totals[0];
    for (s, total) in scenarios.iter().zip(&totals) {
        let limit = match s.name.as_str() {
            "Cinderella I" => "500 entities",
            "Cinderella II" => "2000 entities",
            "Cinderella III" => "10000 entities",
            _ => "-",
        };
        t.row([
            s.name.clone(),
            limit.to_owned(),
            s.partitions.to_string(),
            if s.recovered { "yes" } else { "NO" }.to_owned(),
            format!("{} ms", ms(*total)),
            format!("{:.2}%", 100.0 * total.as_secs_f64() / base.as_secs_f64()),
        ]);
    }
    println!("\n{}", t.render());
    env.maybe_csv("table1", &t);

    for s in &scenarios[1..] {
        assert!(s.recovered, "{} failed to recover the TPC-H schema", s.name);
    }
}
