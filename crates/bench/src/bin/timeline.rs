//! Definition 2, made visible: EFFICIENCY(P) tracked *continuously* while
//! the universal table is modified.
//!
//! The paper defines online partitioning as keeping `EFFICIENCY(P)`
//! maximised "under the presence of modification operations" (Def. 2) but
//! never plots the trajectory. This harness does: it streams the
//! DBpedia-like entities through three phases — growth (inserts), churn
//! (mixed updates/deletes/inserts), decay (mass deletes) — and records the
//! efficiency, partition count, and mean partition fill at checkpoints,
//! with and without the merge-pass maintenance extension during decay.

#![forbid(unsafe_code)]

use cind_bench::{dbpedia_dataset, representative_queries, ExperimentEnv};
use cind_metrics::Table;
use cind_model::{Entity, EntityId, Synopsis};
use cind_storage::UniversalTable;
use cinderella_core::{efficiency, Capacity, Cinderella, Config};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let env = ExperimentEnv::from_args();
    let mut table = UniversalTable::new(env.pool_pages);
    let entities = dbpedia_dataset(&env, &mut table);
    let universe = table.universe();
    let specs = representative_queries(universe, &entities);
    let workload: Vec<Synopsis> = specs
        .iter()
        .map(|s| Synopsis::from_attrs(universe, s.attrs.iter().copied()))
        .collect();

    let mut cindy = Cinderella::new(Config {
        weight: 0.2,
        capacity: Capacity::MaxEntities(2_000),
        ..Config::default()
    });
    let mut rng = StdRng::seed_from_u64(env.seed);
    let checkpoint_every = (entities.len() / 10).max(1);

    let mut t = Table::new([
        "phase",
        "op#",
        "entities",
        "partitions",
        "efficiency",
        "mean fill",
    ]);
    let mut ops = 0usize;
    let checkpoint = |phase: &str,
                          ops: usize,
                          t: &mut Table,
                          table: &UniversalTable,
                          cindy: &Cinderella| {
        let eff = efficiency(table, cindy, &workload);
        let parts = cindy.catalog().len().max(1);
        let fill = table.entity_count() as f64 / parts as f64
            / 2_000.0; // fraction of B
        t.row([
            phase.to_owned(),
            ops.to_string(),
            table.entity_count().to_string(),
            cindy.catalog().len().to_string(),
            format!("{eff:.4}"),
            format!("{fill:.3}"),
        ]);
    };

    // Phase 1: growth.
    let total = entities.len();
    let mut pool: Vec<Entity> = Vec::with_capacity(total);
    for e in entities {
        pool.push(e.clone());
        cindy.insert(&mut table, e).expect("insert");
        ops += 1;
        if ops.is_multiple_of(checkpoint_every) {
            checkpoint("growth", ops, &mut t, &table, &cindy);
        }
    }

    // Phase 2: churn — equal parts updates (shape-mutating), deletes, and
    // re-inserts, for 30 % of the data volume.
    let churn_ops = total * 3 / 10;
    let mut next_id = total as u64;
    for i in 0..churn_ops {
        match i % 3 {
            0 => {
                // Mutate a random live entity into a random other shape.
                let donor = &pool[rng.gen_range(0..pool.len())];
                let victim = loop {
                    let id = EntityId(rng.gen_range(0..next_id));
                    if table.location(id).is_some() {
                        break id;
                    }
                };
                let e = Entity::new(victim, donor.attrs().to_vec()).expect("valid");
                cindy.update(&mut table, e).expect("update");
            }
            1 => {
                let victim = loop {
                    let id = EntityId(rng.gen_range(0..next_id));
                    if table.location(id).is_some() {
                        break id;
                    }
                };
                cindy.delete(&mut table, victim).expect("delete");
            }
            _ => {
                let donor = &pool[rng.gen_range(0..pool.len())];
                let e = Entity::new(EntityId(next_id), donor.attrs().to_vec())
                    .expect("valid");
                next_id += 1;
                cindy.insert(&mut table, e).expect("insert");
            }
        }
        ops += 1;
        if ops.is_multiple_of(checkpoint_every) {
            checkpoint("churn", ops, &mut t, &table, &cindy);
        }
    }

    // Phase 3: decay — delete 80 % of what remains, checkpointing without
    // maintenance, then run one merge pass and checkpoint again.
    let live: Vec<EntityId> = (0..next_id)
        .map(EntityId)
        .filter(|id| table.location(*id).is_some())
        .collect();
    for (i, id) in live.iter().enumerate() {
        if i % 5 != 0 {
            cindy.delete(&mut table, *id).expect("delete");
            ops += 1;
            if ops.is_multiple_of(checkpoint_every) {
                checkpoint("decay", ops, &mut t, &table, &cindy);
            }
        }
    }
    checkpoint("decay (end)", ops, &mut t, &table, &cindy);
    let report = cindy.merge_pass(&mut table, 0.5).expect("merge");
    checkpoint("after merge pass", ops, &mut t, &table, &cindy);

    println!(
        "Definition 2 timeline — EFFICIENCY(P) under modifications \
         ({} entities, B = 2000, w = 0.2)\n",
        total
    );
    println!("{}", t.render());
    println!(
        "\nmerge pass at decay end: {} merges, {} entities moved",
        report.merges, report.entities_moved
    );
    println!(
        "totals: {} inserts, {} updates ({} moved), {} deletes, {} splits",
        cindy.stats().inserts,
        cindy.stats().updates,
        cindy.stats().update_moves,
        cindy.stats().deletes,
        cindy.stats().splits,
    );
    env.maybe_csv("timeline", &t);
}
