//! Fig. 4 — attribute distribution in the (synthetic) DBpedia data set.
//!
//! Prints (a) the attribute-frequency distribution and (b) the
//! attributes-per-entity distribution, plus the calibration checks against
//! the numbers the paper states in §V-B: two attributes on almost every
//! entity, eleven on > 30 %, 85 % of attributes on < 10 %, entity arity
//! mostly 2–15 with a tail to ~27, overall sparseness ≈ 0.94.

#![forbid(unsafe_code)]

use cind_bench::{dbpedia_dataset, ExperimentEnv};
use cind_metrics::Table;
use cind_storage::UniversalTable;

fn main() {
    let env = ExperimentEnv::from_args();
    let mut table = UniversalTable::new(env.pool_pages);
    let entities = dbpedia_dataset(&env, &mut table);
    let universe = table.universe();
    let n = entities.len() as f64;

    // Fig. 4(a): attribute frequencies, descending.
    let mut counts = vec![0u64; universe];
    for e in &entities {
        for (a, _) in e.attrs() {
            counts[a.0 as usize] += 1;
        }
    }
    let mut freqs: Vec<f64> = counts.iter().map(|&c| c as f64 / n).collect();
    freqs.sort_by(|a, b| b.total_cmp(a));

    println!("Fig. 4(a) — attribute frequency distribution ({universe} attributes, {} entities)", entities.len());
    let mut t = Table::new(["frequency band", "attributes", "fraction"]);
    let bands = [
        ("≥ 80%", 0.80..=1.00),
        ("30–80%", 0.30..=0.80),
        ("10–30%", 0.10..=0.30),
        ("1–10%", 0.01..=0.10),
        ("< 1%", 0.00..=0.01),
    ];
    for (label, range) in &bands {
        let k = freqs
            .iter()
            .filter(|f| **f > *range.start() && **f <= *range.end())
            .count();
        t.row([
            (*label).to_owned(),
            k.to_string(),
            format!("{:.1}%", 100.0 * k as f64 / universe as f64),
        ]);
    }
    println!("{}", t.render());
    env.maybe_csv("fig4a_bands", &t);

    let mut curve = Table::new(["rank", "frequency"]);
    for (rank, f) in freqs.iter().enumerate() {
        if rank < 15 || rank % 10 == 0 || rank == universe - 1 {
            curve.row([rank.to_string(), format!("{f:.4}")]);
        }
    }
    println!("\nfrequency by rank (head + every 10th):");
    println!("{}", curve.render());
    env.maybe_csv("fig4a_curve", &curve);

    // Fig. 4(b): attributes per entity.
    let mut arity_hist = std::collections::BTreeMap::<usize, u64>::new();
    let mut total_cells = 0u64;
    for e in &entities {
        *arity_hist.entry(e.arity()).or_default() += 1;
        total_cells += e.arity() as u64;
    }
    println!("\nFig. 4(b) — attributes per entity:");
    let mut t = Table::new(["arity", "entities", "fraction"]);
    for (arity, count) in &arity_hist {
        t.row([
            arity.to_string(),
            count.to_string(),
            format!("{:.2}%", 100.0 * *count as f64 / n),
        ]);
    }
    println!("{}", t.render());
    env.maybe_csv("fig4b", &t);

    let sparseness = 1.0 - total_cells as f64 / (n * universe as f64);
    let in_band: u64 = arity_hist
        .iter()
        .filter(|(a, _)| (2..=15).contains(*a))
        .map(|(_, c)| c)
        .sum();
    let max_arity = arity_hist.keys().max().copied().unwrap_or(0);

    println!("\ncalibration vs paper (§V-B):");
    let mut t = Table::new(["property", "paper", "measured"]);
    t.row([
        "near-universal attributes".to_owned(),
        "2".to_owned(),
        freqs.iter().filter(|f| **f > 0.8).count().to_string(),
    ]);
    t.row([
        "attributes > 30%".to_owned(),
        "13 (2 + 11)".to_owned(),
        freqs.iter().filter(|f| **f > 0.3).count().to_string(),
    ]);
    t.row([
        "attributes < 10%".to_owned(),
        "≥ 85%".to_owned(),
        format!(
            "{:.0}%",
            100.0 * freqs.iter().filter(|f| **f < 0.1).count() as f64 / universe as f64
        ),
    ]);
    t.row([
        "entities with 2–15 attributes".to_owned(),
        "majority".to_owned(),
        format!("{:.0}%", 100.0 * in_band as f64 / n),
    ]);
    t.row([
        "max attributes per entity".to_owned(),
        "27".to_owned(),
        max_arity.to_string(),
    ]);
    t.row([
        "overall sparseness".to_owned(),
        "0.94".to_owned(),
        format!("{sparseness:.3}"),
    ]);
    println!("{}", t.render());
    env.maybe_csv("fig4_calibration", &t);
}
