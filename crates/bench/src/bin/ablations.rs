//! Ablations and extensions beyond the paper's figures.
//!
//! Three studies the paper motivates but does not measure:
//!
//! 1. **Candidate index** (§VII future work, "management of a large number
//!    of partition synopses with specialized data structures"): insert
//!    throughput and ratings computed with and without the inverted
//!    attribute→partition index, at a weight that produces many partitions.
//! 2. **Synopsis mode** (§II): entity-based vs workload-based partitioning,
//!    compared on Definition 1 efficiency and query pages.
//! 3. **Policy shoot-out**: Cinderella vs unpartitioned, hash, range, and
//!    offline clustering on the same data and workload — efficiency,
//!    partition counts, and selective-query cost.
//! 4. **Merge pass** (extension): efficiency decay under mass deletes and
//!    its repair by the merge pass.
//! 5. **Parallel bulk load** (extension): wall-clock speedup and stitched
//!    partitioning quality vs the sequential load.
//! 6. **Placement** (extension, §II's distribution motivation): balanced
//!    vs affinity placement of the partitions over nodes — load imbalance
//!    against per-query node fan-out.
//! 7. **Workload drift** (§II's robustness claim): workload-based
//!    partitioning tailored to workload A, evaluated under a disjoint
//!    workload B — vs entity-based partitioning, which §II predicts is
//!    "more general and robust".

#![forbid(unsafe_code)]

use cind_baselines::{
    HashPartitioner, OfflineClustering, OfflineConfig, Partitioner, RangePartitioner,
    Unpartitioned,
};
use cind_bench::{
    dbpedia_dataset, load, measure_queries, ms, representative_queries, ExperimentEnv,
};
use cind_metrics::Table;
use cind_model::{EntityId, Synopsis};
use cind_storage::UniversalTable;
use cinderella_core::{efficiency_of, Capacity, Cinderella, Config, SynopsisMode};

fn main() {
    let env = ExperimentEnv::from_args();
    candidate_index_study(&env);
    synopsis_mode_study(&env);
    policy_shootout(&env);
    merge_pass_study(&env);
    bulk_load_study(&env);
    placement_study(&env);
    workload_drift_study(&env);
}

/// Study 1: the inverted candidate index. Two data sets with opposite
/// outcomes: DBpedia entities almost always carry a near-universal
/// attribute, so the candidate set covers the whole catalog and the
/// cost gate falls back to the plain scan (no win, no loss); TPC-H rows
/// have only relation-local columns, so the candidate set is exactly the
/// partitions of the row's own relation and the scan shrinks by ~the
/// number of relations.
fn candidate_index_study(env: &ExperimentEnv) {
    println!("== ablation 1: candidate index ==\n");
    let mut t = Table::new([
        "dataset",
        "config",
        "partitions",
        "load time [ms]",
        "ratings computed",
        "ratings/insert",
    ]);
    for dataset in ["dbpedia (w=0.1)", "tpch (w=0.5, B=500)"] {
        let mut results = Vec::new();
        for use_index in [false, true] {
            let mut table = UniversalTable::new(env.pool_pages);
            let (entities, weight, b) = if dataset.starts_with("dbpedia") {
                (dbpedia_dataset(env, &mut table), 0.1, 5000)
            } else {
                let gen = cind_datagen::TpchGenerator::new(cind_datagen::TpchConfig {
                    scale: env.entities as f64 / 8_660_030.0,
                    seed: env.seed,
                });
                (gen.generate(table.catalog_mut()).0, 0.5, 500)
            };
            let mut policy = Cinderella::new(Config {
                weight,
                capacity: Capacity::MaxEntities(b),
                index: if use_index {
                    cinderella_core::IndexMode::On
                } else {
                    cinderella_core::IndexMode::Off
                },
                ..Config::default()
            });
            let d = load(&mut policy, &mut table, entities);
            let stats = policy.stats();
            t.row([
                dataset.to_owned(),
                if use_index { "indexed" } else { "full scan" }.to_owned(),
                policy.catalog().len().to_string(),
                ms(d),
                stats.ratings_computed.to_string(),
                format!("{:.1}", stats.ratings_computed as f64 / stats.inserts as f64),
            ]);
            results.push(policy);
        }
        // Both paths must produce the same partitioning behaviourally:
        // same partition count and same entities-per-partition multiset.
        let sizes = |c: &Cinderella| {
            let mut v: Vec<u64> = c.catalog().iter().map(|m| m.entities).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(
            sizes(&results[0]),
            sizes(&results[1]),
            "index must not change the partitioning ({dataset})"
        );
    }
    println!("{}", t.render());
    env.maybe_csv("ablation_index", &t);
    println!("\nindexed and full-scan partitionings are identical ✓\n");
}

/// Study 2: entity-based vs workload-based synopses.
fn synopsis_mode_study(env: &ExperimentEnv) {
    println!("== ablation 2: entity-based vs workload-based mode ==\n");

    // The workload must exist before workload-based partitioning can.
    let mut probe = UniversalTable::new(env.pool_pages);
    let entities = dbpedia_dataset(env, &mut probe);
    let universe = probe.universe();
    let specs = representative_queries(universe, &entities);
    let query_synopses: Vec<Synopsis> = specs
        .iter()
        .map(|s| Synopsis::from_attrs(universe, s.attrs.iter().copied()))
        .collect();

    let mut t = Table::new([
        "mode",
        "partitions",
        "efficiency (Def. 1)",
        "selective query pages (mean)",
    ]);
    for (name, mode) in [
        ("entity-based", SynopsisMode::EntityBased),
        ("workload-based", SynopsisMode::WorkloadBased(query_synopses.clone())),
    ] {
        let mut table = UniversalTable::new(env.pool_pages);
        let entities = dbpedia_dataset(env, &mut table);
        let mut policy = Cinderella::new(Config {
            weight: 0.2,
            capacity: Capacity::MaxEntities(5000),
            mode,
            ..Config::default()
        });
        load(&mut policy, &mut table, entities);
        let eff = cinderella_core::efficiency(&table, &policy, &query_synopses);
        let points = measure_queries(&table, &policy, &specs, env.runs);
        let selective: Vec<f64> = points
            .iter()
            .filter(|p| p.selectivity < 0.2)
            .map(|p| p.pages)
            .collect();
        let mean_pages = selective.iter().sum::<f64>() / selective.len().max(1) as f64;
        t.row([
            name.to_owned(),
            policy.catalog().len().to_string(),
            format!("{eff:.4}"),
            format!("{mean_pages:.0}"),
        ]);
    }
    println!("{}", t.render());
    env.maybe_csv("ablation_mode", &t);
    println!();
}

/// Study 3: all policies on the same data and workload.
fn policy_shootout(env: &ExperimentEnv) {
    println!("== ablation 3: policy shoot-out ==\n");
    let mut probe = UniversalTable::new(env.pool_pages);
    let entities = dbpedia_dataset(env, &mut probe);
    let universe = probe.universe();
    let specs = representative_queries(universe, &entities);
    let query_synopses: Vec<Synopsis> = specs
        .iter()
        .map(|s| Synopsis::from_attrs(universe, s.attrs.iter().copied()))
        .collect();
    let entity_synopses: Vec<(Synopsis, u64)> = entities
        .iter()
        .map(|e| (e.synopsis(universe), e.arity() as u64))
        .collect();

    let policies: Vec<Box<dyn Partitioner>> = vec![
        Box::new(Unpartitioned::new()),
        Box::new(HashPartitioner::new(20)),
        Box::new(RangePartitioner::new(5000)),
        Box::new(OfflineClustering::new(OfflineConfig {
            jaccard_threshold: 0.4,
            capacity: 5000,
        })),
        Box::new(Cinderella::new(Config {
            weight: 0.2,
            capacity: Capacity::MaxEntities(5000),
            ..Config::default()
        })),
    ];

    let mut t = Table::new([
        "policy",
        "partitions",
        "load [ms]",
        "efficiency (Def. 1)",
        "selective pages",
        "broad pages",
    ]);
    for mut policy in policies {
        let mut table = UniversalTable::new(env.pool_pages);
        let entities = dbpedia_dataset(env, &mut table);
        let d = load(&mut *policy, &mut table, entities);
        let view = policy.pruning_view();
        let partitions: Vec<(Synopsis, u64)> =
            view.iter().map(|(_, syn, size)| (syn.clone(), *size)).collect();
        let eff = efficiency_of(
            entity_synopses.iter().cloned(),
            &partitions,
            &query_synopses,
        );
        let points = measure_queries(&table, policy.as_ref(), &specs, env.runs);
        let mean_pages = |pred: &dyn Fn(f64) -> bool| {
            let v: Vec<f64> = points
                .iter()
                .filter(|p| pred(p.selectivity))
                .map(|p| p.pages)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        t.row([
            policy.name().to_owned(),
            policy.partition_count().to_string(),
            ms(d),
            format!("{eff:.4}"),
            format!("{:.0}", mean_pages(&|s| s < 0.2)),
            format!("{:.0}", mean_pages(&|s| s >= 0.3)),
        ]);
    }
    // Vertical partitioning (related work, Chu et al.) has a different
    // structure — measure it through its own loader and cost probe.
    {
        let mut table = UniversalTable::new(env.pool_pages);
        let entities = dbpedia_dataset(env, &mut table);
        let mut vertical =
            cind_baselines::VerticalPartitioning::new(cind_baselines::VerticalConfig::default());
        let t0 = std::time::Instant::now();
        vertical.load(&mut table, &entities).expect("vertical load");
        let d = t0.elapsed();
        let parts: Vec<(Synopsis, u64)> = vertical
            .pruning_view(universe)
            .into_iter()
            .map(|(_, syn, size)| (syn, size))
            .collect();
        let _ = &parts; // Definition 1's numerator counts whole-entity
                        // sizes, which a vertical layout never reads — the
                        // metric does not transfer, so report page costs
                        // for both query styles instead.
        let mean_pages = |pred: &dyn Fn(f64) -> bool, full: bool| {
            let v: Vec<f64> = specs
                .iter()
                .filter(|s| pred(s.selectivity))
                .map(|s| {
                    if full {
                        let (_, _, pages) = vertical
                            .query_cost_full_rows(&table, &s.attrs)
                            .expect("query");
                        pages as f64
                    } else {
                        let (_, _, pages, _) =
                            vertical.query_cost(&table, &s.attrs).expect("query");
                        pages as f64
                    }
                })
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        t.row([
            "vertical (projection)".to_owned(),
            vertical.groups().len().to_string(),
            ms(d),
            "n/a".to_owned(),
            format!("{:.0}", mean_pages(&|s| s < 0.2, false)),
            format!("{:.0}", mean_pages(&|s| s >= 0.3, false)),
        ]);
        t.row([
            "vertical (full rows)".to_owned(),
            vertical.groups().len().to_string(),
            "-".to_owned(),
            "n/a".to_owned(),
            format!("{:.0}", mean_pages(&|s| s < 0.2, true)),
            format!("{:.0}", mean_pages(&|s| s >= 0.3, true)),
        ]);
    }
    println!("{}", t.render());
    env.maybe_csv("ablation_policies", &t);
}

/// Study 4: the merge pass after mass deletes.
fn merge_pass_study(env: &ExperimentEnv) {
    println!("\n== ablation 4: merge pass after mass deletes ==\n");
    let mut table = UniversalTable::new(env.pool_pages);
    let entities = dbpedia_dataset(env, &mut table);
    let universe = table.universe();
    let specs = representative_queries(universe, &entities);
    let query_synopses: Vec<Synopsis> = specs
        .iter()
        .map(|s| Synopsis::from_attrs(universe, s.attrs.iter().copied()))
        .collect();
    let mut policy = Cinderella::new(Config {
        weight: 0.3,
        capacity: Capacity::MaxEntities(500),
        ..Config::default()
    });
    let n = entities.len() as u64;
    load(&mut policy, &mut table, entities);

    let mut t = Table::new([
        "phase",
        "partitions",
        "efficiency (Def. 1)",
        "mean pages/query",
    ]);
    // Definition 1 ignores the per-partition overhead (one union branch,
    // at least one partially filled page each) that motivates the merge;
    // report both: pure efficiency and the *measured* pages per query.
    let snapshot = |label: &str,
                    t: &mut Table,
                    table: &UniversalTable,
                    policy: &Cinderella| {
        let eff = cinderella_core::efficiency(table, policy, &query_synopses);
        let points = measure_queries(table, policy, &specs, 1);
        let mean_pages =
            points.iter().map(|p| p.pages).sum::<f64>() / points.len().max(1) as f64;
        t.row([
            label.to_owned(),
            policy.catalog().len().to_string(),
            format!("{eff:.4}"),
            format!("{mean_pages:.0}"),
        ]);
    };
    snapshot("loaded", &mut t, &table, &policy);

    // Delete 85 % of the entities.
    for i in 0..n {
        if i % 7 != 0 {
            policy.delete(&mut table, EntityId(i)).expect("delete");
        }
    }
    snapshot("after 85% deletes", &mut t, &table, &policy);

    let report = policy.merge_pass(&mut table, 0.5).expect("merge pass");
    snapshot("after merge pass", &mut t, &table, &policy);
    println!("{}", t.render());
    println!(
        "merge pass: {} merges, {} entities moved, {} kept\n",
        report.merges, report.entities_moved, report.kept
    );
    env.maybe_csv("ablation_merge", &t);
}

/// Study 5: parallel bulk loading.
fn bulk_load_study(env: &ExperimentEnv) {
    println!("== ablation 5: parallel bulk load ==\n");
    let mut t = Table::new([
        "threads",
        "load [ms]",
        "speedup",
        "partitions",
        "stitch merges",
        "efficiency (Def. 1)",
    ]);
    let mut probe = UniversalTable::new(env.pool_pages);
    let entities = dbpedia_dataset(env, &mut probe);
    let universe = probe.universe();
    let specs = representative_queries(universe, &entities);
    let query_synopses: Vec<Synopsis> = specs
        .iter()
        .map(|s| Synopsis::from_attrs(universe, s.attrs.iter().copied()))
        .collect();

    let mut baseline = None;
    for threads in [1usize, 2, 4, 8] {
        let mut table = UniversalTable::new(env.pool_pages);
        let entities = dbpedia_dataset(env, &mut table);
        let config = Config {
            weight: 0.3,
            capacity: Capacity::MaxEntities(2_000),
            ..Config::default()
        };
        let t0 = std::time::Instant::now();
        let (policy, report) =
            cinderella_core::bulk_load(&mut table, config, entities, threads)
                .expect("bulk load");
        let elapsed = t0.elapsed();
        let base = *baseline.get_or_insert(elapsed);
        let eff = cinderella_core::efficiency(&table, &policy, &query_synopses);
        t.row([
            threads.to_string(),
            ms(elapsed),
            format!("{:.2}x", base.as_secs_f64() / elapsed.as_secs_f64()),
            report.partitions.to_string(),
            report.stitch_merges.to_string(),
            format!("{eff:.4}"),
        ]);
    }
    println!("{}", t.render());
    env.maybe_csv("ablation_bulk", &t);
}

/// Study 6: placing the partitions on nodes (§II's distribution setting).
fn placement_study(env: &ExperimentEnv) {
    println!("\n== ablation 6: partition placement across nodes ==\n");
    let mut table = UniversalTable::new(env.pool_pages);
    let entities = dbpedia_dataset(env, &mut table);
    let universe = table.universe();
    let specs = representative_queries(universe, &entities);
    let query_synopses: Vec<Synopsis> = specs
        .iter()
        .map(|s| Synopsis::from_attrs(universe, s.attrs.iter().copied()))
        .collect();
    let mut policy = Cinderella::new(Config {
        weight: 0.2,
        capacity: Capacity::MaxEntities(2_000),
        ..Config::default()
    });
    load(&mut policy, &mut table, entities);
    println!(
        "{} partitions placed over nodes (workload: {} queries)\n",
        policy.catalog().len(),
        query_synopses.len()
    );

    // Broad queries touch nearly every partition, so placement cannot help
    // them; the interesting fan-out is the selective queries'.
    let selective: Vec<Synopsis> = specs
        .iter()
        .filter(|s| s.selectivity < 0.1)
        .map(|s| Synopsis::from_attrs(universe, s.attrs.iter().copied()))
        .collect();
    let mut t = Table::new([
        "nodes",
        "strategy",
        "imbalance",
        "fan-out (all)",
        "fan-out (selective)",
    ]);
    for nodes in [4usize, 8, 16] {
        let balanced = cinderella_core::place_balanced(policy.catalog(), nodes);
        let affinity = cinderella_core::place_affinity(policy.catalog(), nodes, 0.10);
        for (name, p) in [("balanced", &balanced), ("affinity", &affinity)] {
            t.row([
                nodes.to_string(),
                name.to_owned(),
                format!("{:.3}", p.imbalance()),
                format!("{:.2}", p.fanout(policy.catalog(), &query_synopses)),
                format!("{:.2}", p.fanout(policy.catalog(), &selective)),
            ]);
        }
    }
    println!("{}", t.render());
    env.maybe_csv("ablation_placement", &t);
}

/// Study 7: §II's robustness claim under workload drift.
fn workload_drift_study(env: &ExperimentEnv) {
    println!("\n== ablation 7: workload drift (§II robustness claim) ==\n");
    let mut probe = UniversalTable::new(env.pool_pages);
    let entities = dbpedia_dataset(env, &mut probe);
    let universe = probe.universe();
    let specs = representative_queries(universe, &entities);
    // Split the representative workload into two disjoint halves: A (used
    // to build the workload-based partitioning) and B (the drifted
    // workload it is evaluated under).
    let synopses: Vec<Synopsis> = specs
        .iter()
        .map(|s| Synopsis::from_attrs(universe, s.attrs.iter().copied()))
        .collect();
    let workload_a: Vec<Synopsis> = synopses.iter().step_by(2).cloned().collect();
    let workload_b: Vec<Synopsis> =
        synopses.iter().skip(1).step_by(2).cloned().collect();
    let entity_synopses: Vec<(Synopsis, u64)> = entities
        .iter()
        .map(|e| (e.synopsis(universe), e.arity() as u64))
        .collect();

    let mut t = Table::new(["mode", "eff. on workload A", "eff. on drifted B"]);
    for (name, mode) in [
        ("entity-based", SynopsisMode::EntityBased),
        (
            "workload-based (built for A)",
            SynopsisMode::WorkloadBased(workload_a.clone()),
        ),
    ] {
        let mut table = UniversalTable::new(env.pool_pages);
        let entities = dbpedia_dataset(env, &mut table);
        let mut policy = Cinderella::new(Config {
            weight: 0.2,
            capacity: Capacity::MaxEntities(5000),
            mode,
            ..Config::default()
        });
        load(&mut policy, &mut table, entities);
        let parts: Vec<(Synopsis, u64)> = Partitioner::pruning_view(&policy)
            .into_iter()
            .map(|(_, syn, size)| (syn, size))
            .collect();
        let eff = |w: &[Synopsis]| {
            efficiency_of(entity_synopses.iter().cloned(), &parts, w)
        };
        t.row([
            name.to_owned(),
            format!("{:.4}", eff(&workload_a)),
            format!("{:.4}", eff(&workload_b)),
        ]);
    }
    println!("{}", t.render());
    println!();
    println!("§II: \"whenever a workload is not available or where the solution should be");
    println!("more general and robust, an entity-based solution is more appropriate\" —");
    println!("the drifted column quantifies that robustness gap.");
    env.maybe_csv("ablation_drift", &t);
}
