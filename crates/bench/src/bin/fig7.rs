//! Fig. 7 — influence of the weight w on the partitioning (B = 5000).
//!
//! Sweeps w from 0.0 to 1.0 and reports, per the paper's four panels:
//! (a) the number of partitions (exploding below w = 0.2),
//! (b) entities per partition (higher weights fill partitions),
//! (c) attributes per partition (always ≪ the universal table's 100),
//! (d) sparseness per partition (0 at w = 0, growing with w, mostly below
//!     the data set's overall 0.94).

#![forbid(unsafe_code)]

use cind_bench::{cinderella, dbpedia_dataset, load, ms, ExperimentEnv};
use cind_metrics::{PartitioningReport, Table};
use cind_metrics::partition_stats::PartitionNumbers;
use cind_storage::UniversalTable;

fn main() {
    let env = ExperimentEnv::from_args();
    const B: u64 = 5000;
    let weights: Vec<f64> = (0..=10).map(|i| f64::from(i) / 10.0).collect();

    println!("Fig. 7 — influence of w on the partitioning (B = {B}, {} entities)", env.entities);
    let mut ta = Table::new(["w", "partitions", "splits"]);
    let mut tb = Table::new(["w", "ent min", "ent q25", "ent med", "ent q75", "ent max"]);
    let mut tc = Table::new(["w", "attr min", "attr q25", "attr med", "attr q75", "attr max"]);
    let mut td = Table::new(["w", "sp min", "sp q25", "sp med", "sp q75", "sp max"]);

    let mut overall_sparseness = 0.0;
    for &w in &weights {
        let mut table = UniversalTable::new(env.pool_pages);
        let entities = dbpedia_dataset(&env, &mut table);
        let cells: u64 = entities.iter().map(|e| e.arity() as u64).sum();
        overall_sparseness =
            1.0 - cells as f64 / (entities.len() as f64 * table.universe() as f64);
        let mut policy = cinderella(B, w);
        let t = load(&mut policy, &mut table, entities);
        eprintln!("w={w}: loaded in {}ms", ms(t));

        let report = PartitioningReport::from_partitions(policy.catalog().iter().map(|m| {
            PartitionNumbers {
                entities: m.entities,
                attributes: m.attr_synopsis.cardinality(),
                sparseness: m.sparseness(),
            }
        }));
        let wl = format!("{w:.1}");
        ta.row([
            wl.clone(),
            report.partitions.to_string(),
            policy.stats().splits.to_string(),
        ]);
        let fivenum = |s: &Option<cind_metrics::Summary>, digits: usize| -> Vec<String> {
            match s {
                Some(s) => [s.min, s.q25, s.median, s.q75, s.max]
                    .iter()
                    .map(|v| format!("{v:.digits$}"))
                    .collect(),
                None => vec!["-".to_owned(); 5],
            }
        };
        let mut row = vec![wl.clone()];
        row.extend(fivenum(&report.entities, 0));
        tb.row(row);
        let mut row = vec![wl.clone()];
        row.extend(fivenum(&report.attributes, 0));
        tc.row(row);
        let mut row = vec![wl];
        row.extend(fivenum(&report.sparseness, 3));
        td.row(row);

        // The paper's key observations, asserted.
        if w == 0.0 {
            let all_dense = policy.catalog().iter().all(|m| m.sparseness() == 0.0);
            assert!(all_dense, "w = 0 must yield perfectly homogeneous partitions");
        }
    }

    println!("\n(a) number of partitions:");
    println!("{}", ta.render());
    println!("\n(b) entities per partition:");
    println!("{}", tb.render());
    println!("\n(c) attributes per partition (universal table: 100):");
    println!("{}", tc.render());
    println!("\n(d) sparseness per partition (data set overall: {overall_sparseness:.3}):");
    println!("{}", td.render());

    env.maybe_csv("fig7a", &ta);
    env.maybe_csv("fig7b", &tb);
    env.maybe_csv("fig7c", &tc);
    env.maybe_csv("fig7d", &td);
}
