//! Fig. 6 — average query execution time vs selectivity for different
//! rating weights w (B = 5000).
//!
//! Expected shape: low weights build many small homogeneous partitions —
//! best for very selective queries; higher weights build fewer, broader
//! partitions — slightly better for very unselective queries. The paper
//! finds w = 0.2 a good balance for DBpedia.

#![forbid(unsafe_code)]

use cind_baselines::{Partitioner, Unpartitioned};
use cind_bench::{
    cinderella, dbpedia_dataset, load, measure_queries_with, ms, representative_queries,
    ExperimentEnv, QueryPoint,
};
use cind_metrics::Table;
use cind_storage::UniversalTable;

fn main() {
    let env = ExperimentEnv::from_args();
    const B: u64 = 5000;
    let weights = [0.0, 0.2, 0.5, 0.8];

    let mut scenarios: Vec<(String, UniversalTable, Box<dyn Partitioner>)> = Vec::new();
    {
        let mut table = UniversalTable::new(env.pool_pages);
        let entities = dbpedia_dataset(&env, &mut table);
        let mut policy = Unpartitioned::new();
        load(&mut policy, &mut table, entities);
        scenarios.push(("universal".into(), table, Box::new(policy)));
    }
    for w in weights {
        let mut table = UniversalTable::new(env.pool_pages);
        let entities = dbpedia_dataset(&env, &mut table);
        let mut policy = cinderella(B, w);
        let t = load(&mut policy, &mut table, entities);
        eprintln!(
            "loaded w={w} in {}ms ({} partitions, {} splits)",
            ms(t),
            policy.catalog().len(),
            policy.stats().splits
        );
        scenarios.push((format!("w={w}"), table, Box::new(policy)));
    }

    let specs = {
        let (_, table, _) = &scenarios[0];
        let mut probe = UniversalTable::new(env.pool_pages);
        let entities = dbpedia_dataset(&env, &mut probe);
        representative_queries(table.universe(), &entities)
    };

    let series: Vec<(String, Vec<QueryPoint>)> = scenarios
        .iter()
        .map(|(name, table, policy)| {
            let pts = measure_queries_with(
                table,
                policy.as_ref(),
                &specs,
                env.runs,
                env.parallelism(),
            );
            (name.clone(), pts)
        })
        .collect();

    for (name, points) in &series[1..] {
        for (p, u) in points.iter().zip(&series[0].1) {
            assert_eq!(p.rows, u.rows, "{name} changed query answers");
        }
    }

    println!("Fig. 6 — avg query execution time [ms] vs selectivity (B = {B})");
    let mut headers = vec!["selectivity".to_owned()];
    headers.extend(series.iter().map(|(n, _)| format!("{n} [ms]")));
    headers.extend(series.iter().map(|(n, _)| format!("{n} [pages]")));
    let mut t = Table::new(headers);
    for qi in 0..specs.len() {
        let mut row = vec![format!("{:.4}", specs[qi].selectivity)];
        row.extend(series.iter().map(|(_, pts)| ms(pts[qi].time)));
        row.extend(series.iter().map(|(_, pts)| format!("{:.0}", pts[qi].pages)));
        t.row(row);
    }
    println!("{}", t.render());
    env.maybe_csv("fig6", &t);

    println!("\npartitions per weight:");
    let mut t = Table::new(["weight", "partitions"]);
    for ((name, _, policy), w) in scenarios[1..].iter().zip(weights) {
        let _ = w;
        t.row([name.clone(), policy.partition_count().to_string()]);
    }
    println!("{}", t.render());
    env.maybe_csv("fig6_partitions", &t);
}
