//! Fig. 8 — insert execution time for different partition size limits B.
//!
//! Loads the DBpedia-like set at w = 0.5 with per-insert event recording
//! and prints a log-bucketed latency histogram per B, plus the split
//! counts. Paper shape: most inserts fall in a narrow band; a small hump of
//! much slower inserts are the splits; split *count* falls with B (paper:
//! 448 / 100 / 0 for B = 500 / 5000 / 50000 at 100 k entities) while the
//! *cost* of each split grows with B.

#![forbid(unsafe_code)]

use cind_bench::{dbpedia_dataset, load, ms, ExperimentEnv};
use cind_metrics::{LatencyHistogram, Table};
use cind_storage::UniversalTable;
use cinderella_core::{Capacity, Cinderella, Config};

fn main() {
    let env = ExperimentEnv::from_args();
    const WEIGHT: f64 = 0.5;
    let limits: [u64; 3] = [500, 5000, 50_000];

    println!(
        "Fig. 8 — insert execution time (w = {WEIGHT}, {} entities)",
        env.entities
    );

    let mut split_table = Table::new([
        "B",
        "splits",
        "partitions",
        "median insert",
        "p99 insert",
        "max insert",
        "mean split insert",
    ]);

    for b in limits {
        let mut table = UniversalTable::new(env.pool_pages);
        let entities = dbpedia_dataset(&env, &mut table);
        let mut policy = Cinderella::new(Config {
            weight: WEIGHT,
            capacity: Capacity::MaxEntities(b),
            record_events: true,
            ..Config::default()
        });
        load(&mut policy, &mut table, entities);

        let events = policy.take_events();
        let mut all = LatencyHistogram::new();
        let mut splits = LatencyHistogram::new();
        for ev in &events {
            all.record(ev.duration);
            if ev.outcome.is_split() {
                splits.record(ev.duration);
            }
        }

        println!("\nB = {b}: insert latency histogram (log buckets):");
        let mut t = Table::new(["bucket", "inserts", "of which splits"]);
        let split_buckets: std::collections::HashMap<u128, u64> = splits
            .buckets()
            .into_iter()
            .map(|(lo, _, c)| (lo.as_nanos(), c))
            .collect();
        for (lo, hi, count) in all.buckets() {
            t.row([
                format!("{} – {}", ms(lo), ms(hi)),
                count.to_string(),
                split_buckets.get(&lo.as_nanos()).copied().unwrap_or(0).to_string(),
            ]);
        }
        println!("{}", t.render());
        env.maybe_csv(&format!("fig8_b{b}"), &t);

        split_table.row([
            b.to_string(),
            policy.stats().splits.to_string(),
            policy.catalog().len().to_string(),
            ms(all.percentile(50.0).expect("events recorded")),
            ms(all.percentile(99.0).expect("events recorded")),
            ms(all.percentile(100.0).expect("events recorded")),
            splits
                .mean()
                .map(ms)
                .unwrap_or_else(|| "-".to_owned()),
        ]);
    }

    println!("\nsplit summary (paper at 100k entities: 448 / 100 / 0 splits):");
    println!("{}", split_table.render());
    env.maybe_csv("fig8_summary", &split_table);
}
