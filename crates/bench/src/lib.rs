//! Shared scaffolding for the experiment harness binaries.
//!
//! One binary per figure/table of the paper (see DESIGN.md §4):
//!
//! | binary   | regenerates |
//! |----------|-------------|
//! | `fig4`   | Fig. 4 — DBpedia attribute distributions |
//! | `fig5`   | Fig. 5 — query time vs selectivity for B ∈ {500, 5000, 50000} |
//! | `fig6`   | Fig. 6 — query time vs selectivity for w ∈ {0.0, 0.2, 0.5, 0.8} |
//! | `fig7`   | Fig. 7 — influence of w on the partitioning |
//! | `fig8`   | Fig. 8 — insert latency histograms and split counts |
//! | `table1` | Table I — TPC-H schema recovery and query overhead |
//! | `ablations` | extensions: candidate index, synopsis modes, baselines |
//!
//! Every binary accepts `--entities N`, `--seed S`, `--runs R`,
//! `--pool PAGES`, `--threads T` (fan surviving `UNION ALL` branches over
//! `T` workers; 1 = the paper's sequential scans), `--index auto|on|off`
//! (the catalog's candidate/survivor bitmap index), and `--csv DIR` (write
//! the series as CSV files), and prints fixed-width tables mirroring the
//! paper's artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use cind_baselines::Partitioner;
use cind_datagen::{DbpediaConfig, DbpediaGenerator, QuerySpec, WorkloadBuilder};
use cind_model::Entity;
use cind_query::{execute, plan_with, Parallelism, Query};
use cind_storage::UniversalTable;
use cinderella_core::{Capacity, Cinderella, Config, IndexMode};

/// Command-line knobs shared by all harness binaries.
#[derive(Clone, Debug)]
pub struct ExperimentEnv {
    /// Entity count for generated datasets (default 100 000, the paper's).
    pub entities: usize,
    /// RNG seed.
    pub seed: u64,
    /// Repetitions per query measurement.
    pub runs: usize,
    /// Buffer-pool pages (small relative to the data, so scans miss).
    pub pool_pages: usize,
    /// Worker threads for query execution (1 = the paper's sequential
    /// scans; >1 fans surviving `UNION ALL` branches over a pool).
    pub threads: usize,
    /// Directory for CSV output (`None` = console only).
    pub csv_dir: Option<std::path::PathBuf>,
    /// Catalog index mode for Cinderella instances (`--index auto|on|off`).
    pub index: IndexMode,
}

impl Default for ExperimentEnv {
    fn default() -> Self {
        Self {
            entities: 100_000,
            seed: 0xC1DE,
            runs: 3,
            pool_pages: 256,
            threads: 1,
            csv_dir: None,
            index: IndexMode::default(),
        }
    }
}

impl ExperimentEnv {
    /// Parses `--entities`, `--seed`, `--runs`, `--pool`, `--threads`,
    /// `--csv` from the process arguments; unknown flags abort with a
    /// usage message.
    pub fn from_args() -> Self {
        let mut env = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--entities" => env.entities = value("--entities").parse().expect("usize"),
                "--seed" => env.seed = value("--seed").parse().expect("u64"),
                "--runs" => env.runs = value("--runs").parse().expect("usize"),
                "--pool" => env.pool_pages = value("--pool").parse().expect("usize"),
                "--threads" => env.threads = value("--threads").parse().expect("usize"),
                "--csv" => env.csv_dir = Some(value("--csv").into()),
                "--index" => {
                    env.index = value("--index").parse().expect("auto|on|off");
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --entities N --seed S --runs R --pool PAGES --threads T \
                         --csv DIR --index auto|on|off"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        env
    }

    /// The execution strategy the flags ask for.
    pub fn parallelism(&self) -> Parallelism {
        if self.threads <= 1 {
            Parallelism::Sequential
        } else {
            Parallelism::Threads(self.threads)
        }
    }

    /// Writes `table` to `<csv_dir>/<name>.csv` when CSV output is on.
    pub fn maybe_csv(&self, name: &str, table: &cind_metrics::Table) {
        if let Some(dir) = &self.csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = dir.join(format!("{name}.csv"));
            table.write_csv(&path).expect("write csv");
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Generates the DBpedia-like dataset into a fresh table's catalog.
pub fn dbpedia_dataset(env: &ExperimentEnv, table: &mut UniversalTable) -> Vec<Entity> {
    let gen = DbpediaGenerator::new(DbpediaConfig {
        entities: env.entities,
        seed: env.seed,
        ..DbpediaConfig::default()
    });
    gen.generate(table.catalog_mut())
}

/// A Cinderella instance configured like the paper's experiments.
pub fn cinderella(b: u64, w: f64) -> Cinderella {
    cinderella_indexed(b, w, IndexMode::default())
}

/// [`cinderella`] with the catalog index mode chosen (the `--index` knob).
pub fn cinderella_indexed(b: u64, w: f64, index: IndexMode) -> Cinderella {
    Cinderella::new(Config {
        weight: w,
        capacity: Capacity::MaxEntities(b),
        index,
        ..Config::default()
    })
}

/// Loads `entities` through `policy`, returning the wall-clock load time.
pub fn load(
    policy: &mut dyn Partitioner,
    table: &mut UniversalTable,
    entities: Vec<Entity>,
) -> Duration {
    let t0 = Instant::now();
    policy
        .load(table, entities)
        .expect("load must succeed on generated data");
    t0.elapsed()
}

/// The representative query set of §V-B: all candidates binned by
/// selectivity, three per bin.
pub fn representative_queries(universe: usize, entities: &[Entity]) -> Vec<QuerySpec> {
    let builder = WorkloadBuilder::default();
    let specs = builder.build(universe, entities);
    WorkloadBuilder::representatives(&specs, &WorkloadBuilder::default_edges(), 3)
}

/// One measured point of a Fig. 5/6 series.
#[derive(Clone, Debug)]
pub struct QueryPoint {
    /// The query's selectivity (x-axis).
    pub selectivity: f64,
    /// Mean execution wall time over the runs.
    pub time: Duration,
    /// Mean logical page reads.
    pub pages: f64,
    /// Rows returned (identical across configurations — checked).
    pub rows: u64,
    /// Partitions scanned / pruned.
    pub read: usize,
    /// Partitions pruned.
    pub pruned: usize,
}

/// Runs each representative query `runs` times against `table` through the
/// policy's pruning view; returns one point per query, in spec order.
/// Sequential execution — the paper's configuration.
pub fn measure_queries(
    table: &UniversalTable,
    policy: &dyn Partitioner,
    specs: &[QuerySpec],
    runs: usize,
) -> Vec<QueryPoint> {
    measure_queries_with(table, policy, specs, runs, Parallelism::Sequential)
}

/// [`measure_queries`] with an explicit execution strategy (the
/// `--threads` knob). Aggregates are strategy-independent; only timing and
/// hit ratios move.
pub fn measure_queries_with(
    table: &UniversalTable,
    policy: &dyn Partitioner,
    specs: &[QuerySpec],
    runs: usize,
    parallelism: Parallelism,
) -> Vec<QueryPoint> {
    let view = policy.pruning_view();
    let universe = table.universe();
    specs
        .iter()
        .map(|spec| {
            let query = Query::from_attrs(universe, spec.attrs.iter().copied());
            let p = plan_with(
                &query,
                view.iter().map(|(s, syn, _)| (*s, syn)),
                parallelism,
            );
            // Warm-up run, then measured runs.
            let mut rows = 0;
            let mut total_time = Duration::ZERO;
            let mut total_pages = 0u64;
            let mut read = 0;
            let mut pruned = 0;
            for i in 0..=runs {
                let r = execute(table, &query, &p).expect("plan segments are live");
                if i == 0 {
                    continue;
                }
                rows = r.rows;
                total_time += r.duration;
                total_pages += r.io.logical_reads;
                read = r.segments_read;
                pruned = r.segments_pruned;
            }
            QueryPoint {
                selectivity: spec.selectivity,
                time: total_time / runs as u32,
                pages: total_pages as f64 / runs as f64,
                rows,
                read,
                pruned,
            }
        })
        .collect()
}

/// Formats a duration as fractional milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_baselines::Unpartitioned;

    #[test]
    fn small_end_to_end_pipeline() {
        let env = ExperimentEnv {
            entities: 2_000,
            runs: 1,
            ..ExperimentEnv::default()
        };
        let mut table = UniversalTable::new(env.pool_pages);
        let entities = dbpedia_dataset(&env, &mut table);
        assert_eq!(entities.len(), 2_000);
        let specs = representative_queries(table.universe(), &entities);
        assert!(!specs.is_empty());

        let mut cindy = cinderella(500, 0.5);
        let load_time = load(&mut cindy, &mut table, entities.clone());
        assert!(load_time > Duration::ZERO);
        assert_eq!(table.entity_count(), 2_000);

        let mut universal_table = UniversalTable::new(env.pool_pages);
        let entities2 = dbpedia_dataset(&env, &mut universal_table);
        let mut universal = Unpartitioned::new();
        load(&mut universal, &mut universal_table, entities2);

        let cindy_points = measure_queries(&table, &cindy, &specs, env.runs);
        let uni_points = measure_queries(&universal_table, &universal, &specs, env.runs);
        // Same answers, fewer pages for selective queries under Cinderella.
        for (c, u) in cindy_points.iter().zip(&uni_points) {
            assert_eq!(c.rows, u.rows, "partitioning must not change answers");
        }
        let selective: Vec<(&QueryPoint, &QueryPoint)> = cindy_points
            .iter()
            .zip(&uni_points)
            .filter(|(c, _)| c.selectivity < 0.1)
            .collect();
        assert!(!selective.is_empty());
        let c_pages: f64 = selective.iter().map(|(c, _)| c.pages).sum();
        let u_pages: f64 = selective.iter().map(|(_, u)| u.pages).sum();
        assert!(
            c_pages < u_pages,
            "selective queries must read fewer pages with Cinderella ({c_pages} vs {u_pages})"
        );

        // Parallel measurement returns the same answers and pruning.
        let par_points =
            measure_queries_with(&table, &cindy, &specs, env.runs, Parallelism::Threads(4));
        for (s, p) in cindy_points.iter().zip(&par_points) {
            assert_eq!(s.rows, p.rows, "threads must not change answers");
            assert_eq!(s.read, p.read);
            assert_eq!(s.pruned, p.pruned);
        }
    }

    #[test]
    fn env_parallelism_maps_threads() {
        let env = ExperimentEnv::default();
        assert_eq!(env.parallelism(), Parallelism::Sequential);
        let env = ExperimentEnv { threads: 4, ..ExperimentEnv::default() };
        assert_eq!(env.parallelism(), Parallelism::Threads(4));
    }
}
