//! Microbench: the rating function and the catalog scan (Algorithm 1,
//! lines 3–7) as the number of partitions grows — the scaling concern the
//! paper's future-work section raises.

use cind_model::{EntityId, Synopsis};
use cind_storage::SegmentId;
use cinderella_core::catalog::PartitionCatalog;
use cinderella_core::{global_rating, IndexMode, RatingInputs};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

const UNIVERSE: usize = 100;

fn synopsis(seed: usize, n: usize) -> Synopsis {
    Synopsis::from_bits(UNIVERSE, (0..n).map(|i| ((seed + i * 7) % UNIVERSE) as u32))
}

fn bench_single_rating(c: &mut Criterion) {
    let e = synopsis(1, 7);
    let p = synopsis(3, 45);
    c.bench_function("rating/single", |b| {
        b.iter(|| {
            let i = RatingInputs::compute(black_box(&e), 7, black_box(&p), 9_000);
            global_rating(0.2, &i)
        })
    });
}

fn catalog_with(parts: usize, mode: IndexMode) -> PartitionCatalog {
    let mut cat = PartitionCatalog::new(mode);
    for s in 0..parts {
        let seg = SegmentId(s as u32);
        cat.create_partition(seg);
        // Each partition holds a 30-attribute synopsis from a distinct
        // region of the universe (12 latent groups).
        let syn = synopsis(s * 8, 30);
        cat.add_entity(seg, EntityId(s as u64), &syn, &syn, 1_000, true);
    }
    cat
}

fn bench_catalog_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("rating/best_partition");
    for parts in [10usize, 100, 1_000] {
        let plain = catalog_with(parts, IndexMode::Off);
        let indexed = catalog_with(parts, IndexMode::On);
        let e = synopsis(5, 7);
        g.bench_with_input(BenchmarkId::new("scan", parts), &parts, |b, _| {
            b.iter(|| plain.best_partition(black_box(&e), 7, 0.2))
        });
        g.bench_with_input(BenchmarkId::new("indexed", parts), &parts, |b, _| {
            b.iter(|| indexed.best_partition(black_box(&e), 7, 0.2))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_single_rating, bench_catalog_scan);
criterion_main!(benches);
