//! Server hot-path sweep: quantifies the three PR7 levers — request
//! pipelining, wire-level batch frames, and WAL group commit — against
//! the closed-loop per-op baseline BENCH_PR6.json measured, with the
//! numbers recorded to `BENCH_PR7.json` at the workspace root.
//!
//! Two scenario families:
//!
//! * **in-memory** (directly comparable to PR6's
//!   `shards_4_connections_8`): the same server shape driven closed-loop,
//!   pipelined (16 in flight), and batched (32 inserts per frame) —
//!   isolates the wire-level wins (frames per `read`/`write` syscall,
//!   one response flush per drained queue batch);
//! * **durable** (on-disk sharded store): the same shapes with the
//!   group-commit window at 0 vs 4000 µs, reading the server's
//!   [`IoCounters`] after each run so `wal_syncs` per op and socket
//!   syscalls per frame are recorded, not inferred.
//!
//! An overload shape (1 worker, depth-8 queue, 8 pipelined pushers)
//! rides along: pipelining pushes admission control harder than a
//! closed loop ever can, and the shed rate must stay a rate, not a
//! stall.
//!
//! Run with `cargo bench -p cind-bench --bench serve_hotpath`. Not a
//! criterion bench: one load run *is* the measurement.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use cind_server::{
    run_load, Client, EngineOptions, IoCounters, LoadConfig, LoadReport, ServeConfig, Server,
    ShardedEngine, ShardedOptions,
};

/// One scenario: a server shape, a load shape, and the durability knobs.
struct Scenario {
    name: String,
    serve: ServeConfig,
    load: LoadConfig,
    /// Group-commit gather window, µs (durable scenarios only).
    window_us: u64,
    /// `true` = on-disk sharded store (WAL counters are real); `false` =
    /// in-memory, directly comparable to the PR6 sweep.
    durable: bool,
}

fn shape(
    name: &str,
    pipeline: usize,
    batch: usize,
    query_every: usize,
    window_us: u64,
    durable: bool,
) -> Scenario {
    // Pipelined shapes keep 8 × 16 = 128 frames in flight; the admission
    // queue must be deeper than that or the bench measures artificial
    // sheds, not the hot path (the dedicated overload scenario measures
    // shedding on purpose).
    let queue_depth = if pipeline > 1 { 256 } else { 64 };
    Scenario {
        name: name.to_string(),
        serve: ServeConfig { workers: 4, queue_depth, shards: 4, ..ServeConfig::default() },
        load: LoadConfig {
            connections: 8,
            entities: 4_000,
            pipeline,
            batch,
            query_every,
            ..LoadConfig::default()
        },
        window_us,
        durable,
    }
}

fn scenarios() -> Vec<Scenario> {
    let mut out = vec![
        // In-memory mixed family: same engine shape and 10:1 mix as
        // BENCH_PR6's shards_4_connections_8, so mem_closed_loop
        // re-measures that baseline on the pipelined server and the other
        // two isolate the wire-level levers.
        shape("mem_closed_loop", 1, 1, 10, 0, false),
        shape("mem_pipelined_16", 16, 1, 10, 0, false),
        shape("mem_batched_32", 1, 32, 10, 0, false),
        // Insert-only family: the headline insert-throughput comparison
        // (PR6's shards_4_connections_8 sustained ~8.2k inserts/s inside
        // its 10:1 mix) without query cost sharing the one hardware
        // thread.
        shape("insert_closed_loop", 1, 1, 0, 0, false),
        shape("insert_pipelined_16", 16, 1, 0, 0, false),
        shape("insert_batched_32", 1, 32, 0, 0, false),
        // Durable family, insert-only: every commit is WAL append + fsync.
        // At window 0 coalescing happens only when commits genuinely race
        // (pipelined runs collapse into shared groups); the window then
        // trades ack latency for even fewer fsyncs.
        shape("durable_closed_loop", 1, 1, 0, 0, true),
        shape("durable_pipelined_16", 16, 1, 0, 0, true),
        shape("durable_batched_32", 1, 32, 0, 0, true),
        shape("durable_w500_pipelined_16", 16, 1, 0, 500, true),
        shape("durable_w4000_pipelined_16", 16, 1, 0, 4_000, true),
    ];
    // Deliberate overload under pipelining: 8 connections each keeping 16
    // frames in flight against one worker and a depth-8 queue.
    out.push(Scenario {
        name: "overload_pipelined".to_string(),
        serve: ServeConfig { workers: 1, queue_depth: 8, shards: 4, ..ServeConfig::default() },
        load: LoadConfig { connections: 8, entities: 2_000, pipeline: 16, ..LoadConfig::default() },
        window_us: 0,
        durable: false,
    });
    out
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn store_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("cind_hotpath_bench")
        .join(format!("{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_scenario(sc: &Scenario) -> (LoadReport, IoCounters) {
    let eopts = EngineOptions {
        pool_pages: 4096,
        query_threads: sc.serve.query_threads,
        group_commit_window: Duration::from_micros(sc.window_us),
        ..EngineOptions::default()
    };
    let sopts = ShardedOptions::new(eopts, sc.serve.effective_shards());
    let dir = sc.durable.then(|| store_dir(&sc.name));
    let engine = Arc::new(match &dir {
        Some(d) => ShardedEngine::open(d, sopts).expect("store opens"),
        None => ShardedEngine::in_memory(sopts),
    });
    let handle = Server::start(Arc::clone(&engine), &sc.serve).expect("server start");
    let addr = format!("127.0.0.1:{}", handle.port());
    let report = run_load(&addr, &sc.load).expect("load run");
    let mut client = Client::connect(&addr).expect("connect");
    let io = client.io_counters().expect("io counters");
    client.shutdown().expect("shutdown");
    let shutdown = handle.join().expect("graceful join");
    assert!(
        shutdown.violations.is_empty(),
        "{}: post-drain validation failed: {:?}",
        sc.name,
        shutdown.violations
    );
    if let Some(d) = dir {
        let _ = std::fs::remove_dir_all(d);
    }
    (report, io)
}

fn per(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

fn json_block(sc: &Scenario, report: &mut LoadReport, io: &IoCounters) -> String {
    let mut out = String::new();
    let p = |h: &mut cind_metrics::LatencyHistogram, q: f64| h.percentile(q).map_or(0.0, us);
    let (e2e_p50, e2e_p99) =
        (p(&mut report.insert_latency, 50.0), p(&mut report.insert_latency, 99.0));
    let (svc_p50, svc_p99) =
        (p(&mut report.insert_service, 50.0), p(&mut report.insert_service, 99.0));
    let (q_p50, q_p99) = (p(&mut report.query_latency, 50.0), p(&mut report.query_latency, 99.0));
    let ops = report.inserts + report.queries;
    let _ = write!(
        out,
        "    \"{}\": {{\n      \
         \"durable\": {}, \"pipeline\": {}, \"batch\": {}, \"gc_window_us\": {},\n      \
         \"workers\": {}, \"queue_depth\": {}, \"shards\": {}, \"connections\": {},\n      \
         \"inserts\": {}, \"queries\": {}, \"rows\": {}, \"busy_sheds\": {}, \"errors\": {},\n      \
         \"elapsed_s\": {:.3}, \"throughput_ops_s\": {:.0},\n      \
         \"insert_e2e_p50_us\": {e2e_p50:.1}, \"insert_e2e_p99_us\": {e2e_p99:.1},\n      \
         \"insert_svc_p50_us\": {svc_p50:.1}, \"insert_svc_p99_us\": {svc_p99:.1},\n      \
         \"query_e2e_p50_us\": {q_p50:.1}, \"query_e2e_p99_us\": {q_p99:.1},\n      \
         \"wal_appends\": {}, \"wal_syncs\": {}, \"wal_groups\": {}, \"wal_ops\": {},\n      \
         \"wal_syncs_per_op\": {:.4}, \"ops_per_commit_group\": {:.2},\n      \
         \"net_reads\": {}, \"net_writes\": {}, \"frames_in\": {}, \"frames_out\": {},\n      \
         \"frames_per_read\": {:.2}, \"frames_per_write\": {:.2}, \
         \"socket_syscalls_per_op\": {:.3}\n    }}",
        sc.name,
        sc.durable,
        sc.load.pipeline,
        sc.load.batch,
        sc.window_us,
        sc.serve.effective_workers(),
        sc.serve.effective_queue_depth(),
        sc.serve.effective_shards(),
        sc.load.connections,
        report.inserts,
        report.queries,
        report.rows,
        report.busy_sheds,
        report.errors,
        report.elapsed.as_secs_f64(),
        report.throughput(),
        io.wal_appends,
        io.wal_syncs,
        io.wal_groups,
        io.wal_ops,
        per(io.wal_syncs, io.wal_ops),
        per(io.wal_ops, io.wal_groups),
        io.net_reads,
        io.net_writes,
        io.frames_in,
        io.frames_out,
        per(io.frames_in, io.net_reads),
        per(io.frames_out, io.net_writes),
        per(io.net_reads + io.net_writes, ops),
    );
    out
}

fn main() {
    let mut blocks = Vec::new();
    let mut baseline_ops = 0.0f64;
    for sc in scenarios() {
        eprintln!("serve_hotpath bench: {}", sc.name);
        let (mut report, io) = run_scenario(&sc);
        eprintln!("{}", report.render());
        if sc.name == "mem_closed_loop" {
            baseline_ops = report.throughput();
        } else if baseline_ops > 0.0 {
            eprintln!(
                "  -> {:.2}x the closed-loop baseline",
                report.throughput() / baseline_ops
            );
        }
        blocks.push(json_block(&sc, &mut report, &io));
    }

    let json = format!(
        "{{\n  \"pr\": 7,\n  \"date\": \"2026-08-08\",\n  \"description\": \"cind-server hot \
         path: WAL group commit, request pipelining, and wire-level batch frames, measured \
         against the closed-loop per-op baseline. In-memory scenarios re-run BENCH_PR6's \
         shards_4_connections_8 shape (workers=4, queue=64, shards=4, connections=8, 9018 \
         ops/s there) closed-loop vs pipelined (16 in flight) vs batched (32 inserts per \
         InsertBatch frame), isolating the wire-level levers. Durable scenarios run the same \
         shapes on an on-disk sharded store with the group-commit window at 0 vs 4000 us, \
         recording the server's own IoCounters: wal_syncs per committed op (the fsync \
         amortisation), ops per commit group (the coalescing factor), and frames per socket \
         read/write syscall (the pipelining amortisation). An overload shape (workers=1, \
         queue_depth=8, 8 pipelined connections) keeps admission control measured under \
         pipelined pressure. From `cargo bench -p cind-bench --bench serve_hotpath`.\",\n  \
         \"machine_note\": \"Linux container, 1 hardware thread, release profile, loopback \
         TCP; durable stores on local tmpdir, so fsync cost is the container's, not a \
         datacenter disk's\",\n  \
         \"serve_hotpath\": {{\n{}\n  }}\n}}\n",
        blocks.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR7.json");
    std::fs::write(path, &json).expect("write BENCH_PR7.json");
    eprintln!("wrote {path}");
}
