//! Simulation-harness throughput: how many fully-oracle-checked schedule
//! steps per second the deterministic simulator sustains, with and
//! without fault injection, plus the crash-point sweep's recoveries per
//! second. The numbers bound how much schedule space a CI minute buys —
//! the knob behind the `sim` job's 32×2000 matrix — and are recorded to
//! `BENCH_PR5.json` at the workspace root.
//!
//! Run with `cargo bench -p cind-bench --bench sim`. Not a criterion
//! bench: each run is thousands of internally-checked steps, so one
//! wall-clock measurement per scenario is the signal.

use std::fmt::Write as _;
use std::time::Instant;

use cind_sim::{crash_sweep, generate, run_ops, FaultPlan, RunSpec};

struct Scenario {
    name: &'static str,
    seed: u64,
    ops: usize,
    faults: bool,
    shards: usize,
    /// Full oracle check every N steps (1 = every step, as CI runs it).
    check_every: usize,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario { name: "clean_2000", seed: 0, ops: 2000, faults: false, shards: 1, check_every: 1 },
        Scenario { name: "faults_2000", seed: 0, ops: 2000, faults: true, shards: 1, check_every: 1 },
        Scenario {
            name: "faults_2000_check_16",
            seed: 0,
            ops: 2000,
            faults: true,
            shards: 1,
            check_every: 16,
        },
        // Sharded world: 4 independent crash domains, every per-shard
        // oracle diff run each step.
        Scenario {
            name: "faults_2000_shards_4",
            seed: 0,
            ops: 2000,
            faults: true,
            shards: 4,
            check_every: 1,
        },
    ]
}

fn main() {
    let mut blocks = Vec::new();
    for sc in scenarios() {
        eprintln!("sim bench: {}", sc.name);
        let plan = if sc.faults { FaultPlan::all() } else { FaultPlan::none() };
        let ops = generate(sc.seed, sc.ops, sc.faults, sc.shards);
        let start = Instant::now();
        let report = run_ops(&RunSpec {
            seed: sc.seed,
            faults: sc.faults,
            shards: sc.shards,
            plan,
            ops: &ops,
            check_every: sc.check_every,
            arm_crash: None,
            tier: cinderella_core::IndexTier::Exact,
        })
        .expect("committed seeds pass");
        let elapsed = start.elapsed().as_secs_f64();
        let steps_per_s = sc.ops as f64 / elapsed;
        eprintln!(
            "  {} steps in {elapsed:.2}s = {steps_per_s:.0} steps/s, {} restarts, \
             {} entities, hash {:016x}",
            sc.ops,
            report.restarts,
            report.final_entities,
            report.trace.hash()
        );
        let mut out = String::new();
        let _ = write!(
            out,
            "    \"{}\": {{\n      \"ops\": {}, \"faults\": {}, \"shards\": {}, \
             \"check_every\": {},\n      \
             \"elapsed_s\": {elapsed:.3}, \"steps_per_s\": {steps_per_s:.0},\n      \
             \"restarts\": {}, \"final_entities\": {}, \"vfs_mutations\": {}\n    }}",
            sc.name,
            sc.ops,
            sc.faults,
            sc.shards,
            sc.check_every,
            report.restarts,
            report.final_entities,
            report.vfs_mutations,
        );
        blocks.push(out);
    }

    // The sweep: one full run per (shard, mutating VFS operation) pair.
    eprintln!("sim bench: sweep_40");
    let start = Instant::now();
    let points = crash_sweep(3, 40, 2).expect("sweep passes");
    let elapsed = start.elapsed().as_secs_f64();
    eprintln!(
        "  {points} crash-points in {elapsed:.2}s = {:.0} recoveries/s",
        points as f64 / elapsed
    );
    let mut sweep = String::new();
    let _ = write!(
        sweep,
        "    \"sweep_40\": {{\n      \"ops\": 40, \"shards\": 2, \"crash_points\": {points},\n      \
         \"elapsed_s\": {elapsed:.3}, \"recoveries_per_s\": {:.0}\n    }}",
        points as f64 / elapsed
    );
    blocks.push(sweep);

    let json = format!(
        "{{\n  \"pr\": 5,\n  \"date\": \"2026-08-06\",\n  \"description\": \"cind-sim \
         deterministic simulation harness: fully-oracle-checked schedule steps per second \
         (model-table diff + structural validation + independent EFFICIENCY(P) recompute \
         each step) with faults off/on, the check_every=16 batched variant, a 4-shard \
         world (per-shard crash domains + per-shard oracle diffs), and the \
         kill-at-every-(shard, crash-point) sweep. From `cargo bench -p cind-bench --bench sim`.\",\n  \
         \"machine_note\": \"Linux container, release profile, in-memory SimVfs, virtual \
         clock\",\n  \"sim\": {{\n{}\n  }}\n}}\n",
        blocks.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR5.json");
    std::fs::write(path, &json).expect("write BENCH_PR5.json");
    eprintln!("wrote {path}");
}
