//! Macrobench: the cost of a single split as a function of the partition
//! size limit B — the paper's observation that split cost grows with B
//! while split frequency falls.

use cind_model::{AttrId, Entity, EntityId, Value};
use cind_storage::UniversalTable;
use cinderella_core::{Capacity, Cinderella, Config};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Builds a table + partitioner with exactly one full partition of `b`
/// entities split across two latent shapes, so the (b+1)-th insert splits.
fn full_partition(b: u64) -> (UniversalTable, Cinderella, Entity) {
    let mut table = UniversalTable::new(1024);
    for i in 0..20 {
        table.catalog_mut().intern(&format!("a{i}"));
    }
    // w = 1 piles both shapes into one partition.
    let mut cindy = Cinderella::new(Config {
        weight: 1.0,
        capacity: Capacity::MaxEntities(b),
        ..Config::default()
    });
    for i in 0..b {
        let base = if i % 2 == 0 { 0u32 } else { 10 };
        let attrs: Vec<(AttrId, Value)> = (0..5)
            .map(|k| (AttrId(base + k), Value::Int(i64::from(k))))
            .collect();
        let e = Entity::new(EntityId(i), attrs).expect("unique");
        cindy.insert(&mut table, e).expect("insert");
    }
    assert_eq!(cindy.catalog().len(), 1, "one full partition");
    let trigger = Entity::new(
        EntityId(b),
        (0..5).map(|k| (AttrId(k), Value::Int(1))),
    )
    .expect("unique");
    (table, cindy, trigger)
}

fn bench_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("split/one_split");
    g.sample_size(10);
    for b in [100u64, 1_000, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, &b| {
            bench.iter_batched(
                || full_partition(b),
                |(mut table, mut cindy, trigger)| {
                    let outcome = cindy.insert(&mut table, trigger).expect("insert");
                    assert!(outcome.is_split());
                    (table, cindy)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_split);
criterion_main!(benches);
