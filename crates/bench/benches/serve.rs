//! Serving-layer shard sweep: an in-process `cind-server` on a loopback
//! socket, driven by the closed-loop load generator, measured across
//! shard counts 1/2/4/8 × client connections 1/4/8, with the numbers
//! recorded to `BENCH_PR6.json` at the workspace root.
//!
//! The sweep is the measurement behind the sharding tentpole: per-shard
//! writer locks mean concurrent inserts only contend when they hash to
//! the same shard, and epoch snapshot reads keep queries off the writer
//! path entirely. On a multi-core host that shows up as insert tail
//! latency falling and throughput scaling as shards grow; on a
//! single-hardware-thread host (this container) fan-out legs run inline,
//! so the sweep instead bounds the *sharding tax* — shards > 1 must stay
//! within noise of shards = 1.
//! An overload shape (1 worker, depth-1 queue, 8 pushers, 4 shards) rides
//! along to keep admission control measured under the sharded engine.
//!
//! Run with `cargo bench -p cind-bench --bench serve`. Not a criterion
//! bench: one load run *is* the measurement (throughput and latency
//! percentiles over thousands of operations), so statistical resampling
//! would only re-run minutes of socket traffic for no extra information.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use cind_server::{
    run_load, Client, EngineOptions, LoadConfig, LoadReport, ServeConfig, Server, ShardedEngine,
    ShardedOptions,
};

/// One scenario: a server shape plus a load shape.
struct Scenario {
    name: String,
    serve: ServeConfig,
    load: LoadConfig,
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    // Workers fixed at 4 — the shape BENCH_PR4.json measured — so the
    // sweep isolates the effect of the shard count alone and the PR4
    // numbers stay directly comparable.
    for &shards in &[1usize, 2, 4, 8] {
        for &connections in &[1usize, 4, 8] {
            out.push(Scenario {
                name: format!("shards_{shards}_connections_{connections}"),
                serve: ServeConfig {
                    workers: 4,
                    queue_depth: 64,
                    shards,
                    ..ServeConfig::default()
                },
                load: LoadConfig { connections, entities: 4_000, ..LoadConfig::default() },
            });
        }
    }
    // Deliberate overload: one worker, depth-1 queue, eight pushers —
    // measures that admission control still sheds instead of stalling
    // when the engine underneath is sharded.
    out.push(Scenario {
        name: "overload_queue_1".to_string(),
        serve: ServeConfig { workers: 1, queue_depth: 1, shards: 4, ..ServeConfig::default() },
        load: LoadConfig { connections: 8, entities: 2_000, ..LoadConfig::default() },
    });
    out
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn run_scenario(sc: &Scenario) -> (LoadReport, u64) {
    let engine = Arc::new(ShardedEngine::in_memory(ShardedOptions::new(
        EngineOptions {
            pool_pages: 4096,
            query_threads: sc.serve.query_threads,
            ..EngineOptions::default()
        },
        sc.serve.effective_shards(),
    )));
    let handle = Server::start(Arc::clone(&engine), &sc.serve).expect("server start");
    let addr = format!("127.0.0.1:{}", handle.port());
    let report = run_load(&addr, &sc.load).expect("load run");
    let mut client = Client::connect(&addr).expect("connect");
    let partitions = client.stats().expect("stats").partitions;
    client.shutdown().expect("shutdown");
    let shutdown = handle.join().expect("graceful join");
    assert!(
        shutdown.violations.is_empty(),
        "{}: post-drain validation failed: {:?}",
        sc.name,
        shutdown.violations
    );
    (report, partitions)
}

fn json_block(sc: &Scenario, report: &mut LoadReport, partitions: u64) -> String {
    let mut out = String::new();
    let p = |h: &mut cind_metrics::LatencyHistogram, q: f64| {
        h.percentile(q).map_or(0.0, us)
    };
    let (ins_p50, ins_p99) =
        (p(&mut report.insert_latency, 50.0), p(&mut report.insert_latency, 99.0));
    let (q_p50, q_p99) =
        (p(&mut report.query_latency, 50.0), p(&mut report.query_latency, 99.0));
    let _ = write!(
        out,
        "    \"{}\": {{\n      \"shards\": {}, \"connections\": {}, \"workers\": {}, \
         \"queue_depth\": {},\n      \
         \"inserts\": {}, \"queries\": {}, \"rows\": {}, \"busy_sheds\": {}, \"errors\": {},\n      \
         \"partitions\": {partitions}, \"elapsed_s\": {:.3}, \"throughput_ops_s\": {:.0},\n      \
         \"insert_p50_us\": {ins_p50:.1}, \"insert_p99_us\": {ins_p99:.1},\n      \
         \"query_p50_us\": {q_p50:.1}, \"query_p99_us\": {q_p99:.1}\n    }}",
        sc.name,
        sc.serve.effective_shards(),
        sc.load.connections,
        sc.serve.effective_workers(),
        sc.serve.effective_queue_depth(),
        report.inserts,
        report.queries,
        report.rows,
        report.busy_sheds,
        report.errors,
        report.elapsed.as_secs_f64(),
        report.throughput(),
    );
    out
}

fn main() {
    let mut blocks = Vec::new();
    for sc in scenarios() {
        eprintln!("serve bench: {}", sc.name);
        let (mut report, partitions) = run_scenario(&sc);
        eprintln!("{}", report.render());
        blocks.push(json_block(&sc, &mut report, partitions));
    }

    let json = format!(
        "{{\n  \"pr\": 6,\n  \"date\": \"2026-08-08\",\n  \"description\": \"cind-server \
         sharded serving layer: closed-loop load generator (DBpedia-like entities, mixed \
         insert/query 10:1) against an in-process server on loopback. Scenarios sweep \
         engine shards (1/2/4/8) x client connections (1/4/8) at fixed workers=4/queue=64 \
         — per-shard writer locks keep inserts off each other, epoch snapshots keep \
         queries off the writer path, and on a 1-hardware-thread host fan-out legs run \
         inline so shards > 1 measures the sharding tax, not parallel speedup — plus a \
         deliberate overload shape (workers=1, queue_depth=1, 8 connections, 4 shards) \
         exercising admission control. From `cargo bench -p cind-bench --bench serve`.\",\n  \
         \"machine_note\": \"Linux container, 1 hardware thread, release profile, loopback \
         TCP, per-shard writer locks + epoch snapshot reads, inline query fan-out\",\n  \
         \"serve\": {{\n{}\n  }}\n}}\n",
        blocks.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR6.json");
    std::fs::write(path, &json).expect("write BENCH_PR6.json");
    eprintln!("wrote {path}");
}
