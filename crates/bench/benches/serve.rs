//! Serving-layer throughput/latency harness: an in-process `cind-server`
//! on a loopback socket, driven by the closed-loop load generator, with
//! the numbers recorded to `BENCH_PR4.json` at the workspace root.
//!
//! Run with `cargo bench -p cind-bench --bench serve`. Not a criterion
//! bench: one load run *is* the measurement (throughput and latency
//! percentiles over thousands of operations), so statistical resampling
//! would only re-run minutes of socket traffic for no extra information.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use cind_server::{
    run_load, Client, Engine, EngineOptions, LoadConfig, LoadReport, ServeConfig, Server,
};

/// One scenario: a server shape plus a load shape.
struct Scenario {
    name: &'static str,
    serve: ServeConfig,
    load: LoadConfig,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "connections_1",
            serve: ServeConfig { workers: 4, queue_depth: 64, ..ServeConfig::default() },
            load: LoadConfig { connections: 1, entities: 4_000, ..LoadConfig::default() },
        },
        Scenario {
            name: "connections_4",
            serve: ServeConfig { workers: 4, queue_depth: 64, ..ServeConfig::default() },
            load: LoadConfig { connections: 4, entities: 4_000, ..LoadConfig::default() },
        },
        Scenario {
            name: "connections_8",
            serve: ServeConfig { workers: 4, queue_depth: 64, ..ServeConfig::default() },
            load: LoadConfig { connections: 8, entities: 4_000, ..LoadConfig::default() },
        },
        // Deliberate overload: one worker, depth-1 queue, eight pushers —
        // measures that admission control sheds instead of stalling.
        Scenario {
            name: "overload_queue_1",
            serve: ServeConfig { workers: 1, queue_depth: 1, ..ServeConfig::default() },
            load: LoadConfig { connections: 8, entities: 2_000, ..LoadConfig::default() },
        },
    ]
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn run_scenario(sc: &Scenario) -> (LoadReport, u64) {
    let engine = Arc::new(Engine::in_memory(EngineOptions {
        pool_pages: 4096,
        query_threads: sc.serve.query_threads,
        ..EngineOptions::default()
    }));
    let handle = Server::start(Arc::clone(&engine), &sc.serve).expect("server start");
    let addr = format!("127.0.0.1:{}", handle.port());
    let report = run_load(&addr, &sc.load).expect("load run");
    let mut client = Client::connect(&addr).expect("connect");
    let partitions = client.stats().expect("stats").partitions;
    client.shutdown().expect("shutdown");
    let shutdown = handle.join().expect("graceful join");
    assert!(
        shutdown.violations.is_empty(),
        "{}: post-drain validation failed: {:?}",
        sc.name,
        shutdown.violations
    );
    (report, partitions)
}

fn json_block(sc: &Scenario, report: &mut LoadReport, partitions: u64) -> String {
    let mut out = String::new();
    let p = |h: &mut cind_metrics::LatencyHistogram, q: f64| {
        h.percentile(q).map_or(0.0, us)
    };
    let (ins_p50, ins_p99) =
        (p(&mut report.insert_latency, 50.0), p(&mut report.insert_latency, 99.0));
    let (q_p50, q_p99) =
        (p(&mut report.query_latency, 50.0), p(&mut report.query_latency, 99.0));
    let _ = write!(
        out,
        "    \"{}\": {{\n      \"connections\": {}, \"workers\": {}, \"queue_depth\": {},\n      \
         \"inserts\": {}, \"queries\": {}, \"rows\": {}, \"busy_sheds\": {}, \"errors\": {},\n      \
         \"partitions\": {partitions}, \"elapsed_s\": {:.3}, \"throughput_ops_s\": {:.0},\n      \
         \"insert_p50_us\": {ins_p50:.1}, \"insert_p99_us\": {ins_p99:.1},\n      \
         \"query_p50_us\": {q_p50:.1}, \"query_p99_us\": {q_p99:.1}\n    }}",
        sc.name,
        sc.load.connections,
        sc.serve.effective_workers(),
        sc.serve.effective_queue_depth(),
        report.inserts,
        report.queries,
        report.rows,
        report.busy_sheds,
        report.errors,
        report.elapsed.as_secs_f64(),
        report.throughput(),
    );
    out
}

fn main() {
    let mut blocks = Vec::new();
    for sc in scenarios() {
        eprintln!("serve bench: {}", sc.name);
        let (mut report, partitions) = run_scenario(&sc);
        eprintln!("{}", report.render());
        blocks.push(json_block(&sc, &mut report, partitions));
    }

    let json = format!(
        "{{\n  \"pr\": 4,\n  \"date\": \"2026-08-06\",\n  \"description\": \"cind-server \
         serving layer: closed-loop load generator (DBpedia-like entities, mixed \
         insert/query 10:1) against an in-process server on loopback. Scenarios sweep \
         client connections at fixed workers=4/queue=64, plus a deliberate overload shape \
         (workers=1, queue_depth=1, 8 connections) exercising admission control. From \
         `cargo bench -p cind-bench --bench serve`.\",\n  \"machine_note\": \"Linux \
         container, release profile, loopback TCP, single-writer engine lock\",\n  \
         \"serve\": {{\n{}\n  }}\n}}\n",
        blocks.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR4.json");
    std::fs::write(path, &json).expect("write BENCH_PR4.json");
    eprintln!("wrote {path}");
}
