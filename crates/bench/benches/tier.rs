//! Tiered pruning index at catalog scale: plan-path latency, resident
//! index bytes, and false-positive rate, `exact` versus `tiered`, on
//! synthetic irregular catalogs of 10⁴–10⁶ partitions.
//!
//! The catalog is driven directly ([`PartitionCatalog`] is the unit under
//! test — entity storage is irrelevant to the plan path): each partition
//! carries one synthetic member whose synopsis is its schema family's
//! attribute block with an irregular tail of global attributes, the
//! paper's "irregularly structured" shape at scale. Queries probe two
//! attributes of one family. Ground truth comes from posting lists built
//! alongside the catalog, so the false-positive accounting is independent
//! of the index code it judges — and every query asserts the tier's
//! no-false-negative contract (exact survivors ⊆ tiered survivors).
//!
//! Three charts:
//!
//! * scale sweep — `exact` at {10⁴, 10⁵} vs `tiered` at {10⁴, 10⁵, 10⁶}
//!   (exact presence bitmaps at 10⁶ exist only to be too big — the tier
//!   is the difference between "fits" and "doesn't");
//! * `blocks_per_group` sweep at 10⁵ — false-positive rate against
//!   filter bits per key;
//! * acceptance summary — resident-byte ratio and plan-latency ratio at
//!   10⁵ (the PR's bar: ≥ 5× memory reduction, latency ≤ 1.5× exact).
//!
//! Results go to `BENCH_PR10.json` at the workspace root. Run with
//! `cargo bench -p cind-bench --bench tier`. Not a criterion bench: the
//! catalogs are deterministic (splitmix-seeded, no threads), so one
//! wall-clock measurement per (scale, tier) cell is the signal.

use std::fmt::Write as _;
use std::time::Instant;

use cind_model::{AttrId, EntityId, Synopsis};
use cind_storage::SegmentId;
use cinderella_core::{IndexMode, IndexTier, PartitionCatalog, TierParams};

/// Attribute universe (bits in every synopsis).
const UNIVERSE: usize = 4096;
/// Schema families; family `f` owns the attribute block `f*8 .. f*8+8`.
const FAMILIES: usize = 512;
/// Attributes per family block.
const FAMILY_WIDTH: usize = 8;
/// Distinct two-attribute probe queries per measurement.
const QUERIES: usize = 256;
/// Timed repetitions of the query set (per-query latency = total / (R·Q)).
const ROUNDS: usize = 32;
const SEED: u64 = 0x01D5_C0DE;

/// splitmix64 — the bench's only randomness; deterministic across runs.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// How partition creation order maps to schema families — i.e. how
/// family-coherent the catalog's 64-slot filter groups end up.
#[derive(Clone, Copy, PartialEq)]
enum Layout {
    /// Partitions arrive family by family (the group-structured catalog
    /// the paper's insert clustering produces): groups are family-pure
    /// and the group union summary rejects almost every group outright.
    Clustered,
    /// Partitions arrive in family-shuffled order — the adversarial
    /// layout where every group mixes ~64 families and pruning leans
    /// entirely on the per-slot filter lanes.
    Shuffled,
}

/// The irregular attribute set of partition `i` of `n`: most of one
/// family's block (each attribute dropped with probability 1/4) plus two
/// global long-tail attributes — no two partitions of a family agree
/// exactly.
fn partition_attrs(i: u64, n: usize, layout: Layout) -> Vec<u32> {
    let family = match layout {
        Layout::Clustered => (i as usize * FAMILIES) / n,
        Layout::Shuffled => (mix(SEED ^ i) as usize) % FAMILIES,
    };
    let base = (family * FAMILY_WIDTH) as u32;
    let mut attrs: Vec<u32> = (0..FAMILY_WIDTH as u32)
        .filter(|j| !mix(SEED ^ i ^ u64::from(*j) << 17).is_multiple_of(4))
        .map(|j| base + j)
        .collect();
    for t in 0..2u64 {
        let tail = (mix(SEED ^ i.rotate_left(13) ^ t) as usize % UNIVERSE) as u32;
        if !attrs.contains(&tail) {
            attrs.push(tail);
        }
    }
    attrs
}

/// The two-attribute probe queries: query `q` asks for two attributes of
/// one family — the selective shape pruning exists for.
fn queries() -> Vec<Vec<u32>> {
    (0..QUERIES as u64)
        .map(|q| {
            let family = (mix(SEED.rotate_left(7) ^ q) as usize) % FAMILIES;
            let base = (family * FAMILY_WIDTH) as u32;
            let a = base + (mix(SEED ^ q ^ 0xA) % FAMILY_WIDTH as u64) as u32;
            let mut b = base + (mix(SEED ^ q ^ 0xB) % FAMILY_WIDTH as u64) as u32;
            if b == a {
                b = base + (u32::from(a == base));
            }
            vec![a, b]
        })
        .collect()
}

struct Cell {
    build_s: f64,
    resident_bytes: usize,
    plan_us: f64,
    mean_survivors: f64,
    /// False positives / true negatives, averaged over the query set.
    fp_rate: f64,
}

/// Builds an `n`-partition catalog under `tier` and measures the cell.
/// `postings[attr]` (built once per scale by the caller) is the ground
/// truth: the slots whose partition carries `attr`.
fn run(
    n: usize,
    layout: Layout,
    tier: IndexTier,
    params: TierParams,
    postings: &[Vec<u32>],
) -> Cell {
    let built = Instant::now();
    let mut cat = PartitionCatalog::with_tier_params(IndexMode::On, tier, params);
    for i in 0..n {
        let seg = SegmentId(i as u32);
        cat.create_partition(seg);
        let syn = Synopsis::from_attrs(
            UNIVERSE,
            partition_attrs(i as u64, n, layout).into_iter().map(AttrId),
        );
        cat.add_entity(seg, EntityId(i as u64), &syn, &syn, 8, true);
    }
    let build_s = built.elapsed().as_secs_f64();

    let raw = queries();
    let qs: Vec<Synopsis> = raw
        .iter()
        .map(|attrs| Synopsis::from_attrs(UNIVERSE, attrs.iter().copied().map(AttrId)))
        .collect();
    // Warm-up round doubling as the engine's heat feed: survivors earn
    // heat, so the tier's hot-tier promotion machinery runs exactly as it
    // would under the server (and its exact bitmaps serve the hot slice
    // of the measured rounds).
    let mut fp = 0u64;
    let mut tn = 0u64;
    let mut survivors_total = 0u64;
    for (qi, q) in qs.iter().enumerate() {
        let (survivors, _) = cat.plan_survivors(q).expect("index mode on");
        for seg in &survivors {
            cat.note_heat(*seg, 1);
        }
        survivors_total += survivors.len() as u64;
        // Ground truth from the posting lists; assert the tier's
        // no-false-negative contract on every query.
        let mut truth: Vec<u32> = raw[qi]
            .iter()
            .flat_map(|a| postings[*a as usize].iter().copied())
            .collect();
        truth.sort_unstable();
        truth.dedup();
        for slot in &truth {
            assert!(
                survivors.contains(&SegmentId(*slot)),
                "false negative: partition {slot} dropped for query {qi}"
            );
        }
        fp += survivors.len() as u64 - truth.len() as u64;
        tn += (n - truth.len()) as u64;
    }
    let fp_rate = if tn == 0 { 0.0 } else { fp as f64 / tn as f64 };

    let timed = Instant::now();
    let mut checksum = 0usize;
    for _ in 0..ROUNDS {
        for q in &qs {
            let (survivors, _) = cat.plan_survivors(q).expect("index mode on");
            checksum = checksum.wrapping_add(survivors.len());
        }
    }
    let plan_us =
        timed.elapsed().as_secs_f64() * 1e6 / (ROUNDS * QUERIES) as f64;
    assert!(checksum > 0, "queries must hit partitions");

    Cell {
        build_s,
        resident_bytes: cat.index_resident_bytes(),
        plan_us,
        mean_survivors: survivors_total as f64 / QUERIES as f64,
        fp_rate,
    }
}

/// Ground-truth posting lists for an `n`-partition catalog.
fn build_postings(n: usize, layout: Layout) -> Vec<Vec<u32>> {
    let mut postings: Vec<Vec<u32>> = vec![Vec::new(); UNIVERSE];
    for i in 0..n {
        for a in partition_attrs(i as u64, n, layout) {
            postings[a as usize].push(i as u32);
        }
    }
    postings
}

fn cell_json(c: &Cell) -> String {
    format!(
        "{{ \"build_s\": {:.3}, \"resident_bytes\": {}, \"plan_us\": {:.2}, \
         \"mean_survivors\": {:.1}, \"fp_rate\": {:.5} }}",
        c.build_s, c.resident_bytes, c.plan_us, c.mean_survivors, c.fp_rate
    )
}

fn main() {
    let scales: [(usize, &str); 3] =
        [(10_000, "1e4"), (100_000, "1e5"), (1_000_000, "1e6")];
    let params = TierParams::default();

    // Scale sweep on the group-structured (family-clustered) catalog —
    // the layout the paper's insert clustering converges to and the one
    // the PR's acceptance bar is stated against.
    let mut scale_blocks = Vec::new();
    let mut accept: Option<(f64, f64)> = None;
    for (n, label) in scales {
        let postings = build_postings(n, Layout::Clustered);
        eprintln!("tier bench: {n} partitions (clustered)");
        // Exact presence bitmaps are the oracle and the baseline; at 10⁶
        // they are exactly the memory wall the tier removes, so the cell
        // is measured only where it is a sane configuration.
        let exact = (n <= 100_000)
            .then(|| run(n, Layout::Clustered, IndexTier::Exact, params, &postings));
        let tiered = run(n, Layout::Clustered, IndexTier::Tiered, params, &postings);
        if let Some(e) = &exact {
            eprintln!(
                "  exact:  {:>12} B, plan {:>7.2} us  ({:.1} survivors)",
                e.resident_bytes, e.plan_us, e.mean_survivors
            );
        }
        eprintln!(
            "  tiered: {:>12} B, plan {:>7.2} us  ({:.1} survivors, fp {:.4})",
            tiered.resident_bytes, tiered.plan_us, tiered.mean_survivors, tiered.fp_rate
        );
        if n == 100_000 {
            if let Some(e) = &exact {
                accept = Some((
                    e.resident_bytes as f64 / tiered.resident_bytes as f64,
                    tiered.plan_us / e.plan_us,
                ));
            }
        }
        let exact_json =
            exact.map_or_else(|| "null".to_owned(), |e| cell_json(&e));
        scale_blocks.push(format!(
            "    \"{label}\": {{ \"partitions\": {n}, \"exact\": {exact_json}, \
             \"tiered\": {} }}",
            cell_json(&tiered)
        ));
    }

    // The adversarial counterpart at 10⁵: family-shuffled arrival order,
    // where every group mixes families, the union summary is saturated,
    // and pruning leans entirely on the per-slot filter lanes. Reported
    // alongside, not part of the acceptance bar.
    let postings = build_postings(100_000, Layout::Shuffled);
    eprintln!("tier bench: 100000 partitions (shuffled)");
    let shuf_exact =
        run(100_000, Layout::Shuffled, IndexTier::Exact, params, &postings);
    let shuf_tiered =
        run(100_000, Layout::Shuffled, IndexTier::Tiered, params, &postings);
    eprintln!(
        "  exact:  {:>12} B, plan {:>7.2} us\n  tiered: {:>12} B, plan {:>7.2} us \
         (fp {:.4})",
        shuf_exact.resident_bytes,
        shuf_exact.plan_us,
        shuf_tiered.resident_bytes,
        shuf_tiered.plan_us,
        shuf_tiered.fp_rate
    );

    // blocks_per_group sweep on the shuffled layout (where the filter
    // lanes do all the work): false-positive rate against filter bits per
    // key at 10⁵. Growth is pinned (`max_blocks_per_group = blocks`) so
    // each cell really measures its density — unpinned, the load-driven
    // grower walks every cell to the same equilibrium.
    let keys_per_group = postings.iter().map(Vec::len).sum::<usize>() as f64
        / (100_000.0 / 64.0);
    let mut sweep_blocks = Vec::new();
    for blocks in [8usize, 32, 128] {
        let bits_per_key = (blocks * 64) as f64 / keys_per_group;
        eprintln!(
            "tier bench: blocks_per_group {blocks} pinned ({bits_per_key:.1} bits/key)"
        );
        let p = TierParams {
            blocks_per_group: blocks,
            max_blocks_per_group: blocks,
            ..params
        };
        let c = run(100_000, Layout::Shuffled, IndexTier::Tiered, p, &postings);
        eprintln!(
            "  {:>12} B, plan {:>7.2} us, fp {:.4}",
            c.resident_bytes, c.plan_us, c.fp_rate
        );
        sweep_blocks.push(format!(
            "    \"{blocks}\": {{ \"bits_per_key\": {bits_per_key:.2}, \"cell\": {} }}",
            cell_json(&c)
        ));
    }

    let (mem_ratio, latency_ratio) = accept.expect("1e5 exact cell measured");
    eprintln!(
        "acceptance at 1e5 (clustered): memory ratio {mem_ratio:.1}x (bar >= 5), \
         plan latency ratio {latency_ratio:.2}x (bar <= 1.5)"
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"pr\": 10,\n  \"date\": \"2026-08-08\",\n  \"description\": \"Tiered \
         pruning index at catalog scale: plan-path latency, resident index bytes, and \
         false-positive rate, exact presence bitmaps vs blocked-Bloom tier + exact hot \
         tier, on synthetic irregular catalogs ({FAMILIES} schema families over a \
         {UNIVERSE}-attribute universe, two-attribute family probes, ground truth from \
         independent posting lists, every query asserting exact ⊆ tiered). Scales are \
         group-structured (family-clustered arrival); shuffled_1e5 is the adversarial \
         family-shuffled order; the blocks sweep pins filter growth to chart fp against \
         bits per key. From `cargo bench -p cind-bench --bench tier`.\",\n  \
         \"machine_note\": \"Linux container, release profile, catalog-only (no entity \
         storage in the measured loop)\",\n  \
         \"queries\": {QUERIES}, \"rounds\": {ROUNDS}, \"seed\": {SEED},\n  \
         \"scales\": {{\n{}\n  }},\n  \"shuffled_1e5\": {{ \"exact\": {}, \
         \"tiered\": {} }},\n  \"blocks_per_group_1e5\": {{\n{}\n  }},\n  \
         \"acceptance_1e5\": {{ \"memory_ratio\": {mem_ratio:.1}, \
         \"plan_latency_ratio\": {latency_ratio:.2}, \"memory_bar\": 5.0, \
         \"latency_bar\": 1.5 }}\n}}\n",
        scale_blocks.join(",\n"),
        cell_json(&shuf_exact),
        cell_json(&shuf_tiered),
        sweep_blocks.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR10.json");
    std::fs::write(path, &json).expect("write BENCH_PR10.json");
    eprintln!("wrote {path}");
}
