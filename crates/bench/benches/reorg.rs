//! Reorganizer payoff under workload drift: Definition-1 EFFICIENCY over
//! time with `--reorg auto` versus `--reorg off`, replaying the same
//! seeded [`DriftScenario`] stream into both. The *current* workload —
//! the trailing window of distinct query synopses — is what EFFICIENCY is
//! measured against, because adapting to the queries being asked *now* is
//! the whole point of the subsystem. Four scenario shapes:
//!
//! * `steady` — the honest control: no drift, so the reorganizer has
//!   nothing to win and its moved entities are pure overhead.
//! * `drift` — query focus rotates across attribute groups per phase.
//! * `flash_crowd` — one attribute pair gets hammered mid-run.
//! * `churn` — Zipf-skewed inserts plus deletes of the oldest entities.
//!
//! Results go to `BENCH_PR9.json` at the workspace root. Run with
//! `cargo bench -p cind-bench --bench reorg`. Not a criterion bench: the
//! runs are deterministic (seeded streams, no threads), so one wall-clock
//! measurement per (scenario, mode) pair is the signal.

use std::fmt::Write as _;
use std::time::Instant;

use cind_datagen::{DriftConfig, DriftMode, DriftOp, DriftScenario};
use cind_model::Synopsis;
use cind_reorg::{ReorgDriver, ReorgStats};
use cind_storage::UniversalTable;
use cinderella_core::{efficiency, Capacity, Cinderella, Config, ReorgConfig, ReorgMode};

const OPS: usize = 6_000;
const GROUPS: usize = 8;
const WIDTH: usize = 8;
const QUERY_SHARE: f64 = 0.35;
const SEED: u64 = 0xBE9C;
const CAPACITY: u64 = 64;
/// EFFICIENCY sampling points per run.
const CHECKPOINTS: usize = 8;
/// Trailing query ops whose distinct synopses form the "current workload".
const TRAIL: usize = 300;

struct RunOut {
    eff_timeline: Vec<f64>,
    final_eff: f64,
    elapsed_s: f64,
    stats: ReorgStats,
}

fn reorg_cfg(mode: ReorgMode) -> ReorgConfig {
    ReorgConfig { mode, budget: CAPACITY, threshold: 0.05, epoch_ops: 32 }
}

/// The distinct synopses in the trailing window, first-seen order.
fn distinct(trail: &[Synopsis]) -> Vec<Synopsis> {
    let mut out: Vec<Synopsis> = Vec::new();
    for q in trail {
        if !out.contains(q) {
            out.push(q.clone());
        }
    }
    out
}

/// Replays one scenario stream. With `--reorg off` the driver records
/// nothing and never steps, so the identical loop body serves both modes.
fn run(mode: DriftMode, reorg: ReorgMode) -> RunOut {
    let scenario = DriftScenario::new(DriftConfig {
        mode,
        ops: OPS,
        groups: GROUPS,
        group_width: WIDTH,
        query_share: QUERY_SHARE,
        seed: SEED,
    });
    let mut table = UniversalTable::new(4096);
    let ops = scenario.generate(table.catalog_mut(), 0);
    let universe = table.universe();
    let rc = reorg_cfg(reorg);
    let mut cindy = Cinderella::new(Config {
        capacity: Capacity::MaxEntities(CAPACITY),
        reorg: rc,
        ..Config::default()
    });
    let mut driver = ReorgDriver::new(rc);
    let mut trail: Vec<Synopsis> = Vec::new();
    let mut eff_timeline = Vec::with_capacity(CHECKPOINTS);
    let sample_every = ops.len().div_ceil(CHECKPOINTS).max(1);

    let start = Instant::now();
    for (i, op) in ops.iter().enumerate() {
        let due = match op {
            DriftOp::Insert(e) => {
                cindy.insert(&mut table, e.clone()).expect("insert");
                driver.record_write()
            }
            DriftOp::Delete(id) => {
                cindy.delete(&mut table, *id).expect("delete");
                driver.record_write()
            }
            DriftOp::Query(attrs) => {
                let q = Synopsis::from_attrs(universe, attrs.iter().copied());
                let scanned: Vec<_> = cindy
                    .catalog()
                    .pruning_view()
                    .filter(|(_, syn, _)| !q.is_disjoint(syn))
                    .map(|(seg, _, _)| seg)
                    .collect();
                let due = driver.record_query(&q, scanned);
                trail.push(q);
                if trail.len() > TRAIL {
                    trail.remove(0);
                }
                due
            }
        };
        if due {
            driver.step(&mut table, &mut cindy).expect("reorg step");
        }
        if (i + 1) % sample_every == 0 || i + 1 == ops.len() {
            eff_timeline.push(efficiency(&table, &cindy, &distinct(&trail)));
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let final_eff = eff_timeline.last().copied().unwrap_or(1.0);
    RunOut { eff_timeline, final_eff, elapsed_s, stats: driver.stats() }
}

fn timeline_json(t: &[f64]) -> String {
    let cells: Vec<String> = t.iter().map(|v| format!("{v:.4}")).collect();
    format!("[{}]", cells.join(", "))
}

fn main() {
    let scenarios = [
        ("steady", DriftMode::Steady),
        ("drift", DriftMode::Drift),
        ("flash_crowd", DriftMode::FlashCrowd),
        ("churn", DriftMode::Churn),
    ];
    let mut blocks = Vec::new();
    for (name, mode) in scenarios {
        eprintln!("reorg bench: {name}");
        let off = run(mode, ReorgMode::Off);
        let auto = run(mode, ReorgMode::Auto);
        let gain = auto.final_eff - off.final_eff;
        eprintln!(
            "  off {:.4} -> auto {:.4} (gain {gain:+.4}); auto took {} steps \
             ({} resplits, {} migrations, {} merges, {} entities moved)",
            off.final_eff,
            auto.final_eff,
            auto.stats.steps,
            auto.stats.resplits,
            auto.stats.migrations,
            auto.stats.merges,
            auto.stats.entities_moved,
        );
        let mut out = String::new();
        let _ = write!(
            out,
            "    \"{name}\": {{\n      \"ops\": {OPS}, \"groups\": {GROUPS}, \
             \"capacity\": {CAPACITY}, \"seed\": {SEED},\n      \
             \"off\": {{ \"elapsed_s\": {:.3}, \"final_eff\": {:.4}, \
             \"eff_timeline\": {} }},\n      \
             \"auto\": {{ \"elapsed_s\": {:.3}, \"final_eff\": {:.4}, \
             \"eff_timeline\": {},\n        \"steps\": {}, \"resplits\": {}, \
             \"migrations\": {}, \"merges\": {}, \"entities_moved\": {} }},\n      \
             \"final_gain\": {gain:+.4}\n    }}",
            off.elapsed_s,
            off.final_eff,
            timeline_json(&off.eff_timeline),
            auto.elapsed_s,
            auto.final_eff,
            timeline_json(&auto.eff_timeline),
            auto.stats.steps,
            auto.stats.resplits,
            auto.stats.migrations,
            auto.stats.merges,
            auto.stats.entities_moved,
        );
        blocks.push(out);
    }

    let json = format!(
        "{{\n  \"pr\": 9,\n  \"date\": \"2026-08-08\",\n  \"description\": \"Workload-adaptive \
         background reorganizer: Definition-1 EFFICIENCY against the trailing distinct-query \
         window, sampled {CHECKPOINTS} times over {OPS}-op seeded DriftScenario streams, \
         reorg auto vs off on identical streams. steady is the honest control (no drift, so \
         moved entities are pure overhead); drift/flash_crowd/churn are the shapes the \
         reorganizer exists for. From `cargo bench -p cind-bench --bench reorg`.\",\n  \
         \"machine_note\": \"Linux container, release profile, in-memory core engine \
         (UniversalTable + Cinderella + ReorgDriver), no I/O in the measured loop\",\n  \
         \"reorg\": {{\n{}\n  }}\n}}\n",
        blocks.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR9.json");
    std::fs::write(path, &json).expect("write BENCH_PR9.json");
    eprintln!("wrote {path}");
}
