//! Macrobench: the extension operations — merge pass and parallel bulk
//! load — at realistic sizes.

use cind_datagen::{DbpediaConfig, DbpediaGenerator};
use cind_model::EntityId;
use cind_storage::UniversalTable;
use cinderella_core::{bulk_load, Capacity, Cinderella, Config};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const ENTITIES: usize = 10_000;

fn config(b: u64) -> Config {
    Config {
        weight: 0.3,
        capacity: Capacity::MaxEntities(b),
        ..Config::default()
    }
}

/// A loaded table with 85 % of the entities deleted — the merge pass's
/// natural input.
fn fragmented() -> (UniversalTable, Cinderella) {
    let mut table = UniversalTable::new(512);
    let entities = DbpediaGenerator::new(DbpediaConfig {
        entities: ENTITIES,
        ..DbpediaConfig::default()
    })
    .generate(table.catalog_mut());
    let mut cindy = Cinderella::new(config(200));
    for e in entities {
        cindy.insert(&mut table, e).expect("insert");
    }
    for i in 0..ENTITIES as u64 {
        if i % 7 != 0 {
            cindy.delete(&mut table, EntityId(i)).expect("delete");
        }
    }
    (table, cindy)
}

fn bench_merge_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("maintenance/merge_pass_10k");
    g.sample_size(10);
    g.bench_function("after_85pct_deletes", |b| {
        b.iter_batched(
            fragmented,
            |(mut table, mut cindy)| {
                let report = cindy.merge_pass(&mut table, 0.5).expect("merge");
                assert!(report.merges > 0);
                (table, cindy)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_bulk_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("maintenance/bulk_load_10k");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |bench, &threads| {
                bench.iter_batched(
                    || {
                        let mut table = UniversalTable::new(512);
                        let entities = DbpediaGenerator::new(DbpediaConfig {
                            entities: ENTITIES,
                            ..DbpediaConfig::default()
                        })
                        .generate(table.catalog_mut());
                        (table, entities)
                    },
                    |(mut table, entities)| {
                        let (cindy, _) =
                            bulk_load(&mut table, config(2_000), entities, threads)
                                .expect("bulk load");
                        (table, cindy)
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_merge_pass, bench_bulk_load);
criterion_main!(benches);
