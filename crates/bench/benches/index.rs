//! Microbench: the packed-arena catalog index at scale — insert-path scan
//! throughput and plan latency at 1 000 and 10 000 partitions, index on vs
//! off. The numbers recorded in `BENCH_PR2.json` come from this bench (run
//! with `CRITERION_JSON`).
//!
//! The synthetic catalog mimics the paper's DBpedia observation: entities
//! cluster into latent groups with mostly group-local attributes, so an
//! entity's candidate set (partitions sharing an attribute) is a small
//! slice of the catalog.

use cind_model::{EntityId, Synopsis};
use cind_query::{plan, plan_from_survivors, Query};
use cind_storage::SegmentId;
use cinderella_core::{IndexMode, PartitionCatalog};
use criterion::{
    black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion,
    Throughput,
};

/// Latent attribute groups; each partition's synopsis is drawn from one.
const GROUPS: usize = 128;
const ATTRS_PER_GROUP: usize = 16;
const UNIVERSE: usize = GROUPS * ATTRS_PER_GROUP;

/// A synopsis of `n` attributes from group `g`, phase-shifted by `seed`.
fn group_synopsis(g: usize, seed: usize, n: usize) -> Synopsis {
    let base = (g % GROUPS) * ATTRS_PER_GROUP;
    Synopsis::from_bits(
        UNIVERSE,
        (0..n).map(|i| (base + (seed + i * 3) % ATTRS_PER_GROUP) as u32),
    )
}

fn catalog_with(parts: usize, mode: IndexMode) -> PartitionCatalog {
    let mut cat = PartitionCatalog::new(mode);
    for s in 0..parts {
        let seg = SegmentId(s as u32);
        cat.create_partition(seg);
        let syn = group_synopsis(s, s / GROUPS, 8);
        cat.add_entity(seg, EntityId(s as u64), &syn, &syn, 1_000, true);
    }
    cat
}

/// A stream of probe entities cycling through the groups.
fn probes(n: usize) -> Vec<(Synopsis, u64)> {
    (0..n).map(|i| (group_synopsis(i * 7, i, 5), 5)).collect()
}

const BATCH: usize = 64;

fn bench_insert_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("index/insert");
    g.sample_size(10).throughput(Throughput::Elements(BATCH as u64));
    for parts in [1_000usize, 10_000] {
        for (label, mode) in [("off", IndexMode::Off), ("on", IndexMode::On)] {
            let cat = catalog_with(parts, mode);
            let stream = probes(BATCH);
            g.bench_with_input(
                BenchmarkId::new(label, parts),
                &parts,
                |b, _| {
                    // Fresh catalog per sample so Algorithm 1's full insert
                    // accounting (rate, then maintain counts + arena +
                    // presence rows) is measured, not just the scan.
                    b.iter_batched_ref(
                        || cat.clone(),
                        |cat| {
                            for (i, (syn, size)) in stream.iter().enumerate() {
                                let (best, _) =
                                    cat.best_partition(black_box(syn), *size, 0.2);
                                let (seg, _) = best.expect("non-empty catalog");
                                cat.add_entity(
                                    seg,
                                    EntityId((parts + i) as u64),
                                    syn,
                                    syn,
                                    *size,
                                    true,
                                );
                            }
                        },
                        BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    g.finish();
}

fn bench_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("index/plan");
    for parts in [1_000usize, 10_000] {
        let cat = catalog_with(parts, IndexMode::On);
        let query = Query::from_attrs(
            UNIVERSE,
            group_synopsis(3, 1, 3).iter(),
        );
        g.bench_with_input(BenchmarkId::new("off", parts), &parts, |b, _| {
            // The per-partition |p ∧ q| = 0 test over the full catalog view.
            b.iter(|| {
                plan(
                    black_box(&query),
                    cat.pruning_view().map(|(s, syn, _)| (s, syn)),
                )
                .segments
                .len()
            })
        });
        g.bench_with_input(BenchmarkId::new("on", parts), &parts, |b, _| {
            // Survivor set = OR of |q| presence bitmaps.
            b.iter(|| {
                let (segments, pruned) = cat
                    .plan_survivors(black_box(query.synopsis()))
                    .expect("index on");
                plan_from_survivors(segments, pruned).segments.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_insert_scan, bench_plan);
criterion_main!(benches);
