//! Macrobench: end-to-end query execution — pruned (Cinderella) vs full
//! scan (universal table) at two selectivities. The microbench counterpart
//! of Fig. 5's wall-clock measurements.

use cind_baselines::{Partitioner, Unpartitioned};
use cind_datagen::{DbpediaConfig, DbpediaGenerator, WorkloadBuilder};
use cind_model::Synopsis;
use cind_query::{execute, execute_parallel, plan, Query};
use cind_storage::{BufferPool, SegmentId, UniversalTable};
use cinderella_core::{Capacity, Cinderella, Config};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const ENTITIES: usize = 10_000;

struct Loaded {
    table: UniversalTable,
    view: Vec<(SegmentId, Synopsis, u64)>,
}

fn load(cinderella: bool) -> (Loaded, Vec<(String, Query, f64)>) {
    let gen = DbpediaGenerator::new(DbpediaConfig {
        entities: ENTITIES,
        ..DbpediaConfig::default()
    });
    // Sharded pool: the parallel variants hammer it from several workers.
    let mut table = UniversalTable::with_pool(BufferPool::with_shards(256, 8));
    let entities = gen.generate(table.catalog_mut());
    let universe = table.universe();
    let specs = WorkloadBuilder::default().build(universe, &entities);
    // One very selective, one medium, one broad query.
    let mut picks = Vec::new();
    for target in [0.01f64, 0.1, 0.9] {
        let s = specs
            .iter()
            .min_by(|a, b| {
                (a.selectivity - target)
                    .abs()
                    .total_cmp(&(b.selectivity - target).abs())
            })
            .expect("non-empty");
        picks.push((
            format!("sel{target}"),
            Query::from_attrs(universe, s.attrs.iter().copied()),
            s.selectivity,
        ));
    }
    let view = if cinderella {
        let mut policy = Cinderella::new(Config {
            weight: 0.2,
            capacity: Capacity::MaxEntities(2_000),
            ..Config::default()
        });
        policy.load(&mut table, entities).expect("load");
        Partitioner::pruning_view(&policy)
    } else {
        let mut policy = Unpartitioned::new();
        policy.load(&mut table, entities).expect("load");
        policy.pruning_view()
    };
    (Loaded { table, view }, picks)
}

fn bench_query(c: &mut Criterion) {
    let (cindy, queries) = load(true);
    let (uni, _) = load(false);
    let mut g = c.benchmark_group("query/execute_10k");
    for (name, query, _) in &queries {
        for (label, loaded) in [("cinderella", &cindy), ("universal", &uni)] {
            let p = plan(query, loaded.view.iter().map(|(s, syn, _)| (*s, syn)));
            g.bench_with_input(
                BenchmarkId::new(label.to_owned(), name),
                &p,
                |bench, p| bench.iter(|| execute(&loaded.table, query, p).expect("run")),
            );
        }
    }
    g.finish();

    // Parallel execution: the same pruned plans fanned over worker pools.
    // Sequential vs 2/4 threads on the broad query (most surviving
    // branches, the case parallelism targets). Speedup tracks the host's
    // core count — on a single-core machine this group instead bounds the
    // fan-out overhead (spawn + merge), which should stay within ~10 % of
    // the sequential time.
    let mut g = c.benchmark_group("query/execute_parallel_10k");
    let (name, query, _) = queries.last().expect("three queries");
    let p = plan(query, cindy.view.iter().map(|(s, syn, _)| (*s, syn)));
    g.bench_function(format!("{name}/seq"), |b| {
        b.iter(|| execute(&cindy.table, query, &p).expect("run"))
    });
    for threads in [2usize, 4] {
        g.bench_with_input(
            BenchmarkId::new(format!("{name}/threads"), threads),
            &threads,
            |b, &t| b.iter(|| execute_parallel(&cindy.table, query, &p, t).expect("run")),
        );
    }
    g.finish();

    // Planning alone: the pruning pass over the partition view.
    let mut g = c.benchmark_group("query/plan_only");
    let (name, query, _) = &queries[0];
    g.bench_function(format!("prune_{}_partitions_{name}", cindy.view.len()), |b| {
        b.iter(|| plan(query, cindy.view.iter().map(|(s, syn, _)| (*s, syn))))
    });
    g.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
