//! Microbench: the fused synopsis count operations across representations.
//!
//! Every Cinderella rating is two fused passes over two synopses, so these
//! counts are the innermost loop of the whole system. Compares the dense
//! [`FixedBitSet`], the sorted-vec [`SparseBitSet`], and the adaptive
//! [`HybridBitSet`] at the population sizes the DBpedia data actually
//! produces (entities ≈ 7 bits, partitions ≈ 30–70 bits of a 100-bit
//! universe).

use cind_bitset::{BitSetOps, FixedBitSet, HybridBitSet, SparseBitSet};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const UNIVERSE: usize = 100;

fn bits(n: usize, stride: usize) -> Vec<u32> {
    (0..n).map(|i| ((i * stride) % UNIVERSE) as u32).collect()
}

fn bench_counts(c: &mut Criterion) {
    let cases = [("entity7_vs_part40", 7usize, 40usize), ("part40_vs_part70", 40, 70)];
    let mut g = c.benchmark_group("and_count");
    for (name, na, nb) in cases {
        let fa = FixedBitSet::from_iter(UNIVERSE, bits(na, 3));
        let fb = FixedBitSet::from_iter(UNIVERSE, bits(nb, 7));
        g.bench_function(format!("fixed/{name}"), |b| {
            b.iter(|| black_box(&fa).and_count(black_box(&fb)))
        });
        let sa = SparseBitSet::from_iter(bits(na, 3));
        let sb = SparseBitSet::from_iter(bits(nb, 7));
        g.bench_function(format!("sparse/{name}"), |b| {
            b.iter(|| black_box(&sa).and_count(black_box(&sb)))
        });
        let ha = HybridBitSet::from_iter(UNIVERSE, bits(na, 3));
        let hb = HybridBitSet::from_iter(UNIVERSE, bits(nb, 7));
        g.bench_function(format!("hybrid/{name}"), |b| {
            b.iter(|| black_box(&ha).and_count(black_box(&hb)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("xor_count_split_starters");
    let fa = FixedBitSet::from_iter(UNIVERSE, bits(7, 3));
    let fb = FixedBitSet::from_iter(UNIVERSE, bits(9, 5));
    g.bench_function("fixed/entity_vs_entity", |b| {
        b.iter(|| black_box(&fa).xor_count(black_box(&fb)))
    });
    g.finish();
}

fn bench_union_with(c: &mut Criterion) {
    let mut g = c.benchmark_group("union_with");
    g.bench_function("fixed/entity_into_partition", |b| {
        let e = FixedBitSet::from_iter(UNIVERSE, bits(7, 3));
        b.iter_batched(
            || FixedBitSet::from_iter(UNIVERSE, bits(40, 7)),
            |mut p| {
                p.union_with(&e);
                p
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_counts, bench_union_with);
criterion_main!(benches);
