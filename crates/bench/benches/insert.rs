//! Macrobench: Cinderella insert throughput on DBpedia-like data, per
//! partition size limit and weight (the knobs of Figs. 5–8).

use cind_datagen::{DbpediaConfig, DbpediaGenerator};
use cind_storage::UniversalTable;
use cinderella_core::{Capacity, Cinderella, Config};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const ENTITIES: usize = 5_000;

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("insert/load_5k");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ENTITIES as u64));
    for (b, w) in [(500u64, 0.5f64), (5_000, 0.5), (5_000, 0.2), (5_000, 0.1)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("B{b}_w{w}")),
            &(b, w),
            |bench, &(b, w)| {
                bench.iter_batched(
                    || {
                        let mut table = UniversalTable::new(256);
                        let entities = DbpediaGenerator::new(DbpediaConfig {
                            entities: ENTITIES,
                            ..DbpediaConfig::default()
                        })
                        .generate(table.catalog_mut());
                        (table, entities)
                    },
                    |(mut table, entities)| {
                        let mut cindy = Cinderella::new(Config {
                            weight: w,
                            capacity: Capacity::MaxEntities(b),
                            ..Config::default()
                        });
                        for e in entities {
                            cindy.insert(&mut table, e).expect("insert");
                        }
                        (table, cindy)
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_insert);
criterion_main!(benches);
