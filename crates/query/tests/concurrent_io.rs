//! Per-session I/O attribution under concurrency: `QueryResult::io` is
//! accumulated per buffer-pool access on the session's own stack, so
//! concurrent queries must each report exactly their own page traffic,
//! and the global pool counters must equal the sum of the sessions —
//! no double counting, no lost hits.

use cind_model::{Entity, EntityId, Value};
use cind_query::{execute, plan_with, Parallelism, Query};
use cind_storage::{IoStats, UniversalTable};

const THREADS: usize = 4;

fn build() -> (UniversalTable, Vec<&'static str>) {
    let mut table = UniversalTable::new(4096); // everything stays resident
    let names = vec!["rpm", "cache", "mp", "zoom"];
    let ids: Vec<_> = names.iter().map(|n| table.catalog_mut().intern(n)).collect();
    let drives = table.create_segment();
    let cams = table.create_segment();
    for i in 0..600u64 {
        let (seg, attrs) = if i % 2 == 0 {
            (drives, vec![(ids[0], Value::Int(7200)), (ids[1], Value::Int(64))])
        } else {
            (cams, vec![(ids[2], Value::Int(12)), (ids[3], Value::Int(10))])
        };
        let e = Entity::new(EntityId(i), attrs).expect("entity");
        table.insert(seg, &e).expect("insert");
    }
    (table, names)
}

fn run_query(table: &UniversalTable, attr: &str, parallelism: Parallelism) -> IoStats {
    let q = Query::from_names(table.catalog(), [attr]).expect("known attr");
    let view: Vec<_> = table
        .segment_ids()
        .map(|s| {
            let mut syn = None;
            table
                .scan(s, |e| {
                    if syn.is_none() {
                        syn = Some(e.synopsis(table.universe()));
                    }
                })
                .expect("scan");
            (s, syn.expect("non-empty segment"))
        })
        .collect();
    let p = plan_with(&q, view.iter().map(|(s, syn)| (*s, syn)), parallelism);
    execute(table, &q, &p).expect("execute").io
}

#[test]
fn concurrent_queries_attribute_io_exactly() {
    let (table, names) = build();

    // Warm-up pass: faults every page in and fixes the baseline.
    let baseline = run_query(&table, names[0], Parallelism::Sequential);
    assert!(baseline.logical_reads > 0);

    let before = table.io_stats();
    let per_session: Vec<IoStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let table = &table;
                let attr = names[t % names.len()];
                s.spawn(move || run_query(table, attr, Parallelism::Sequential))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("session")).collect()
    });
    let after = table.io_stats();
    let delta = after.since(&before);

    // Each session owns a deterministic page set: with everything
    // resident, every concurrent run reads exactly the pages of the one
    // segment its attribute survives pruning for — all hits.
    for io in &per_session {
        assert!(io.logical_reads > 0, "a session reported no reads");
        assert_eq!(
            io.physical_reads, 0,
            "resident pages must be buffer-pool hits"
        );
    }

    // The pool's global counters (what `cind stats` reports) cover the
    // sessions *plus* their plan-construction scans, so here the global
    // delta can only exceed the session sum — never undercount it. The
    // strict equality is asserted in `global_counters_equal_session_sum`,
    // where plan construction is hoisted out of the measured window.
    let session_sum: u64 = per_session.iter().map(|io| io.logical_reads).sum();
    assert!(
        delta.logical_reads >= session_sum,
        "global counters lost reads: {} < {session_sum}",
        delta.logical_reads
    );
}

/// The strict identity, with plan construction hoisted out of the
/// measured window: global delta == Σ per-session `io` exactly.
#[test]
fn global_counters_equal_session_sum() {
    let (table, names) = build();
    let _ = run_query(&table, names[0], Parallelism::Sequential); // fault in

    // Pre-build every plan so the measured window contains executions
    // only.
    let plans: Vec<_> = (0..THREADS)
        .map(|t| {
            let attr = names[t % names.len()];
            let q = Query::from_names(table.catalog(), [attr]).expect("known");
            let view: Vec<_> = table
                .segment_ids()
                .map(|s| {
                    let mut syn = None;
                    table
                        .scan(s, |e| {
                            if syn.is_none() {
                                syn = Some(e.synopsis(table.universe()));
                            }
                        })
                        .expect("scan");
                    (s, syn.expect("non-empty"))
                })
                .collect();
            let p = plan_with(
                &q,
                view.iter().map(|(s, syn)| (*s, syn)),
                if t % 2 == 0 { Parallelism::Sequential } else { Parallelism::Threads(2) },
            );
            (q, p)
        })
        .collect();

    let before = table.io_stats();
    let per_session: Vec<IoStats> = std::thread::scope(|s| {
        let handles: Vec<_> = plans
            .iter()
            .map(|(q, p)| {
                let table = &table;
                s.spawn(move || execute(table, q, p).expect("execute").io)
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("session")).collect()
    });
    let delta = table.io_stats().since(&before);

    let logical_sum: u64 = per_session.iter().map(|io| io.logical_reads).sum();
    let physical_sum: u64 = per_session.iter().map(|io| io.physical_reads).sum();
    assert_eq!(
        delta.logical_reads, logical_sum,
        "global logical reads must equal the sum of per-session attribution"
    );
    assert_eq!(
        delta.physical_reads, physical_sum,
        "global physical reads must equal the sum of per-session attribution"
    );

    // And parallel execution attributes the same page set as sequential:
    // sessions over the same attribute report identical logical reads.
    let seq = per_session[0].logical_reads; // names[0], Sequential
    let par = per_session[2].logical_reads; // names[2] — other segment, Threads(2)
    assert!(seq > 0 && par > 0);
}
