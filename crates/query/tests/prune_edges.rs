//! Planner/executor edge cases where the workload reads *nothing* — the
//! query-layer face of the Definition-1 denominator-zero goldens
//! (`crates/core/tests/efficiency_edges.rs`) and the states the
//! simulation harness walks through constantly (fresh store, post-crash
//! store, queries over ghost attributes).
//!
//! In every case: zero rows, zero segments read, everything pruned, zero
//! I/O — "no match" must short-circuit before touching data, never scan
//! and filter.

use std::collections::BTreeSet;

use cind_model::{AttrId, Entity, EntityId, Synopsis, Value};
use cind_query::{execute, execute_collect, execute_parallel, plan, Query};
use cind_storage::{BufferPool, SegmentId, UniversalTable};

const UNIVERSE: usize = 12;

/// A table with three segments holding entities over attrs 0..6; attrs
/// 6.. exist in the catalog but in no entity.
fn populated() -> (UniversalTable, Vec<(SegmentId, Synopsis)>) {
    let mut table = UniversalTable::with_pool(BufferPool::with_shards(64, 2));
    for i in 0..UNIVERSE {
        table.catalog_mut().intern(&format!("a{i}"));
    }
    let segs: Vec<SegmentId> = (0..3).map(|_| table.create_segment()).collect();
    let mut synopses = vec![Synopsis::empty(UNIVERSE); 3];
    for i in 0..18u64 {
        let attrs: BTreeSet<u32> = [(i % 3) as u32, 3 + (i % 3) as u32].into();
        let e = Entity::new(
            EntityId(i),
            attrs.iter().map(|&a| (AttrId(a), Value::Int(i as i64))),
        )
        .expect("valid entity");
        let si = (i % 3) as usize;
        table.insert(segs[si], &e).expect("insert");
        synopses[si].merge(&e.synopsis(UNIVERSE));
    }
    (table, segs.into_iter().zip(synopses).collect())
}

fn assert_reads_nothing(
    table: &UniversalTable,
    view: &[(SegmentId, Synopsis)],
    q: &Query,
    total_segments: usize,
) {
    let p = plan(q, view.iter().map(|(s, syn)| (*s, syn)));
    let seq = execute(table, q, &p).expect("sequential");
    assert_eq!(seq.rows, 0, "no rows");
    assert_eq!(seq.cells, 0, "no cells");
    assert_eq!(seq.entities_scanned, 0, "no entity may be touched");
    assert_eq!(seq.segments_read, 0, "no segment may be opened");
    assert_eq!(seq.segments_pruned, total_segments, "everything pruned");
    assert_eq!(seq.io.logical_reads, 0, "no page I/O at all");

    let par = execute_parallel(table, q, &p, 4).expect("parallel");
    assert_eq!(par.rows, 0);
    assert_eq!(par.segments_read, 0);
    assert_eq!(par.segments_pruned, total_segments);

    let (_, rows) = execute_collect(table, q, &p).expect("collect");
    assert!(rows.is_empty());
}

#[test]
fn ghost_attribute_query_prunes_every_segment() {
    let (table, view) = populated();
    // Attr 9 is cataloged but instantiated nowhere.
    let q = Query::from_attrs(UNIVERSE, [AttrId(9)]);
    assert_reads_nothing(&table, &view, &q, view.len());
}

#[test]
fn multi_ghost_query_prunes_every_segment() {
    let (table, view) = populated();
    let q = Query::from_attrs(UNIVERSE, [AttrId(7), AttrId(9), AttrId(11)]);
    assert_reads_nothing(&table, &view, &q, view.len());
}

#[test]
fn empty_attribute_set_reads_nothing() {
    let (table, view) = populated();
    // SELECT of zero attributes: the query synopsis is empty, disjoint
    // from everything by definition.
    let q = Query::from_attrs(UNIVERSE, std::iter::empty::<AttrId>());
    assert_reads_nothing(&table, &view, &q, view.len());
}

#[test]
fn empty_table_reads_nothing() {
    let table = UniversalTable::new(16);
    let view: Vec<(SegmentId, Synopsis)> = Vec::new();
    let q = Query::from_attrs(UNIVERSE, [AttrId(0)]);
    assert_reads_nothing(&table, &view, &q, 0);
}

#[test]
fn matching_query_still_reads_after_the_edge_cases() {
    // Sanity inverse: the same store answers a real query, proving the
    // zeros above come from pruning, not from a broken fixture.
    let (table, view) = populated();
    let q = Query::from_attrs(UNIVERSE, [AttrId(0)]);
    let p = plan(&q, view.iter().map(|(s, syn)| (*s, syn)));
    let res = execute(&table, &q, &p).expect("sequential");
    assert!(res.rows > 0);
    assert!(res.segments_read > 0);
}
