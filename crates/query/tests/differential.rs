//! Differential suite: the parallel executor against the sequential
//! reference, on randomized tables, synopses, and queries.
//!
//! For every generated instance, `execute_parallel` with 1, 2, and 8
//! workers must report the same `rows`, `cells`, `entities_scanned`,
//! `segments_read`, and `segments_pruned` as the sequential `execute`,
//! and `execute_collect` must return the same rows in the same order
//! regardless of the plan's parallelism knob.

use std::collections::BTreeSet;

use cind_model::{AttrId, Entity, EntityId, Synopsis, Value};
use cind_query::{
    execute, execute_collect, execute_parallel, plan, Parallelism, Query,
};
use cind_storage::{BufferPool, SegmentId, UniversalTable};
use proptest::prelude::*;

const UNIVERSE: usize = 16;

/// Builds a table with `nsegs` segments, entities assigned round-robin,
/// and exact per-segment synopses (OR of member synopses).
fn build(
    entity_attrs: &[Vec<u32>],
    nsegs: usize,
) -> (UniversalTable, Vec<(SegmentId, Synopsis)>) {
    // Sharded pool: the parallel path must agree even when workers share it.
    let mut table = UniversalTable::with_pool(BufferPool::with_shards(64, 4));
    for i in 0..UNIVERSE {
        table.catalog_mut().intern(&format!("a{i}"));
    }
    let segs: Vec<SegmentId> = (0..nsegs).map(|_| table.create_segment()).collect();
    let mut synopses = vec![Synopsis::empty(UNIVERSE); nsegs];
    for (i, attrs) in entity_attrs.iter().enumerate() {
        let set: BTreeSet<u32> = attrs.iter().copied().collect();
        let e = Entity::new(
            EntityId(i as u64),
            set.iter().map(|&a| (AttrId(a), Value::Int(i64::from(a)))),
        )
        .expect("deduped attrs");
        let si = i % nsegs;
        table.insert(segs[si], &e).expect("insert");
        synopses[si].merge(&e.synopsis(UNIVERSE));
    }
    let view = segs.into_iter().zip(synopses).collect();
    (table, view)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_matches_sequential_aggregates(
        entity_attrs in prop::collection::vec(
            prop::collection::vec(0u32..UNIVERSE as u32, 1..6),
            1..60,
        ),
        nsegs in 1usize..8,
        qattrs in prop::collection::vec(0u32..UNIVERSE as u32, 1..5),
    ) {
        let (table, view) = build(&entity_attrs, nsegs);
        let qset: BTreeSet<u32> = qattrs.iter().copied().collect();
        let q = Query::from_attrs(UNIVERSE, qset.iter().map(|&a| AttrId(a)));
        let p = plan(&q, view.iter().map(|(s, syn)| (*s, syn)));

        let seq = execute(&table, &q, &p).expect("sequential");
        for threads in [1usize, 2, 8] {
            let par = execute_parallel(&table, &q, &p, threads).expect("parallel");
            prop_assert_eq!(par.rows, seq.rows, "rows @ {} threads", threads);
            prop_assert_eq!(par.cells, seq.cells, "cells @ {} threads", threads);
            prop_assert_eq!(
                par.entities_scanned, seq.entities_scanned,
                "entities_scanned @ {} threads", threads
            );
            prop_assert_eq!(par.segments_read, seq.segments_read);
            prop_assert_eq!(par.segments_pruned, seq.segments_pruned);
            prop_assert_eq!(
                par.io.logical_reads, seq.io.logical_reads,
                "same branches scan the same pages"
            );
        }
    }

    #[test]
    fn collected_rows_are_order_identical(
        entity_attrs in prop::collection::vec(
            prop::collection::vec(0u32..UNIVERSE as u32, 1..6),
            1..40,
        ),
        nsegs in 1usize..6,
        qattrs in prop::collection::vec(0u32..UNIVERSE as u32, 1..4),
    ) {
        let (table, view) = build(&entity_attrs, nsegs);
        let qset: BTreeSet<u32> = qattrs.iter().copied().collect();
        let q = Query::from_attrs(UNIVERSE, qset.iter().map(|&a| AttrId(a)));
        let p = plan(&q, view.iter().map(|(s, syn)| (*s, syn)));

        let (seq_r, seq_rows) = execute_collect(&table, &q, &p).expect("sequential");
        for threads in [2usize, 8] {
            let pp = p.clone().with_parallelism(Parallelism::Threads(threads));
            let (par_r, par_rows) = execute_collect(&table, &q, &pp).expect("parallel");
            prop_assert_eq!(par_r.rows, seq_r.rows);
            prop_assert_eq!(par_rows.len(), seq_rows.len());
            prop_assert_eq!(&par_rows, &seq_rows, "row order @ {} threads", threads);
        }
    }

    #[test]
    fn pruned_partitions_hold_no_matches(
        entity_attrs in prop::collection::vec(
            prop::collection::vec(0u32..UNIVERSE as u32, 1..6),
            1..40,
        ),
        nsegs in 1usize..6,
        qattrs in prop::collection::vec(0u32..UNIVERSE as u32, 1..4),
    ) {
        // The safety side of §II pruning: a pruned partition can never
        // contain a matching entity, so parallel and sequential scans see
        // the complete answer.
        let (table, view) = build(&entity_attrs, nsegs);
        let qset: BTreeSet<u32> = qattrs.iter().copied().collect();
        let q = Query::from_attrs(UNIVERSE, qset.iter().map(|&a| AttrId(a)));
        let p = plan(&q, view.iter().map(|(s, syn)| (*s, syn)));
        let surviving: BTreeSet<u32> = p.segments.iter().map(|s| s.0).collect();
        for (seg, _) in &view {
            if surviving.contains(&seg.0) {
                continue;
            }
            let mut matches = 0u64;
            table
                .scan(*seg, |e| {
                    if q.matches(e) {
                        matches += 1;
                    }
                })
                .expect("scan");
            prop_assert_eq!(matches, 0, "pruned segment {} held matches", seg.0);
        }
    }
}
