//! Partition-pruned query planning and execution.
//!
//! The paper's workload (§V-B) consists of queries of the form
//!
//! ```sql
//! SELECT a1, a2, … FROM universalTable
//! WHERE a1 IS NOT NULL OR a2 IS NOT NULL …
//! ```
//!
//! i.e. "return the requested attributes of every entity that instantiates
//! at least one of them". Such a query carries a *query synopsis* `q` (the
//! requested attribute set); a partition with synopsis `p` can be pruned
//! before any data is touched when `|p ∧ q| = 0` (§II). The prototype in
//! the paper rewrites the query to a `UNION ALL` over the surviving
//! partitions; here the [`planner`] produces the surviving segment list and
//! the [`executor`] scans them, counting rows, cells, pages, and wall time.
//!
//! * [`Query`] — requested attributes + synopsis + match/projection logic.
//! * [`planner::plan`] — pruning against any partition view (Cinderella's
//!   catalog or a baseline's).
//! * [`executor::execute`] — runs the plan, returning a [`QueryResult`]
//!   with logical/physical I/O deltas and timing.
//! * [`executor::execute_parallel`] — the same scan with the `UNION ALL`
//!   branches fanned over a worker pool and merged deterministically;
//!   [`planner::Parallelism`] selects the strategy per plan.
//! * [`mod@selectivity`] — the fraction of entities a query returns, the x-axis
//!   of Figs. 5 and 6.
//!
//! ```
//! use cind_model::{Entity, EntityId, Synopsis, Value};
//! use cind_query::{execute, plan, Query};
//! use cind_storage::UniversalTable;
//!
//! let mut table = UniversalTable::new(64);
//! let rpm = table.catalog_mut().intern("rotation");
//! let res = table.catalog_mut().intern("resolution");
//! let drives = table.create_segment();
//! let cams = table.create_segment();
//! table.insert(drives, &Entity::new(EntityId(0), [(rpm, Value::Int(7200))]).unwrap())?;
//! table.insert(cams, &Entity::new(EntityId(1), [(res, Value::Float(12.1))]).unwrap())?;
//!
//! // Prune by synopsis, then scan only the surviving partition.
//! let view = vec![
//!     (drives, Synopsis::from_attrs(2, [rpm])),
//!     (cams, Synopsis::from_attrs(2, [res])),
//! ];
//! let q = Query::from_names(table.catalog(), ["rotation"]).unwrap();
//! let p = plan(&q, view.iter().map(|(s, syn)| (*s, syn)));
//! let r = execute(&table, &q, &p)?;
//! assert_eq!(r.rows, 1);
//! assert_eq!(r.segments_pruned, 1);
//! # Ok::<(), cind_storage::StorageError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod executor;
pub mod planner;
mod query;
pub mod selectivity;

pub use cost::{estimate, CostEstimate};
pub use executor::{
    execute, execute_collect, execute_collect_view, execute_parallel, execute_parallel_view,
    execute_view, QueryResult,
};
pub use planner::{plan, plan_from_survivors, plan_with, Parallelism, Plan};
pub use query::Query;
pub use selectivity::{selectivity, selectivity_of};
