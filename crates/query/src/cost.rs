//! Plan cost estimation (without execution).
//!
//! The executor measures what a plan *did*; the planner sometimes needs to
//! know what a plan *would* cost — e.g. the CLI prints an estimate before
//! running, and the advisor compares candidate partitionings. The estimate
//! is exact for page counts (segments know their page counts) and an upper
//! bound for entities (every entity of a surviving partition is scanned;
//! how many *match* depends on the data).

use cind_storage::{StorageError, UniversalTable};

use crate::Plan;

/// Estimated cost of executing a [`Plan`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CostEstimate {
    /// Pages the scan will touch (exact — every page of every surviving
    /// segment is read once).
    pub pages: u64,
    /// Entities the scan will decode (exact).
    pub entities_scanned: u64,
    /// Segments unioned (exact).
    pub segments: usize,
}

/// Estimates `plan` against the current table state.
///
/// # Errors
/// [`StorageError::NoSuchSegment`] if the plan references a dropped
/// segment (the plan is stale).
pub fn estimate(table: &UniversalTable, plan: &Plan) -> Result<CostEstimate, StorageError> {
    let mut est = CostEstimate { segments: plan.segments.len(), ..Default::default() };
    for &seg in &plan.segments {
        let segment = table.segment(seg)?;
        est.pages += segment.page_count() as u64;
        est.entities_scanned += segment.record_count() as u64;
    }
    Ok(est)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute, plan, Query};
    use cind_model::{AttrId, Entity, EntityId, Synopsis, Value};

    fn setup() -> (UniversalTable, Vec<(cind_storage::SegmentId, Synopsis)>) {
        let mut t = UniversalTable::new(64);
        t.catalog_mut().intern("a");
        t.catalog_mut().intern("b");
        let s1 = t.create_segment();
        let s2 = t.create_segment();
        for i in 0..50u64 {
            let (seg, attr) = if i % 2 == 0 { (s1, 0) } else { (s2, 1) };
            let e = Entity::new(
                EntityId(i),
                [(AttrId(attr), Value::Text("x".repeat(100)))],
            )
            .unwrap();
            t.insert(seg, &e).unwrap();
        }
        let view = vec![
            (s1, Synopsis::from_bits(2, [0])),
            (s2, Synopsis::from_bits(2, [1])),
        ];
        (t, view)
    }

    #[test]
    fn estimate_matches_execution_exactly() {
        let (t, view) = setup();
        let q = Query::from_attrs(2, [AttrId(0)]);
        let p = plan(&q, view.iter().map(|(s, syn)| (*s, syn)));
        let est = estimate(&t, &p).unwrap();
        let r = execute(&t, &q, &p).unwrap();
        assert_eq!(est.pages, r.io.logical_reads);
        assert_eq!(est.entities_scanned, r.entities_scanned);
        assert_eq!(est.segments, r.segments_read);
    }

    #[test]
    fn empty_plan_costs_nothing() {
        let (t, _) = setup();
        let p = Plan {
            segments: Vec::new(),
            pruned: 2,
            parallelism: crate::Parallelism::Sequential,
        };
        let est = estimate(&t, &p).unwrap();
        assert_eq!(est, CostEstimate { pages: 0, entities_scanned: 0, segments: 0 });
    }

    #[test]
    fn stale_plan_is_an_error() {
        let (t, _) = setup();
        let p = Plan {
            segments: vec![cind_storage::SegmentId(99)],
            pruned: 0,
            parallelism: crate::Parallelism::Sequential,
        };
        assert!(matches!(
            estimate(&t, &p),
            Err(StorageError::NoSuchSegment(_))
        ));
    }
}
