//! Query selectivity — the x-axis of Figs. 5 and 6.

use cind_model::Synopsis;
use cind_storage::{StorageError, UniversalTable};

use crate::Query;

/// Selectivity of a query synopsis against a set of entity synopses: the
/// fraction of entities relevant to the query (`|e ∧ q| ≥ 1`).
///
/// Note the paper's convention: *lower* selectivity values mean *more
/// selective* queries (fewer rows returned); "selectivity < 0.2" marks the
/// regime where Cinderella wins.
pub fn selectivity_of<'a>(
    query: &Synopsis,
    entities: impl IntoIterator<Item = &'a Synopsis>,
) -> f64 {
    let mut total = 0u64;
    let mut matching = 0u64;
    for e in entities {
        total += 1;
        if !query.is_disjoint(e) {
            matching += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        matching as f64 / total as f64
    }
}

/// Selectivity of `query` against the whole stored table (full scan; the
/// harnesses use [`selectivity_of`] over pre-computed synopses instead when
/// measuring I/O, so this scan does not pollute the counters mid-benchmark).
pub fn selectivity(table: &UniversalTable, query: &Query) -> Result<f64, StorageError> {
    let mut total = 0u64;
    let mut matching = 0u64;
    for seg in table.segment_ids() {
        table.scan(seg, |e| {
            total += 1;
            if query.matches(e) {
                matching += 1;
            }
        })?;
    }
    Ok(if total == 0 { 0.0 } else { matching as f64 / total as f64 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::{AttrId, Entity, EntityId, Value};

    #[test]
    fn selectivity_over_synopses() {
        let q = Synopsis::from_bits(8, [0]);
        let entities = [
            Synopsis::from_bits(8, [0, 1]),
            Synopsis::from_bits(8, [1]),
            Synopsis::from_bits(8, [0]),
            Synopsis::from_bits(8, [2]),
        ];
        let s = selectivity_of(&q, entities.iter());
        assert!((s - 0.5).abs() < 1e-12);
        assert_eq!(selectivity_of(&q, std::iter::empty()), 0.0);
    }

    #[test]
    fn selectivity_over_table() {
        let mut t = UniversalTable::new(16);
        let a = t.catalog_mut().intern("a");
        let b = t.catalog_mut().intern("b");
        let seg = t.create_segment();
        for i in 0..4u64 {
            let attrs = if i % 4 == 0 {
                vec![(a, Value::Int(1))]
            } else {
                vec![(b, Value::Int(1))]
            };
            t.insert(seg, &Entity::new(EntityId(i), attrs).unwrap()).unwrap();
        }
        let q = Query::from_attrs(2, [AttrId(a.0)]);
        assert!((selectivity(&t, &q).unwrap() - 0.25).abs() < 1e-12);
    }
}
