//! Partition pruning (§II) and plan construction.

use cind_model::Synopsis;
use cind_storage::SegmentId;

use crate::Query;

/// An execution plan: the segments that survive pruning, in catalog order —
/// the equivalent of the prototype's rewritten `UNION ALL` over partition
/// tables.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Segments to scan.
    pub segments: Vec<SegmentId>,
    /// Partitions pruned by the synopsis test.
    pub pruned: usize,
}

impl Plan {
    /// Fraction of partitions pruned (1.0 when there were none at all).
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.segments.len() + self.pruned;
        if total == 0 {
            1.0
        } else {
            self.pruned as f64 / total as f64
        }
    }
}

/// Builds the plan for `query` against a partition view: any iterator of
/// `(segment, attribute synopsis)` pairs, e.g.
/// `cinderella_core::PartitionCatalog::pruning_view` or a baseline's
/// assignment. A partition survives iff `|p ∧ q| ≠ 0`.
pub fn plan<'a>(
    query: &Query,
    partitions: impl IntoIterator<Item = (SegmentId, &'a Synopsis)>,
) -> Plan {
    let q = query.synopsis();
    let mut segments = Vec::new();
    let mut pruned = 0usize;
    for (seg, p) in partitions {
        if q.is_disjoint(p) {
            pruned += 1;
        } else {
            segments.push(seg);
        }
    }
    Plan { segments, pruned }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::AttrId;

    fn syn(bits: &[u32]) -> Synopsis {
        Synopsis::from_bits(16, bits.iter().copied())
    }

    #[test]
    fn prunes_disjoint_partitions() {
        let q = Query::from_attrs(16, [AttrId(0), AttrId(1)]);
        let parts = [
            (SegmentId(0), syn(&[0, 5])),  // overlaps on 0
            (SegmentId(1), syn(&[7, 8])),  // pruned
            (SegmentId(2), syn(&[1])),     // overlaps on 1
            (SegmentId(3), syn(&[])),      // empty synopsis: pruned
        ];
        let plan = plan(&q, parts.iter().map(|(s, p)| (*s, p)));
        assert_eq!(plan.segments, vec![SegmentId(0), SegmentId(2)]);
        assert_eq!(plan.pruned, 2);
        assert!((plan.pruned_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_view_yields_empty_plan() {
        let q = Query::from_attrs(16, [AttrId(0)]);
        let plan = plan(&q, std::iter::empty());
        assert!(plan.segments.is_empty());
        assert_eq!(plan.pruned, 0);
        assert_eq!(plan.pruned_fraction(), 1.0);
    }
}
