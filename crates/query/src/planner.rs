//! Partition pruning (§II) and plan construction.

use cind_model::Synopsis;
use cind_storage::SegmentId;

use crate::Query;

/// How the executor spreads the surviving `UNION ALL` branches over cores.
///
/// The pruned segment list is an embarrassingly parallel scan: each branch
/// touches a disjoint segment, the buffer pool is sharded, and the result
/// aggregates are sums — so the executor can fan branches out to a worker
/// pool and merge deterministically in plan order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One thread, branch after branch — the paper's prototype behaviour
    /// and the default.
    #[default]
    Sequential,
    /// A fixed worker count (clamped to at least 1 and at most the number
    /// of surviving branches at execution time).
    Threads(usize),
    /// One worker per available core, capped at the branch count.
    Auto,
}

impl Parallelism {
    /// Resolves the knob to a concrete worker count for a plan with
    /// `branches` surviving segments. Returns 1 whenever parallel workers
    /// cannot help (sequential mode, one branch, zero branches).
    pub fn workers(self, branches: usize) -> usize {
        let cap = branches.max(1);
        match self {
            Self::Sequential => 1,
            Self::Threads(n) => n.clamp(1, cap),
            Self::Auto => std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get)
                .min(cap),
        }
    }
}

/// An execution plan: the segments that survive pruning, in catalog order —
/// the equivalent of the prototype's rewritten `UNION ALL` over partition
/// tables — plus the parallelism the executor should use to run them.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Segments to scan.
    pub segments: Vec<SegmentId>,
    /// Partitions pruned by the synopsis test.
    pub pruned: usize,
    /// How to spread the scan over cores.
    pub parallelism: Parallelism,
}

impl Plan {
    /// Fraction of partitions pruned (1.0 when there were none at all).
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.segments.len() + self.pruned;
        if total == 0 {
            1.0
        } else {
            self.pruned as f64 / total as f64
        }
    }

    /// Returns the plan with its parallelism knob set.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

/// Builds the plan for `query` against a partition view: any iterator of
/// `(segment, attribute synopsis)` pairs, e.g.
/// `cinderella_core::PartitionCatalog::pruning_view` or a baseline's
/// assignment. A partition survives iff `|p ∧ q| ≠ 0`.
///
/// The plan defaults to [`Parallelism::Sequential`]; use [`plan_with`] or
/// [`Plan::with_parallelism`] to fan the scan out.
pub fn plan<'a>(
    query: &Query,
    partitions: impl IntoIterator<Item = (SegmentId, &'a Synopsis)>,
) -> Plan {
    plan_with(query, partitions, Parallelism::Sequential)
}

/// [`plan`], with the executor's parallelism chosen up front.
pub fn plan_with<'a>(
    query: &Query,
    partitions: impl IntoIterator<Item = (SegmentId, &'a Synopsis)>,
    parallelism: Parallelism,
) -> Plan {
    let q = query.synopsis();
    let mut segments = Vec::new();
    let mut pruned = 0usize;
    for (seg, p) in partitions {
        if q.is_disjoint(p) {
            pruned += 1;
        } else {
            segments.push(seg);
        }
    }
    Plan { segments, pruned, parallelism }
}

/// Builds the plan from a precomputed survivor set — the output of
/// `cinderella_core::PartitionCatalog::plan_survivors`, which derives the
/// same set as [`plan`]'s per-partition `|p ∧ q| = 0` test from the
/// catalog's attribute-presence bitmaps in `O(|q| · P/64)` words instead of
/// `O(P)` synopsis tests. The two are differential-tested against each
/// other; [`plan`] stays the oracle and the fallback when the catalog index
/// is off.
///
/// `segments` must be in catalog (ascending segment) order — the executor
/// merges results deterministically in plan order.
pub fn plan_from_survivors(segments: Vec<SegmentId>, pruned: usize) -> Plan {
    debug_assert!(segments.windows(2).all(|w| w[0] < w[1]), "survivors not sorted");
    Plan { segments, pruned, parallelism: Parallelism::Sequential }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::AttrId;

    fn syn(bits: &[u32]) -> Synopsis {
        Synopsis::from_bits(16, bits.iter().copied())
    }

    #[test]
    fn prunes_disjoint_partitions() {
        let q = Query::from_attrs(16, [AttrId(0), AttrId(1)]);
        let parts = [
            (SegmentId(0), syn(&[0, 5])),  // overlaps on 0
            (SegmentId(1), syn(&[7, 8])),  // pruned
            (SegmentId(2), syn(&[1])),     // overlaps on 1
            (SegmentId(3), syn(&[])),      // empty synopsis: pruned
        ];
        let plan = plan(&q, parts.iter().map(|(s, p)| (*s, p)));
        assert_eq!(plan.segments, vec![SegmentId(0), SegmentId(2)]);
        assert_eq!(plan.pruned, 2);
        assert!((plan.pruned_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_view_yields_empty_plan() {
        let q = Query::from_attrs(16, [AttrId(0)]);
        let plan = plan(&q, std::iter::empty());
        assert!(plan.segments.is_empty());
        assert_eq!(plan.pruned, 0);
        assert_eq!(plan.pruned_fraction(), 1.0);
        assert_eq!(plan.parallelism, Parallelism::Sequential);
    }

    #[test]
    fn parallelism_resolves_to_worker_counts() {
        assert_eq!(Parallelism::Sequential.workers(8), 1);
        assert_eq!(Parallelism::Threads(4).workers(8), 4);
        assert_eq!(Parallelism::Threads(4).workers(2), 2, "capped at branches");
        assert_eq!(Parallelism::Threads(0).workers(8), 1, "floored at one");
        assert_eq!(Parallelism::Threads(4).workers(0), 1, "empty plan is fine");
        assert!(Parallelism::Auto.workers(64) >= 1);
        assert!(Parallelism::Auto.workers(2) <= 2);
    }

    #[test]
    fn plan_from_survivors_builds_the_same_plan_shape() {
        let p = plan_from_survivors(vec![SegmentId(0), SegmentId(2)], 2);
        assert_eq!(p.segments, vec![SegmentId(0), SegmentId(2)]);
        assert_eq!(p.pruned, 2);
        assert!((p.pruned_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(p.parallelism, Parallelism::Sequential);
        let empty = plan_from_survivors(Vec::new(), 0);
        assert_eq!(empty.pruned_fraction(), 1.0);
    }

    #[test]
    fn plan_with_carries_the_knob() {
        let q = Query::from_attrs(16, [AttrId(0)]);
        let parts = [(SegmentId(0), syn(&[0]))];
        let p = plan_with(
            &q,
            parts.iter().map(|(s, syn)| (*s, syn)),
            Parallelism::Threads(3),
        );
        assert_eq!(p.parallelism, Parallelism::Threads(3));
        let p = plan(&q, parts.iter().map(|(s, syn)| (*s, syn)))
            .with_parallelism(Parallelism::Auto);
        assert_eq!(p.parallelism, Parallelism::Auto);
    }
}
