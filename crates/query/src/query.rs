//! Query representation.

use cind_model::{AttrId, AttributeCatalog, Entity, Synopsis, Value};

/// A projection query over the universal table: "return attributes
/// `{a₁, a₂, …}` of every entity instantiating at least one of them".
#[derive(Clone, Debug)]
pub struct Query {
    attrs: Vec<AttrId>,
    synopsis: Synopsis,
}

impl Query {
    /// Builds a query from attribute ids over a universe of `universe`
    /// attributes.
    pub fn from_attrs(universe: usize, attrs: impl IntoIterator<Item = AttrId>) -> Self {
        let attrs: Vec<AttrId> = attrs.into_iter().collect();
        let synopsis = Synopsis::from_attrs(universe, attrs.iter().copied());
        Self { attrs, synopsis }
    }

    /// Builds a query from attribute names; `None` if any name is not in
    /// the catalog (such a query would be a user error — the attribute does
    /// not exist anywhere in the table).
    pub fn from_names<'a>(
        catalog: &AttributeCatalog,
        names: impl IntoIterator<Item = &'a str>,
    ) -> Option<Self> {
        let attrs: Option<Vec<AttrId>> =
            names.into_iter().map(|n| catalog.lookup(n)).collect();
        Some(Self::from_attrs(catalog.len(), attrs?))
    }

    /// The requested attributes.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// The query synopsis `q`.
    pub fn synopsis(&self) -> &Synopsis {
        &self.synopsis
    }

    /// Whether `entity` satisfies the predicate (instantiates at least one
    /// requested attribute).
    pub fn matches(&self, entity: &Entity) -> bool {
        self.attrs.iter().any(|a| entity.has(*a))
    }

    /// Projects the requested attributes out of `entity`, in query order;
    /// absent attributes yield `None` (SQL NULL).
    pub fn project<'e>(&self, entity: &'e Entity) -> Vec<Option<&'e Value>> {
        self.attrs.iter().map(|a| entity.get(*a)).collect()
    }

    /// Number of requested attributes `entity` instantiates (the cells the
    /// query actually returns for this row).
    pub fn projected_cells(&self, entity: &Entity) -> u32 {
        self.attrs.iter().filter(|a| entity.has(**a)).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::EntityId;

    fn entity(attrs: &[(u32, i64)]) -> Entity {
        Entity::new(
            EntityId(1),
            attrs.iter().map(|&(a, v)| (AttrId(a), Value::Int(v))),
        )
        .unwrap()
    }

    #[test]
    fn from_names_resolves_or_fails() {
        let cat = AttributeCatalog::from_names(["name", "weight"]).unwrap();
        let q = Query::from_names(&cat, ["weight"]).unwrap();
        assert_eq!(q.attrs(), &[AttrId(1)]);
        assert!(Query::from_names(&cat, ["nope"]).is_none());
    }

    #[test]
    fn matches_any_requested_attribute() {
        let q = Query::from_attrs(8, [AttrId(0), AttrId(5)]);
        assert!(q.matches(&entity(&[(5, 1)])));
        assert!(q.matches(&entity(&[(0, 1), (5, 1)])));
        assert!(!q.matches(&entity(&[(3, 1)])));
        assert!(!q.matches(&Entity::empty(EntityId(9))));
    }

    #[test]
    fn projection_preserves_query_order_with_nulls() {
        let q = Query::from_attrs(8, [AttrId(5), AttrId(0), AttrId(3)]);
        let e = entity(&[(0, 10), (5, 50)]);
        let row = q.project(&e);
        assert_eq!(row, vec![Some(&Value::Int(50)), Some(&Value::Int(10)), None]);
        assert_eq!(q.projected_cells(&e), 2);
    }

    #[test]
    fn synopsis_matches_attr_set() {
        let q = Query::from_attrs(8, [AttrId(1), AttrId(2)]);
        assert_eq!(*q.synopsis(), Synopsis::from_bits(8, [1, 2]));
    }
}
