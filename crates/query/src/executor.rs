//! Plan execution over the universal table.
//!
//! Two strategies share one result shape: [`execute_with`] walks the
//! surviving segments in plan order on the calling thread, and
//! [`execute_parallel`] fans them out over a scoped worker pool. Workers
//! claim branches from a shared atomic cursor, scan through the table's
//! [`ReadView`](cind_storage::ReadView) (per-shard pool locks, lock-free
//! I/O counters), and record per-segment partial aggregates; the partials
//! are merged *in plan order*, so `rows`, `cells`, and `entities_scanned`
//! — and the row order of [`execute_collect`] — are identical to the
//! sequential run regardless of worker interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use cind_model::{Entity, Value};
use cind_storage::{IoStats, ReadView, StorageError, UniversalTable};

use crate::{Parallelism, Plan, Query};

/// Measurements of one query execution.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Entities that satisfied the predicate.
    pub rows: u64,
    /// Non-null cells returned across all rows (the data the query was
    /// actually after — the numerator of Definition 1 for this query).
    pub cells: u64,
    /// Entities scanned, matching or not (what was *read*).
    pub entities_scanned: u64,
    /// Segments scanned (the UNION ALL width).
    pub segments_read: usize,
    /// Partitions pruned before touching data.
    pub segments_pruned: usize,
    /// The I/O this execution issued, attributed per access at the buffer
    /// pool (not a delta of the pool's shared counters), so the numbers
    /// are exact even while other sessions read and write concurrently.
    pub io: IoStats,
    /// Wall-clock execution time.
    pub duration: Duration,
}

impl QueryResult {
    /// Fraction of scanned entities that matched (1.0 when nothing was
    /// scanned).
    pub fn scan_precision(&self) -> f64 {
        if self.entities_scanned == 0 {
            1.0
        } else {
            self.rows as f64 / self.entities_scanned as f64
        }
    }
}

/// Executes `plan` for `query`, streaming matching entities into `sink`.
///
/// The scan goes segment by segment (the `UNION ALL`), touching the buffer
/// pool once per page; the returned [`QueryResult`] carries the I/O delta
/// and the wall time.
pub fn execute_with(
    table: &UniversalTable,
    query: &Query,
    plan: &Plan,
    sink: impl FnMut(&Entity),
) -> Result<QueryResult, StorageError> {
    execute_with_view(table.read_view(), query, plan, sink)
}

/// [`execute_with`] over an explicit [`ReadView`] — the entry point for
/// callers scanning an owned [`cind_storage::TableSnapshot`] instead of a
/// live table (epoch snapshot reads).
pub fn execute_with_view(
    view: ReadView<'_>,
    query: &Query,
    plan: &Plan,
    mut sink: impl FnMut(&Entity),
) -> Result<QueryResult, StorageError> {
    let start = Instant::now();
    let mut io = IoStats::default();
    let mut rows = 0u64;
    let mut cells = 0u64;
    let mut entities_scanned = 0u64;
    for &seg in &plan.segments {
        view.scan_tracked(
            seg,
            |e| {
                entities_scanned += 1;
                if query.matches(e) {
                    rows += 1;
                    cells += u64::from(query.projected_cells(e));
                    sink(e);
                }
            },
            &mut io,
        )?;
    }
    Ok(QueryResult {
        rows,
        cells,
        entities_scanned,
        segments_read: plan.segments.len(),
        segments_pruned: plan.pruned,
        io,
        duration: start.elapsed(),
    })
}

/// Executes `plan`, discarding row data (measurement runs). Honours the
/// plan's [`Parallelism`] knob: sequential plans run on the calling
/// thread, parallel plans fan out via [`execute_parallel`].
pub fn execute(
    table: &UniversalTable,
    query: &Query,
    plan: &Plan,
) -> Result<QueryResult, StorageError> {
    execute_view(table.read_view(), query, plan)
}

/// [`execute`] over an explicit [`ReadView`].
pub fn execute_view(
    view: ReadView<'_>,
    query: &Query,
    plan: &Plan,
) -> Result<QueryResult, StorageError> {
    match plan.parallelism {
        Parallelism::Sequential => execute_with_view(view, query, plan, |_| {}),
        p => execute_parallel_view(view, query, plan, p.workers(plan.segments.len())),
    }
}

/// A materialised result row: requested attributes in query order, `None`
/// for NULL.
pub type Row = Vec<Option<Value>>;

/// Executes `plan` and materialises the projected rows. Honours the plan's
/// [`Parallelism`] knob; row order (plan order, then scan order within a
/// segment) is identical for every strategy.
pub fn execute_collect(
    table: &UniversalTable,
    query: &Query,
    plan: &Plan,
) -> Result<(QueryResult, Vec<Row>), StorageError> {
    execute_collect_view(table.read_view(), query, plan)
}

/// [`execute_collect`] over an explicit [`ReadView`].
pub fn execute_collect_view(
    view: ReadView<'_>,
    query: &Query,
    plan: &Plan,
) -> Result<(QueryResult, Vec<Row>), StorageError> {
    match plan.parallelism {
        Parallelism::Sequential => {
            let mut rows = Vec::new();
            let result = execute_with_view(view, query, plan, |e| {
                rows.push(query.project(e).into_iter().map(|v| v.cloned()).collect());
            })?;
            Ok((result, rows))
        }
        p => {
            let workers = p.workers(plan.segments.len());
            let (result, partials) = scan_parallel(view, query, plan, workers, true)?;
            let rows = partials.into_iter().flat_map(|p| p.out).collect();
            Ok((result, rows))
        }
    }
}

/// Executes `plan` with `threads` workers, fanning the surviving segments
/// (the `UNION ALL` branches) over a scoped thread pool.
///
/// Aggregates (`rows`, `cells`, `entities_scanned`, pruning counts) are
/// merged in plan order and equal the sequential result exactly; the I/O
/// counters are accumulated per worker from per-access attribution and
/// folded together, so they cover exactly this execution's accesses even
/// under concurrent sessions. `threads` is clamped to `[1, branches]`.
///
/// # Errors
/// A storage error from one of the workers, if any branch fails.
///
/// # Panics
/// Panics if a worker thread panics.
pub fn execute_parallel(
    table: &UniversalTable,
    query: &Query,
    plan: &Plan,
    threads: usize,
) -> Result<QueryResult, StorageError> {
    execute_parallel_view(table.read_view(), query, plan, threads)
}

/// [`execute_parallel`] over an explicit [`ReadView`].
///
/// # Errors
/// A storage error from one of the workers, if any branch fails.
///
/// # Panics
/// Panics if a worker thread panics.
pub fn execute_parallel_view(
    view: ReadView<'_>,
    query: &Query,
    plan: &Plan,
    threads: usize,
) -> Result<QueryResult, StorageError> {
    let (result, _) = scan_parallel(view, query, plan, threads, false)?;
    Ok(result)
}

/// Per-segment partial aggregates produced by one worker.
#[derive(Default)]
struct SegPartial {
    rows: u64,
    cells: u64,
    entities_scanned: u64,
    io: IoStats,
    out: Vec<Row>,
}

/// The shared parallel scan: workers claim branch indices from an atomic
/// cursor, each branch's partial lands in its plan-order slot, and the
/// merge walks the slots in order.
fn scan_parallel(
    view: ReadView<'_>,
    query: &Query,
    plan: &Plan,
    threads: usize,
    collect: bool,
) -> Result<(QueryResult, Vec<SegPartial>), StorageError> {
    let branches = plan.segments.len();
    let workers = threads.clamp(1, branches.max(1));
    let start = Instant::now();

    let cursor = AtomicUsize::new(0);
    let worker_results: Vec<Result<Vec<(usize, SegPartial)>, StorageError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut done: Vec<(usize, SegPartial)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= branches {
                                return Ok(done);
                            }
                            let mut p = SegPartial::default();
                            let mut io = IoStats::default();
                            view.scan_tracked(
                                plan.segments[i],
                                |e| {
                                    p.entities_scanned += 1;
                                    if query.matches(e) {
                                        p.rows += 1;
                                        p.cells += u64::from(query.projected_cells(e));
                                        if collect {
                                            p.out.push(
                                                query
                                                    .project(e)
                                                    .into_iter()
                                                    .map(|v| v.cloned())
                                                    .collect(),
                                            );
                                        }
                                    }
                                },
                                &mut io,
                            )?;
                            p.io = io;
                            done.push((i, p));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("query worker panicked"))
                .collect()
        });

    // Merge the per-thread deltas in plan order: slot each partial by its
    // branch index, then fold the slots left to right.
    let mut slots: Vec<Option<SegPartial>> = (0..branches).map(|_| None).collect();
    let mut first_error: Option<StorageError> = None;
    for r in worker_results {
        match r {
            Ok(parts) => {
                for (i, p) in parts {
                    slots[i] = Some(p);
                }
            }
            Err(e) => {
                first_error.get_or_insert(e);
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    let mut rows = 0u64;
    let mut cells = 0u64;
    let mut entities_scanned = 0u64;
    let mut io = IoStats::default();
    let partials: Vec<SegPartial> = slots
        .into_iter()
        .map(|s| s.expect("every branch either completed or errored"))
        .inspect(|p| {
            rows += p.rows;
            cells += p.cells;
            entities_scanned += p.entities_scanned;
            io += p.io;
        })
        .collect();
    Ok((
        QueryResult {
            rows,
            cells,
            entities_scanned,
            segments_read: branches,
            segments_pruned: plan.pruned,
            io,
            duration: start.elapsed(),
        },
        partials,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner;
    use cind_model::{AttrId, EntityId, Synopsis};

    /// Two segments: 0 holds "cameras" (attrs 0,1), 1 holds "drives"
    /// (attrs 2,3).
    fn setup() -> (UniversalTable, Vec<(cind_storage::SegmentId, Synopsis)>) {
        let mut t = UniversalTable::new(64);
        for name in ["res", "zoom", "rpm", "cache"] {
            t.catalog_mut().intern(name);
        }
        let cam = t.create_segment();
        let drv = t.create_segment();
        for i in 0..10u64 {
            let e = Entity::new(
                EntityId(i),
                [(AttrId(0), Value::Int(1)), (AttrId(1), Value::Int(2))],
            )
            .unwrap();
            t.insert(cam, &e).unwrap();
        }
        for i in 10..15u64 {
            let e = Entity::new(
                EntityId(i),
                [(AttrId(2), Value::Int(3)), (AttrId(3), Value::Int(4))],
            )
            .unwrap();
            t.insert(drv, &e).unwrap();
        }
        let view = vec![
            (cam, Synopsis::from_bits(4, [0, 1])),
            (drv, Synopsis::from_bits(4, [2, 3])),
        ];
        (t, view)
    }

    #[test]
    fn pruned_execution_reads_only_relevant_segment() {
        let (t, view) = setup();
        let q = Query::from_attrs(4, [AttrId(2)]);
        let plan = planner::plan(&q, view.iter().map(|(s, p)| (*s, p)));
        let r = execute(&t, &q, &plan).unwrap();
        assert_eq!(r.rows, 5);
        assert_eq!(r.cells, 5);
        assert_eq!(r.entities_scanned, 5);
        assert_eq!(r.segments_read, 1);
        assert_eq!(r.segments_pruned, 1);
        assert_eq!(r.scan_precision(), 1.0);
        assert!(r.io.logical_reads >= 1);
    }

    #[test]
    fn unpruned_execution_reads_everything() {
        let (t, view) = setup();
        let q = Query::from_attrs(4, [AttrId(0), AttrId(2)]);
        let plan = planner::plan(&q, view.iter().map(|(s, p)| (*s, p)));
        let r = execute(&t, &q, &plan).unwrap();
        assert_eq!(r.rows, 15);
        assert_eq!(r.entities_scanned, 15);
        assert_eq!(r.segments_read, 2);
        assert_eq!(r.segments_pruned, 0);
    }

    #[test]
    fn collect_returns_projected_rows() {
        let (t, view) = setup();
        let q = Query::from_attrs(4, [AttrId(3), AttrId(0)]);
        let plan = planner::plan(&q, view.iter().map(|(s, p)| (*s, p)));
        let (r, rows) = execute_collect(&t, &q, &plan).unwrap();
        assert_eq!(r.rows, 15);
        assert_eq!(rows.len(), 15);
        // Camera rows project NULL for attr 3 and Int(1) for attr 0.
        let cam_rows = rows
            .iter()
            .filter(|row| row[0].is_none())
            .count();
        assert_eq!(cam_rows, 10);
        let drive_row = rows.iter().find(|row| row[0].is_some()).unwrap();
        assert_eq!(drive_row[0], Some(Value::Int(4)));
        assert_eq!(drive_row[1], None);
    }

    #[test]
    fn empty_plan_reads_nothing() {
        let (t, view) = setup();
        let q = Query::from_attrs(5, [AttrId(4)]); // attribute nobody has
        let plan = planner::plan(&q, view.iter().map(|(s, p)| (*s, p)));
        let r = execute(&t, &q, &plan).unwrap();
        assert_eq!(r.rows, 0);
        assert_eq!(r.entities_scanned, 0);
        assert_eq!(r.io.logical_reads, 0);
        assert_eq!(r.segments_pruned, 2);
    }

    #[test]
    fn parallel_matches_sequential_aggregates() {
        let (t, view) = setup();
        let q = Query::from_attrs(4, [AttrId(0), AttrId(2)]);
        let plan = planner::plan(&q, view.iter().map(|(s, p)| (*s, p)));
        let seq = execute(&t, &q, &plan).unwrap();
        for threads in [1, 2, 8] {
            let par = execute_parallel(&t, &q, &plan, threads).unwrap();
            assert_eq!(par.rows, seq.rows, "{threads} threads");
            assert_eq!(par.cells, seq.cells);
            assert_eq!(par.entities_scanned, seq.entities_scanned);
            assert_eq!(par.segments_read, seq.segments_read);
            assert_eq!(par.segments_pruned, seq.segments_pruned);
            assert_eq!(par.io.logical_reads, seq.io.logical_reads);
        }
    }

    #[test]
    fn execute_dispatches_on_the_plan_knob() {
        let (t, view) = setup();
        let q = Query::from_attrs(4, [AttrId(0), AttrId(2)]);
        let seq_plan = planner::plan(&q, view.iter().map(|(s, p)| (*s, p)));
        let par_plan = seq_plan.clone().with_parallelism(Parallelism::Threads(2));
        let seq = execute(&t, &q, &seq_plan).unwrap();
        let par = execute(&t, &q, &par_plan).unwrap();
        assert_eq!(par.rows, seq.rows);
        assert_eq!(par.entities_scanned, seq.entities_scanned);
    }

    #[test]
    fn parallel_collect_preserves_plan_order() {
        let (t, view) = setup();
        let q = Query::from_attrs(4, [AttrId(0), AttrId(2)]);
        let plan = planner::plan(&q, view.iter().map(|(s, p)| (*s, p)));
        let (_, seq_rows) = execute_collect(&t, &q, &plan).unwrap();
        let par_plan = plan.with_parallelism(Parallelism::Threads(4));
        let (r, par_rows) = execute_collect(&t, &q, &par_plan).unwrap();
        assert_eq!(r.rows as usize, par_rows.len());
        assert_eq!(seq_rows, par_rows, "row order must be deterministic");
    }

    #[test]
    fn parallel_on_empty_plan_is_fine() {
        let (t, view) = setup();
        let q = Query::from_attrs(5, [AttrId(4)]);
        let plan = planner::plan(&q, view.iter().map(|(s, p)| (*s, p)));
        let r = execute_parallel(&t, &q, &plan, 8).unwrap();
        assert_eq!(r.rows, 0);
        assert_eq!(r.segments_read, 0);
        assert_eq!(r.segments_pruned, 2);
    }

    #[test]
    fn snapshot_view_matches_live_table() {
        let (t, view) = setup();
        let q = Query::from_attrs(4, [AttrId(0), AttrId(2)]);
        let plan = planner::plan(&q, view.iter().map(|(s, p)| (*s, p)));
        let (live, live_rows) = execute_collect(&t, &q, &plan).unwrap();
        let snap = t.freeze();
        for parallelism in [Parallelism::Sequential, Parallelism::Threads(4)] {
            let plan = plan.clone().with_parallelism(parallelism);
            let (r, rows) = execute_collect_view(snap.view(), &q, &plan).unwrap();
            assert_eq!(r.rows, live.rows);
            assert_eq!(r.entities_scanned, live.entities_scanned);
            assert_eq!(rows, live_rows, "snapshot rows must match, in order");
        }
    }

    #[test]
    fn parallel_surfaces_storage_errors() {
        let (t, _) = setup();
        let q = Query::from_attrs(4, [AttrId(0)]);
        let plan = Plan {
            segments: vec![cind_storage::SegmentId(99)],
            pruned: 0,
            parallelism: Parallelism::Sequential,
        };
        assert!(execute_parallel(&t, &q, &plan, 4).is_err());
    }
}
