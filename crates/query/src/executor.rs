//! Plan execution over the universal table.

use std::time::{Duration, Instant};

use cind_model::{Entity, Value};
use cind_storage::{IoStats, StorageError, UniversalTable};

use crate::{Plan, Query};

/// Measurements of one query execution.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Entities that satisfied the predicate.
    pub rows: u64,
    /// Non-null cells returned across all rows (the data the query was
    /// actually after — the numerator of Definition 1 for this query).
    pub cells: u64,
    /// Entities scanned, matching or not (what was *read*).
    pub entities_scanned: u64,
    /// Segments scanned (the UNION ALL width).
    pub segments_read: usize,
    /// Partitions pruned before touching data.
    pub segments_pruned: usize,
    /// Buffer-pool counter delta for this execution.
    pub io: IoStats,
    /// Wall-clock execution time.
    pub duration: Duration,
}

impl QueryResult {
    /// Fraction of scanned entities that matched (1.0 when nothing was
    /// scanned).
    pub fn scan_precision(&self) -> f64 {
        if self.entities_scanned == 0 {
            1.0
        } else {
            self.rows as f64 / self.entities_scanned as f64
        }
    }
}

/// Executes `plan` for `query`, streaming matching entities into `sink`.
///
/// The scan goes segment by segment (the `UNION ALL`), touching the buffer
/// pool once per page; the returned [`QueryResult`] carries the I/O delta
/// and the wall time.
pub fn execute_with(
    table: &UniversalTable,
    query: &Query,
    plan: &Plan,
    mut sink: impl FnMut(&Entity),
) -> Result<QueryResult, StorageError> {
    let io_before = table.io_stats();
    let start = Instant::now();
    let mut rows = 0u64;
    let mut cells = 0u64;
    let mut entities_scanned = 0u64;
    for &seg in &plan.segments {
        table.scan(seg, |e| {
            entities_scanned += 1;
            if query.matches(e) {
                rows += 1;
                cells += u64::from(query.projected_cells(e));
                sink(e);
            }
        })?;
    }
    Ok(QueryResult {
        rows,
        cells,
        entities_scanned,
        segments_read: plan.segments.len(),
        segments_pruned: plan.pruned,
        io: table.io_stats().since(&io_before),
        duration: start.elapsed(),
    })
}

/// Executes `plan`, discarding row data (measurement runs).
pub fn execute(
    table: &UniversalTable,
    query: &Query,
    plan: &Plan,
) -> Result<QueryResult, StorageError> {
    execute_with(table, query, plan, |_| {})
}

/// A materialised result row: requested attributes in query order, `None`
/// for NULL.
pub type Row = Vec<Option<Value>>;

/// Executes `plan` and materialises the projected rows.
pub fn execute_collect(
    table: &UniversalTable,
    query: &Query,
    plan: &Plan,
) -> Result<(QueryResult, Vec<Row>), StorageError> {
    let mut rows = Vec::new();
    let result = execute_with(table, query, plan, |e| {
        rows.push(query.project(e).into_iter().map(|v| v.cloned()).collect());
    })?;
    Ok((result, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner;
    use cind_model::{AttrId, EntityId, Synopsis};

    /// Two segments: 0 holds "cameras" (attrs 0,1), 1 holds "drives"
    /// (attrs 2,3).
    fn setup() -> (UniversalTable, Vec<(cind_storage::SegmentId, Synopsis)>) {
        let mut t = UniversalTable::new(64);
        for name in ["res", "zoom", "rpm", "cache"] {
            t.catalog_mut().intern(name);
        }
        let cam = t.create_segment();
        let drv = t.create_segment();
        for i in 0..10u64 {
            let e = Entity::new(
                EntityId(i),
                [(AttrId(0), Value::Int(1)), (AttrId(1), Value::Int(2))],
            )
            .unwrap();
            t.insert(cam, &e).unwrap();
        }
        for i in 10..15u64 {
            let e = Entity::new(
                EntityId(i),
                [(AttrId(2), Value::Int(3)), (AttrId(3), Value::Int(4))],
            )
            .unwrap();
            t.insert(drv, &e).unwrap();
        }
        let view = vec![
            (cam, Synopsis::from_bits(4, [0, 1])),
            (drv, Synopsis::from_bits(4, [2, 3])),
        ];
        (t, view)
    }

    #[test]
    fn pruned_execution_reads_only_relevant_segment() {
        let (t, view) = setup();
        let q = Query::from_attrs(4, [AttrId(2)]);
        let plan = planner::plan(&q, view.iter().map(|(s, p)| (*s, p)));
        let r = execute(&t, &q, &plan).unwrap();
        assert_eq!(r.rows, 5);
        assert_eq!(r.cells, 5);
        assert_eq!(r.entities_scanned, 5);
        assert_eq!(r.segments_read, 1);
        assert_eq!(r.segments_pruned, 1);
        assert_eq!(r.scan_precision(), 1.0);
        assert!(r.io.logical_reads >= 1);
    }

    #[test]
    fn unpruned_execution_reads_everything() {
        let (t, view) = setup();
        let q = Query::from_attrs(4, [AttrId(0), AttrId(2)]);
        let plan = planner::plan(&q, view.iter().map(|(s, p)| (*s, p)));
        let r = execute(&t, &q, &plan).unwrap();
        assert_eq!(r.rows, 15);
        assert_eq!(r.entities_scanned, 15);
        assert_eq!(r.segments_read, 2);
        assert_eq!(r.segments_pruned, 0);
    }

    #[test]
    fn collect_returns_projected_rows() {
        let (t, view) = setup();
        let q = Query::from_attrs(4, [AttrId(3), AttrId(0)]);
        let plan = planner::plan(&q, view.iter().map(|(s, p)| (*s, p)));
        let (r, rows) = execute_collect(&t, &q, &plan).unwrap();
        assert_eq!(r.rows, 15);
        assert_eq!(rows.len(), 15);
        // Camera rows project NULL for attr 3 and Int(1) for attr 0.
        let cam_rows = rows
            .iter()
            .filter(|row| row[0].is_none())
            .count();
        assert_eq!(cam_rows, 10);
        let drive_row = rows.iter().find(|row| row[0].is_some()).unwrap();
        assert_eq!(drive_row[0], Some(Value::Int(4)));
        assert_eq!(drive_row[1], None);
    }

    #[test]
    fn empty_plan_reads_nothing() {
        let (t, view) = setup();
        let q = Query::from_attrs(5, [AttrId(4)]); // attribute nobody has
        let plan = planner::plan(&q, view.iter().map(|(s, p)| (*s, p)));
        let r = execute(&t, &q, &plan).unwrap();
        assert_eq!(r.rows, 0);
        assert_eq!(r.entities_scanned, 0);
        assert_eq!(r.io.logical_reads, 0);
        assert_eq!(r.segments_pruned, 2);
    }
}
