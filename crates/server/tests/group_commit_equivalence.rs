//! Differential byte-equivalence tests for the two hot-path rewrites of
//! this layer: the WAL group-commit coordinator and the wire-level batch
//! operations.
//!
//! The contract both must honour: they change *when syscalls happen*,
//! never *what bytes land on disk*. A single sequential writer through a
//! windowed coordinator submits in the same order the per-op path would,
//! so the WAL must be byte-identical at any window; a batch insert runs
//! each entity through the same Algorithm-1 placement and logs the same
//! per-entity transaction groups, so WAL and snapshot must be
//! byte-identical to the same inserts issued one at a time. Both claims
//! are checked on TPC-H (disjoint relations) and DBpedia-like (irregular
//! overlap) data, across a sharded store, by comparing every shard's WAL
//! and checkpoint snapshot byte for byte.

use std::path::{Path, PathBuf};

use cind_datagen::{DbpediaConfig, DbpediaGenerator, TpchConfig, TpchGenerator};
use cind_model::AttributeCatalog;
use cind_server::engine::{SNAPSHOT_FILE, WAL_FILE};
use cind_server::{
    shard_dir_name, EngineOptions, ShardedEngine, ShardedOptions, WireEntity,
};
use cinderella_core::{Capacity, Config};

const SHARDS: usize = 2;

fn test_config() -> Config {
    Config {
        weight: 0.3,
        capacity: Capacity::MaxEntities(64),
        ..Config::default()
    }
}

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("cind_gc_equivalence")
        .join(format!("{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create store dir");
    dir
}

fn open_store(dir: &Path, window_us: u64) -> ShardedEngine {
    let opts = EngineOptions {
        config: test_config(),
        pool_pages: 256,
        query_threads: 1,
        group_commit_window: std::time::Duration::from_micros(window_us),
        ..EngineOptions::default()
    };
    ShardedEngine::open(dir, ShardedOptions::new(opts, SHARDS)).expect("store opens")
}

fn tpch_entities() -> Vec<WireEntity> {
    let mut catalog = AttributeCatalog::new();
    let (entities, _) =
        TpchGenerator::new(TpchConfig { scale: 0.002, seed: 17 }).generate(&mut catalog);
    to_wire_owned(&entities, &catalog)
}

fn dbpedia_entities() -> Vec<WireEntity> {
    let mut catalog = AttributeCatalog::new();
    let entities = DbpediaGenerator::new(DbpediaConfig {
        entities: 600,
        attributes: 40,
        groups: 6,
        seed: 29,
        ..DbpediaConfig::default()
    })
    .generate(&mut catalog);
    to_wire_owned(&entities, &catalog)
}

fn to_wire_owned(entities: &[cind_model::Entity], catalog: &AttributeCatalog) -> Vec<WireEntity> {
    entities
        .iter()
        .map(|e| WireEntity {
            id: e.id().0,
            attrs: e
                .attrs()
                .iter()
                .map(|(a, v)| (catalog.name(*a).expect("interned").to_string(), v.clone()))
                .collect(),
        })
        .collect()
}

fn shard_file(dir: &Path, shard: usize, name: &str) -> Vec<u8> {
    let path = dir.join(shard_dir_name(shard)).join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Byte-compares every shard's `name` file across two store directories.
fn assert_shard_files_equal(a: &Path, b: &Path, name: &str, what: &str) {
    for s in 0..SHARDS {
        let fa = shard_file(a, s, name);
        let fb = shard_file(b, s, name);
        assert_eq!(
            fa.len(),
            fb.len(),
            "{what}: shard {s} {name} lengths diverge ({} vs {})",
            fa.len(),
            fb.len()
        );
        assert!(fa == fb, "{what}: shard {s} {name} bytes diverge");
    }
}

/// Feeds `entities` through `drive` into a fresh store and returns its
/// directory, WAL still un-checkpointed so the log bytes can be compared
/// before being compacted away.
fn build_store(
    tag: &str,
    window_us: u64,
    entities: &[WireEntity],
    drive: impl Fn(&ShardedEngine, &[WireEntity]),
) -> PathBuf {
    let dir = store_dir(tag);
    let eng = open_store(&dir, window_us);
    drive(&eng, entities);
    eng.flush_wal().expect("wal drained");
    dir
}

fn insert_singly(eng: &ShardedEngine, entities: &[WireEntity]) {
    for e in entities {
        eng.insert(e).expect("insert");
    }
}

fn insert_batched(eng: &ShardedEngine, entities: &[WireEntity]) {
    // A deliberately awkward width so batches straddle shard routing and
    // the tail batch is partial.
    for chunk in entities.chunks(7) {
        for r in eng.insert_batch(chunk) {
            r.expect("batch item");
        }
    }
}

/// Checkpoints both stores and byte-compares the resulting snapshots.
fn assert_checkpoints_equal(a: &Path, b: &Path, what: &str) {
    for dir in [a, b] {
        let eng = open_store(dir, 0);
        eng.checkpoint().expect("checkpoint");
        assert!(eng.validate().expect("validate").is_empty(), "{what}: store invalid");
    }
    assert_shard_files_equal(a, b, SNAPSHOT_FILE, what);
}

fn run_window_equivalence(dataset: &str, entities: &[WireEntity]) {
    // One sequential writer: submission order is program order in both
    // stores, so even the coalesced WAL must match byte for byte.
    let base = build_store(&format!("{dataset}_w0"), 0, entities, insert_singly);
    let windowed = build_store(&format!("{dataset}_w4000"), 4_000, entities, insert_singly);
    assert_shard_files_equal(&base, &windowed, WAL_FILE, dataset);
    assert_checkpoints_equal(&base, &windowed, dataset);
    let _ = std::fs::remove_dir_all(&base);
    let _ = std::fs::remove_dir_all(&windowed);
}

fn run_batch_equivalence(dataset: &str, entities: &[WireEntity]) {
    let singles = build_store(&format!("{dataset}_singles"), 0, entities, insert_singly);
    let batched = build_store(&format!("{dataset}_batched"), 0, entities, insert_batched);
    assert_shard_files_equal(&singles, &batched, WAL_FILE, dataset);
    assert_checkpoints_equal(&singles, &batched, dataset);
    let _ = std::fs::remove_dir_all(&singles);
    let _ = std::fs::remove_dir_all(&batched);
}

#[test]
fn group_commit_window_leaves_wal_and_snapshot_bytes_unchanged_on_tpch() {
    run_window_equivalence("tpch", &tpch_entities());
}

#[test]
fn group_commit_window_leaves_wal_and_snapshot_bytes_unchanged_on_dbpedia() {
    run_window_equivalence("dbpedia", &dbpedia_entities());
}

#[test]
fn insert_batch_is_byte_identical_to_per_op_inserts_on_tpch() {
    run_batch_equivalence("tpch", &tpch_entities());
}

#[test]
fn insert_batch_is_byte_identical_to_per_op_inserts_on_dbpedia() {
    run_batch_equivalence("dbpedia", &dbpedia_entities());
}

/// The windowed store, recovered purely from its coalesced WAL (no
/// checkpoint), must answer queries identically to the per-op store —
/// the replay path cannot tell the two logs apart.
#[test]
fn windowed_wal_replays_to_the_same_answers() {
    let entities = dbpedia_entities();
    let base = build_store("replay_w0", 0, &entities, insert_singly);
    let windowed = build_store("replay_w2000", 2_000, &entities, insert_singly);
    let a = open_store(&base, 0);
    let b = open_store(&windowed, 0);
    assert_eq!(a.stats().entities, b.stats().entities);
    for names in [vec!["name", "birthDate"], vec!["occupation", "nationality"]] {
        let names: Vec<String> = names.into_iter().map(str::to_string).collect();
        let (ra, _) = a.query(&names).expect("query base");
        let (rb, _) = b.query(&names).expect("query windowed");
        let mut ca: Vec<String> = ra.iter().map(|r| format!("{r:?}")).collect();
        let mut cb: Vec<String> = rb.iter().map(|r| format!("{r:?}")).collect();
        ca.sort();
        cb.sort();
        assert_eq!(ca, cb, "replayed rows diverge for {names:?}");
    }
    drop(a);
    drop(b);
    let _ = std::fs::remove_dir_all(&base);
    let _ = std::fs::remove_dir_all(&windowed);
}
