//! Protocol fuzz/property suite.
//!
//! Three layers of assurance over `cind_server::protocol`:
//!
//! 1. **Round-trip properties**: for every request and response variant,
//!    `decode ∘ encode = id` under generated payloads (ids, attribute
//!    names, all four `Value` kinds, row matrices, stats counters).
//! 2. **Totality under mutation**: seeded random byte strings and
//!    single-byte mutations of valid encodings must *decode or error* —
//!    never panic, never hang, never allocate unboundedly. The decoders
//!    return `Result`, so totality here means these tests complete.
//! 3. **Committed corpus**: the byte files under `tests/corpus/` pin
//!    known-interesting inputs (one valid encoding per variant family
//!    plus malformed shapes). Every file is fed to both decoders raw and
//!    through the framing layer. Files named `valid_req_*` / `valid_resp_*`
//!    must additionally decode `Ok` — a codec change that breaks reading
//!    old bytes fails here first. Regenerate with
//!    `cargo test -p cind-server --test proto_fuzz regen_corpus -- --ignored`.

use std::path::PathBuf;

use cind_model::Value;
use cind_server::protocol::{
    decode_request, decode_response, encode_request, encode_response, frame, read_frame,
    split_frame, EngineStats, ErrorCode, IoCounters, ProtoError, QueryStats, Request,
    Response, WireEntity,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---- generators -------------------------------------------------------

fn value_from(kind: u32, i: i64, f: f64, s: &str) -> Value {
    match kind % 4 {
        0 => Value::Bool(i & 1 == 1),
        1 => Value::Int(i),
        2 => Value::Float(f),
        _ => Value::Text(s.to_owned()),
    }
}

fn entity_from(id: u64, raw: &[(u32, i64, f64, String)]) -> WireEntity {
    let attrs = raw
        .iter()
        .enumerate()
        .map(|(i, (kind, int, float, text))| {
            (format!("a{i}_{text}"), value_from(*kind, *int, *float, text))
        })
        .collect();
    WireEntity { id, attrs }
}

fn attr_raw() -> impl Strategy<Value = Vec<(u32, i64, f64, String)>> {
    prop::collection::vec(
        (0u32..4, -1_000_000i64..1_000_000, -1e9f64..1e9, "[a-z]{0,6}"),
        0..10,
    )
}

// ---- round-trip properties -------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn insert_and_update_roundtrip(
        id in 0u64..u64::MAX,
        raw in attr_raw(),
        update in any::<bool>(),
    ) {
        let e = entity_from(id, &raw);
        let req = if update { Request::Update(e) } else { Request::Insert(e) };
        let body = encode_request(&req);
        prop_assert_eq!(decode_request(&body).expect("valid encoding"), req);
    }

    #[test]
    fn delete_query_stats_validate_shutdown_ping_roundtrip(
        id in 0u64..u64::MAX,
        attrs in prop::collection::vec("[a-z_]{0,12}", 0..8),
        delay in 0u64..100_000,
        pick in 0u32..6,
    ) {
        let req = match pick {
            0 => Request::Delete(id),
            1 => Request::Query(attrs),
            2 => Request::Stats,
            3 => Request::Validate,
            4 => Request::Shutdown,
            _ => Request::Ping(delay),
        };
        let body = encode_request(&req);
        prop_assert_eq!(decode_request(&body).expect("valid encoding"), req);
    }

    #[test]
    fn written_deleted_acks_roundtrip(
        segment in 0u32..u32::MAX,
        split in any::<bool>(),
        pick in 0u32..5,
    ) {
        let resp = match pick {
            0 => Response::Written { segment, split },
            1 => Response::Deleted,
            2 => Response::ShutdownAck,
            3 => Response::Pong,
            _ => Response::Busy,
        };
        let body = encode_response(&resp);
        prop_assert_eq!(decode_response(&body).expect("valid encoding"), resp);
    }

    #[test]
    fn rows_roundtrip(
        width in 0usize..6,
        cells in prop::collection::vec(
            prop::option::of((0u32..4, -5_000i64..5_000, -1e6f64..1e6, "[a-z]{0,4}")),
            0..48,
        ),
        counters in prop::collection::vec(0u64..1_000_000, 5..6),
    ) {
        // Reshape the flat cell stream into rows of a constant width: the
        // codec stores one width for the whole matrix.
        let rows: Vec<Vec<Option<Value>>> = if width == 0 {
            Vec::new()
        } else {
            cells
                .chunks_exact(width)
                .map(|row| {
                    row.iter()
                        .map(|c| c.as_ref().map(|(k, i, f, s)| value_from(*k, *i, *f, s)))
                        .collect()
                })
                .collect()
        };
        let resp = Response::Rows {
            rows,
            stats: QueryStats {
                entities_scanned: counters[0],
                segments_read: counters[1],
                segments_pruned: counters[2],
                logical_reads: counters[3],
                physical_reads: counters[4],
            },
        };
        let body = encode_response(&resp);
        prop_assert_eq!(decode_response(&body).expect("valid encoding"), resp);
    }

    #[test]
    fn stats_validated_error_roundtrip(
        counters in prop::collection::vec(0u64..u64::MAX, 7..8),
        violations in prop::collection::vec("[a-z :]{0,20}", 0..6),
        code in 1u32..6,
        message in "[a-z ]{0,30}",
        pick in 0u32..3,
    ) {
        let resp = match pick {
            0 => Response::Stats(EngineStats {
                entities: counters[0],
                partitions: counters[1],
                attributes: counters[2],
                logical_reads: counters[3],
                physical_reads: counters[4],
                page_writes: counters[5],
                evictions: counters[6],
            }),
            1 => Response::Validated(violations),
            _ => Response::Error {
                code: match code {
                    1 => ErrorCode::Malformed,
                    2 => ErrorCode::UnknownAttribute,
                    3 => ErrorCode::Engine,
                    4 => ErrorCode::ShuttingDown,
                    _ => ErrorCode::Internal,
                },
                message,
            },
        };
        let body = encode_response(&resp);
        prop_assert_eq!(decode_response(&body).expect("valid encoding"), resp);
    }

    #[test]
    fn batch_requests_roundtrip(
        ids in prop::collection::vec(0u64..u64::MAX, 0..6),
        raw in attr_raw(),
        queries in prop::collection::vec(
            prop::collection::vec("[a-z_]{0,10}", 0..4),
            0..5,
        ),
        pick in 0u32..3,
    ) {
        let req = match pick {
            0 => Request::InsertBatch(
                ids.iter().map(|&id| entity_from(id, &raw)).collect(),
            ),
            1 => Request::QueryBatch(queries),
            _ => Request::IoCounters,
        };
        let body = encode_request(&req);
        prop_assert_eq!(decode_request(&body).expect("valid encoding"), req);
    }

    #[test]
    fn batch_and_io_counter_responses_roundtrip(
        counters in prop::collection::vec(0u64..u64::MAX, 8..9),
        picks in prop::collection::vec(0u32..4, 0..8),
        segment in 0u32..u32::MAX,
    ) {
        // A batch is a vector of ordinary (non-batch) responses; mix the
        // simple ack variants plus typed errors, like a real insert batch.
        let items: Vec<Response> = picks
            .iter()
            .map(|p| match p {
                0 => Response::Written { segment, split: segment & 1 == 1 },
                1 => Response::Busy,
                2 => Response::Pong,
                _ => Response::Error {
                    code: ErrorCode::Engine,
                    message: "duplicate id".into(),
                },
            })
            .collect();
        let io = Response::IoCounters(IoCounters {
            net_reads: counters[0],
            net_writes: counters[1],
            frames_in: counters[2],
            frames_out: counters[3],
            wal_appends: counters[4],
            wal_syncs: counters[5],
            wal_groups: counters[6],
            wal_ops: counters[7],
        });
        for resp in [Response::Batch(items), io] {
            let body = encode_response(&resp);
            prop_assert_eq!(decode_response(&body).expect("valid encoding"), resp);
        }
    }

    #[test]
    fn framing_roundtrips_any_body(bytes in prop::collection::vec(0u8..=255, 0..200)) {
        let mut wire = Vec::new();
        frame(&bytes, &mut wire);
        let mut r = &wire[..];
        prop_assert_eq!(read_frame(&mut r).expect("framed body"), bytes);
        prop_assert!(matches!(read_frame(&mut r), Err(ProtoError::Closed)));
    }

    #[test]
    fn split_frame_agrees_with_read_frame(
        bodies in prop::collection::vec(prop::collection::vec(0u8..=255, 0..60), 1..5),
    ) {
        // However many frames share one buffer (the pipelined reader's
        // view), splitting must yield the same bodies read_frame would.
        let mut wire = Vec::new();
        for b in &bodies {
            frame(b, &mut wire);
        }
        let mut at = 0usize;
        for b in &bodies {
            let (body, used) = split_frame(&wire[at..])
                .expect("valid framing")
                .expect("complete frame available");
            prop_assert_eq!(body, &b[..]);
            at += used;
        }
        prop_assert_eq!(at, wire.len());
        prop_assert!(matches!(split_frame(&wire[at..]), Ok(None)));
    }
}

// ---- seeded fuzz corpora ---------------------------------------------

/// A spread of valid bodies covering every variant family — the mutation
/// substrate and (framed) the corpus seed material.
fn valid_bodies() -> Vec<(&'static str, Vec<u8>)> {
    let entity = WireEntity {
        id: 42,
        attrs: vec![
            ("name".into(), Value::Text("WD4000".into())),
            ("rpm".into(), Value::Int(-7200)),
            ("price".into(), Value::Float(129.5)),
            ("ssd".into(), Value::Bool(false)),
        ],
    };
    vec![
        ("valid_req_insert", encode_request(&Request::Insert(entity.clone()))),
        ("valid_req_update", encode_request(&Request::Update(entity))),
        ("valid_req_delete", encode_request(&Request::Delete(7))),
        (
            "valid_req_query",
            encode_request(&Request::Query(vec!["rpm".into(), "price".into()])),
        ),
        ("valid_req_stats", encode_request(&Request::Stats)),
        ("valid_req_validate", encode_request(&Request::Validate)),
        ("valid_req_shutdown", encode_request(&Request::Shutdown)),
        ("valid_req_ping", encode_request(&Request::Ping(250))),
        ("valid_req_io_counters", encode_request(&Request::IoCounters)),
        (
            "valid_req_insert_batch",
            encode_request(&Request::InsertBatch(vec![
                WireEntity { id: 1, attrs: vec![("a".into(), Value::Int(1))] },
                WireEntity { id: 2, attrs: vec![("b".into(), Value::Bool(true))] },
            ])),
        ),
        (
            "valid_req_query_batch",
            encode_request(&Request::QueryBatch(vec![
                vec!["rpm".into(), "price".into()],
                vec!["name".into()],
            ])),
        ),
        (
            "valid_resp_written",
            encode_response(&Response::Written { segment: 9, split: true }),
        ),
        (
            "valid_resp_rows",
            encode_response(&Response::Rows {
                rows: vec![
                    vec![Some(Value::Int(1)), None],
                    vec![None, Some(Value::Text("x".into()))],
                ],
                stats: QueryStats {
                    entities_scanned: 10,
                    segments_read: 2,
                    segments_pruned: 3,
                    logical_reads: 5,
                    physical_reads: 4,
                },
            }),
        ),
        (
            "valid_resp_stats",
            encode_response(&Response::Stats(EngineStats {
                entities: 1,
                partitions: 2,
                attributes: 3,
                logical_reads: 4,
                physical_reads: 5,
                page_writes: 6,
                evictions: 7,
            })),
        ),
        (
            "valid_resp_validated",
            encode_response(&Response::Validated(vec!["arena: bad slot".into()])),
        ),
        (
            "valid_resp_error",
            encode_response(&Response::Error {
                code: ErrorCode::UnknownAttribute,
                message: "no such attribute".into(),
            }),
        ),
        (
            "valid_resp_batch",
            encode_response(&Response::Batch(vec![
                Response::Written { segment: 3, split: false },
                Response::Busy,
                Response::Error { code: ErrorCode::Engine, message: "duplicate id".into() },
            ])),
        ),
        (
            "valid_resp_io_counters",
            encode_response(&Response::IoCounters(IoCounters {
                net_reads: 1,
                net_writes: 2,
                frames_in: 3,
                frames_out: 4,
                wal_appends: 5,
                wal_syncs: 6,
                wal_groups: 7,
                wal_ops: 8,
            })),
        ),
    ]
}

/// Hand-built malformed shapes worth pinning: each must decode to `Err`.
fn malformed_bodies() -> Vec<(&'static str, Vec<u8>)> {
    let mut truncated = encode_request(&Request::Query(vec!["abc".into()]));
    truncated.truncate(truncated.len() - 2);
    // Only claimed malformed as a *request*: the same bytes happen to spell
    // a valid empty Validated response (tag overlap is fine; the two codecs
    // never share a stream direction).
    let mut trailing = encode_request(&Request::Stats);
    trailing.push(0);
    // Tag says Query, count says 2^40 attributes: must reject, not allocate.
    let mut huge_count = vec![4u8];
    cind_storage::varint::encode(1 << 40, &mut huge_count);
    // A batch response whose single item is itself a batch: the decoder
    // must refuse recursion rather than nest unboundedly.
    let inner_batch = vec![9u8, 0];
    let mut nested_batch = vec![9u8];
    cind_storage::varint::encode(1, &mut nested_batch);
    cind_storage::varint::encode(inner_batch.len() as u64, &mut nested_batch);
    nested_batch.extend_from_slice(&inner_batch);
    // An insert batch that claims 2^40 entities up front.
    let mut huge_batch = vec![10u8];
    cind_storage::varint::encode(1 << 40, &mut huge_batch);
    vec![
        ("bad_req_tag", vec![99u8]),
        ("bad_resp_tag", vec![0xA0u8, 1, 2, 3]),
        ("bad_empty", Vec::new()),
        ("bad_truncated_query", truncated),
        ("bad_req_trailing_byte", trailing),
        ("bad_huge_count", huge_count),
        ("bad_unterminated_varint", vec![0x80u8; 12]),
        ("bad_resp_nested_batch", nested_batch),
        ("bad_req_huge_batch_count", huge_batch),
    ]
}

/// Feed a body to everything that consumes untrusted bytes. Totality =
/// this returns (no panic); callers add per-case expectations on top.
fn exercise(body: &[u8]) -> (bool, bool) {
    let req_ok = decode_request(body).is_ok();
    let resp_ok = decode_response(body).is_ok();
    // The body itself as hostile *framing* input: must return, not panic.
    let _ = split_frame(body);
    let mut wire = Vec::new();
    frame(body, &mut wire);
    let mut r = &wire[..];
    assert_eq!(read_frame(&mut r).expect("framed body"), body);
    let (split_body, used) = split_frame(&wire)
        .expect("valid framing")
        .expect("complete frame");
    assert_eq!((split_body, used), (body, wire.len()));
    // Truncated at every prefix the framing layer must error (read_frame)
    // or report incompleteness (split_frame), never panic or yield bytes.
    let mut cut = &wire[..wire.len() - 1];
    assert!(read_frame(&mut cut).is_err());
    assert!(!matches!(split_frame(&wire[..wire.len() - 1]), Ok(Some(_))));
    (req_ok, resp_ok)
}

#[test]
fn random_bytes_never_panic_the_decoders() {
    let mut rng = StdRng::seed_from_u64(0xF022_5EED_D00D);
    for _ in 0..4_000 {
        let len = rng.gen_range(0..96usize);
        let body: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        exercise(&body);
    }
}

#[test]
fn single_byte_mutations_never_panic_the_decoders() {
    let mut rng = StdRng::seed_from_u64(0x5EED_AB1E);
    for (_, body) in valid_bodies() {
        for pos in 0..body.len() {
            // All 8 single-bit flips plus a few random byte swaps per
            // position: cheap, deterministic, covers tag/length/payload
            // corruption at every offset.
            for bit in 0..8 {
                let mut m = body.clone();
                m[pos] ^= 1 << bit;
                exercise(&m);
            }
            for _ in 0..2 {
                let mut m = body.clone();
                m[pos] = rng.gen_range(0..=255u32) as u8;
                exercise(&m);
            }
        }
    }
}

// ---- committed corpus -------------------------------------------------

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn committed_corpus_decodes_as_labelled() {
    let dir = corpus_dir();
    let entries = std::fs::read_dir(&dir).expect("tests/corpus/ must be committed");
    let mut seen = 0usize;
    for entry in entries {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("bin") {
            continue;
        }
        seen += 1;
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_owned();
        let body = std::fs::read(&path).expect("corpus file readable");
        let (req_ok, resp_ok) = exercise(&body);
        if name.starts_with("valid_req_") {
            assert!(req_ok, "{name}: a committed valid request stopped decoding");
        } else if name.starts_with("valid_resp_") {
            assert!(resp_ok, "{name}: a committed valid response stopped decoding");
        } else if name.starts_with("bad_req_") {
            assert!(!req_ok, "{name}: a committed malformed request started decoding");
        } else if name.starts_with("bad_resp_") {
            assert!(!resp_ok, "{name}: a committed malformed response started decoding");
        } else if name.starts_with("bad_") {
            assert!(
                !req_ok && !resp_ok,
                "{name}: a committed malformed input started decoding"
            );
        }
    }
    let expected = valid_bodies().len() + malformed_bodies().len();
    assert!(
        seen >= expected,
        "corpus has {seen} files, expected at least {expected} — regenerate with \
         `cargo test -p cind-server --test proto_fuzz regen_corpus -- --ignored`"
    );
}

/// Rewrites `tests/corpus/` from the current codec. Run manually after a
/// deliberate (compatible) protocol change; commit the result.
#[test]
#[ignore]
fn regen_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for (name, body) in valid_bodies().into_iter().chain(malformed_bodies()) {
        std::fs::write(dir.join(format!("{name}.bin")), body).expect("write corpus file");
    }
}
