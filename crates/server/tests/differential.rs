//! Differential test: the server path must be semantically identical to
//! in-process engine calls — same entities, same queries, compared on
//! partition count, Definition-1 efficiency, and query result rows — even
//! when the entities arrive over ≥4 concurrent connections in
//! nondeterministic interleavings.
//!
//! TPC-H data makes the comparison order-independent: relations have
//! pairwise disjoint attribute sets, so with a generous capacity Algorithm
//! 1 converges to exactly one partition per relation no matter how the
//! inserts interleave (a disjoint entity always rates `r < 0` against
//! foreign partitions and `r > 0` against its own).

use std::sync::Arc;
use std::time::Duration;

use cind_datagen::{tpch_query_columns, TpchConfig, TpchGenerator};
use cind_model::{AttributeCatalog, Synopsis, Value};
use cind_query::{execute_collect, plan_with, Parallelism, Query};
use cind_server::{Client, Engine, EngineOptions, ServeConfig, Server, ServerError, WireEntity};
use cind_storage::UniversalTable;
use cinderella_core::{efficiency, Capacity, Cinderella, Config};

const CONNECTIONS: usize = 4;

fn partitioner_config() -> Config {
    Config {
        weight: 0.5,
        capacity: Capacity::MaxEntities(10_000),
        ..Config::default()
    }
}

fn tpch_wire_entities() -> Vec<WireEntity> {
    let mut catalog = AttributeCatalog::new();
    let (entities, _) =
        TpchGenerator::new(TpchConfig { scale: 0.002, seed: 3 }).generate(&mut catalog);
    entities
        .iter()
        .map(|e| WireEntity {
            id: e.id().0,
            attrs: e
                .attrs()
                .iter()
                .map(|(a, v)| (catalog.name(*a).expect("interned").to_string(), v.clone()))
                .collect(),
        })
        .collect()
}

/// Rows as an order-independent multiset: rendered and sorted.
fn canonical(rows: &[Vec<Option<Value>>]) -> Vec<String> {
    let mut out: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    out.sort();
    out
}

#[test]
fn server_path_matches_in_process_under_concurrency() {
    // --- in-process reference -----------------------------------------
    let mut table = UniversalTable::new(256);
    let (entities, _) =
        TpchGenerator::new(TpchConfig { scale: 0.002, seed: 3 }).generate(table.catalog_mut());
    let mut cindy = Cinderella::new(partitioner_config());
    for e in entities {
        cindy.insert(&mut table, e).expect("reference insert");
    }

    // --- server path: same entities over 4 concurrent connections ------
    let engine = Arc::new(Engine::in_memory(EngineOptions {
        config: partitioner_config(),
        pool_pages: 256,
        query_threads: 2,
        ..EngineOptions::default()
    }));
    let handle = Server::start(
        Arc::clone(&engine),
        &ServeConfig { workers: 4, queue_depth: 32, ..ServeConfig::default() },
    )
    .expect("server start");
    let addr = format!("127.0.0.1:{}", handle.port());

    let wire = tpch_wire_entities();
    let mut chunks: Vec<Vec<WireEntity>> = (0..CONNECTIONS).map(|_| Vec::new()).collect();
    for (i, e) in wire.into_iter().enumerate() {
        chunks[i % CONNECTIONS].push(e);
    }
    let threads: Vec<_> = chunks
        .into_iter()
        .map(|chunk| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.set_timeout(Some(Duration::from_secs(30))).expect("timeout");
                for e in chunk {
                    loop {
                        match client.insert(e.clone()) {
                            Ok(_) => break,
                            Err(ServerError::Busy) => {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(e) => panic!("insert failed: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("insert connection");
    }

    let mut client = Client::connect(&addr).expect("connect");

    // --- partition count and entity count -------------------------------
    let stats = client.stats().expect("stats");
    assert_eq!(stats.entities as usize, table.entity_count());
    assert_eq!(stats.partitions as usize, cindy.catalog().len());

    // --- query rows over the socket vs. direct execution ----------------
    let queries: Vec<Synopsis> = {
        let state_catalog = table.catalog();
        tpch_query_columns()
            .iter()
            .map(|(_, cols)| {
                Query::from_names(state_catalog, cols.iter().copied())
                    .expect("tpch columns known")
                    .synopsis()
                    .clone()
            })
            .collect()
    };
    for (name, cols) in tpch_query_columns() {
        let q = Query::from_names(table.catalog(), cols.iter().copied()).expect("known");
        let p = plan_with(
            &q,
            cindy.catalog().pruning_view().map(|(s, syn, _)| (s, syn)),
            Parallelism::Sequential,
        );
        let (_, local_rows) = execute_collect(&table, &q, &p).expect("local execute");
        let (remote_rows, rstats) = client.query(cols.iter().copied()).expect("remote query");
        assert_eq!(
            canonical(&remote_rows),
            canonical(&local_rows),
            "{name}: server rows diverge from in-process rows"
        );
        assert_eq!(
            (rstats.segments_read + rstats.segments_pruned) as usize,
            cindy.catalog().len(),
            "{name}: plan covers a different partition universe"
        );
    }

    // --- Definition-1 efficiency ----------------------------------------
    let local_eff = efficiency(&table, &cindy, &queries);
    let remote_eff = {
        let state = handle.engine();
        // The server engine exposes validation and stats over the wire;
        // efficiency needs the catalog, so compute it in-process on the
        // shared engine — same code path as the reference.
        state.with_parts(|t, c| efficiency(t, c, &queries))
    };
    assert!(
        (local_eff - remote_eff).abs() < 1e-12,
        "efficiency diverges: local {local_eff} vs server {remote_eff}"
    );

    // --- structural validation over the wire -----------------------------
    assert!(client.validate().expect("validate").is_empty());

    // --- graceful shutdown drains and validates --------------------------
    client.shutdown().expect("shutdown ack");
    let report = handle.join().expect("graceful join");
    assert!(
        report.violations.is_empty(),
        "post-drain validation found defects: {:?}",
        report.violations
    );
}
