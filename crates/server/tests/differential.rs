//! Differential test: the server path must be semantically identical to
//! in-process engine calls — same entities, same queries, compared on
//! partition count, Definition-1 efficiency, and query result rows — even
//! when the entities arrive over ≥4 concurrent connections in
//! nondeterministic interleavings.
//!
//! TPC-H data makes the comparison order-independent: relations have
//! pairwise disjoint attribute sets, so with a generous capacity Algorithm
//! 1 converges to exactly one partition per relation no matter how the
//! inserts interleave (a disjoint entity always rates `r < 0` against
//! foreign partitions and `r > 0` against its own).

use std::sync::Arc;
use std::time::Duration;

use cind_datagen::{tpch_query_columns, TpchConfig, TpchGenerator};
use cind_model::{AttributeCatalog, Entity, Synopsis, Value};
use cind_query::{execute_collect, plan_with, Parallelism, Query};
use cind_server::{
    Client, EngineOptions, ServeConfig, Server, ServerError, ShardedEngine, ShardedOptions,
    WireEntity,
};
use cind_storage::UniversalTable;
use cinderella_core::{efficiency, efficiency_counters_for, Capacity, Cinderella, Config};

const CONNECTIONS: usize = 4;

fn partitioner_config() -> Config {
    Config {
        weight: 0.5,
        capacity: Capacity::MaxEntities(10_000),
        ..Config::default()
    }
}

fn tpch_wire_entities() -> Vec<WireEntity> {
    let mut catalog = AttributeCatalog::new();
    let (entities, _) =
        TpchGenerator::new(TpchConfig { scale: 0.002, seed: 3 }).generate(&mut catalog);
    entities
        .iter()
        .map(|e| WireEntity {
            id: e.id().0,
            attrs: e
                .attrs()
                .iter()
                .map(|(a, v)| (catalog.name(*a).expect("interned").to_string(), v.clone()))
                .collect(),
        })
        .collect()
}

/// Rows as an order-independent multiset: rendered and sorted.
fn canonical(rows: &[Vec<Option<Value>>]) -> Vec<String> {
    let mut out: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    out.sort();
    out
}

#[test]
fn server_path_matches_in_process_under_concurrency() {
    // --- in-process reference -----------------------------------------
    let mut table = UniversalTable::new(256);
    let (entities, _) =
        TpchGenerator::new(TpchConfig { scale: 0.002, seed: 3 }).generate(table.catalog_mut());
    let mut cindy = Cinderella::new(partitioner_config());
    for e in entities {
        cindy.insert(&mut table, e).expect("reference insert");
    }

    // --- server path: same entities over 4 concurrent connections ------
    let engine = Arc::new(ShardedEngine::in_memory(ShardedOptions::new(
        EngineOptions {
            config: partitioner_config(),
            pool_pages: 256,
            query_threads: 2,
            ..EngineOptions::default()
        },
        1,
    )));
    let handle = Server::start(
        Arc::clone(&engine),
        &ServeConfig { workers: 4, queue_depth: 32, ..ServeConfig::default() },
    )
    .expect("server start");
    let addr = format!("127.0.0.1:{}", handle.port());

    let wire = tpch_wire_entities();
    let mut chunks: Vec<Vec<WireEntity>> = (0..CONNECTIONS).map(|_| Vec::new()).collect();
    for (i, e) in wire.into_iter().enumerate() {
        chunks[i % CONNECTIONS].push(e);
    }
    let threads: Vec<_> = chunks
        .into_iter()
        .map(|chunk| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.set_timeout(Some(Duration::from_secs(30))).expect("timeout");
                for e in chunk {
                    loop {
                        match client.insert(e.clone()) {
                            Ok(_) => break,
                            Err(ServerError::Busy) => {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(e) => panic!("insert failed: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("insert connection");
    }

    let mut client = Client::connect(&addr).expect("connect");

    // --- partition count and entity count -------------------------------
    let stats = client.stats().expect("stats");
    assert_eq!(stats.entities as usize, table.entity_count());
    assert_eq!(stats.partitions as usize, cindy.catalog().len());

    // --- query rows over the socket vs. direct execution ----------------
    let queries: Vec<Synopsis> = {
        let state_catalog = table.catalog();
        tpch_query_columns()
            .iter()
            .map(|(_, cols)| {
                Query::from_names(state_catalog, cols.iter().copied())
                    .expect("tpch columns known")
                    .synopsis()
                    .clone()
            })
            .collect()
    };
    for (name, cols) in tpch_query_columns() {
        let q = Query::from_names(table.catalog(), cols.iter().copied()).expect("known");
        let p = plan_with(
            &q,
            cindy.catalog().pruning_view().map(|(s, syn, _)| (s, syn)),
            Parallelism::Sequential,
        );
        let (_, local_rows) = execute_collect(&table, &q, &p).expect("local execute");
        let (remote_rows, rstats) = client.query(cols.iter().copied()).expect("remote query");
        assert_eq!(
            canonical(&remote_rows),
            canonical(&local_rows),
            "{name}: server rows diverge from in-process rows"
        );
        assert_eq!(
            (rstats.segments_read + rstats.segments_pruned) as usize,
            cindy.catalog().len(),
            "{name}: plan covers a different partition universe"
        );
    }

    // --- Definition-1 efficiency ----------------------------------------
    let local_eff = efficiency(&table, &cindy, &queries);
    let remote_eff = {
        // The server engine exposes validation and stats over the wire;
        // efficiency needs the catalog, so compute it in-process on the
        // shared engine — same code path as the reference.
        let shard = handle.engine().shard_engine(0);
        shard.with_parts(|t, c| efficiency(t, c, &queries))
    };
    assert!(
        (local_eff - remote_eff).abs() < 1e-12,
        "efficiency diverges: local {local_eff} vs server {remote_eff}"
    );

    // --- structural validation over the wire -----------------------------
    assert!(client.validate().expect("validate").is_empty());

    // --- graceful shutdown drains and validates --------------------------
    client.shutdown().expect("shutdown ack");
    let report = handle.join().expect("graceful join");
    assert!(
        report.violations.is_empty(),
        "post-drain validation found defects: {:?}",
        report.violations
    );
}

// ---------------------------------------------------------------------------
// Sharded vs. unsharded differential: for N ∈ {1, 2, 8}, a sharded engine
// fed the same entities must return exactly the same query rows as the
// unsharded in-process reference, pass per-shard structural validation,
// and land its *global* Definition-1 efficiency (summed counters across
// shards, divided once) inside a stated band of the N=1 engine.
//
// Why partition quality may differ across N: hash-routing slices each
// latent entity group across all shards, so every shard partitions a
// 1/N-sized sample of the same population with the same capacity B. The
// split points Algorithm 1 picks depend on arrival order and local
// density, so the *partition boundaries* (and hence the pages a query
// touches) differ — but on data with clean group structure each shard
// rediscovers the same shapes, so efficiency stays close. On TPC-H the
// relations are pairwise disjoint and capacity is generous: every shard
// converges to exactly one partition per relation, and the efficiency
// counters are *identical* (band 0). On DBpedia-like irregular data the
// boundaries genuinely shift with the sample, so we assert a small
// absolute band instead.
// ---------------------------------------------------------------------------

/// Unsharded in-process reference: insert everything, keep table+cindy.
fn reference_for(entities: Vec<Entity>, catalog: AttributeCatalog, config: Config)
    -> (UniversalTable, Cinderella) {
    let mut table = UniversalTable::new(512);
    *table.catalog_mut() = catalog;
    let mut cindy = Cinderella::new(config);
    for e in entities {
        cindy.insert(&mut table, e).expect("reference insert");
    }
    (table, cindy)
}

/// Wire-format clone of `entities` (names, not ids — engines intern
/// independently, which is exactly what sharding does in production).
fn to_wire(entities: &[Entity], catalog: &AttributeCatalog) -> Vec<WireEntity> {
    entities
        .iter()
        .map(|e| WireEntity {
            id: e.id().0,
            attrs: e
                .attrs()
                .iter()
                .map(|(a, v)| (catalog.name(*a).expect("interned").to_string(), v.clone()))
                .collect(),
        })
        .collect()
}

/// Global Definition-1 efficiency of a sharded engine: per-shard
/// `(relevant, read)` counters summed, divided once. Query synopses are
/// rebuilt per shard from names because each shard interns its own ids.
fn sharded_efficiency(eng: &ShardedEngine, query_names: &[Vec<String>]) -> f64 {
    let (mut relevant, mut read) = (0u64, 0u64);
    for i in 0..eng.shard_count() {
        let shard = eng.shard_engine(i);
        let (r, d) = shard.with_parts(|t, c| {
            let universe = t.universe();
            let queries: Vec<Synopsis> = query_names
                .iter()
                .map(|names| {
                    Synopsis::from_attrs(
                        universe,
                        names.iter().filter_map(|n| t.catalog().lookup(n)),
                    )
                })
                .collect();
            efficiency_counters_for(t, c, &queries)
        });
        relevant += r;
        read += d;
    }
    if read == 0 { 1.0 } else { relevant as f64 / read as f64 }
}

/// Runs the differential for one dataset: rows must match the reference
/// exactly at every N; efficiency at N ∈ {2, 8} must sit within
/// `efficiency_band` (absolute) of N=1.
fn assert_sharded_matches_reference(
    dataset: &str,
    entities: Vec<Entity>,
    catalog: AttributeCatalog,
    config: Config,
    query_sets: &[Vec<String>],
    efficiency_band: f64,
) {
    let wire = to_wire(&entities, &catalog);
    let (table, cindy) = reference_for(entities, catalog, config.clone());

    // Reference rows per query set.
    let reference_rows: Vec<Vec<String>> = query_sets
        .iter()
        .map(|names| {
            let q = Query::from_names(table.catalog(), names.iter().map(String::as_str))
                .expect("reference knows all queried attributes");
            let p = plan_with(
                &q,
                cindy.catalog().pruning_view().map(|(s, syn, _)| (s, syn)),
                Parallelism::Sequential,
            );
            let (_, rows) = execute_collect(&table, &q, &p).expect("reference execute");
            canonical(&rows)
        })
        .collect();

    let mut eff_at_one = None;
    for shards in [1usize, 2, 8] {
        let eng = ShardedEngine::in_memory(ShardedOptions::new(
            EngineOptions { config: config.clone(), pool_pages: 512, ..EngineOptions::default() },
            shards,
        ));
        for e in &wire {
            eng.insert(e).expect("sharded insert");
        }
        assert_eq!(
            eng.stats().entities as usize,
            table.entity_count(),
            "{dataset} N={shards}: entity count diverges"
        );
        for (names, want) in query_sets.iter().zip(&reference_rows) {
            let (rows, _) = eng.query(names).expect("sharded query");
            assert_eq!(
                &canonical(&rows),
                want,
                "{dataset} N={shards}: rows diverge for {names:?}"
            );
        }
        let violations = eng.validate().expect("sharded validate");
        assert!(
            violations.is_empty(),
            "{dataset} N={shards}: per-shard validation failed: {violations:?}"
        );
        let eff = sharded_efficiency(&eng, query_sets);
        let anchor = *eff_at_one.get_or_insert(eff);
        assert!(
            (eff - anchor).abs() <= efficiency_band,
            "{dataset} N={shards}: efficiency {eff:.4} outside band {efficiency_band} \
             of N=1 efficiency {anchor:.4}"
        );
    }
}

#[test]
fn sharded_matches_unsharded_on_tpch() {
    let mut catalog = AttributeCatalog::new();
    let entities = {
        let (e, _) =
            TpchGenerator::new(TpchConfig { scale: 0.002, seed: 3 }).generate(&mut catalog);
        e
    };
    let query_sets: Vec<Vec<String>> = tpch_query_columns()
        .iter()
        .map(|(_, cols)| cols.iter().map(|c| (*c).to_string()).collect())
        .collect();
    // Disjoint relations + generous capacity: every shard rediscovers one
    // partition per relation, so the efficiency counters agree exactly.
    assert_sharded_matches_reference(
        "tpch",
        entities,
        catalog,
        partitioner_config(),
        &query_sets,
        1e-12,
    );
}

#[test]
fn sharded_matches_unsharded_on_dbpedia() {
    use cind_datagen::{DbpediaConfig, DbpediaGenerator};
    let mut catalog = AttributeCatalog::new();
    let entities = DbpediaGenerator::new(DbpediaConfig {
        entities: 3_000,
        attributes: 60,
        groups: 8,
        ..DbpediaConfig::default()
    })
    .generate(&mut catalog);
    // A person-ish workload: identity lookups, career queries, tail scans.
    let query_sets: Vec<Vec<String>> = [
        vec!["name", "birthDate"],
        vec!["occupation", "nationality"],
        vec!["team", "position", "club"],
        vec!["party", "office"],
        vec!["genre", "instrument"],
        vec!["award", "knownFor"],
        vec!["attr40", "attr41", "attr42"],
    ]
    .iter()
    .map(|set| set.iter().map(|s| (*s).to_string()).collect())
    .collect();
    let config = Config {
        weight: 0.2,
        capacity: Capacity::MaxEntities(400),
        ..Config::default()
    };
    // Irregular data: split boundaries shift with each shard's 1/N sample,
    // so partition quality differs slightly across N — the band states how
    // much drift hash-partitioning is allowed to cost.
    assert_sharded_matches_reference("dbpedia", entities, catalog, config, &query_sets, 0.05);
}
