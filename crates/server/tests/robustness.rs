//! Protocol robustness and admission control: malformed frames come back
//! as typed errors (never a panic or a hang), overload produces bounded
//! `Busy` sheds, and graceful shutdown drains in-flight work.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cind_model::Value;
use cind_server::protocol::MAX_FRAME;
use cind_server::{
    Client, EngineOptions, ErrorCode, Response, ServeConfig, Server, ServerError,
    ShardedEngine, ShardedOptions, WireEntity,
};
use cind_storage::varint;

fn start_server(cfg: &ServeConfig) -> (cind_server::ServerHandle, String) {
    let engine = Arc::new(ShardedEngine::in_memory(ShardedOptions::new(
        EngineOptions::default(),
        cfg.effective_shards(),
    )));
    let handle = Server::start(engine, cfg).expect("server start");
    let addr = format!("127.0.0.1:{}", handle.port());
    (handle, addr)
}

fn wire(id: u64, name: &str, v: i64) -> WireEntity {
    WireEntity { id, attrs: vec![(name.to_string(), Value::Int(v))] }
}

#[test]
fn malformed_body_gets_typed_error_and_connection_survives() {
    let (handle, addr) = start_server(&ServeConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    client.set_timeout(Some(Duration::from_secs(5))).expect("timeout");

    // Unknown tag, garbage payload, empty body: all typed Malformed.
    for body in [&[99u8, 1, 2, 3][..], &[0xAB, 0xCD][..], &[][..]] {
        let resp = client.send_raw(body).expect("error frame expected");
        assert!(
            matches!(resp, Response::Error { code: ErrorCode::Malformed, .. }),
            "body {body:?} should be rejected as malformed, got {resp:?}"
        );
    }
    // A truncated-but-valid-tag body too (Insert with no entity).
    let resp = client.send_raw(&[1]).expect("error frame expected");
    assert!(matches!(resp, Response::Error { code: ErrorCode::Malformed, .. }));

    // The same connection still serves real requests afterwards.
    client.ping(0).expect("connection must survive malformed bodies");
    client.insert(wire(1, "rpm", 7200)).expect("insert after garbage");

    handle.shutdown();
    let report = handle.join().expect("join");
    assert!(report.violations.is_empty());
}

#[test]
fn oversize_frame_is_rejected_then_connection_closed() {
    let (handle, addr) = start_server(&ServeConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    client.set_timeout(Some(Duration::from_secs(5))).expect("timeout");

    let mut prefix = Vec::new();
    varint::encode(MAX_FRAME + 1, &mut prefix);
    client.send_bytes(&prefix).expect("send oversize length");
    let resp = client.read_response().expect("typed error before close");
    assert!(matches!(resp, Response::Error { code: ErrorCode::Malformed, .. }));

    // The server closed this stream; a fresh connection works fine.
    let mut fresh = Client::connect(&addr).expect("reconnect");
    fresh.ping(0).expect("server must stay up");

    handle.shutdown();
    handle.join().expect("join");
}

#[test]
fn short_read_and_abrupt_close_never_take_the_server_down() {
    let (handle, addr) = start_server(&ServeConfig::default());

    // Half a frame, then drop the socket mid-body.
    {
        let mut client = Client::connect(&addr).expect("connect");
        let mut partial = Vec::new();
        varint::encode(100, &mut partial); // promise 100 bytes …
        partial.extend_from_slice(&[7u8; 10]); // … deliver 10
        client.send_bytes(&partial).expect("send partial");
    } // drop = RST/FIN mid-frame

    // An unterminated varint length (10 continuation bytes).
    {
        let mut client = Client::connect(&addr).expect("connect");
        client.send_bytes(&[0x80u8; 11]).expect("send bad varint");
    }

    let mut fresh = Client::connect(&addr).expect("reconnect");
    fresh.set_timeout(Some(Duration::from_secs(5))).expect("timeout");
    fresh.ping(0).expect("server survived short reads");

    handle.shutdown();
    handle.join().expect("join");
}

/// Overload behaviour is bounded: with one worker pinned and the depth-1
/// queue full, the next request is answered `Busy` within the client
/// timeout rather than queueing indefinitely — and once load drops the
/// same server serves normally again.
#[test]
fn overload_sheds_with_busy_and_recovers() {
    let (handle, addr) = start_server(&ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });

    // Pin the single worker with a slow ping on its own connection.
    let pin = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect pin");
            c.ping(600).expect("slow ping")
        })
    };
    std::thread::sleep(Duration::from_millis(150)); // worker is now busy

    // Fill the depth-1 queue with a second slow ping.
    let queued = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect queued");
            c.ping(0).expect("queued ping")
        })
    };
    std::thread::sleep(Duration::from_millis(150)); // it is now queued

    // The queue is saturated: this request must be shed, fast.
    let mut c = Client::connect(&addr).expect("connect shed");
    c.set_timeout(Some(Duration::from_secs(2))).expect("timeout");
    let t0 = Instant::now();
    match c.ping(0) {
        Err(ServerError::Busy) => {}
        other => panic!("expected Busy under saturation, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_millis(500),
        "Busy took {:?} — load shedding must answer immediately",
        t0.elapsed()
    );

    pin.join().expect("pinned ping completes");
    queued.join().expect("queued ping completes");

    // Load dropped: the very same server answers normally again.
    c.ping(0).expect("responsive after overload");
    c.insert(wire(1, "rpm", 7200)).expect("writes accepted again");

    handle.shutdown();
    let report = handle.join().expect("join");
    assert!(report.violations.is_empty());
}

/// Graceful shutdown: requests already queued are drained (answered, and
/// durably applied) before the final validate, and late requests get a
/// typed `ShuttingDown` error rather than silence.
#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let (handle, addr) = start_server(&ServeConfig {
        workers: 2,
        queue_depth: 32,
        ..ServeConfig::default()
    });

    let mut client = Client::connect(&addr).expect("connect");
    client.set_timeout(Some(Duration::from_secs(10))).expect("timeout");
    for i in 0..50 {
        client.insert(wire(i, if i % 2 == 0 { "rpm" } else { "mp" }, i as i64)).expect("insert");
    }
    client.shutdown().expect("shutdown ack");

    let report = handle.join().expect("graceful join");
    assert!(report.violations.is_empty(), "{:?}", report.violations);

    // A request after shutdown must fail loudly, not hang: either the
    // connection is refused or a typed ShuttingDown error comes back.
    match Client::connect(&addr) {
        Err(_) => {}
        Ok(mut late) => {
            late.set_timeout(Some(Duration::from_secs(2))).expect("timeout");
            match late.ping(0) {
                Err(_) => {}
                Ok(()) => panic!("server accepted work after graceful shutdown"),
            }
        }
    }
}
