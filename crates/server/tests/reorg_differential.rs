//! Reorg differential: with `--reorg off` the reorganizer must be
//! bytes-invisible. The same single-threaded workload (inserts, queries,
//! deletes, a checkpoint, then more inserts so the WAL tail is live) is
//! driven into stores configured with *different* reorg knobs but
//! `mode: off`, and every durable byte — shard WALs, checkpoint
//! snapshots, the manifest — must be identical across them, and across a
//! plain rerun of the same configuration (run-to-run determinism).
//!
//! A fourth store runs the identical workload with `--reorg auto` to
//! prove the knob has teeth: the driver actually steps there, so the
//! byte-equality above is not vacuous.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use cind_datagen::{DbpediaConfig, DbpediaGenerator, TpchConfig, TpchGenerator};
use cind_model::{AttributeCatalog, Entity};
use cind_server::{EngineOptions, ShardedEngine, ShardedOptions, WireEntity};
use cinderella_core::{Capacity, Config, ReorgConfig, ReorgMode};

const SHARDS: usize = 2;

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cind-reorg-diff-{tag}-{}-{n}", std::process::id()))
}

fn options(reorg: ReorgConfig) -> ShardedOptions {
    ShardedOptions::new(
        EngineOptions {
            config: Config {
                capacity: Capacity::MaxEntities(200),
                reorg,
                ..Config::default()
            },
            pool_pages: 256,
            query_threads: 1,
            ..EngineOptions::default()
        },
        SHARDS,
    )
}

fn to_wire(entities: &[Entity], catalog: &AttributeCatalog) -> Vec<WireEntity> {
    entities
        .iter()
        .map(|e| WireEntity {
            id: e.id().0,
            attrs: e
                .attrs()
                .iter()
                .map(|(a, v)| (catalog.name(*a).expect("interned").to_string(), v.clone()))
                .collect(),
        })
        .collect()
}

fn tpch_workload() -> (Vec<WireEntity>, Vec<Vec<String>>) {
    let mut catalog = AttributeCatalog::new();
    let (entities, _) =
        TpchGenerator::new(TpchConfig { scale: 0.002, seed: 3 }).generate(&mut catalog);
    let wire = to_wire(&entities, &catalog);
    let queries = cind_datagen::tpch_query_columns()
        .iter()
        .take(8)
        .map(|(_, cols)| cols.iter().map(|c| (*c).to_string()).collect())
        .collect();
    (wire, queries)
}

fn dbpedia_workload() -> (Vec<WireEntity>, Vec<Vec<String>>) {
    let mut catalog = AttributeCatalog::new();
    let entities = DbpediaGenerator::new(DbpediaConfig {
        entities: 1_200,
        attributes: 60,
        groups: 8,
        ..DbpediaConfig::default()
    })
    .generate(&mut catalog);
    let wire = to_wire(&entities, &catalog);
    let queries = [
        vec!["name", "birthDate"],
        vec!["occupation", "nationality"],
        vec!["team", "position"],
        vec!["party", "office"],
    ]
    .iter()
    .map(|set| set.iter().map(|s| (*s).to_string()).collect())
    .collect();
    (wire, queries)
}

/// Drives the deterministic workload into a store at `dir` and returns
/// the total reorg steps its shards took. Queries don't write the WAL;
/// they are in the stream because with `--reorg auto` they feed heat —
/// the off-runs must prove that recording path leaves no durable trace.
fn drive(
    dir: &Path,
    reorg: ReorgConfig,
    wire: &[WireEntity],
    queries: &[Vec<String>],
) -> u64 {
    let eng = ShardedEngine::open(dir, options(reorg)).expect("open store");
    let keep = wire.len() * 3 / 4;
    for e in &wire[..keep] {
        eng.insert(e).expect("insert");
    }
    for names in queries {
        eng.query(names).expect("query");
    }
    // Delete a deterministic slice of what was inserted.
    for e in wire[..keep].iter().step_by(9) {
        eng.delete(e.id).expect("delete");
    }
    for names in queries {
        eng.query(names).expect("query");
    }
    eng.checkpoint().expect("checkpoint");
    // Post-checkpoint inserts keep the WAL tail non-empty at close, so
    // the byte comparison covers live log bytes, not just snapshots.
    for e in &wire[keep..] {
        eng.insert(e).expect("insert");
    }
    eng.flush_wal().expect("flush");
    let steps = eng.reorg_stats().steps;
    assert!(eng.validate().expect("validate").is_empty());
    steps
}

/// Every regular file under `dir`, keyed by its path relative to `dir`.
fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, std::fs::read(&path).expect("read file"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

fn assert_differential(dataset: &str, wire: &[WireEntity], queries: &[Vec<String>]) {
    let off = ReorgConfig::default();
    debug_assert_eq!(off.mode, ReorgMode::Off);
    // Same mode, wildly different knobs — none may reach any byte.
    let off_variants = [
        ("defaults", off),
        ("rerun", off),
        (
            "knobs-a",
            ReorgConfig { mode: ReorgMode::Off, budget: 1, threshold: 0.9, epoch_ops: 2 },
        ),
        (
            "knobs-b",
            ReorgConfig {
                mode: ReorgMode::Off,
                budget: 10_000,
                threshold: 0.0,
                epoch_ops: 1_000_000,
            },
        ),
    ];

    let mut reference: Option<BTreeMap<String, Vec<u8>>> = None;
    for (tag, cfg) in off_variants {
        let dir = fresh_dir(&format!("{dataset}-{tag}"));
        let steps = drive(&dir, cfg, wire, queries);
        assert_eq!(steps, 0, "{dataset}/{tag}: an off-mode driver must never step");
        let bytes = dir_bytes(&dir);
        std::fs::remove_dir_all(&dir).ok();
        match &reference {
            None => reference = Some(bytes),
            Some(want) => {
                assert_eq!(
                    want.keys().collect::<Vec<_>>(),
                    bytes.keys().collect::<Vec<_>>(),
                    "{dataset}/{tag}: file sets diverge"
                );
                for (name, want_bytes) in want {
                    assert_eq!(
                        want_bytes,
                        &bytes[name],
                        "{dataset}/{tag}: {name} bytes diverge with reorg off"
                    );
                }
            }
        }
    }

    // Teeth: the identical workload under `auto` with an eager cadence
    // actually drives steps — the equality above compared live paths.
    let auto_dir = fresh_dir(&format!("{dataset}-auto"));
    let steps = drive(
        &auto_dir,
        ReorgConfig { mode: ReorgMode::Auto, budget: 64, threshold: 0.02, epoch_ops: 8 },
        wire,
        queries,
    );
    std::fs::remove_dir_all(&auto_dir).ok();
    assert!(steps > 0, "{dataset}: the auto driver never stepped — the off/auto knob is dead");
}

#[test]
fn reorg_off_is_byte_identical_on_tpch() {
    let (wire, queries) = tpch_workload();
    assert_differential("tpch", &wire, &queries);
}

#[test]
fn reorg_off_is_byte_identical_on_dbpedia() {
    let (wire, queries) = dbpedia_workload();
    assert_differential("dbpedia", &wire, &queries);
}
