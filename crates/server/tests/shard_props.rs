//! Property tests for the sharding layer (ISSUE 6, satellite 3).
//!
//! Three invariants the rest of the stack leans on, checked over
//! generated inputs rather than hand-picked examples:
//!
//! * **Routing is pure.** `ShardRouter` is a function of `(shard count,
//!   id)` alone — two independently constructed routers always agree, and
//!   the result is always in range. Everything else (durable placement,
//!   fan-out merging, per-shard crash domains) assumes this.
//! * **Assignment is stable under reopen.** The manifest pins the shard
//!   count, so reopening a store — even while *requesting* a different
//!   count — must land every entity on exactly the shard it lived on
//!   before, with no strays on any other shard.
//! * **No cross-shard leakage.** Each shard holds precisely the ids that
//!   hash-route to it: membership on shard `s` ⇔ `route(id) == s`, and
//!   per-shard counts sum to the global count.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use cind_model::{EntityId, Value};
use cind_server::{EngineOptions, ShardRouter, ShardedEngine, ShardedOptions, WireEntity};
use proptest::prelude::*;

/// Distinct store directory per proptest case (cases run sequentially but
/// test binaries run in parallel, so the pid is part of the name).
fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cind-shard-props-{tag}-{}-{n}", std::process::id()))
}

fn options(shards: usize) -> ShardedOptions {
    ShardedOptions::new(
        EngineOptions { pool_pages: 64, query_threads: 1, ..EngineOptions::default() },
        shards,
    )
}

/// Deterministic payload so every property can re-derive what an entity
/// should contain from its id alone.
fn wire(id: u64) -> WireEntity {
    let attrs = vec![
        (format!("g{}_a", id % 5), Value::Int(id as i64)),
        (format!("g{}_b", id % 5), Value::Text(format!("v{id}"))),
    ];
    WireEntity { id, attrs }
}

fn holds(engine: &ShardedEngine, shard: usize, id: u64) -> bool {
    engine.shard_engine(shard).with_parts(|table, _| table.get(EntityId(id)).is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Two routers built from the same shard count agree on every id, and
    /// the route is always in `0..shards`.
    #[test]
    fn router_is_pure_and_bounded(
        shards in 1usize..=8,
        ids in prop::collection::vec(0u64..u64::MAX, 1..64),
    ) {
        let a = ShardRouter::new(shards);
        let b = ShardRouter::new(shards);
        for id in ids {
            let s = a.route(id);
            prop_assert!(s < shards, "route {s} out of range for {shards} shards");
            prop_assert_eq!(s, b.route(id), "routers disagree on id {}", id);
        }
    }

    /// In-memory engine: after a batch of inserts, each shard holds
    /// exactly the ids routed to it and nothing else, and the per-shard
    /// counts sum to the global entity count.
    #[test]
    fn no_cross_shard_leakage(
        shards in 1usize..=8,
        ids in prop::collection::vec(1u64..100_000, 1..80),
    ) {
        let engine = ShardedEngine::in_memory(options(shards));
        let mut model: BTreeMap<u64, usize> = BTreeMap::new();
        for id in ids {
            if model.contains_key(&id) {
                continue; // duplicate inserts are a different (tested) path
            }
            engine.insert(&wire(id)).expect("insert");
            model.insert(id, engine.shard_of(id));
        }
        let mut per_shard_total = 0usize;
        for s in 0..shards {
            let count = engine.shard_engine(s).with_parts(|table, _| table.entity_count());
            let routed = model.values().filter(|&&home| home == s).count();
            prop_assert_eq!(count, routed, "shard {} count != routed ids", s);
            per_shard_total += count;
        }
        prop_assert_eq!(per_shard_total as u64, engine.stats().entities);
        for (&id, &home) in &model {
            for s in 0..shards {
                prop_assert_eq!(
                    holds(&engine, s, id),
                    s == home,
                    "id {} on shard {} (home {})", id, s, home
                );
            }
        }
    }

    /// Durable engine: reopening — even requesting a *different* shard
    /// count — keeps the manifest's count, every id stays on the shard it
    /// was assigned at first open, and no shard grows a stray copy.
    #[test]
    fn shard_assignment_stable_under_reopen(
        shards in 1usize..=6,
        requested_later in 1usize..=6,
        checkpoint_first in any::<bool>(),
        ids in prop::collection::vec(1u64..100_000, 1..48),
    ) {
        let dir = fresh_dir("reopen");
        let mut model: BTreeMap<u64, usize> = BTreeMap::new();
        {
            let engine = ShardedEngine::open(&dir, options(shards)).expect("first open");
            for &id in &ids {
                if model.contains_key(&id) {
                    continue;
                }
                engine.insert(&wire(id)).expect("insert");
                model.insert(id, engine.shard_of(id));
            }
            if checkpoint_first {
                engine.checkpoint().expect("checkpoint");
            } // else: entities persist via per-shard WALs alone
        }

        let engine = ShardedEngine::open(&dir, options(requested_later)).expect("reopen");
        prop_assert_eq!(
            engine.shard_count(), shards,
            "manifest must pin the shard count regardless of the requested value"
        );
        prop_assert_eq!(engine.stats().entities, model.len() as u64);
        for (&id, &home) in &model {
            prop_assert_eq!(engine.shard_of(id), home, "routing moved for id {}", id);
            for s in 0..shards {
                prop_assert_eq!(
                    holds(&engine, s, id),
                    s == home,
                    "after reopen: id {} on shard {} (home {})", id, s, home
                );
            }
        }
        prop_assert!(engine.validate().expect("validate").is_empty());
        drop(engine);
        std::fs::remove_dir_all(&dir).ok();
    }
}
