//! The TCP serving loop: accept thread, pipelined per-connection readers,
//! a fixed worker pool with connection affinity, and the shutdown
//! machinery.
//!
//! # Threading model
//!
//! ```text
//! accept thread ──spawns──▶ reader thread (one per connection)
//!                               │ one read() → drain *all* complete frames
//!                               │ admit → per-connection job queue
//!                               │        │ full globally → answer Busy
//!                               ▼        ▼
//!                    ready queue (connections with pending jobs)
//!                               │
//!                   worker pool (cfg.workers threads)
//!                               │ claims a connection, drains its batch,
//!                               │ engine.handle(req) per job
//!                               ▼
//!                 seq-ordered response writer (one write() per batch)
//! ```
//!
//! **Pipelining.** A client may send any number of frames without waiting;
//! the reader performs buffered multi-frame decode — every complete frame
//! in one socket `read` is decoded and enqueued before the next syscall —
//! so one syscall round-trip carries many requests. Each frame gets a
//! per-connection sequence number at decode time, and *every* response
//! (real result, `Busy` shed, malformed-body error, shutting-down error)
//! flows through the connection's sequencer, which releases responses in
//! frame order and writes consecutive ready responses with a single
//! `write` call. Clients therefore always receive responses in request
//! order, pipelined or not.
//!
//! **Connection affinity.** The shared queue holds *connections with
//! pending jobs*, not individual jobs: a worker claims a connection,
//! drains its whole backlog as one batch, answers the batch with one
//! buffered write, and returns the connection to the pool only when its
//! queue is empty. Jobs from one connection never execute concurrently or
//! out of order, which is what makes per-connection response sequencing
//! sound; different connections spread across the pool as before. The
//! *global* job count is still bounded by `queue_depth` — a request
//! arriving while that many are queued is answered [`Response::Busy`]
//! immediately (admission control unchanged from the unpipelined server).
//!
//! # Shutdown
//!
//! *Graceful* ([`ServerHandle::shutdown`] or a wire [`Request::Shutdown`]):
//! stop accepting, refuse new requests (typed `ShuttingDown` error), let
//! the workers drain everything already queued, then flush the WAL through
//! the group-commit coordinators, write a checkpoint snapshot, and run the
//! full structural validation — the report is returned from
//! [`ServerHandle::join`]. A wire `Shutdown` is acked *in sequence*: the
//! ack never overtakes responses to requests the same connection sent
//! before it.
//!
//! *Hard kill* ([`ServerHandle::hard_kill`]): stop everything as fast as
//! possible and skip the flush/checkpoint/validate entirely. This is the
//! crash lever for recovery tests — whatever reached the WAL survives,
//! everything else is lost, exactly like `SIGKILL`.
//!
//! No socket or file is ever flushed/synced here — durability belongs to
//! the commit coordinator alone (audit rule CIND-A007).

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::protocol::{
    decode_request, encode_response, frame, split_frame, ErrorCode, Request, Response,
};
use crate::sharded::ShardedEngine;
use crate::{ServeConfig, ServerError};

/// How often idle workers re-check the drain/kill flags.
const WORKER_POLL: Duration = Duration::from_millis(25);

/// Reader buffer growth per socket `read` call.
const READ_CHUNK: usize = 64 * 1024;

/// What graceful shutdown found after the drain.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Rendered invariant violations from the post-drain validation
    /// (empty = the store shut down structurally clean).
    pub violations: Vec<String>,
}

/// Network-side syscall/frame counters (relaxed; observability only).
#[derive(Default)]
struct NetCounters {
    reads: AtomicU64,
    writes: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
}

/// Flags shared by every thread of one server instance.
struct Shared {
    /// Set first on any shutdown path: the accept loop exits and readers
    /// refuse new requests.
    closing: AtomicBool,
    /// Set only on [`ServerHandle::hard_kill`]: workers abandon queued
    /// jobs instead of draining them.
    killed: AtomicBool,
    /// Signalled when shutdown is requested (by the handle or by a wire
    /// `Shutdown` request); [`ServerHandle::join`] waits on it.
    requested: Mutex<bool>,
    cond: Condvar,
    /// Jobs currently queued across all connections; the admission gate.
    queued: AtomicUsize,
    /// The admission bound ([`ServeConfig::queue_depth`]).
    depth: usize,
    net: NetCounters,
}

impl Shared {
    fn closing(&self) -> bool {
        self.closing.load(Ordering::SeqCst)
    }

    fn killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    fn request_shutdown(&self) {
        self.closing.store(true, Ordering::SeqCst);
        let mut g = self.requested.lock().unwrap_or_else(PoisonError::into_inner);
        *g = true;
        self.cond.notify_all();
    }

    fn wait_requested(&self) {
        let mut g = self.requested.lock().unwrap_or_else(PoisonError::into_inner);
        while !*g {
            g = self
                .cond
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Admission control: reserve one queue slot, or refuse (`Busy`).
    fn try_admit(&self) -> bool {
        let prev = self.queued.fetch_add(1, Ordering::SeqCst);
        if prev >= self.depth {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        true
    }
}

/// The sequencer half of one connection: responses keyed by the sequence
/// number their request frame was assigned, released strictly in order.
/// The socket itself lives outside this mutex ([`Conn::stream`]) so the
/// actual `write` syscall never runs under the sequencer lock.
struct OutState {
    /// The next sequence number the client is owed.
    next_seq: u64,
    /// Completed-but-not-yet-writable responses (framed bytes).
    pending: BTreeMap<u64, Vec<u8>>,
    /// Whether some thread currently owns the stream for writing. Set and
    /// cleared under the lock: at most one writer at a time, so released
    /// batches hit the socket in sequence order even when the reader
    /// thread (Busy/Malformed/Shutdown answers) races a draining worker.
    writing: bool,
}

/// The per-connection job queue plus its scheduling state.
struct ConnQueue {
    jobs: VecDeque<(u64, Request)>,
    /// Whether a ready-queue token for this connection is outstanding
    /// (in the channel or held by a draining worker). Guarded by the same
    /// mutex as `jobs` so enqueue/claim cannot race into a lost wakeup.
    scheduled: bool,
}

/// One live connection, shared by its reader thread and whichever worker
/// currently holds its token.
struct Conn {
    /// Writer half of the socket; guarded by `OutState::writing`, not a
    /// mutex, so writes proceed without holding the sequencer lock.
    stream: TcpStream,
    out: Mutex<OutState>,
    jobs: Mutex<ConnQueue>,
}

/// Namespace for [`Server::start`].
pub struct Server;

impl Server {
    /// Binds `127.0.0.1:{cfg.port}` (port `0` = OS-assigned) and starts
    /// the accept loop and worker pool over `engine`.
    ///
    /// # Errors
    /// Socket bind/inspect failures.
    pub fn start(
        engine: Arc<ShardedEngine>,
        cfg: &ServeConfig,
    ) -> Result<ServerHandle, ServerError> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let port = listener.local_addr()?.port();
        let shared = Arc::new(Shared {
            closing: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            requested: Mutex::new(false),
            cond: Condvar::new(),
            queued: AtomicUsize::new(0),
            depth: cfg.effective_queue_depth(),
            net: NetCounters::default(),
        });

        let (tx, rx) = std::sync::mpsc::channel::<Arc<Conn>>();
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(cfg.effective_workers());
        for i in 0..cfg.effective_workers() {
            let engine = Arc::clone(&engine);
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("cind-worker-{i}"))
                    .spawn(move || worker_loop(&engine, &rx, &shared))?,
            );
        }

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cind-accept".to_string())
                .spawn(move || accept_loop(&listener, &tx, &shared))?
        };

        Ok(ServerHandle {
            engine,
            port,
            shared,
            accept: Some(accept),
            workers,
        })
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::join`] or [`ServerHandle::hard_kill`] leaves the
/// threads running detached.
pub struct ServerHandle {
    engine: Arc<ShardedEngine>,
    port: u16,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound TCP port (useful with `port: 0`).
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The (sharded) engine this server fronts.
    #[must_use]
    pub fn engine(&self) -> &Arc<ShardedEngine> {
        &self.engine
    }

    /// Requests graceful shutdown (idempotent); [`ServerHandle::join`]
    /// performs the drain and returns the report.
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Waits until shutdown is requested (via [`ServerHandle::shutdown`]
    /// or a wire [`Request::Shutdown`]), then tears down gracefully:
    /// stops accepting, drains the queued requests, joins the workers,
    /// then flushes, checkpoints, and validates every shard.
    ///
    /// # Errors
    /// WAL-flush / snapshot failures during the final checkpoint.
    pub fn join(mut self) -> Result<ShutdownReport, ServerError> {
        self.shared.wait_requested();
        self.stop_threads();
        self.engine.flush_wal()?;
        self.engine.checkpoint()?;
        let violations = self.engine.validate()?;
        Ok(ShutdownReport { violations })
    }

    /// Crash-stops the server: abandon queued requests, skip the WAL
    /// flush, checkpoint, and validation. Only what already reached the
    /// WAL survives — the lever for recovery tests.
    pub fn hard_kill(mut self) {
        self.shared.killed.store(true, Ordering::SeqCst);
        self.shared.request_shutdown();
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.shared.closing.store(true, Ordering::SeqCst);
        // Poke the blocking accept() so the accept thread observes the
        // flag even if no client ever connects again.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, tx: &Sender<Arc<Conn>>, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.closing() {
                    return; // the poke connection, or a late client
                }
                let tx = tx.clone();
                let shared = Arc::clone(shared);
                // Readers are detached: they exit when their connection
                // closes, and never outlive usefulness because they only
                // touch the ready queue and their own socket.
                let spawned = std::thread::Builder::new()
                    .name("cind-reader".to_string())
                    .spawn(move || reader_loop(stream, &tx, &shared));
                if spawned.is_err() {
                    return; // thread exhaustion: stop accepting
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Pipelined reader: one `read` syscall, then decode and dispatch every
/// complete frame it delivered before reading again.
fn reader_loop(stream: TcpStream, ready: &Sender<Arc<Conn>>, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let Ok(writer) = stream.try_clone() else { return };
    let conn = Arc::new(Conn {
        stream: writer,
        out: Mutex::new(OutState {
            next_seq: 0,
            pending: BTreeMap::new(),
            writing: false,
        }),
        jobs: Mutex::new(ConnQueue { jobs: VecDeque::new(), scheduled: false }),
    });
    let mut input = stream;
    let mut buf: Vec<u8> = Vec::with_capacity(READ_CHUNK);
    let mut seq = 0u64;
    loop {
        // Drain every complete frame already buffered.
        let mut consumed = 0usize;
        loop {
            match split_frame(&buf[consumed..]) {
                Ok(Some((body, used))) => {
                    shared.net.frames_in.fetch_add(1, Ordering::Relaxed);
                    let this_seq = seq;
                    seq += 1;
                    dispatch_frame(&conn, this_seq, body, ready, shared);
                    consumed += used;
                }
                Ok(None) => break,
                // Framing-level damage (oversize length, unterminated
                // varint): the stream position is unrecoverable, so
                // answer in sequence and close.
                Err(e) => {
                    complete(
                        &conn,
                        seq,
                        &Response::Error {
                            code: ErrorCode::Malformed,
                            message: e.to_string(),
                        },
                        shared,
                    );
                    return;
                }
            }
        }
        if consumed > 0 {
            buf.drain(..consumed);
        }
        // Refill: exactly one syscall per iteration, however many frames
        // it carries.
        let old_len = buf.len();
        buf.resize(old_len + READ_CHUNK, 0);
        match input.read(&mut buf[old_len..]) {
            Ok(0) => return,
            Ok(n) => {
                buf.truncate(old_len + n);
                shared.net.reads.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                buf.truncate(old_len);
            }
            Err(_) => return,
        }
    }
}

/// Routes one decoded frame: admission control and protocol errors are
/// answered inline (through the sequencer, so ordering holds); real work
/// joins the connection's job queue.
fn dispatch_frame(
    conn: &Arc<Conn>,
    seq: u64,
    body: &[u8],
    ready: &Sender<Arc<Conn>>,
    shared: &Arc<Shared>,
) {
    match decode_request(body) {
        // Shutdown is acked in sequence and bypasses admission control —
        // an overloaded server must still be stoppable.
        Ok(Request::Shutdown) => {
            complete(conn, seq, &Response::ShutdownAck, shared);
            shared.request_shutdown();
        }
        Ok(req) => {
            if shared.closing() {
                complete(
                    conn,
                    seq,
                    &Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server is shutting down".to_string(),
                    },
                    shared,
                );
            } else if !shared.try_admit() {
                // Admission control: the global queue bound is hit, so
                // shed the request instead of queueing behind it.
                complete(conn, seq, &Response::Busy, shared);
            } else {
                enqueue(conn, seq, req, ready);
            }
        }
        // The frame arrived intact but its body is garbage: answer a
        // typed error and keep the connection usable.
        Err(e) => complete(
            conn,
            seq,
            &Response::Error {
                code: ErrorCode::Malformed,
                message: e.to_string(),
            },
            shared,
        ),
    }
}

/// Adds a job to the connection's queue and publishes a ready token if
/// none is outstanding (the `scheduled` flag, updated under the queue
/// lock, makes the token unique — so at most one worker drains a
/// connection at a time and per-connection order is preserved).
fn enqueue(conn: &Arc<Conn>, seq: u64, req: Request, ready: &Sender<Arc<Conn>>) {
    let token = {
        let mut q = conn.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        q.jobs.push_back((seq, req));
        if q.scheduled {
            false
        } else {
            q.scheduled = true;
            true
        }
    };
    if token {
        // A send can only fail after every worker exited, i.e. during
        // teardown; the job is then abandoned like any other in-flight
        // work at that point.
        let _ = ready.send(Arc::clone(conn));
    }
}

fn worker_loop(
    engine: &ShardedEngine,
    rx: &Arc<Mutex<Receiver<Arc<Conn>>>>,
    shared: &Arc<Shared>,
) {
    loop {
        if shared.killed() {
            return;
        }
        let token = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            // audit:allow(A009, the shared Receiver is only usable under its mutex and WORKER_POLL bounds the hold)
            guard.recv_timeout(WORKER_POLL)
        };
        match token {
            Ok(conn) => {
                if !drain_conn(engine, &conn, shared) {
                    return; // hard kill observed mid-batch
                }
            }
            // Ready queue empty: during graceful shutdown that means the
            // drain is complete.
            Err(RecvTimeoutError::Timeout) => {
                if shared.closing() {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Executes one connection's backlog to exhaustion. Each sweep takes the
/// whole current batch, handles it, and answers it with a single buffered
/// write; the connection is released (token retired) only when its queue
/// is observed empty under the lock. Returns `false` on hard kill.
fn drain_conn(engine: &ShardedEngine, conn: &Arc<Conn>, shared: &Arc<Shared>) -> bool {
    loop {
        let batch: Vec<(u64, Request)> = {
            let mut q = conn.jobs.lock().unwrap_or_else(PoisonError::into_inner);
            if q.jobs.is_empty() {
                q.scheduled = false;
                return true;
            }
            q.jobs.drain(..).collect()
        };
        shared.queued.fetch_sub(batch.len(), Ordering::SeqCst);
        let mut done: Vec<(u64, Vec<u8>)> = Vec::with_capacity(batch.len());
        let push = |done: &mut Vec<(u64, Vec<u8>)>, seq: u64, resp: &Response| {
            let body = encode_response(resp);
            let mut wire = Vec::with_capacity(body.len() + 4);
            frame(&body, &mut wire);
            done.push((seq, wire));
        };
        let mut it = batch.into_iter().peekable();
        while let Some((seq, req)) = it.next() {
            if shared.killed() {
                return false; // crash-stop: abandon un-answered
            }
            match req {
                // A run of consecutive pipelined inserts collapses into one
                // engine batch: one routing pass, one shard-lock
                // acquisition, and one durability wait per shard — the
                // commit coordinator sees the whole run as a single group
                // instead of `workers` trickled singletons. Per-item
                // results are identical to per-op dispatch
                // (`ShardedEngine::insert_batch` pins that down).
                Request::Insert(first)
                    if matches!(it.peek(), Some((_, Request::Insert(_)))) =>
                {
                    let mut seqs = vec![seq];
                    let mut entities = vec![first];
                    while matches!(it.peek(), Some((_, Request::Insert(_)))) {
                        if let Some((s, Request::Insert(e))) = it.next() {
                            seqs.push(s);
                            entities.push(e);
                        }
                    }
                    for (s, r) in seqs.into_iter().zip(engine.insert_batch(&entities)) {
                        let resp = crate::engine::to_frame(
                            r.map(|(segment, split)| Response::Written { segment, split }),
                        );
                        push(&mut done, s, &resp);
                    }
                }
                // Merge engine-side WAL counters with server-side net
                // counters — the full syscall observability picture.
                Request::IoCounters => {
                    let mut io = engine.io_counters();
                    io.net_reads = shared.net.reads.load(Ordering::Relaxed);
                    io.net_writes = shared.net.writes.load(Ordering::Relaxed);
                    io.frames_in = shared.net.frames_in.load(Ordering::Relaxed);
                    io.frames_out = shared.net.frames_out.load(Ordering::Relaxed);
                    push(&mut done, seq, &Response::IoCounters(io));
                }
                req => push(&mut done, seq, &engine.handle(&req)),
            }
        }
        complete_many(conn, done, shared);
    }
}

/// Completes one response through the sequencer.
fn complete(conn: &Conn, seq: u64, resp: &Response, shared: &Shared) {
    let body = encode_response(resp);
    let mut wire = Vec::with_capacity(body.len() + 4);
    frame(&body, &mut wire);
    complete_many(conn, vec![(seq, wire)], shared);
}

/// Parks framed responses in the sequencer and writes out every response
/// that is now next-in-order — consecutive ready responses leave in one
/// `write` call. A vanished client is not an error.
///
/// The `write` syscall runs with the sequencer lock *released*: a slow
/// client must not stall the reader thread or another worker completing
/// into the same connection (that hold was a CIND-A009 finding). The
/// `writing` flag makes the stream single-writer — a completer that finds
/// a writer active parks its items and returns; the active writer re-scans
/// after every write and drains them in order before clearing the flag, so
/// no response is ever stranded.
fn complete_many(conn: &Conn, items: Vec<(u64, Vec<u8>)>, shared: &Shared) {
    let mut out = conn.out.lock().unwrap_or_else(PoisonError::into_inner);
    for (seq, wire) in items {
        out.pending.insert(seq, wire);
    }
    if out.writing {
        return; // the active writer will release these in order
    }
    out.writing = true;
    loop {
        let mut batch = Vec::new();
        let mut released = 0u64;
        loop {
            let next = out.next_seq;
            let Some(wire) = out.pending.remove(&next) else { break };
            batch.extend_from_slice(&wire);
            out.next_seq += 1;
            released += 1;
        }
        if batch.is_empty() {
            out.writing = false;
            return;
        }
        drop(out);
        let _ = (&conn.stream).write_all(&batch);
        shared.net.writes.fetch_add(1, Ordering::Relaxed);
        shared.net.frames_out.fetch_add(released, Ordering::Relaxed);
        out = conn.out.lock().unwrap_or_else(PoisonError::into_inner);
    }
}
