//! The TCP serving loop: accept thread, per-connection readers, a fixed
//! worker pool behind a *bounded* queue, and the shutdown machinery.
//!
//! # Threading model
//!
//! ```text
//! accept thread ──spawns──▶ reader thread (one per connection)
//!                               │ decode frame → try_send(job)
//!                               │        │ full → answer Busy (shed)
//!                               ▼        ▼
//!                        bounded sync_channel(queue_depth)
//!                               │
//!                   worker pool (cfg.workers threads)
//!                               │ engine.handle(req)
//!                               ▼
//!                    response frame → connection (shared Mutex)
//! ```
//!
//! Readers never touch the engine — they only decode, enqueue, and answer
//! admission-control / protocol errors, so a slow or hostile client cannot
//! occupy a worker. Workers never read sockets — they drain the queue and
//! write responses through the connection's write mutex. The queue bound
//! is the *admission control* knob: when `queue_depth` requests are
//! already waiting, the next one is answered [`Response::Busy`]
//! immediately instead of queueing behind them, keeping worst-case latency
//! proportional to `queue_depth / workers` rather than unbounded.
//!
//! # Shutdown
//!
//! *Graceful* ([`ServerHandle::shutdown`] or a wire [`Request::Shutdown`]):
//! stop accepting, refuse new requests (typed `ShuttingDown` error), let
//! the workers drain everything already queued, then flush the WAL, write
//! a checkpoint snapshot, and run the full structural validation — the
//! report is returned from [`ServerHandle::join`].
//!
//! *Hard kill* ([`ServerHandle::hard_kill`]): stop everything as fast as
//! possible and skip the flush/checkpoint/validate entirely. This is the
//! crash lever for recovery tests — whatever reached the WAL survives,
//! everything else is lost, exactly like `SIGKILL`.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::protocol::{
    decode_request, encode_response, frame, read_frame, ErrorCode, ProtoError, Request,
    Response,
};
use crate::sharded::ShardedEngine;
use crate::{ServeConfig, ServerError};

/// How often idle workers re-check the drain/kill flags.
const WORKER_POLL: Duration = Duration::from_millis(25);

/// What graceful shutdown found after the drain.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Rendered invariant violations from the post-drain validation
    /// (empty = the store shut down structurally clean).
    pub violations: Vec<String>,
}

struct Job {
    req: Request,
    out: Arc<Mutex<TcpStream>>,
}

/// Flags shared by every thread of one server instance.
struct Shared {
    /// Set first on any shutdown path: the accept loop exits and readers
    /// refuse new requests.
    closing: AtomicBool,
    /// Set only on [`ServerHandle::hard_kill`]: workers abandon queued
    /// jobs instead of draining them.
    killed: AtomicBool,
    /// Signalled when shutdown is requested (by the handle or by a wire
    /// `Shutdown` request); [`ServerHandle::join`] waits on it.
    requested: Mutex<bool>,
    cond: Condvar,
}

impl Shared {
    fn closing(&self) -> bool {
        self.closing.load(Ordering::SeqCst)
    }

    fn request_shutdown(&self) {
        self.closing.store(true, Ordering::SeqCst);
        let mut g = self.requested.lock().unwrap_or_else(PoisonError::into_inner);
        *g = true;
        self.cond.notify_all();
    }

    fn wait_requested(&self) {
        let mut g = self.requested.lock().unwrap_or_else(PoisonError::into_inner);
        while !*g {
            g = self
                .cond
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Namespace for [`Server::start`].
pub struct Server;

impl Server {
    /// Binds `127.0.0.1:{cfg.port}` (port `0` = OS-assigned) and starts
    /// the accept loop and worker pool over `engine`.
    ///
    /// # Errors
    /// Socket bind/inspect failures.
    pub fn start(
        engine: Arc<ShardedEngine>,
        cfg: &ServeConfig,
    ) -> Result<ServerHandle, ServerError> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let port = listener.local_addr()?.port();
        let shared = Arc::new(Shared {
            closing: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            requested: Mutex::new(false),
            cond: Condvar::new(),
        });

        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(cfg.effective_queue_depth());
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(cfg.effective_workers());
        for i in 0..cfg.effective_workers() {
            let engine = Arc::clone(&engine);
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("cind-worker-{i}"))
                    .spawn(move || worker_loop(&engine, &rx, &shared))?,
            );
        }

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cind-accept".to_string())
                .spawn(move || accept_loop(&listener, &tx, &shared))?
        };

        Ok(ServerHandle {
            engine,
            port,
            shared,
            accept: Some(accept),
            workers,
        })
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::join`] or [`ServerHandle::hard_kill`] leaves the
/// threads running detached.
pub struct ServerHandle {
    engine: Arc<ShardedEngine>,
    port: u16,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound TCP port (useful with `port: 0`).
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The (sharded) engine this server fronts.
    #[must_use]
    pub fn engine(&self) -> &Arc<ShardedEngine> {
        &self.engine
    }

    /// Requests graceful shutdown (idempotent); [`ServerHandle::join`]
    /// performs the drain and returns the report.
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Waits until shutdown is requested (via [`ServerHandle::shutdown`]
    /// or a wire [`Request::Shutdown`]), then tears down gracefully:
    /// stops accepting, drains the queued requests, joins the workers,
    /// then flushes, checkpoints, and validates every shard.
    ///
    /// # Errors
    /// WAL-flush / snapshot failures during the final checkpoint.
    pub fn join(mut self) -> Result<ShutdownReport, ServerError> {
        self.shared.wait_requested();
        self.stop_threads();
        self.engine.flush()?;
        self.engine.checkpoint()?;
        let violations = self.engine.validate()?;
        Ok(ShutdownReport { violations })
    }

    /// Crash-stops the server: abandon queued requests, skip the WAL
    /// flush, checkpoint, and validation. Only what already reached the
    /// WAL survives — the lever for recovery tests.
    pub fn hard_kill(mut self) {
        self.shared.killed.store(true, Ordering::SeqCst);
        self.shared.request_shutdown();
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.shared.closing.store(true, Ordering::SeqCst);
        // Poke the blocking accept() so the accept thread observes the
        // flag even if no client ever connects again.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<Job>, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.closing() {
                    return; // the poke connection, or a late client
                }
                let tx = tx.clone();
                let shared = Arc::clone(shared);
                // Readers are detached: they exit when their connection
                // closes, and never outlive usefulness because they only
                // touch the channel and their own socket.
                let spawned = std::thread::Builder::new()
                    .name("cind-reader".to_string())
                    .spawn(move || reader_loop(stream, &tx, &shared));
                if spawned.is_err() {
                    return; // thread exhaustion: stop accepting
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn reader_loop(stream: TcpStream, tx: &SyncSender<Job>, shared: &Arc<Shared>) {
    let Ok(writer) = stream.try_clone() else { return };
    let out = Arc::new(Mutex::new(writer));
    let mut input = stream;
    loop {
        match read_frame(&mut input) {
            Ok(body) => match decode_request(&body) {
                Ok(Request::Shutdown) => {
                    send(&out, &Response::ShutdownAck);
                    shared.request_shutdown();
                    return;
                }
                Ok(req) => {
                    if shared.closing() {
                        send(
                            &out,
                            &Response::Error {
                                code: ErrorCode::ShuttingDown,
                                message: "server is shutting down".to_string(),
                            },
                        );
                        continue;
                    }
                    match tx.try_send(Job { req, out: Arc::clone(&out) }) {
                        Ok(()) => {}
                        // Admission control: the bounded queue is full, so
                        // shed the request instead of stalling the reader.
                        Err(TrySendError::Full(_)) => send(&out, &Response::Busy),
                        Err(TrySendError::Disconnected(_)) => {
                            send(
                                &out,
                                &Response::Error {
                                    code: ErrorCode::ShuttingDown,
                                    message: "server is shutting down".to_string(),
                                },
                            );
                            return;
                        }
                    }
                }
                // The frame arrived intact but its body is garbage: answer
                // a typed error and keep the connection usable.
                Err(e) => send(
                    &out,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                ),
            },
            Err(ProtoError::Closed) => return,
            // Framing-level damage (oversize length, short read): the
            // stream position is unrecoverable, so answer and close.
            Err(e) => {
                send(
                    &out,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                );
                return;
            }
        }
    }
}

fn worker_loop(
    engine: &ShardedEngine,
    rx: &Arc<Mutex<Receiver<Job>>>,
    shared: &Arc<Shared>,
) {
    loop {
        if shared.killed.load(Ordering::SeqCst) {
            return;
        }
        let job = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv_timeout(WORKER_POLL)
        };
        match job {
            Ok(job) => {
                if shared.killed.load(Ordering::SeqCst) {
                    return; // crash-stop: abandon the job un-answered
                }
                let resp = engine.handle(&job.req);
                send(&job.out, &resp);
            }
            // Queue empty: during graceful shutdown that means the drain
            // is complete.
            Err(RecvTimeoutError::Timeout) => {
                if shared.closing() {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Best-effort framed response write; a vanished client is not an error.
fn send(out: &Mutex<TcpStream>, resp: &Response) {
    let body = encode_response(resp);
    let mut wire = Vec::with_capacity(body.len() + 4);
    frame(&body, &mut wire);
    let mut guard = out.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = guard.write_all(&wire);
    let _ = guard.flush();
}
