//! The [`Engine`] service object: one store behind single-writer /
//! epoch-snapshot-reader discipline.
//!
//! The engine owns the universal table and the Cinderella partitioner
//! inside one `RwLock`. Writes (insert / update / delete) take the write
//! lock — Algorithm 1 mutates the catalog and the table together, so
//! writes are inherently serial, exactly the paper's online setting.
//! Queries do **not** take that lock for the scan: every write bumps an
//! epoch counter, and a query grabs (or lazily rebuilds) the cached
//! [`EngineSnapshot`] for the current epoch — an owned copy-on-write
//! [`cind_storage::TableSnapshot`] plus the partition pruning pairs — and
//! scans it entirely outside the engine lock. Rebuilding a snapshot takes
//! the read lock only for the O(segments + locator) clone, so a query
//! never blocks writers for the duration of its scan, and a writer never
//! blocks queries at all once their snapshot is in hand.
//!
//! Durability: when opened on a store directory the engine replays
//! `wal.log` over the `store.cind` snapshot (tolerating a torn tail),
//! rebuilds the partitioner from storage, then *checkpoints* — writes a
//! fresh snapshot and truncates the log — so the WAL only ever holds the
//! suffix since the last clean open or graceful shutdown. The attached WAL
//! sink is a [`crate::commit::GroupCommit`] coordinator: a mutating call
//! submits its framed transaction group and then blocks until the group
//! it joined has been written *and fsynced* — concurrent writers share one
//! append + one sync per flush group (WAL group commit), and an acked
//! mutation is always durable.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::PoisonError;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use cind_model::{Entity, EntityId, Synopsis};
use cind_query::planner::{plan_from_survivors, plan_with, Parallelism, Plan};
use cind_query::{execute_collect_view, Query};
use cind_reorg::{ReorgDriver, ReorgStats, StepReport};
use cind_storage::{wal, RealVfs, SegmentId, StorageError, TableSnapshot, UniversalTable, Vfs};
use cinderella_core::{
    validate::render, Cinderella, Config, CoreError, IndexTier, MergeReport, TierSnapshot,
};

use crate::commit::{GroupCommit, GroupSink, WalCounters};
use crate::protocol::{
    EngineStats, ErrorCode, IoCounters, QueryStats, Request, Response, WireEntity,
};
use crate::{ServeConfig, ServerError};

/// Snapshot file name inside a store directory.
pub const SNAPSHOT_FILE: &str = "store.cind";
/// Write-ahead log file name inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// How to build an [`Engine`].
#[derive(Clone)]
pub struct EngineOptions {
    /// Partitioner configuration (weight, capacity, mode, …).
    pub config: Config,
    /// Buffer-pool capacity in pages.
    pub pool_pages: usize,
    /// Scan threads per query (`1` = sequential execution).
    pub query_threads: usize,
    /// How long a group-commit leader lingers gathering concurrent writers
    /// before flushing the group. `Duration::ZERO` flushes each group as
    /// soon as its leader arrives (per-op durability semantics; coalescing
    /// still happens when writers genuinely race the flush).
    pub group_commit_window: Duration,
    /// Filesystem backend for snapshot and WAL I/O. Defaults to the real
    /// filesystem; the simulation harness injects a deterministic
    /// fault-injecting backend here.
    pub vfs: Arc<dyn Vfs>,
}

impl std::fmt::Debug for EngineOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineOptions")
            .field("config", &self.config)
            .field("pool_pages", &self.pool_pages)
            .field("query_threads", &self.query_threads)
            .field("group_commit_window", &self.group_commit_window)
            .field("vfs", &"<dyn Vfs>")
            .finish()
    }
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            config: Config::default(),
            pool_pages: 1024,
            query_threads: 2,
            group_commit_window: Duration::ZERO,
            vfs: Arc::new(RealVfs),
        }
    }
}

impl EngineOptions {
    /// Options matching a [`ServeConfig`]'s storage/query knobs.
    #[must_use]
    pub fn from_serve(cfg: &ServeConfig) -> Self {
        Self {
            config: Config {
                reorg: cfg.reorg_config(),
                tier: cfg.tier,
                ..Config::default()
            },
            pool_pages: cfg.pool_pages.max(8),
            query_threads: cfg.query_threads.max(1),
            group_commit_window: Duration::from_micros(cfg.group_commit_window),
            ..Self::default()
        }
    }
}

struct EngineState {
    table: UniversalTable,
    cindy: Cinderella,
    /// The commit coordinator for the *current* WAL generation (durable
    /// stores only). Replaced under the write lock at every checkpoint.
    commit: Option<Arc<GroupCommit>>,
}

/// The pruning metadata frozen into an [`EngineSnapshot`]: either the
/// exact per-partition synopsis pairs, or — when the catalog runs the
/// tiered index — a frozen [`TierSnapshot`] whose survivor sets are
/// supersets of the exact ones (the executor's per-row `matches` keeps
/// answers identical either way).
enum SnapshotPruning {
    Exact(Vec<(SegmentId, Synopsis)>),
    Tiered(Box<TierSnapshot>),
}

/// An owned, immutable view of the engine at one write epoch: the table
/// snapshot plus the partition pruning metadata captured from the
/// partitioner's catalog at the same instant. Queries plan and scan
/// against this object with no engine lock held.
pub struct EngineSnapshot {
    table: TableSnapshot,
    pruning: SnapshotPruning,
}

impl EngineSnapshot {
    /// Survivors of `syn` under this snapshot's pruning metadata, with the
    /// pruned-partition count (tiered survivors are superset-sound).
    fn survivors_of(&self, syn: &Synopsis) -> (Vec<SegmentId>, usize) {
        match &self.pruning {
            SnapshotPruning::Exact(pairs) => {
                let mut survivors = Vec::new();
                let mut pruned = 0usize;
                for (seg, psyn) in pairs {
                    if syn.is_disjoint(psyn) {
                        pruned += 1;
                    } else {
                        survivors.push(*seg);
                    }
                }
                (survivors, pruned)
            }
            SnapshotPruning::Tiered(snap) => snap.survivors(syn),
        }
    }
}

/// One store (table + partitioner) behind the serving layer's locking
/// discipline. `Engine` is `Send + Sync`; wrap it in an `Arc` and share it
/// with [`crate::ShardedEngine`], which routes writes and fans out queries
/// across a set of engines.
pub struct Engine {
    state: RwLock<EngineState>,
    /// Bumped (under the write lock) by every write-path entry, including
    /// failed ones — a failed insert may still have interned attribute
    /// names, which a cached snapshot must not miss.
    epoch: AtomicU64,
    /// The newest snapshot built so far, keyed by the epoch it captured.
    /// Readers at the same epoch share one snapshot; the first reader
    /// after a write rebuilds it.
    snap_cache: Mutex<Option<(u64, Arc<EngineSnapshot>)>>,
    store: Option<PathBuf>,
    query_threads: usize,
    /// Group-commit gather window, passed to every coordinator generation.
    window: Duration,
    /// Cumulative WAL I/O counters, surviving checkpoint's coordinator
    /// replacement (the coordinator holds a clone of this `Arc`).
    wal_counters: Arc<WalCounters>,
    vfs: Arc<dyn Vfs>,
    /// The background reorganizer for this engine (one per shard). Heat
    /// recording locks this mutex *alone*; [`Engine::reorg_step`] locks it
    /// inside the state write lock — the only edge is state → reorg, so
    /// the lock-order graph stays acyclic. Driver state is advisory and
    /// in-memory: a reopened engine starts with a cold heat map, while the
    /// WAL-framed actions carry all durability.
    reorg: Mutex<ReorgDriver>,
}

impl Engine {
    /// A fresh in-memory engine (no durability). Useful for tests and the
    /// in-process benchmark harness.
    #[must_use]
    pub fn in_memory(opts: EngineOptions) -> Self {
        let reorg_cfg = opts.config.reorg;
        Self {
            state: RwLock::new(EngineState {
                table: UniversalTable::new(opts.pool_pages),
                cindy: Cinderella::new(opts.config),
                commit: None,
            }),
            epoch: AtomicU64::new(0),
            snap_cache: Mutex::new(None),
            store: None,
            query_threads: opts.query_threads.max(1),
            window: opts.group_commit_window,
            wal_counters: Arc::new(WalCounters::default()),
            vfs: opts.vfs,
            reorg: Mutex::new(ReorgDriver::new(reorg_cfg)),
        }
    }

    /// Opens (or creates) a durable store directory: restores the
    /// snapshot, replays the WAL suffix (discarding a torn tail), rebuilds
    /// the partitioner, checkpoints, and attaches a fresh WAL sink whose
    /// head records the new snapshot's epoch.
    ///
    /// The epoch gate: a log that names a snapshot generation other than
    /// the one on disk is *stale* — it was superseded by a later
    /// checkpoint whose own log replaced it — and is skipped rather than
    /// replayed into the wrong base. Epoch-less logs (pre-epoch format)
    /// are always replayed.
    ///
    /// # Errors
    /// I/O and persistence failures; [`ServerError::Core`] if the rebuilt
    /// store fails the partitioner's structural rebuild.
    pub fn open(dir: &Path, opts: EngineOptions) -> Result<Self, ServerError> {
        let vfs = opts.vfs.clone();
        vfs.create_dir_all(dir)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let wal_path = dir.join(WAL_FILE);

        let (mut table, snap_epoch) = if vfs.exists(&snapshot_path) {
            let (t, e) = UniversalTable::restore_from(&*vfs, &snapshot_path, opts.pool_pages)?;
            (t, Some(e))
        } else {
            (UniversalTable::new(opts.pool_pages), None)
        };
        if vfs.exists(&wal_path) {
            let bytes = vfs.read(&wal_path)?;
            let replayable = match wal::read_epoch(&bytes) {
                // Epoch-less legacy log: always belongs to this store.
                None => true,
                // Stamped log: only replay over the snapshot it extends.
                Some(epoch) => snap_epoch == Some(epoch),
            };
            if replayable {
                wal::replay(&mut table, &mut &bytes[..])?;
            }
        }
        let reorg_cfg = opts.config.reorg;
        let cindy = Cinderella::rebuild(&table, opts.config)?;

        // Checkpoint: fold the replayed suffix into the snapshot and reset
        // the log, so recovery cost stays proportional to one session.
        let epoch = table.snapshot_to(&*vfs, &snapshot_path)?;
        let wal_file = vfs.create(&wal_path)?;
        let wal_counters = Arc::new(WalCounters::default());
        let commit = Arc::new(GroupCommit::new(
            wal_file,
            opts.group_commit_window,
            Arc::clone(&wal_counters),
        ));
        table.attach_wal(Box::new(GroupSink::new(Arc::clone(&commit))));
        table.wal_mark_epoch(epoch);

        Ok(Self {
            state: RwLock::new(EngineState { table, cindy, commit: Some(commit) }),
            epoch: AtomicU64::new(0),
            snap_cache: Mutex::new(None),
            store: Some(dir.to_path_buf()),
            query_threads: opts.query_threads.max(1),
            window: opts.group_commit_window,
            wal_counters,
            vfs,
            reorg: Mutex::new(ReorgDriver::new(reorg_cfg)),
        })
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, EngineState> {
        self.state.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, EngineState> {
        self.state.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs a mutation under the write lock and bumps the epoch before the
    /// lock is released — success or failure, since even a failed write
    /// may have interned attribute names into the catalog. Durable stores
    /// then wait *outside* the lock for the group-commit coordinator to
    /// make the mutation's WAL group durable, so the lock is free for the
    /// next writer while this one's group is being fsynced.
    fn write_op<T>(
        &self,
        f: impl FnOnce(&mut EngineState) -> Result<T, ServerError>,
    ) -> Result<T, ServerError> {
        let mut state = self.write();
        let result = f(&mut state);
        self.epoch.fetch_add(1, Ordering::Release);
        let pending = state.commit.as_ref().map(|c| (Arc::clone(c), c.ticket()));
        drop(state);
        if let Some((commit, ticket)) = pending {
            if let Err(kind) = commit.wait_durable(ticket) {
                // A durability failure outranks a clean in-memory result:
                // never ack what the log cannot replay.
                return result.and(Err(wal_error(kind)));
            }
        }
        result
    }

    /// The snapshot for the current write epoch, shared with every other
    /// reader at the same epoch. Rebuilding after a write holds the read
    /// lock only for the clone, never for a scan.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        let epoch = self.epoch.load(Ordering::Acquire);
        {
            let cache = self.snap_cache.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some((cached_epoch, snap)) = &*cache {
                if *cached_epoch == epoch {
                    return Arc::clone(snap);
                }
            }
        }
        let state = self.read();
        // Re-read under the read lock: no writer is active now, so the
        // clone below observes everything up to this epoch.
        let epoch = self.epoch.load(Ordering::Acquire);
        let snap = Arc::new(EngineSnapshot {
            table: state.table.freeze(),
            // Freeze whichever pruning index the catalog runs: the tiered
            // snapshot clones filter words instead of per-partition
            // synopses, so a million-partition freeze stays cheap.
            pruning: match state.cindy.catalog().tier_snapshot() {
                Some(tier) => SnapshotPruning::Tiered(Box::new(tier)),
                None => SnapshotPruning::Exact(
                    state
                        .cindy
                        .catalog()
                        .pruning_view()
                        .map(|(seg, syn, _)| (seg, syn.clone()))
                        .collect(),
                ),
            },
        });
        drop(state);
        let mut cache = self.snap_cache.lock().unwrap_or_else(PoisonError::into_inner);
        match &*cache {
            // A concurrent reader may have cached an even fresher epoch.
            Some((cached_epoch, _)) if *cached_epoch >= epoch => {}
            _ => *cache = Some((epoch, Arc::clone(&snap))),
        }
        snap
    }

    fn build_entity(
        state: &mut EngineState,
        wire: &WireEntity,
    ) -> Result<Entity, ServerError> {
        let attrs: Vec<_> = wire
            .attrs
            .iter()
            .map(|(name, value)| (state.table.catalog_mut().intern(name), value.clone()))
            .collect();
        Entity::new(EntityId(wire.id), attrs)
            .map_err(|e| ServerError::Core(CoreError::Model(e)))
    }

    /// Inserts an entity; returns `(segment, split?)`.
    ///
    /// # Errors
    /// Duplicate ids, storage failures, attribute-less entities.
    pub fn insert(&self, wire: &WireEntity) -> Result<(u32, bool), ServerError> {
        let out = self.write_op(|state| {
            let entity = Self::build_entity(state, wire)?;
            let outcome = state.cindy.insert(&mut state.table, entity)?;
            let seg = state.table.location(EntityId(wire.id)).map_or(0, |s| s.0);
            Ok((seg, outcome.is_split()))
        })?;
        self.after_write()?;
        Ok(out)
    }

    /// Inserts a batch of entities under **one** writer-lock acquisition
    /// and **one** group-commit durability wait: each entity still runs the
    /// full Algorithm 1 placement and logs its own WAL transaction group
    /// (so the log is byte-identical to the same inserts issued one by
    /// one), but the per-op fixed costs — lock handoff, coordinator
    /// wakeup, fsync — are paid once per batch.
    ///
    /// Per-item results in request order. If the shared durability wait
    /// fails, every item that succeeded in memory is converted to that
    /// error: nothing is acked that the log cannot replay.
    pub fn insert_many(&self, wires: &[&WireEntity]) -> Vec<Result<(u32, bool), ServerError>> {
        let mut guard = self.write();
        let state = &mut *guard;
        let mut results: Vec<Result<(u32, bool), ServerError>> = wires
            .iter()
            .map(|wire| {
                let entity = Self::build_entity(state, wire)?;
                let outcome = state.cindy.insert(&mut state.table, entity)?;
                let seg = state.table.location(EntityId(wire.id)).map_or(0, |s| s.0);
                Ok((seg, outcome.is_split()))
            })
            .collect();
        self.epoch.fetch_add(1, Ordering::Release);
        let pending = state.commit.as_ref().map(|c| (Arc::clone(c), c.ticket()));
        drop(guard);
        if let Some((commit, ticket)) = pending {
            if let Err(kind) = commit.wait_durable(ticket) {
                for r in &mut results {
                    if r.is_ok() {
                        *r = Err(wal_error(kind));
                    }
                }
            }
        }
        // Feed the batch into the reorganizer's cadence clock but defer any
        // due step to the next single-op entry point: per-item results are
        // already sealed, so a step failure here would have no honest place
        // to surface.
        {
            let mut driver = self.reorg.lock().unwrap_or_else(PoisonError::into_inner);
            for r in &results {
                if r.is_ok() {
                    driver.record_write();
                }
            }
        }
        results
    }

    /// Replaces a stored entity; returns `(segment, split?)`.
    ///
    /// # Errors
    /// Unknown ids, storage failures.
    pub fn update(&self, wire: &WireEntity) -> Result<(u32, bool), ServerError> {
        let out = self.write_op(|state| {
            let entity = Self::build_entity(state, wire)?;
            let outcome = state.cindy.update(&mut state.table, entity)?;
            let seg = state.table.location(EntityId(wire.id)).map_or(0, |s| s.0);
            Ok((seg, outcome.is_split()))
        })?;
        self.after_write()?;
        Ok(out)
    }

    /// Deletes an entity by id.
    ///
    /// # Errors
    /// Unknown ids, storage failures.
    pub fn delete(&self, id: u64) -> Result<(), ServerError> {
        self.write_op(|state| {
            state.cindy.delete(&mut state.table, EntityId(id))?;
            Ok(())
        })?;
        self.after_write()
    }

    /// Runs a `SELECT attrs` query, returning the materialised rows plus
    /// execution measurements.
    ///
    /// # Errors
    /// [`ServerError::UnknownAttribute`] when an attribute name is not in
    /// the catalog; storage failures from the scan.
    pub fn query(
        &self,
        attrs: &[String],
    ) -> Result<(Vec<crate::client::Row>, QueryStats), ServerError> {
        let snap = self.snapshot();
        let catalog = snap.table.catalog();
        let Some(query) = Query::from_names(catalog, attrs.iter().map(String::as_str))
        else {
            let missing = attrs
                .iter()
                .find(|a| catalog.lookup(a).is_none())
                .cloned()
                .unwrap_or_else(|| "<empty attribute list>".to_string());
            return Err(ServerError::UnknownAttribute(missing));
        };
        let (result, rows) = self.run_on_snapshot(&snap, &query)?;
        Ok((rows, result))
    }

    /// One leg of a sharded fan-out query: requested attributes this
    /// shard's catalog does not know project as NULL columns instead of
    /// erroring, and the returned rows are re-expanded to the *full*
    /// requested width in request order. `known[i]` reports whether this
    /// shard recognises `attrs[i]` — the sharded engine errors only when
    /// an attribute is unknown to every shard.
    ///
    /// # Errors
    /// Storage failures from the scan.
    pub fn query_subset(
        &self,
        attrs: &[String],
    ) -> Result<(Vec<crate::client::Row>, QueryStats, Vec<bool>), ServerError> {
        let snap = self.snapshot();
        let catalog = snap.table.catalog();
        let ids: Vec<Option<cind_model::AttrId>> =
            attrs.iter().map(|a| catalog.lookup(a)).collect();
        let known: Vec<bool> = ids.iter().map(Option::is_some).collect();
        let present: Vec<(usize, cind_model::AttrId)> = ids
            .iter()
            .enumerate()
            .filter_map(|(i, id)| id.map(|id| (i, id)))
            .collect();
        if present.is_empty() {
            // No requested attribute exists here: no entity of this shard
            // can match (matching needs at least one requested attribute).
            return Ok((Vec::new(), QueryStats::default(), known));
        }
        let query =
            Query::from_attrs(catalog.len(), present.iter().map(|&(_, id)| id));
        let (result, narrow) = self.run_on_snapshot(&snap, &query)?;
        let rows = narrow
            .into_iter()
            .map(|row| {
                let mut wide: crate::client::Row = vec![None; attrs.len()];
                for (cell, &(i, _)) in row.into_iter().zip(present.iter()) {
                    wide[i] = cell;
                }
                wide
            })
            .collect();
        Ok((rows, result, known))
    }

    /// Plans and executes `query` against `snap` — entirely outside the
    /// engine lock.
    fn run_on_snapshot(
        &self,
        snap: &EngineSnapshot,
        query: &Query,
    ) -> Result<(QueryStats, Vec<crate::client::Row>), ServerError> {
        self.note_query(snap, query);
        let plan = self.plan_snapshot(snap, query);
        let (result, rows) = execute_collect_view(snap.table.view(), query, &plan)?;
        let stats = QueryStats {
            entities_scanned: result.entities_scanned,
            segments_read: result.segments_read as u64,
            segments_pruned: result.segments_pruned as u64,
            logical_reads: result.io.logical_reads,
            physical_reads: result.io.physical_reads,
        };
        Ok((stats, rows))
    }

    fn plan_snapshot(&self, snap: &EngineSnapshot, query: &Query) -> Plan {
        let parallelism = if self.query_threads > 1 {
            Parallelism::Threads(self.query_threads)
        } else {
            Parallelism::Sequential
        };
        match &snap.pruning {
            SnapshotPruning::Exact(pairs) => plan_with(
                query,
                pairs.iter().map(|(seg, syn)| (*seg, syn)),
                parallelism,
            ),
            SnapshotPruning::Tiered(tier) => {
                let (segments, pruned) = tier.survivors(query.synopsis());
                plan_from_survivors(segments, pruned).with_parallelism(parallelism)
            }
        }
    }

    /// Feeds one query into the reorganizer's heat map: its synopsis plus
    /// the partitions that survive pruning for it (recomputed from the
    /// snapshot's pruning pairs — the same test the planner applies). Locks
    /// the reorg mutex *alone*; queries never trigger a step themselves, so
    /// the read path stays write-lock-free and infallible.
    fn note_query(&self, snap: &EngineSnapshot, query: &Query) {
        let syn = query.synopsis();
        // Under the tiered index the survivor set is approximate
        // (superset); heat is advisory, so feeding the few extra false
        // positives is harmless.
        let (survivors, _) = snap.survivors_of(syn);
        let mut driver = self.reorg.lock().unwrap_or_else(PoisonError::into_inner);
        driver.record_query(syn, survivors);
    }

    /// Advances the reorganizer's cadence clock after a committed mutation
    /// and runs one background step when the configured epoch has elapsed.
    /// Inert (no lock contention beyond one uncontended mutex) when the
    /// reorganizer is off.
    fn after_write(&self) -> Result<(), ServerError> {
        let due = {
            let mut driver = self.reorg.lock().unwrap_or_else(PoisonError::into_inner);
            driver.record_write()
        };
        if due {
            self.reorg_step()?;
        }
        Ok(())
    }

    /// Runs one bounded background reorganization step: under the writer
    /// lock the driver prices candidate actions against the decayed
    /// workload and enacts at most one that clears the hysteresis bar; the
    /// durability wait happens outside the lock like any other write. A
    /// no-op returning the default report when the reorganizer is off.
    ///
    /// # Errors
    /// Storage failures from the enacted action's moves; WAL durability
    /// failures — the same fault class as a foreground write, and every
    /// action is WAL-framed as one transaction, so recovery lands on the
    /// pre- or post-action state.
    pub fn reorg_step(&self) -> Result<StepReport, ServerError> {
        self.write_op(|state| {
            let mut driver = self.reorg.lock().unwrap_or_else(PoisonError::into_inner);
            let report = driver.step(&mut state.table, &mut state.cindy)?;
            Ok(report)
        })
    }

    /// Cumulative reorganizer counters (steps, enacted actions, entities
    /// moved).
    #[must_use]
    pub fn reorg_stats(&self) -> ReorgStats {
        self.reorg.lock().unwrap_or_else(PoisonError::into_inner).stats()
    }

    /// Runs `f` with shared read access to the table and partitioner —
    /// the in-process escape hatch for measurements that have no wire
    /// representation (e.g. Definition-1 efficiency in the differential
    /// test, workload replay in the benchmark harness).
    pub fn with_parts<T>(&self, f: impl FnOnce(&UniversalTable, &Cinderella) -> T) -> T {
        let state = self.read();
        f(&state.table, &state.cindy)
    }

    /// Engine-wide counters.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let state = self.read();
        let io = state.table.io_stats();
        EngineStats {
            entities: state.table.entity_count() as u64,
            partitions: state.cindy.catalog().len() as u64,
            attributes: state.table.catalog().len() as u64,
            logical_reads: io.logical_reads,
            physical_reads: io.physical_reads,
            page_writes: io.page_writes,
            evictions: io.evictions,
        }
    }

    /// Runs the full structural validation; one rendered line per
    /// violation (empty = all invariants hold).
    ///
    /// # Errors
    /// Storage failures from the validation scans.
    pub fn validate(&self) -> Result<Vec<String>, ServerError> {
        let state = self.read();
        let violations = state.cindy.validate(&state.table)?;
        if violations.is_empty() {
            Ok(Vec::new())
        } else {
            Ok(render(&violations).lines().map(str::to_string).collect())
        }
    }

    /// Drains the WAL through the commit coordinator — everything logged
    /// so far is on disk when this returns (no-op for in-memory engines).
    ///
    /// # Errors
    /// The sink's sticky I/O failure, if appends or group flushes have
    /// been failing.
    pub fn flush_wal(&self) -> Result<(), ServerError> {
        self.write().table.flush_wal()?;
        Ok(())
    }

    /// Cumulative WAL I/O counters (appends, fsyncs, flush groups, ops) —
    /// the observability surface BENCH_PR7 uses to prove the group-commit
    /// amortisation. Net counters are zero here; the server layer fills
    /// them in.
    #[must_use]
    pub fn io_counters(&self) -> IoCounters {
        let w = self.wal_counters.snapshot();
        IoCounters {
            wal_appends: w.appends,
            wal_syncs: w.syncs,
            wal_groups: w.groups,
            wal_ops: w.ops,
            ..IoCounters::default()
        }
    }

    /// Writes a fresh snapshot and truncates the WAL (durable stores
    /// only). Called by graceful shutdown after the drain.
    ///
    /// If any step past the flush fails, the *current* sink is poisoned
    /// ([`UniversalTable::fail_wal`]): the snapshot/log pairing is now
    /// unknown, and entries silently appended to the old-generation log
    /// would be skipped by recovery as stale. Poisoning makes the next
    /// mutation fail loudly instead, forcing the caller to reopen.
    ///
    /// # Errors
    /// I/O and persistence failures.
    // audit:allow(A009, shutdown-only path — the write lock must span the snapshot and WAL swap so no mutation can interleave with the generation change)
    pub fn checkpoint(&self) -> Result<(), ServerError> {
        let Some(dir) = &self.store else { return Ok(()) };
        let mut state = self.write();
        state.table.flush_wal()?;
        let epoch = match state.table.snapshot_to(&*self.vfs, &dir.join(SNAPSHOT_FILE)) {
            Ok(epoch) => epoch,
            Err(e) => {
                state.table.fail_wal(persist_error_kind(&e));
                return Err(e.into());
            }
        };
        let wal_file = match self.vfs.create(&dir.join(WAL_FILE)) {
            Ok(f) => f,
            Err(e) => {
                state.table.fail_wal(e.kind());
                return Err(e.into());
            }
        };
        // A fresh coordinator for the fresh log generation; the counters
        // Arc carries the cumulative totals across the swap. The old
        // coordinator was fully drained above (we hold the write lock, so
        // no new submissions can have raced in).
        let commit = Arc::new(GroupCommit::new(
            wal_file,
            self.window,
            Arc::clone(&self.wal_counters),
        ));
        state.table.attach_wal(Box::new(GroupSink::new(Arc::clone(&commit))));
        state.table.wal_mark_epoch(epoch);
        state.commit = Some(commit);
        Ok(())
    }

    /// Switches the pruning-index tier at runtime. Takes the write lock
    /// and bumps the epoch so the next reader freezes a snapshot of the
    /// new index; the switch is in-memory index state only (rebuilt from
    /// the catalog's refcounts), so nothing is WAL-framed.
    pub fn set_index_tier(&self, tier: IndexTier) {
        let mut state = self.write();
        state.cindy.set_index_tier(tier);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Whether the tiered pruning index is currently active.
    #[must_use]
    pub fn tier_active(&self) -> bool {
        self.read().cindy.catalog().tier_active()
    }

    /// Runs one partition merge pass (threshold in `(0, 1]`; out-of-range
    /// values are clamped). Takes the write lock — merges move entities
    /// and drop segments, the same churn class as splits.
    ///
    /// # Errors
    /// Storage failures from the moves; WAL failures from the logged
    /// mutations.
    pub fn merge_pass(&self, threshold: f64) -> Result<MergeReport, ServerError> {
        let threshold = if threshold > 0.0 { threshold.min(1.0) } else { f64::MIN_POSITIVE };
        self.write_op(|state| {
            let report = state.cindy.merge_pass(&mut state.table, threshold)?;
            Ok(report)
        })
    }

    /// Dispatches one request to the matching method and folds any error
    /// into a typed [`Response`]. Never panics — every failure becomes an
    /// error frame the client can decode.
    #[must_use]
    pub fn handle(&self, req: &Request) -> Response {
        let result = match req {
            Request::Insert(e) => self
                .insert(e)
                .map(|(segment, split)| Response::Written { segment, split }),
            Request::Update(e) => self
                .update(e)
                .map(|(segment, split)| Response::Written { segment, split }),
            Request::Delete(id) => self.delete(*id).map(|()| Response::Deleted),
            Request::Query(attrs) => self
                .query(attrs)
                .map(|(rows, stats)| Response::Rows { rows, stats }),
            Request::InsertBatch(entities) => {
                let refs: Vec<&WireEntity> = entities.iter().collect();
                Ok(Response::Batch(
                    self.insert_many(&refs)
                        .into_iter()
                        .map(|r| {
                            to_frame(r.map(|(segment, split)| Response::Written {
                                segment,
                                split,
                            }))
                        })
                        .collect(),
                ))
            }
            Request::QueryBatch(queries) => Ok(Response::Batch(
                queries
                    .iter()
                    .map(|attrs| {
                        to_frame(
                            self.query(attrs)
                                .map(|(rows, stats)| Response::Rows { rows, stats }),
                        )
                    })
                    .collect(),
            )),
            Request::IoCounters => Ok(Response::IoCounters(self.io_counters())),
            Request::Stats => Ok(Response::Stats(self.stats())),
            Request::Validate => self.validate().map(Response::Validated),
            Request::Ping(delay_ms) => {
                if *delay_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(*delay_ms));
                }
                Ok(Response::Pong)
            }
            // The server intercepts Shutdown before dispatch; answering it
            // here (direct in-process use) is still well-formed.
            Request::Shutdown => Ok(Response::ShutdownAck),
        };
        to_frame(result)
    }
}

/// Folds an error into a typed error frame (the shared tail of every
/// dispatch path, including per-item batch results).
pub(crate) fn to_frame(result: Result<Response, ServerError>) -> Response {
    result.unwrap_or_else(|e| Response::Error {
        code: error_code(&e),
        message: e.to_string(),
    })
}

/// The server-layer shape of a group-commit durability failure: the same
/// sticky `WalAppend` the per-op sink produced, so every existing recovery
/// path (sim fault classification included) applies unchanged.
fn wal_error(kind: std::io::ErrorKind) -> ServerError {
    ServerError::Storage(StorageError::WalAppend(kind))
}

pub(crate) fn error_code(e: &ServerError) -> ErrorCode {
    match e {
        ServerError::UnknownAttribute(_) => ErrorCode::UnknownAttribute,
        ServerError::Storage(_) | ServerError::Core(_) => ErrorCode::Engine,
        ServerError::Protocol(_) => ErrorCode::Malformed,
        ServerError::ShuttingDown => ErrorCode::ShuttingDown,
        _ => ErrorCode::Internal,
    }
}

/// The I/O error kind to poison the WAL sink with when a persistence step
/// fails (non-I/O persistence failures map to `Other`).
fn persist_error_kind(e: &cind_storage::PersistError) -> std::io::ErrorKind {
    match e {
        cind_storage::PersistError::Io(io) => io.kind(),
        _ => std::io::ErrorKind::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cind_model::Value;

    fn wire(id: u64, attrs: &[(&str, i64)]) -> WireEntity {
        WireEntity {
            id,
            attrs: attrs
                .iter()
                .map(|(n, v)| ((*n).to_string(), Value::Int(*v)))
                .collect(),
        }
    }

    #[test]
    fn insert_query_delete_roundtrip_in_memory() {
        let eng = Engine::in_memory(EngineOptions::default());
        eng.insert(&wire(1, &[("rpm", 7200)])).unwrap();
        eng.insert(&wire(2, &[("mp", 12)])).unwrap();
        let (rows, stats) = eng.query(&["rpm".to_string()]).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Some(Value::Int(7200)));
        assert_eq!(stats.segments_pruned + stats.segments_read, 2);
        eng.delete(1).unwrap();
        let s = eng.stats();
        assert_eq!(s.entities, 1);
        assert!(eng.validate().unwrap().is_empty());
    }

    #[test]
    fn unknown_attribute_is_typed() {
        let eng = Engine::in_memory(EngineOptions::default());
        eng.insert(&wire(1, &[("rpm", 7200)])).unwrap();
        match eng.query(&["nope".to_string()]) {
            Err(ServerError::UnknownAttribute(a)) => assert_eq!(a, "nope"),
            other => panic!("expected UnknownAttribute, got {other:?}"),
        }
    }

    #[test]
    fn handle_folds_errors_into_frames() {
        let eng = Engine::in_memory(EngineOptions::default());
        let resp = eng.handle(&Request::Delete(99));
        assert!(matches!(resp, Response::Error { code: ErrorCode::Engine, .. }));
        let resp = eng.handle(&Request::Query(vec!["ghost".into()]));
        assert!(
            matches!(resp, Response::Error { code: ErrorCode::UnknownAttribute, .. })
        );
    }

    #[test]
    fn tiered_engine_answers_match_exact() {
        let tiered_opts = EngineOptions {
            config: Config { tier: IndexTier::Tiered, ..Config::default() },
            ..EngineOptions::default()
        };
        let exact = Engine::in_memory(EngineOptions::default());
        let tiered = Engine::in_memory(tiered_opts);
        for id in 0..200u64 {
            let w = wire(id, &[(["rpm", "mp", "ghz", "kg"][id as usize % 4], id as i64)]);
            exact.insert(&w).unwrap();
            tiered.insert(&w).unwrap();
        }
        assert!(tiered.tier_active());
        assert!(!exact.tier_active());
        for attr in ["rpm", "mp", "ghz", "kg"] {
            let (mut a, _) = exact.query(&[attr.to_string()]).unwrap();
            let (mut b, _) = tiered.query(&[attr.to_string()]).unwrap();
            a.sort_by_key(|row| format!("{row:?}"));
            b.sort_by_key(|row| format!("{row:?}"));
            assert_eq!(a, b, "{attr}: tiered answers must match exact");
        }
        assert!(tiered.validate().unwrap().is_empty());

        // Runtime switch back to exact keeps serving and validating.
        tiered.set_index_tier(IndexTier::Exact);
        assert!(!tiered.tier_active());
        let (rows, _) = tiered.query(&["rpm".to_string()]).unwrap();
        assert_eq!(rows.len(), 50);
        assert!(tiered.validate().unwrap().is_empty());
    }

    #[test]
    fn open_checkpoint_reopen_preserves_data() {
        let dir = std::env::temp_dir().join("cind_server_engine_reopen");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let eng = Engine::open(&dir, EngineOptions::default()).unwrap();
            eng.insert(&wire(1, &[("rpm", 7200)])).unwrap();
            eng.insert(&wire(2, &[("mp", 12)])).unwrap();
            eng.checkpoint().unwrap();
        }
        {
            let eng = Engine::open(&dir, EngineOptions::default()).unwrap();
            assert_eq!(eng.stats().entities, 2);
            assert!(eng.validate().unwrap().is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_only_suffix_survives_reopen() {
        let dir = std::env::temp_dir().join("cind_server_engine_walonly");
        let _ = std::fs::remove_dir_all(&dir);
        {
            // No checkpoint: drop with entities only in the WAL.
            let eng = Engine::open(&dir, EngineOptions::default()).unwrap();
            eng.insert(&wire(7, &[("rpm", 7200)])).unwrap();
        }
        {
            let eng = Engine::open(&dir, EngineOptions::default()).unwrap();
            assert_eq!(eng.stats().entities, 1);
            assert!(eng.validate().unwrap().is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
